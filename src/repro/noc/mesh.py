"""1D mesh network used for unicast operand delivery (paper Fig. 9(a)).

One operand of the GEMM (the per-MAC-unique matrix-2 elements in Fig. 5) is
always delivered in a unicast manner.  FlexNeRFer uses a simple 1D mesh per
row for this: element *i* enters at the row port and hops link by link until
it reaches MAC *i*.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence
from dataclasses import dataclass


@dataclass
class MeshDelivery:
    """Cost summary of one unicast distribution over the 1D mesh."""

    deliveries: dict[int, Hashable]
    link_traversals: int
    buffer_reads: int


class Mesh1D:
    """A single-row 1D mesh of ``num_nodes`` MAC endpoints."""

    def __init__(self, num_nodes: int) -> None:
        if num_nodes < 1:
            raise ValueError("mesh needs at least one node")
        self.num_nodes = num_nodes

    @property
    def num_links(self) -> int:
        return self.num_nodes  # injection link + (num_nodes - 1) hop links

    def route(self, assignment: Sequence[Hashable]) -> MeshDelivery:
        """Deliver ``assignment[i]`` to node ``i`` by store-and-forward hops."""
        if len(assignment) > self.num_nodes:
            raise ValueError(
                f"assignment has {len(assignment)} entries for a "
                f"{self.num_nodes}-node mesh"
            )
        deliveries = {
            node: value for node, value in enumerate(assignment) if value is not None
        }
        # Element destined for node i traverses i+1 links (injection + hops).
        traversals = sum(node + 1 for node in deliveries)
        return MeshDelivery(
            deliveries=deliveries,
            link_traversals=traversals,
            buffer_reads=len(deliveries),
        )

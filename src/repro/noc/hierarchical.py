"""Hierarchical mesh distribution networks (HM-NoC and HMF-NoC).

Both networks are modelled as balanced switch trees that deliver operand
elements from a buffer port to a set of leaves (MAC units or sub-multipliers).
They support the three 1D dataflows -- broadcast, multicast and unicast --
required for dense mapping of sparse irregular GEMMs (paper Section 4.1.2).

The difference between the two is the feedback path: HMF-NoC nodes are 3x3
switches with a feedback input, so an element already resident at some leaf
from the previous distribution step can be forwarded laterally instead of
being re-read from the on-chip buffer.  The route planner here counts buffer
reads and switch traversals for both networks so the energy model can
reproduce the ~2.5x on-chip-access energy advantage the paper reports.
"""

from __future__ import annotations

import math
from collections.abc import Hashable, Sequence
from dataclasses import dataclass, field

from repro.noc.dataflow import DataflowMode, classify_assignment
from repro.noc.switch import Switch2x2, Switch3x3


@dataclass
class RouteResult:
    """Outcome of distributing one operand vector to the leaves."""

    mode: DataflowMode
    deliveries: dict[int, Hashable]
    buffer_reads: int
    switch_traversals: int
    feedback_forwards: int = 0
    levels: int = 0

    @property
    def total_hops(self) -> int:
        return self.switch_traversals + self.feedback_forwards


class HMNoC:
    """Eyeriss v2-style hierarchical mesh NoC (2x2 switches, no feedback)."""

    switch_cls = Switch2x2
    has_feedback = False

    def __init__(self, num_leaves: int, fanout: int = 2) -> None:
        if num_leaves < 1:
            raise ValueError("network needs at least one leaf")
        if fanout < 2:
            raise ValueError("fanout must be at least 2")
        self.num_leaves = num_leaves
        self.fanout = fanout
        self.levels = max(1, math.ceil(math.log(num_leaves, fanout)))
        self.switches = self._build_switches()
        self._resident: dict[int, Hashable] = {}

    def _build_switches(self) -> list[list[Switch2x2]]:
        """One list of switches per tree level (root level first)."""
        levels: list[list[Switch2x2]] = []
        nodes = 1
        for level in range(self.levels):
            levels.append(
                [self.switch_cls(name=f"L{level}_{i}") for i in range(nodes)]
            )
            nodes *= self.fanout
        return levels

    @property
    def num_switches(self) -> int:
        return sum(len(level) for level in self.switches)

    def reset(self) -> None:
        """Clear resident state and switch activation counters."""
        self._resident.clear()
        for level in self.switches:
            for switch in level:
                switch.activations = 0

    def _leaf_depth(self) -> int:
        return self.levels

    def route(self, assignment: Sequence[Hashable]) -> RouteResult:
        """Distribute ``assignment[i]`` to leaf ``i`` and account for the cost.

        Every distinct value requires one buffer read; it then traverses one
        switch per tree level towards each destination subtree.  Shared
        values reuse the common prefix of their paths (that is what makes
        multicast/broadcast cheaper than repeated unicast).
        """
        if len(assignment) > self.num_leaves:
            raise ValueError(
                f"assignment has {len(assignment)} entries but the network "
                f"has only {self.num_leaves} leaves"
            )
        mode = classify_assignment(assignment)
        deliveries = {
            leaf: value
            for leaf, value in enumerate(assignment)
            if value is not None
        }
        reads, traversals, feedback = self._plan(deliveries)
        self._resident = dict(deliveries)
        return RouteResult(
            mode=mode,
            deliveries=deliveries,
            buffer_reads=reads,
            switch_traversals=traversals,
            feedback_forwards=feedback,
            levels=self.levels,
        )

    # -- internal ---------------------------------------------------------

    def _plan(self, deliveries: dict[int, Hashable]) -> tuple[int, int, int]:
        reads = len({v for v in deliveries.values()})
        traversals = self._count_traversals(deliveries)
        return reads, traversals, 0

    def _count_traversals(self, deliveries: dict[int, Hashable]) -> int:
        """Count switch traversals with path sharing for identical values."""
        traversals = 0
        # Per level, count the distinct (subtree, value) pairs that must be
        # forwarded: a value entering a subtree traverses that subtree's
        # switch exactly once regardless of how many leaves below need it.
        for level in range(self.levels):
            subtree_size = self.num_leaves / (self.fanout ** (level + 1))
            seen: set[tuple[int, Hashable]] = set()
            for leaf, value in deliveries.items():
                subtree = int(leaf // max(subtree_size, 1))
                seen.add((subtree, value))
            traversals += len(seen)
        return traversals


class HMFNoC(HMNoC):
    """FlexNeRFer's hierarchical mesh NoC with feedback (3x3 switches)."""

    switch_cls = Switch3x3
    has_feedback = True

    def _plan(self, deliveries: dict[int, Hashable]) -> tuple[int, int, int]:
        resident_values = set(self._resident.values())
        needed_values = {v for v in deliveries.values()}
        # Values already present somewhere in the array are forwarded over the
        # feedback path instead of being re-read from the buffer.
        reused = needed_values & resident_values
        fresh = needed_values - resident_values
        reads = len(fresh)
        fresh_deliveries = {
            leaf: value for leaf, value in deliveries.items() if value in fresh
        }
        traversals = self._count_traversals(fresh_deliveries)
        # Each reused value is moved laterally once per destination leaf that
        # needs it (single-hop feedback forward).
        feedback = sum(1 for value in deliveries.values() if value in reused)
        return reads, traversals, feedback

"""Benes permutation network (SIGMA baseline interconnect).

SIGMA distributes operands to its MAC array through a Benes network, a
rearrangeably non-blocking multistage network built from 2x2 crossing
switches.  An N-input Benes network (N a power of two) has ``2*log2(N) - 1``
stages of ``N/2`` switches and can realise any permutation of its inputs.

The classic looping route-planning algorithm implemented here returns, for a
requested permutation, the per-stage switch settings; the model also reports
switch and traversal counts so the SIGMA baseline's interconnect cost can be
compared with FlexNeRFer's HMF-NoC.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class BenesRoute:
    """Switch settings realising one permutation at one recursion level."""

    permutation: list[int]
    input_settings: list[bool]    # True = crossed input-stage switch
    output_settings: list[bool]   # True = crossed output-stage switch
    sub_upper: "BenesRoute | None"
    sub_lower: "BenesRoute | None"
    switch_traversals: int


class BenesNetwork:
    """An N x N Benes network (N must be a power of two)."""

    def __init__(self, size: int) -> None:
        if size < 2 or size & (size - 1):
            raise ValueError(
                f"Benes network size must be a power of two >= 2, got {size}"
            )
        self.size = size

    @property
    def num_stages(self) -> int:
        """Number of switching stages: 2*log2(N) - 1."""
        return 2 * (self.size.bit_length() - 1) - 1

    @property
    def num_switches(self) -> int:
        """Total 2x2 switches in the network."""
        return self.num_stages * (self.size // 2)

    def route(self, permutation: list[int]) -> BenesRoute:
        """Compute switch settings so that output ``i`` receives input ``permutation[i]``."""
        self._validate(permutation)
        return self._route_recursive(list(permutation))

    def apply(self, permutation: list[int], values: list) -> list:
        """Route ``permutation`` and return ``values`` reordered accordingly."""
        route = self.route(permutation)
        return self._apply_route(route, list(values))

    # -- internal ---------------------------------------------------------

    def _validate(self, permutation: list[int]) -> None:
        if sorted(permutation) != list(range(self.size)):
            raise ValueError(
                f"expected a permutation of 0..{self.size - 1}, got {permutation}"
            )

    def _route_recursive(self, permutation: list[int]) -> BenesRoute:
        n = len(permutation)
        if n == 2:
            crossed = permutation[0] == 1
            return BenesRoute(
                permutation=permutation,
                input_settings=[crossed],
                output_settings=[],
                sub_upper=None,
                sub_lower=None,
                switch_traversals=2,
            )
        half = n // 2
        inverse = [0] * n
        for out_idx, in_idx in enumerate(permutation):
            inverse[in_idx] = out_idx

        in_upper: list[bool | None] = [None] * n
        out_upper: list[bool | None] = [None] * n
        for start in range(n):
            if in_upper[start] is not None:
                continue
            current, side = start, True
            while in_upper[current] is None:
                in_upper[current] = side
                out_idx = inverse[current]
                out_upper[out_idx] = side
                partner_out = out_idx ^ 1
                if out_upper[partner_out] is None:
                    out_upper[partner_out] = not side
                partner_in = permutation[partner_out]
                if in_upper[partner_in] is None:
                    in_upper[partner_in] = not side
                current = partner_in ^ 1
                side = not in_upper[partner_in]

        input_settings = [not in_upper[2 * i] for i in range(half)]
        output_settings = [not out_upper[2 * o] for o in range(half)]

        upper_perm = [0] * half
        lower_perm = [0] * half
        for o in range(half):
            even, odd = 2 * o, 2 * o + 1
            up_out = even if out_upper[even] else odd
            low_out = odd if out_upper[even] else even
            upper_perm[o] = permutation[up_out] // 2
            lower_perm[o] = permutation[low_out] // 2

        sub_upper = self._route_recursive(upper_perm)
        sub_lower = self._route_recursive(lower_perm)
        traversals = 2 * n + sub_upper.switch_traversals + sub_lower.switch_traversals
        return BenesRoute(
            permutation=permutation,
            input_settings=input_settings,
            output_settings=output_settings,
            sub_upper=sub_upper,
            sub_lower=sub_lower,
            switch_traversals=traversals,
        )

    def _apply_route(self, route: BenesRoute, values: list) -> list:
        """Push ``values`` through the routed switch settings."""
        n = len(values)
        if n == 2:
            return [values[1], values[0]] if route.input_settings[0] else list(values)
        half = n // 2
        upper_in = [None] * half
        lower_in = [None] * half
        for i in range(half):
            even_val, odd_val = values[2 * i], values[2 * i + 1]
            if route.input_settings[i]:
                upper_in[i], lower_in[i] = odd_val, even_val
            else:
                upper_in[i], lower_in[i] = even_val, odd_val
        upper_out = self._apply_route(route.sub_upper, upper_in)
        lower_out = self._apply_route(route.sub_lower, lower_in)
        out = [None] * n
        for o in range(half):
            if route.output_settings[o]:
                out[2 * o], out[2 * o + 1] = lower_out[o], upper_out[o]
            else:
                out[2 * o], out[2 * o + 1] = upper_out[o], lower_out[o]
        return out

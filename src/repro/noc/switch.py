"""Switching nodes used by the hierarchical mesh networks.

HM-NoC (Eyeriss v2) builds its tree from 2x2 switches; FlexNeRFer's HMF-NoC
replaces each node with a 3x3 switch whose third port connects a feedback loop
that lets data already present in the array be moved between MAC units without
re-reading the on-chip buffers (paper Fig. 9(b)).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class SwitchPort(enum.Enum):
    """Logical input ports of a switching node."""

    SRC0 = "src0"
    SRC1 = "src1"
    FEEDBACK = "feedback"


@dataclass
class Switch2x2:
    """A 2x2 node: two upstream sources, two downstream outputs."""

    name: str = "sw"
    activations: int = 0
    config: dict[int, SwitchPort] = field(default_factory=dict)

    num_inputs = 2
    num_outputs = 2

    def configure(self, routing: dict[int, SwitchPort]) -> None:
        """Set which source drives each output (0 and/or 1)."""
        for output, port in routing.items():
            if output not in (0, 1):
                raise ValueError(f"2x2 switch has outputs 0/1, got {output}")
            if port is SwitchPort.FEEDBACK:
                raise ValueError("2x2 switch has no feedback port")
        self.config = dict(routing)

    def forward(self, inputs: dict[SwitchPort, object]) -> dict[int, object]:
        """Propagate values from inputs to configured outputs."""
        outputs = {}
        for output, port in self.config.items():
            if port in inputs and inputs[port] is not None:
                outputs[output] = inputs[port]
        if outputs:
            self.activations += 1
        return outputs


@dataclass
class Switch3x3(Switch2x2):
    """A 3x3 node: adds the feedback input used by HMF-NoC."""

    name: str = "sw3"
    num_inputs = 3
    num_outputs = 3

    def configure(self, routing: dict[int, SwitchPort]) -> None:
        for output, port in routing.items():
            if output not in (0, 1, 2):
                raise ValueError(f"3x3 switch has outputs 0/1/2, got {output}")
            if not isinstance(port, SwitchPort):
                raise TypeError(f"expected SwitchPort, got {port!r}")
        self.config = dict(routing)

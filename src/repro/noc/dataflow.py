"""Dataflow classification for operand distribution.

A dense mapping of a sparse, irregular GEMM onto the MAC array requires the
distribution network to deliver one operand with unicast, multicast or
broadcast semantics per row/column (paper Fig. 5 and Takeaway 3).  This module
classifies an assignment of values to destinations into one of those modes.
"""

from __future__ import annotations

import enum
from collections import Counter
from collections.abc import Hashable, Sequence


class DataflowMode(enum.Enum):
    """Delivery pattern required to distribute one operand vector."""

    UNICAST = "unicast"      # every destination receives a distinct value
    MULTICAST = "multicast"  # some values are shared by a strict subset
    BROADCAST = "broadcast"  # one value is shared by every destination
    IDLE = "idle"            # nothing to deliver


def classify_assignment(values: Sequence[Hashable]) -> DataflowMode:
    """Classify the dataflow needed to deliver ``values`` to their slots.

    ``values`` holds, per destination (e.g. per MAC unit in a row), the
    identity of the operand element that must arrive there.  ``None`` entries
    denote destinations that receive nothing.
    """
    live = [v for v in values if v is not None]
    if not live:
        return DataflowMode.IDLE
    counts = Counter(live)
    if len(counts) == 1 and len(live) == len(values) and len(values) > 1:
        return DataflowMode.BROADCAST
    if len(counts) == len(live):
        return DataflowMode.UNICAST
    return DataflowMode.MULTICAST


def column_dataflows(
    grid: Sequence[Sequence[Hashable]],
) -> list[DataflowMode]:
    """Classify the dataflow of every column of a destination grid.

    ``grid[r][c]`` is the operand element required at MAC (r, c).  Returns the
    per-column classification, which is what the column-level HMF-NoC /
    CLB must support.
    """
    if not grid:
        return []
    num_cols = len(grid[0])
    modes = []
    for c in range(num_cols):
        modes.append(classify_assignment([row[c] for row in grid]))
    return modes


def row_dataflows(
    grid: Sequence[Sequence[Hashable]],
) -> list[DataflowMode]:
    """Classify the dataflow of every row of a destination grid."""
    return [classify_assignment(list(row)) for row in grid]


def unique_fetches(values: Sequence[Hashable]) -> int:
    """Number of distinct operand elements that must be fetched from memory."""
    return len({v for v in values if v is not None})

"""Energy model for the distribution networks.

The paper reports (Section 4.1.2) that the HMF-NoC consumes roughly 2.5x less
on-chip-memory access energy than HM-NoC because the feedback path lets data
already resident in the array be forwarded between MAC units instead of being
re-read from the global buffers.  This module turns the route statistics
produced by :mod:`repro.noc.hierarchical` into energy numbers using the SRAM
and switch costs from :mod:`repro.hw`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.components import DEFAULT_LIBRARY, ComponentLibrary
from repro.hw.sram import SRAMMacro
from repro.noc.hierarchical import RouteResult


@dataclass
class NoCEnergyBreakdown:
    """Energy consumed by one distribution step, split by source."""

    buffer_read_j: float
    switch_j: float
    feedback_j: float

    @property
    def total_j(self) -> float:
        return self.buffer_read_j + self.switch_j + self.feedback_j


class NoCEnergyModel:
    """Converts route statistics into energy using the hardware library."""

    #: Energy of one switch traversal / one feedback forward, in joules.
    SWITCH_TRAVERSAL_J = 0.9e-12
    FEEDBACK_FORWARD_J = 0.35e-12

    def __init__(
        self,
        buffer: SRAMMacro | None = None,
        word_bits: int = 16,
        library: ComponentLibrary = DEFAULT_LIBRARY,
    ) -> None:
        self.buffer = buffer or SRAMMacro("global-buffer", capacity_bytes=2 << 20)
        self.word_bits = word_bits
        self.library = library

    def route_energy(self, result: RouteResult) -> NoCEnergyBreakdown:
        """Energy of a single distribution step."""
        buffer_j = self.buffer.access_energy_j(result.buffer_reads * self.word_bits)
        switch_j = result.switch_traversals * self.SWITCH_TRAVERSAL_J
        feedback_j = result.feedback_forwards * self.FEEDBACK_FORWARD_J
        return NoCEnergyBreakdown(
            buffer_read_j=buffer_j, switch_j=switch_j, feedback_j=feedback_j
        )

    def sequence_energy(self, results: list[RouteResult]) -> NoCEnergyBreakdown:
        """Total energy over a sequence of distribution steps."""
        total = NoCEnergyBreakdown(0.0, 0.0, 0.0)
        for result in results:
            step = self.route_energy(result)
            total = NoCEnergyBreakdown(
                buffer_read_j=total.buffer_read_j + step.buffer_read_j,
                switch_j=total.switch_j + step.switch_j,
                feedback_j=total.feedback_j + step.feedback_j,
            )
        return total

    def memory_access_energy_ratio(
        self, baseline: list[RouteResult], ours: list[RouteResult]
    ) -> float:
        """On-chip-memory access energy of ``baseline`` over ``ours``.

        This is the quantity the paper reports as ~2.5x in favour of HMF-NoC.
        """
        base = self.sequence_energy(baseline).buffer_read_j
        flex = self.sequence_energy(ours).buffer_read_j
        if flex == 0:
            raise ZeroDivisionError("our network performed no buffer reads")
        return base / flex

"""Network-on-chip substrate.

Implements the interconnect structures compared in the paper:

* 2x2 and 3x3 switching nodes (``repro.noc.switch``);
* the hierarchical mesh NoC of Eyeriss v2 (HM-NoC) and FlexNeRFer's extended
  hierarchical mesh with feedback (HMF-NoC) (``repro.noc.hierarchical``);
* the 1D mesh used for unicast operand delivery (``repro.noc.mesh``);
* the Benes permutation network used by the SIGMA baseline
  (``repro.noc.benes``);
* dataflow classification (unicast / multicast / broadcast) of an operand
  assignment (``repro.noc.dataflow``);
* an energy model for comparing distribution networks
  (``repro.noc.energy``).
"""

from repro.noc.dataflow import DataflowMode, classify_assignment, column_dataflows
from repro.noc.switch import Switch2x2, Switch3x3, SwitchPort
from repro.noc.hierarchical import HMNoC, HMFNoC, RouteResult
from repro.noc.mesh import Mesh1D
from repro.noc.benes import BenesNetwork
from repro.noc.energy import NoCEnergyModel

__all__ = [
    "DataflowMode",
    "classify_assignment",
    "column_dataflows",
    "Switch2x2",
    "Switch3x3",
    "SwitchPort",
    "HMNoC",
    "HMFNoC",
    "RouteResult",
    "Mesh1D",
    "BenesNetwork",
    "NoCEnergyModel",
]

"""Loss-less encode/decode codecs for the sparsity formats.

These codecs implement the behaviour of FlexNeRFer's flexible format
encoder/decoder (paper Fig. 13(b) and Fig. 14).  Each codec converts a dense
integer tile into an :class:`EncodedTensor` carrying the value payload and the
format-specific metadata, and can reconstruct the dense tile exactly.

The bit-exact storage cost of an encoded tile is reported by
``EncodedTensor.storage_bits`` and matches the analytical model in
``repro.sparse.footprint`` (the tests cross-check the two).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sparse.formats import Precision, SparsityFormat, index_bits


@dataclass
class EncodedTensor:
    """A tile encoded in one of the supported sparsity formats.

    Attributes:
        fmt: the storage format used.
        precision: operand precision of the value payload.
        shape: dense shape of the original tile.
        values: non-zero values (or all values for the dense format).
        metadata: format-specific index structures (row/col indices, pointers
            or a bitmap), keyed by name.
    """

    fmt: SparsityFormat
    precision: Precision
    shape: tuple[int, int]
    values: np.ndarray
    metadata: dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def nnz(self) -> int:
        """Number of explicitly stored non-zero values."""
        if self.fmt is SparsityFormat.NONE:
            return int(np.count_nonzero(self.values))
        return int(self.values.size)

    @property
    def storage_bits(self) -> int:
        """Exact number of bits needed to store this encoded tile."""
        rows, cols = self.shape
        value_bits = self.values.size * self.precision.bits
        if self.fmt is SparsityFormat.NONE:
            return rows * cols * self.precision.bits
        if self.fmt is SparsityFormat.COO:
            return value_bits + self.nnz * (index_bits(rows) + index_bits(cols))
        if self.fmt is SparsityFormat.CSR:
            ptr_bits = index_bits(rows * cols + 1)
            return value_bits + self.nnz * index_bits(cols) + (rows + 1) * ptr_bits
        if self.fmt is SparsityFormat.CSC:
            ptr_bits = index_bits(rows * cols + 1)
            return value_bits + self.nnz * index_bits(rows) + (cols + 1) * ptr_bits
        if self.fmt is SparsityFormat.BITMAP:
            return value_bits + rows * cols
        raise ValueError(f"unknown format {self.fmt}")


def _check_matrix(matrix: np.ndarray) -> np.ndarray:
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise ValueError(f"codecs operate on 2D tiles, got shape {matrix.shape}")
    return matrix


class DenseCodec:
    """The 'None' format: the tile is stored uncompressed."""

    fmt = SparsityFormat.NONE

    def encode(self, matrix: np.ndarray, precision: Precision) -> EncodedTensor:
        matrix = _check_matrix(matrix)
        return EncodedTensor(
            fmt=self.fmt,
            precision=precision,
            shape=matrix.shape,
            values=matrix.copy(),
        )

    def decode(self, encoded: EncodedTensor) -> np.ndarray:
        return encoded.values.copy()


class COOCodec:
    """Coordinate format: (row, col, value) triples."""

    fmt = SparsityFormat.COO

    def encode(self, matrix: np.ndarray, precision: Precision) -> EncodedTensor:
        matrix = _check_matrix(matrix)
        rows, cols = np.nonzero(matrix)
        return EncodedTensor(
            fmt=self.fmt,
            precision=precision,
            shape=matrix.shape,
            values=matrix[rows, cols].copy(),
            metadata={
                "row_indices": rows.astype(np.int32),
                "col_indices": cols.astype(np.int32),
            },
        )

    def decode(self, encoded: EncodedTensor) -> np.ndarray:
        out = np.zeros(encoded.shape, dtype=encoded.values.dtype)
        out[encoded.metadata["row_indices"], encoded.metadata["col_indices"]] = (
            encoded.values
        )
        return out


class CSRCodec:
    """Compressed sparse row: row pointers + column indices + values."""

    fmt = SparsityFormat.CSR

    def encode(self, matrix: np.ndarray, precision: Precision) -> EncodedTensor:
        matrix = _check_matrix(matrix)
        n_rows = matrix.shape[0]
        col_indices: list[np.ndarray] = []
        row_ptr = np.zeros(n_rows + 1, dtype=np.int64)
        values: list[np.ndarray] = []
        for r in range(n_rows):
            cols = np.nonzero(matrix[r])[0]
            col_indices.append(cols)
            values.append(matrix[r, cols])
            row_ptr[r + 1] = row_ptr[r] + cols.size
        return EncodedTensor(
            fmt=self.fmt,
            precision=precision,
            shape=matrix.shape,
            values=(
                np.concatenate(values) if values else np.empty(0, dtype=matrix.dtype)
            ),
            metadata={
                "col_indices": (
                    np.concatenate(col_indices).astype(np.int32)
                    if col_indices
                    else np.empty(0, dtype=np.int32)
                ),
                "row_ptr": row_ptr,
            },
        )

    def decode(self, encoded: EncodedTensor) -> np.ndarray:
        out = np.zeros(encoded.shape, dtype=encoded.values.dtype)
        row_ptr = encoded.metadata["row_ptr"]
        col_indices = encoded.metadata["col_indices"]
        for r in range(encoded.shape[0]):
            start, end = row_ptr[r], row_ptr[r + 1]
            out[r, col_indices[start:end]] = encoded.values[start:end]
        return out


class CSCCodec:
    """Compressed sparse column: column pointers + row indices + values."""

    fmt = SparsityFormat.CSC

    def encode(self, matrix: np.ndarray, precision: Precision) -> EncodedTensor:
        matrix = _check_matrix(matrix)
        encoded_t = CSRCodec().encode(matrix.T, precision)
        return EncodedTensor(
            fmt=self.fmt,
            precision=precision,
            shape=matrix.shape,
            values=encoded_t.values,
            metadata={
                "row_indices": encoded_t.metadata["col_indices"],
                "col_ptr": encoded_t.metadata["row_ptr"],
            },
        )

    def decode(self, encoded: EncodedTensor) -> np.ndarray:
        proxy = EncodedTensor(
            fmt=SparsityFormat.CSR,
            precision=encoded.precision,
            shape=(encoded.shape[1], encoded.shape[0]),
            values=encoded.values,
            metadata={
                "col_indices": encoded.metadata["row_indices"],
                "row_ptr": encoded.metadata["col_ptr"],
            },
        )
        return CSRCodec().decode(proxy).T


class BitmapCodec:
    """Bitmap format: one presence bit per element plus packed non-zero values."""

    fmt = SparsityFormat.BITMAP

    def encode(self, matrix: np.ndarray, precision: Precision) -> EncodedTensor:
        matrix = _check_matrix(matrix)
        bitmap = (matrix != 0).astype(np.uint8)
        return EncodedTensor(
            fmt=self.fmt,
            precision=precision,
            shape=matrix.shape,
            values=matrix[bitmap.astype(bool)].copy(),
            metadata={"bitmap": bitmap},
        )

    def decode(self, encoded: EncodedTensor) -> np.ndarray:
        out = np.zeros(encoded.shape, dtype=encoded.values.dtype)
        mask = encoded.metadata["bitmap"].astype(bool)
        out[mask] = encoded.values
        return out


_CODECS = {
    SparsityFormat.NONE: DenseCodec,
    SparsityFormat.COO: COOCodec,
    SparsityFormat.CSR: CSRCodec,
    SparsityFormat.CSC: CSCCodec,
    SparsityFormat.BITMAP: BitmapCodec,
}


def get_codec(fmt: SparsityFormat):
    """Return a codec instance for ``fmt``."""
    try:
        return _CODECS[fmt]()
    except KeyError as exc:
        raise ValueError(f"no codec registered for format {fmt}") from exc

"""Analytical memory-footprint model for the sparsity formats.

The model reproduces the analysis behind paper Fig. 7: for a square tile whose
edge depends on the precision mode (64 in 16-bit, 128 in 8-bit, 256 in 4-bit
mode) it computes the storage cost of each format as a function of the
sparsity ratio.  Lower precisions make the per-element payload cheaper while
the index metadata cost stays constant, which shifts the break-even sparsity
of the compressed formats to the right -- exactly the trend reported in the
paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sparse.formats import (
    Precision,
    SparsityFormat,
    index_bits,
    tile_shape_for_precision,
)


@dataclass(frozen=True)
class FootprintModel:
    """Footprint model for a tile of a given shape and precision."""

    rows: int
    cols: int
    precision: Precision

    @classmethod
    def for_precision(cls, precision: Precision) -> "FootprintModel":
        """Model for the native MAC-array tile of ``precision`` (Fig. 6(b))."""
        rows, cols = tile_shape_for_precision(precision)
        return cls(rows=rows, cols=cols, precision=precision)

    @property
    def num_elements(self) -> int:
        """Total number of elements in the tile."""
        return self.rows * self.cols

    def nnz_for_sparsity(self, sparsity_ratio: float) -> int:
        """Number of non-zeros for a sparsity ratio given in [0, 1]."""
        if not 0.0 <= sparsity_ratio <= 1.0:
            raise ValueError(f"sparsity ratio must be in [0, 1], got {sparsity_ratio}")
        return int(round(self.num_elements * (1.0 - sparsity_ratio)))

    def bits(self, fmt: SparsityFormat, sparsity_ratio: float) -> float:
        """Storage cost (bits) of the tile in ``fmt`` at ``sparsity_ratio``."""
        nnz = self.nnz_for_sparsity(sparsity_ratio)
        data_bits = self.precision.bits
        if fmt is SparsityFormat.NONE:
            return float(self.num_elements * data_bits)
        if fmt is SparsityFormat.COO:
            per_nz = data_bits + index_bits(self.rows) + index_bits(self.cols)
            return float(nnz * per_nz)
        if fmt is SparsityFormat.CSR:
            ptr_bits = index_bits(self.num_elements + 1)
            return float(
                nnz * (data_bits + index_bits(self.cols)) + (self.rows + 1) * ptr_bits
            )
        if fmt is SparsityFormat.CSC:
            ptr_bits = index_bits(self.num_elements + 1)
            return float(
                nnz * (data_bits + index_bits(self.rows)) + (self.cols + 1) * ptr_bits
            )
        if fmt is SparsityFormat.BITMAP:
            return float(self.num_elements + nnz * data_bits)
        raise ValueError(f"unknown format {fmt}")

    def ratio_over_none(self, fmt: SparsityFormat, sparsity_ratio: float) -> float:
        """Footprint of ``fmt`` normalised to the uncompressed layout."""
        return self.bits(fmt, sparsity_ratio) / self.bits(
            SparsityFormat.NONE, sparsity_ratio
        )

    def sweep(
        self, fmt: SparsityFormat, sparsity_ratios: list[float]
    ) -> list[float]:
        """Normalised footprint of ``fmt`` across a list of sparsity ratios."""
        return [self.ratio_over_none(fmt, s) for s in sparsity_ratios]


def footprint_bits(
    fmt: SparsityFormat,
    sparsity_ratio: float,
    precision: Precision,
    shape: tuple[int, int] | None = None,
) -> float:
    """Convenience wrapper returning storage bits for a tile.

    When ``shape`` is omitted the native MAC-array tile for ``precision`` is
    used, matching the setup of paper Fig. 7.
    """
    if shape is None:
        model = FootprintModel.for_precision(precision)
    else:
        model = FootprintModel(rows=shape[0], cols=shape[1], precision=precision)
    return model.bits(fmt, sparsity_ratio)


def footprint_ratio(
    fmt: SparsityFormat,
    sparsity_ratio: float,
    precision: Precision,
    shape: tuple[int, int] | None = None,
) -> float:
    """Footprint of ``fmt`` normalised to the dense layout for the same tile."""
    dense = footprint_bits(SparsityFormat.NONE, sparsity_ratio, precision, shape)
    return footprint_bits(fmt, sparsity_ratio, precision, shape) / dense

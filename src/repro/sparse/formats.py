"""Precision modes and sparsity-format identifiers.

FlexNeRFer supports three integer precisions (INT4, INT8, INT16) on a
bit-scalable MAC array and four storage formats for sparse operands
(uncompressed, COO, CSR/CSC and Bitmap).  The tile dimensions that a single
data fetch covers grow as the precision shrinks (paper Fig. 6(b)): a 64x64
tile in 16-bit mode becomes 128x128 in 8-bit mode and 256x256 in 4-bit mode,
because halving the precision quadruples the number of usable multipliers.
"""

from __future__ import annotations

import enum
import math


class Precision(enum.IntEnum):
    """Operand bit-width supported by the bit-scalable MAC array."""

    INT4 = 4
    INT8 = 8
    INT16 = 16

    @property
    def bits(self) -> int:
        """Number of bits used to store one element at this precision."""
        return int(self.value)

    @property
    def max_value(self) -> int:
        """Largest representable signed value."""
        return 2 ** (self.bits - 1) - 1

    @property
    def min_value(self) -> int:
        """Smallest representable signed value."""
        return -(2 ** (self.bits - 1))

    @classmethod
    def from_bits(cls, bits: int) -> "Precision":
        """Return the precision enum for a bit-width (4, 8 or 16)."""
        try:
            return cls(bits)
        except ValueError as exc:
            raise ValueError(
                f"unsupported precision {bits}-bit; FlexNeRFer supports 4, 8 and 16"
            ) from exc


class SparsityFormat(enum.Enum):
    """Storage format for a (possibly sparse) operand tile."""

    NONE = "none"
    COO = "coo"
    CSR = "csr"
    CSC = "csc"
    BITMAP = "bitmap"

    @property
    def is_compressed(self) -> bool:
        """True for every format except the raw dense layout."""
        return self is not SparsityFormat.NONE


#: Base tile edge (elements) in 16-bit mode; the paper uses a 64x64 MAC array.
BASE_TILE_EDGE_INT16 = 64


def tile_shape_for_precision(
    precision: Precision, base_edge: int = BASE_TILE_EDGE_INT16
) -> tuple[int, int]:
    """Return the square tile shape mapped per fetch at ``precision``.

    Halving the precision doubles the tile edge (paper Fig. 6(b)): the number
    of effective multiplier lanes quadruples, arranged as a 2x larger square.
    """
    scale = Precision.INT16.bits // precision.bits
    edge = base_edge * scale
    return (edge, edge)


def index_bits(dim: int) -> int:
    """Number of bits needed to index a dimension of size ``dim``."""
    if dim <= 0:
        raise ValueError(f"dimension must be positive, got {dim}")
    if dim == 1:
        return 1
    return int(math.ceil(math.log2(dim)))

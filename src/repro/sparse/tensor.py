"""Sparse tensor wrapper and random sparse-matrix generation helpers."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sparse.codecs import EncodedTensor, get_codec
from repro.sparse.formats import Precision, SparsityFormat
from repro.sparse.selector import FormatSelector


def sparsity_ratio(matrix: np.ndarray) -> float:
    """Fraction of zero elements in ``matrix`` (0.0 = dense, 1.0 = all zero)."""
    matrix = np.asarray(matrix)
    if matrix.size == 0:
        return 0.0
    return 1.0 - np.count_nonzero(matrix) / matrix.size


def random_sparse_matrix(
    shape: tuple[int, int],
    sparsity: float,
    precision: Precision = Precision.INT16,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Generate an integer matrix with an exact target sparsity ratio.

    The number of zeros is ``round(sparsity * size)``; non-zero values are
    drawn uniformly from the representable non-zero range of ``precision``.
    """
    if not 0.0 <= sparsity <= 1.0:
        raise ValueError(f"sparsity must be in [0, 1], got {sparsity}")
    rng = rng or np.random.default_rng()
    rows, cols = shape
    size = rows * cols
    n_zero = int(round(sparsity * size))
    n_nonzero = size - n_zero
    flat = np.zeros(size, dtype=np.int32)
    if n_nonzero > 0:
        values = rng.integers(1, precision.max_value + 1, size=n_nonzero)
        signs = rng.choice([-1, 1], size=n_nonzero)
        positions = rng.choice(size, size=n_nonzero, replace=False)
        flat[positions] = values * signs
    return flat.reshape(rows, cols)


@dataclass
class SparseTensor:
    """A dense integer tile together with its precision and sparsity metadata.

    This is the unit of data that flows between FlexNeRFer's buffers, the
    flexible format encoder/decoder and the MAC array.
    """

    data: np.ndarray
    precision: Precision = Precision.INT16

    def __post_init__(self) -> None:
        self.data = np.asarray(self.data)
        if self.data.ndim != 2:
            raise ValueError(f"SparseTensor expects a 2D tile, got {self.data.shape}")

    @property
    def shape(self) -> tuple[int, int]:
        return self.data.shape

    @property
    def nnz(self) -> int:
        return int(np.count_nonzero(self.data))

    @property
    def sparsity(self) -> float:
        return sparsity_ratio(self.data)

    def encode(self, fmt: SparsityFormat | None = None) -> EncodedTensor:
        """Encode into ``fmt``, or into the optimal format when omitted."""
        if fmt is None:
            fmt = FormatSelector(shape=self.shape).decide(
                self.sparsity, self.precision
            ).fmt
        return get_codec(fmt).encode(self.data, self.precision)

    @classmethod
    def decode(cls, encoded: EncodedTensor) -> "SparseTensor":
        """Reconstruct a SparseTensor from an encoded tile."""
        return cls(data=get_codec(encoded.fmt).decode(encoded), precision=encoded.precision)

    @classmethod
    def random(
        cls,
        shape: tuple[int, int],
        sparsity: float,
        precision: Precision = Precision.INT16,
        rng: np.random.Generator | None = None,
    ) -> "SparseTensor":
        """Random tile with a target sparsity ratio."""
        return cls(
            data=random_sparse_matrix(shape, sparsity, precision, rng),
            precision=precision,
        )

"""Sparse tensor formats, footprint modelling and format selection.

This package implements the storage substrate used by FlexNeRFer's online
sparsity-aware data compression (paper Section 3.2.3 and 4.3):

* dense ("None"), COO, CSR, CSC and Bitmap encodings with loss-less
  encode/decode round trips (``repro.sparse.codecs``);
* an analytical memory-footprint model for every format at every supported
  precision (``repro.sparse.footprint``);
* the optimal-format selector that picks the format minimising memory
  footprint for a given sparsity ratio and precision mode
  (``repro.sparse.selector``);
* helpers for generating random sparse tensors with a target sparsity ratio
  (``repro.sparse.tensor``).
"""

from repro.sparse.formats import Precision, SparsityFormat, tile_shape_for_precision
from repro.sparse.codecs import (
    BitmapCodec,
    COOCodec,
    CSCCodec,
    CSRCodec,
    DenseCodec,
    EncodedTensor,
    get_codec,
)
from repro.sparse.footprint import FootprintModel, footprint_bits, footprint_ratio
from repro.sparse.selector import FormatSelector, optimal_format
from repro.sparse.tensor import SparseTensor, random_sparse_matrix, sparsity_ratio

__all__ = [
    "Precision",
    "SparsityFormat",
    "tile_shape_for_precision",
    "DenseCodec",
    "COOCodec",
    "CSRCodec",
    "CSCCodec",
    "BitmapCodec",
    "EncodedTensor",
    "get_codec",
    "FootprintModel",
    "footprint_bits",
    "footprint_ratio",
    "FormatSelector",
    "optimal_format",
    "SparseTensor",
    "random_sparse_matrix",
    "sparsity_ratio",
]

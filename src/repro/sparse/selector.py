"""Optimal sparsity-format selection (paper Fig. 8 and Section 4.3).

FlexNeRFer's flexible format encoder picks, for every tile, the storage format
that minimises memory footprint given the measured sparsity ratio and the
active precision mode.  Weights are pre-analysed offline; inputs are analysed
online by the sparsity-ratio calculator (``repro.core.compression``), which
then calls into this selector.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sparse.footprint import FootprintModel
from repro.sparse.formats import Precision, SparsityFormat

#: Formats considered by the flexible format encoder.  CSR and CSC share one
#: compression mechanism (paper footnote 1); the selector reports CSR and the
#: hardware picks row- or column-major depending on the operand's role.
CANDIDATE_FORMATS = (
    SparsityFormat.NONE,
    SparsityFormat.COO,
    SparsityFormat.CSR,
    SparsityFormat.BITMAP,
)


@dataclass(frozen=True)
class FormatDecision:
    """Outcome of a format-selection query."""

    fmt: SparsityFormat
    sparsity_ratio: float
    precision: Precision
    bits: float
    bits_per_format: dict[SparsityFormat, float]

    @property
    def savings_over_none(self) -> float:
        """Fraction of storage saved relative to the uncompressed layout."""
        dense = self.bits_per_format[SparsityFormat.NONE]
        return 1.0 - self.bits / dense


class FormatSelector:
    """Selects the footprint-minimising format for a tile."""

    def __init__(
        self,
        candidates: tuple[SparsityFormat, ...] = CANDIDATE_FORMATS,
        shape: tuple[int, int] | None = None,
    ) -> None:
        self._candidates = candidates
        self._shape = shape

    def _model(self, precision: Precision) -> FootprintModel:
        if self._shape is None:
            return FootprintModel.for_precision(precision)
        return FootprintModel(
            rows=self._shape[0], cols=self._shape[1], precision=precision
        )

    def decide(self, sparsity_ratio: float, precision: Precision) -> FormatDecision:
        """Return the best format and the per-format footprint breakdown."""
        model = self._model(precision)
        bits_per_format = {
            fmt: model.bits(fmt, sparsity_ratio) for fmt in self._candidates
        }
        best_fmt = min(bits_per_format, key=bits_per_format.get)
        return FormatDecision(
            fmt=best_fmt,
            sparsity_ratio=sparsity_ratio,
            precision=precision,
            bits=bits_per_format[best_fmt],
            bits_per_format=bits_per_format,
        )

    def sweep(
        self, sparsity_ratios: list[float], precision: Precision
    ) -> list[FormatDecision]:
        """Decisions across a sweep of sparsity ratios (one Fig. 8 row)."""
        return [self.decide(s, precision) for s in sparsity_ratios]


def optimal_format(
    sparsity_ratio: float,
    precision: Precision,
    shape: tuple[int, int] | None = None,
) -> SparsityFormat:
    """Return the footprint-minimising format for a tile."""
    return FormatSelector(shape=shape).decide(sparsity_ratio, precision).fmt

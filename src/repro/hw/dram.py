"""Off-chip DRAM specifications and energy model.

FlexNeRFer attaches 8 GB of LPDDR3-1600 (paper Fig. 14); the GPU baselines use
GDDR6 and the edge GPUs use LPDDR4 (paper Table 1).  The energy-per-bit
constants follow widely used published estimates for each interface class.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DRAMSpec:
    """Bandwidth / energy characteristics of an off-chip memory interface."""

    name: str
    bandwidth_gbps: float          # GB/s of peak sequential bandwidth
    energy_per_bit_pj: float       # access energy per bit (interface + array)
    capacity_gb: float = 8.0
    background_power_w: float = 0.15

    @property
    def bandwidth_bytes_per_s(self) -> float:
        return self.bandwidth_gbps * 1e9

    def transfer_time_s(self, num_bytes: float) -> float:
        """Time to transfer ``num_bytes`` at peak bandwidth."""
        if num_bytes < 0:
            raise ValueError("byte count must be non-negative")
        return num_bytes / self.bandwidth_bytes_per_s

    def transfer_energy_j(self, num_bytes: float) -> float:
        """Energy to transfer ``num_bytes``."""
        if num_bytes < 0:
            raise ValueError("byte count must be non-negative")
        return num_bytes * 8.0 * self.energy_per_bit_pj * 1e-12


#: FlexNeRFer / NeuRex local DRAM (paper Fig. 14): LPDDR3-1600, 12.8 GB/s.
LPDDR3 = DRAMSpec(name="LPDDR3-1600", bandwidth_gbps=12.8, energy_per_bit_pj=40.0)

#: Edge GPU memories (paper Table 1).
LPDDR4_NANO = DRAMSpec(name="LPDDR4 (Jetson Nano)", bandwidth_gbps=25.6, energy_per_bit_pj=32.0, capacity_gb=4.0)
LPDDR4_XAVIER = DRAMSpec(name="LPDDR4 (Xavier NX)", bandwidth_gbps=59.7, energy_per_bit_pj=32.0)

#: Desktop GPU memories (paper Table 1).
GDDR6_2080TI = DRAMSpec(name="GDDR6 (RTX 2080 Ti)", bandwidth_gbps=616.0, energy_per_bit_pj=16.0, capacity_gb=11.0)
GDDR6_4090 = DRAMSpec(name="GDDR6X (RTX 4090)", bandwidth_gbps=1150.0, energy_per_bit_pj=14.0, capacity_gb=24.0)

"""Area / power / energy report containers with named breakdowns."""

from __future__ import annotations

from dataclasses import dataclass, field


def _merge(a: dict[str, float], b: dict[str, float]) -> dict[str, float]:
    out = dict(a)
    for key, value in b.items():
        out[key] = out.get(key, 0.0) + value
    return out


@dataclass
class AreaReport:
    """Block-level area breakdown in mm^2."""

    breakdown: dict[str, float] = field(default_factory=dict)

    @property
    def total_mm2(self) -> float:
        return sum(self.breakdown.values())

    def add(self, name: str, area_mm2: float) -> "AreaReport":
        self.breakdown[name] = self.breakdown.get(name, 0.0) + area_mm2
        return self

    def merged(self, other: "AreaReport") -> "AreaReport":
        return AreaReport(breakdown=_merge(self.breakdown, other.breakdown))

    def scaled(self, factor: float) -> "AreaReport":
        return AreaReport(
            breakdown={k: v * factor for k, v in self.breakdown.items()}
        )

    def fraction(self, name: str) -> float:
        """Fraction of the total contributed by block ``name``."""
        return self.breakdown.get(name, 0.0) / self.total_mm2 if self.total_mm2 else 0.0


@dataclass
class PowerReport:
    """Block-level power breakdown in watts."""

    breakdown: dict[str, float] = field(default_factory=dict)

    @property
    def total_w(self) -> float:
        return sum(self.breakdown.values())

    def add(self, name: str, power_w: float) -> "PowerReport":
        self.breakdown[name] = self.breakdown.get(name, 0.0) + power_w
        return self

    def merged(self, other: "PowerReport") -> "PowerReport":
        return PowerReport(breakdown=_merge(self.breakdown, other.breakdown))

    def scaled(self, factor: float) -> "PowerReport":
        return PowerReport(
            breakdown={k: v * factor for k, v in self.breakdown.items()}
        )

    def fraction(self, name: str) -> float:
        return self.breakdown.get(name, 0.0) / self.total_w if self.total_w else 0.0


@dataclass
class EnergyReport:
    """Energy breakdown in joules (compute, on-chip memory, DRAM, NoC, ...)."""

    breakdown: dict[str, float] = field(default_factory=dict)

    @property
    def total_j(self) -> float:
        return sum(self.breakdown.values())

    def add(self, name: str, energy_j: float) -> "EnergyReport":
        self.breakdown[name] = self.breakdown.get(name, 0.0) + energy_j
        return self

    def merged(self, other: "EnergyReport") -> "EnergyReport":
        return EnergyReport(breakdown=_merge(self.breakdown, other.breakdown))

    def scaled(self, factor: float) -> "EnergyReport":
        return EnergyReport(
            breakdown={k: v * factor for k, v in self.breakdown.items()}
        )

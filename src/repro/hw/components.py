"""Component-level area/power library at the 28 nm / 800 MHz design point.

The primitive constants below are calibrated so that composed blocks match the
numbers the paper reports:

* a bit-scalable MAC unit with the *unoptimised* reduction tree (24 shifters)
  comes to ~6162 um^2 and ~3.42 mW, while FlexNeRFer's optimised unit
  (16 shared shifters, pipelined CLB datapath) comes to ~4417 um^2 and
  ~1.86 mW (paper Fig. 12(c));
* a 64x64 array of the optimised units plus the flexible NoC, array-level
  reduction tree and format encoder/decoder reaches ~28.6 mm^2 and
  ~5.5-6.9 W (paper Table 3).

Powers are *average switching* powers at full utilisation; blocks that are
idle in a given mode contribute a small leakage fraction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.tech import TECH_28NM, TechnologyNode


@dataclass(frozen=True)
class ComponentSpec:
    """Area and power of one hardware primitive instance."""

    name: str
    area_um2: float
    power_mw: float

    def times(self, count: float) -> "ComponentSpec":
        """Cost of ``count`` instances of this primitive."""
        return ComponentSpec(
            name=self.name,
            area_um2=self.area_um2 * count,
            power_mw=self.power_mw * count,
        )


class ComponentLibrary:
    """A named collection of primitive components for a technology node."""

    def __init__(self, tech: TechnologyNode, specs: dict[str, ComponentSpec]) -> None:
        self.tech = tech
        self._specs = dict(specs)

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def get(self, name: str) -> ComponentSpec:
        try:
            return self._specs[name]
        except KeyError as exc:
            raise KeyError(
                f"component '{name}' not in library "
                f"(known: {sorted(self._specs)})"
            ) from exc

    def area_um2(self, name: str, count: float = 1) -> float:
        return self.get(name).area_um2 * count

    def power_mw(self, name: str, count: float = 1) -> float:
        return self.get(name).power_mw * count

    def compose(self, name: str, counts: dict[str, float]) -> ComponentSpec:
        """Compose a block from primitive counts."""
        area = sum(self.get(k).area_um2 * v for k, v in counts.items())
        power = sum(self.get(k).power_mw * v for k, v in counts.items())
        return ComponentSpec(name=name, area_um2=area, power_mw=power)

    def names(self) -> list[str]:
        return sorted(self._specs)


#: Primitive constants at 28 nm / 800 MHz.  Units: um^2 and mW per instance.
_PRIMITIVES_28NM = {
    # 4-bit x 4-bit signed multiplier (the sub-multiplier of the bit-scalable
    # MAC unit; 16 of them form one MAC unit).
    "mult4x4": ComponentSpec("mult4x4", area_um2=118.0, power_mw=0.050),
    # 4-bit configurable left shifter used in the intra-unit reduction tree.
    "shifter4": ComponentSpec("shifter4", area_um2=52.0, power_mw=0.028),
    # Adder stages of the intra-unit reduction tree (widths 8..32 bits).
    "adder8": ComponentSpec("adder8", area_um2=36.0, power_mw=0.018),
    "adder16": ComponentSpec("adder16", area_um2=60.0, power_mw=0.024),
    "adder32": ComponentSpec("adder32", area_um2=110.0, power_mw=0.045),
    # Bypassable adder + index comparator node used for flexible reduction.
    "flex_adder_node": ComponentSpec("flex_adder_node", area_um2=90.0, power_mw=0.028),
    # Accumulator register (32-bit) with write-enable.
    "accum_reg32": ComponentSpec("accum_reg32", area_um2=92.0, power_mw=0.040),
    # Pipeline register on the CLB datapath (16-bit).
    "pipe_reg16": ComponentSpec("pipe_reg16", area_um2=44.0, power_mw=0.016),
    # NoC switches: 2x2 (HM-NoC baseline) and 3x3 (HMF-NoC with feedback).
    "switch2x2": ComponentSpec("switch2x2", area_um2=210.0, power_mw=0.085),
    "switch3x3": ComponentSpec("switch3x3", area_um2=295.0, power_mw=0.105),
    # Narrow (sub-word) 3x3 switch used inside the MAC-unit level HMF-NoC.
    "switch3x3_small": ComponentSpec("switch3x3_small", area_um2=98.0, power_mw=0.034),
    # 1D-mesh hop link (wire + repeater + small mux).
    "mesh_link": ComponentSpec("mesh_link", area_um2=70.0, power_mw=0.022),
    # Column-level bypass wired link (per 16-bit lane).
    "clb_link": ComponentSpec("clb_link", area_um2=22.0, power_mw=0.004),
    # Benes network switching node (SIGMA-style interconnect).
    "benes_node": ComponentSpec("benes_node", area_um2=180.0, power_mw=0.075),
    # Popcount unit over a 64-bit word (sparsity-ratio calculator).
    "popcount64": ComponentSpec("popcount64", area_um2=320.0, power_mw=0.12),
    # Brent-Kung adder used to accumulate popcounts.
    "brent_kung32": ComponentSpec("brent_kung32", area_um2=260.0, power_mw=0.10),
    # Flexible format encoder / decoder lane (per 16-bit element lane).
    "format_codec_lane": ComponentSpec("format_codec_lane", area_um2=2200.0, power_mw=0.50),
    # Positional-encoding processing unit (approximated trig, per lane).
    "pee_lane": ComponentSpec("pee_lane", area_um2=980.0, power_mw=0.31),
    # DesignWare-style exact trigonometric PE lane (baseline for Section 5.2.1).
    "pee_lane_designware": ComponentSpec(
        "pee_lane_designware", area_um2=8036.0, power_mw=3.97
    ),
    # Hash-encoding engine units (per lane): coalescing unit, subgrid unit,
    # trilinear interpolation unit.
    "hee_coalesce_unit": ComponentSpec("hee_coalesce_unit", area_um2=1450.0, power_mw=0.52),
    "hee_subgrid_unit": ComponentSpec("hee_subgrid_unit", area_um2=1240.0, power_mw=0.44),
    "hee_interp_unit": ComponentSpec("hee_interp_unit", area_um2=1680.0, power_mw=0.58),
    # RISC-V controller core + DMA engine (single instances).
    "riscv_core": ComponentSpec("riscv_core", area_um2=68000.0, power_mw=22.0),
    "dma_engine": ComponentSpec("dma_engine", area_um2=42000.0, power_mw=18.0),
    # INT16 MAC of a dense systolic array (NeuRex-style / TPU-style PE).
    "mac_int16_dense": ComponentSpec("mac_int16_dense", area_um2=980.0, power_mw=0.30),
}


DEFAULT_LIBRARY = ComponentLibrary(TECH_28NM, _PRIMITIVES_28NM)

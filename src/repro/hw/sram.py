"""CACTI-like SRAM macro model.

The paper uses a memory compiler for on-chip buffers (2 MB input, 2 MB output,
512 KB weight, 512 KB encoding buffers, 16 KB program memory) and CACTI for
NoC-related SRAM energy.  This module provides a first-order analytical model
with the usual CACTI scaling behaviour: area grows linearly with capacity
(plus peripheral overhead), access energy grows roughly with the square root
of capacity, and leakage scales with capacity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class SRAMMacro:
    """An on-chip SRAM buffer of ``capacity_bytes`` with ``width_bits`` ports."""

    name: str
    capacity_bytes: int
    width_bits: int = 128
    banks: int = 1

    # Calibration constants for a 28 nm memory compiler.
    AREA_PER_BYTE_UM2 = 0.62          # bit-cell + local periphery
    PERIPHERY_UM2_PER_BANK = 8200.0   # decoders, sense-amps, IO per bank
    ENERGY_PER_BIT_BASE_PJ = 0.018    # read energy per bit at 32 KB reference
    REFERENCE_CAPACITY = 32 * 1024
    LEAKAGE_MW_PER_MB = 1.9

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError("SRAM capacity must be positive")
        if self.width_bits <= 0 or self.banks <= 0:
            raise ValueError("SRAM width and bank count must be positive")

    @property
    def area_um2(self) -> float:
        """Macro area including per-bank peripheral overhead."""
        return (
            self.capacity_bytes * self.AREA_PER_BYTE_UM2
            + self.banks * self.PERIPHERY_UM2_PER_BANK
        )

    @property
    def area_mm2(self) -> float:
        return self.area_um2 / 1e6

    @property
    def energy_per_bit_pj(self) -> float:
        """Dynamic read/write energy per bit (CACTI-like sqrt scaling)."""
        bank_capacity = self.capacity_bytes / self.banks
        scale = math.sqrt(max(bank_capacity, 1.0) / self.REFERENCE_CAPACITY)
        return self.ENERGY_PER_BIT_BASE_PJ * scale

    def access_energy_j(self, bits: float) -> float:
        """Energy in joules to move ``bits`` through this macro."""
        return bits * self.energy_per_bit_pj * 1e-12

    @property
    def leakage_w(self) -> float:
        """Static power of the macro."""
        return self.LEAKAGE_MW_PER_MB * (self.capacity_bytes / (1 << 20)) * 1e-3

    def dynamic_power_w(self, utilisation: float, frequency_hz: float) -> float:
        """Average dynamic power when accessed ``utilisation`` of cycles."""
        if not 0.0 <= utilisation <= 1.0:
            raise ValueError("utilisation must be in [0, 1]")
        bits_per_second = utilisation * self.width_bits * frequency_hz
        return self.access_energy_j(bits_per_second)

    def power_w(self, utilisation: float, frequency_hz: float) -> float:
        """Total (dynamic + leakage) power."""
        return self.dynamic_power_w(utilisation, frequency_hz) + self.leakage_w

"""Technology node constants.

All component areas and powers in :mod:`repro.hw.components` are expressed at
the paper's implementation point (28 nm CMOS, 800 MHz, nominal voltage).  The
:class:`TechnologyNode` dataclass captures that point and provides first-order
scaling helpers so baselines specified at other nodes (e.g. the 12 nm RTX
2080 Ti) can be reasoned about consistently.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TechnologyNode:
    """A CMOS process/operating point used to express hardware costs."""

    name: str
    feature_nm: float
    frequency_hz: float
    voltage: float = 0.9

    @property
    def cycle_time_s(self) -> float:
        """Clock period in seconds."""
        return 1.0 / self.frequency_hz

    def area_scale_to(self, other: "TechnologyNode") -> float:
        """First-order area scaling factor from this node to ``other``.

        Area scales roughly with the square of the feature size ratio.
        """
        return (other.feature_nm / self.feature_nm) ** 2

    def dynamic_power_scale_to(self, other: "TechnologyNode") -> float:
        """First-order dynamic-power scaling factor (C*V^2*f) to ``other``."""
        cap_scale = other.feature_nm / self.feature_nm
        volt_scale = (other.voltage / self.voltage) ** 2
        freq_scale = other.frequency_hz / self.frequency_hz
        return cap_scale * volt_scale * freq_scale


#: The implementation point used by the paper for FlexNeRFer and all MAC-array
#: baselines (Table 3): commercial 28 nm CMOS at 800 MHz.
TECH_28NM = TechnologyNode(name="28nm", feature_nm=28.0, frequency_hz=800e6)

#: Process of the NVIDIA RTX 2080 Ti (Table 1), used by the GPU baseline.
TECH_12NM_GPU = TechnologyNode(
    name="12nm-gpu", feature_nm=12.0, frequency_hz=1.4e9, voltage=1.0
)

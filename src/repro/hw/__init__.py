"""Hardware cost models (28 nm) used throughout the evaluation.

The paper obtains area and power from Synopsys synthesis / place-and-route in
a 28 nm CMOS process at 800 MHz.  We substitute an analytical component-level
model calibrated against the block-level numbers the paper publishes (MAC unit
area/power in Fig. 12(c), array-level costs in Table 3 / Fig. 15, accelerator
level costs in Fig. 16/17).  The evaluation only ever consumes block-level
aggregates, so this substitution preserves every reported comparison.
"""

from repro.hw.tech import TechnologyNode, TECH_28NM
from repro.hw.components import ComponentLibrary, ComponentSpec, DEFAULT_LIBRARY
from repro.hw.sram import SRAMMacro
from repro.hw.dram import DRAMSpec, LPDDR3, LPDDR4_NANO, LPDDR4_XAVIER, GDDR6_2080TI, GDDR6_4090
from repro.hw.cost import AreaReport, PowerReport, EnergyReport

__all__ = [
    "TechnologyNode",
    "TECH_28NM",
    "ComponentLibrary",
    "ComponentSpec",
    "DEFAULT_LIBRARY",
    "SRAMMacro",
    "DRAMSpec",
    "LPDDR3",
    "LPDDR4_NANO",
    "LPDDR4_XAVIER",
    "GDDR6_2080TI",
    "GDDR6_4090",
    "AreaReport",
    "PowerReport",
    "EnergyReport",
]

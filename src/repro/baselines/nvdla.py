"""NVDLA-style MAC-utilisation model (paper Fig. 4).

NVDLA's convolution engine multiplies a vector of input channels against a
set of kernels each cycle: its MAC grid is organised as (atomic input
channels) x (atomic output kernels).  Utilisation therefore tracks how well
the layer's channel counts cover those atomics, and collapses for GEMM/GEMV
work that offers no channel parallelism.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class NVDLAModel:
    """Channel-parallel MAC utilisation model."""

    atomic_input_channels: int = 4
    atomic_output_kernels: int = 4

    @property
    def num_macs(self) -> int:
        return self.atomic_input_channels * self.atomic_output_kernels

    def conv_utilization(self, input_channels: int, output_channels: int) -> float:
        """Utilisation for a convolution layer with the given channel counts."""
        if input_channels < 1 or output_channels < 1:
            raise ValueError("channel counts must be positive")
        in_fill = min(input_channels, self.atomic_input_channels) / self.atomic_input_channels
        out_fill = (
            min(output_channels, self.atomic_output_kernels) / self.atomic_output_kernels
        )
        return in_fill * out_fill

    def gemm_utilization(
        self, m: int, n: int, k: int, density: float = 1.0
    ) -> float:
        """Utilisation for an irregular (possibly sparse) GEMM.

        Mapped as a 1x1 convolution over a single spatial position, the
        engine processes one output-kernel group at a time; an irregular N
        leaves a partially filled tail group, and with only that group in
        flight the rest of the MAC grid idles.  Zeros cannot be skipped by
        the dense scheduler, so sparsity does not change the utilisation
        (it only wastes the work already scheduled).
        """
        if min(m, n, k) < 1:
            raise ValueError("GEMM dimensions must be positive")
        if not 0.0 < density <= 1.0:
            raise ValueError("density must be in (0, 1]")
        in_fill = min(k, self.atomic_input_channels) / self.atomic_input_channels
        tail_outputs = n % self.atomic_output_kernels
        out_fill = (
            tail_outputs / self.atomic_output_kernels if tail_outputs else 1.0
        )
        return (in_fill * out_fill) / self.atomic_output_kernels

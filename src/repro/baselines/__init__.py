"""Baseline devices the paper compares against.

* :mod:`repro.baselines.gpu` -- roofline models of the NVIDIA RTX 2080 Ti and
  Jetson Xavier NX (Fig. 1, Fig. 3, Fig. 19, Fig. 20);
* :mod:`repro.baselines.neurex` -- the NeuRex NeRF accelerator (ISCA 2023),
  the state-of-the-art accelerator baseline (Fig. 16 - Fig. 19);
* :mod:`repro.baselines.arrays` -- the GEMM/GEMV compute-array baselines of
  Table 3: SIGMA, Bit Fusion and bit-scalable SIGMA;
* :mod:`repro.baselines.nvdla` / :mod:`repro.baselines.tpu` -- MAC-utilisation
  models of the two commercial accelerators analysed in Fig. 4.
"""

from repro.baselines.gpu import GPUModel, RTX_2080_TI, XAVIER_NX, JETSON_NANO, RTX_4090
from repro.baselines.neurex import NeuRex
from repro.baselines.arrays import (
    BitFusionArray,
    BitScalableSigmaArray,
    SigmaArray,
    TABLE3_BASELINES,
)
from repro.baselines.nvdla import NVDLAModel
from repro.baselines.tpu import TPUModel

__all__ = [
    "GPUModel",
    "RTX_2080_TI",
    "RTX_4090",
    "XAVIER_NX",
    "JETSON_NANO",
    "NeuRex",
    "SigmaArray",
    "BitFusionArray",
    "BitScalableSigmaArray",
    "TABLE3_BASELINES",
    "NVDLAModel",
    "TPUModel",
]

"""Roofline-style GPU model (RTX 2080 Ti, RTX 4090, Jetson Xavier NX / Nano).

The paper measures the seven NeRF models on an RTX 2080 Ti (Fig. 1 / Fig. 3)
and uses it as the reference for every speedup / energy-efficiency gain
(Fig. 19 / Fig. 20).  We substitute a roofline model: each operation runs at
the lesser of its compute-limited and bandwidth-limited rate, with a
GEMM-size-dependent efficiency factor that captures how poorly small, narrow
NeRF MLP layers utilise a large GPU.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.dram import (
    DRAMSpec,
    GDDR6_2080TI,
    GDDR6_4090,
    LPDDR4_NANO,
    LPDDR4_XAVIER,
)
from repro.core.accelerator import FrameReport
from repro.nerf.workload import EncodingOp, GEMMOp, MiscOp, OpCategory, Workload
from repro.sim.trace import ExecutionTrace, OpRecord


@dataclass(frozen=True)
class GPUSpec:
    """Published characteristics of a GPU device (paper Table 1)."""

    name: str
    peak_fp32_tflops: float
    area_mm2: float
    typical_power_w: float
    dram: DRAMSpec
    process_nm: float
    frequency_ghz: float

    @property
    def peak_flops(self) -> float:
        return self.peak_fp32_tflops * 1e12


RTX_2080_TI = GPUSpec(
    name="RTX 2080 Ti",
    peak_fp32_tflops=13.45,
    area_mm2=754.0,
    typical_power_w=250.0,
    dram=GDDR6_2080TI,
    process_nm=12.0,
    frequency_ghz=1.4,
)

RTX_4090 = GPUSpec(
    name="RTX 4090",
    peak_fp32_tflops=82.6,
    area_mm2=609.0,
    typical_power_w=350.0,
    dram=GDDR6_4090,
    process_nm=5.0,
    frequency_ghz=2.3,
)

JETSON_NANO = GPUSpec(
    name="Jetson Nano",
    peak_fp32_tflops=0.47,
    area_mm2=118.0,
    typical_power_w=10.0,
    dram=LPDDR4_NANO,
    process_nm=20.0,
    frequency_ghz=0.9,
)

XAVIER_NX = GPUSpec(
    name="Xavier NX",
    peak_fp32_tflops=1.69,
    area_mm2=350.0,
    typical_power_w=15.0,
    dram=LPDDR4_XAVIER,
    process_nm=12.0,
    frequency_ghz=1.1,
)


class GPUModel:
    """Roofline execution model for one GPU."""

    #: Best-case fraction of peak FLOPs achieved on large, regular GEMMs.
    #: NeRF inference kernels are small and launch-bound, so even the widest
    #: layers stay well below the GPU's peak (consistent with the measured
    #: frame times behind paper Fig. 1).
    MAX_GEMM_EFFICIENCY = 0.28
    #: Floor on GEMM efficiency for tiny, irregular layers.
    MIN_GEMM_EFFICIENCY = 0.05
    #: Dimension (elements) at which a GEMM dimension stops limiting efficiency.
    SATURATION_DIM = 512
    #: Compute efficiency of encoding kernels (gather / trig heavy).
    ENCODING_EFFICIENCY = 0.015
    #: Effective bandwidth fraction for scattered table lookups.
    GATHER_BANDWIDTH_FRACTION = 0.12
    #: Compute efficiency of miscellaneous kernels (sampling, compositing).
    MISC_EFFICIENCY = 0.18
    #: Bytes per element the GPU actually moves (FP32 activations / weights).
    BYTES_PER_ELEMENT = 4.0
    #: Fraction of the typical board power drawn while kernels idle on memory.
    IDLE_POWER_FRACTION = 0.35

    def __init__(self, spec: GPUSpec = RTX_2080_TI) -> None:
        self.spec = spec

    def _effective_power_w(self, efficiency: float) -> float:
        """Board power under a workload achieving ``efficiency`` of peak.

        Small launch-bound NeRF kernels never pull the full typical board
        power; power scales between an idle floor and the typical draw with
        the achieved compute efficiency.
        """
        idle = self.IDLE_POWER_FRACTION * self.spec.typical_power_w
        return idle + (self.spec.typical_power_w - idle) * min(
            efficiency / self.MAX_GEMM_EFFICIENCY, 1.0
        )

    # -- per-op timing ----------------------------------------------------------

    def gemm_efficiency(self, op: GEMMOp) -> float:
        """GEMM-size-dependent fraction of peak FLOPs achieved."""
        n_factor = min(1.0, op.n / self.SATURATION_DIM) ** 0.5
        k_factor = min(1.0, op.k / self.SATURATION_DIM) ** 0.5
        efficiency = self.MAX_GEMM_EFFICIENCY * n_factor * k_factor
        return max(self.MIN_GEMM_EFFICIENCY, efficiency)

    def _gemm_time(self, op: GEMMOp) -> tuple[float, float]:
        """(time, dram_bytes) for one GEMM.  GPUs gain nothing from sparsity."""
        compute_time = op.flops / (self.spec.peak_flops * self.gemm_efficiency(op))
        dram_bytes = (
            (op.m * op.k + op.k * op.n + op.m * op.n)
            * self.BYTES_PER_ELEMENT
            * op.count
        )
        memory_time = self.spec.dram.transfer_time_s(dram_bytes)
        return max(compute_time, memory_time), dram_bytes

    def _encoding_time(self, op: EncodingOp) -> tuple[float, float]:
        compute_time = op.flops / (self.spec.peak_flops * self.ENCODING_EFFICIENCY)
        dram_bytes = op.memory_bytes
        memory_time = self.spec.dram.transfer_time_s(dram_bytes) / self.GATHER_BANDWIDTH_FRACTION
        return max(compute_time, memory_time), dram_bytes

    def _misc_time(self, op: MiscOp) -> tuple[float, float]:
        compute_time = op.flops * op.count / (self.spec.peak_flops * self.MISC_EFFICIENCY)
        dram_bytes = op.memory_bytes * op.count
        memory_time = self.spec.dram.transfer_time_s(dram_bytes)
        return max(compute_time, memory_time), dram_bytes

    # -- frame execution ----------------------------------------------------------

    def render_frame(self, workload: Workload) -> FrameReport:
        """Estimate one frame's latency / energy on this GPU."""
        trace = ExecutionTrace(device=self.spec.name, model_name=workload.model_name)
        for op in workload.ops:
            if isinstance(op, GEMMOp):
                time_s, dram_bytes = self._gemm_time(op)
                category = OpCategory.GEMM
                power = self._effective_power_w(self.gemm_efficiency(op))
            elif isinstance(op, EncodingOp):
                time_s, dram_bytes = self._encoding_time(op)
                category = OpCategory.ENCODING
                power = self._effective_power_w(self.ENCODING_EFFICIENCY)
            elif isinstance(op, MiscOp):
                time_s, dram_bytes = self._misc_time(op)
                category = OpCategory.OTHER
                power = self._effective_power_w(self.MISC_EFFICIENCY)
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown op type {type(op)!r}")
            energy = power * time_s + self.spec.dram.transfer_energy_j(dram_bytes)
            trace.add(
                OpRecord(
                    name=op.name,
                    category=category,
                    time_s=time_s,
                    energy_j=energy,
                    compute_time_s=time_s,
                    dram_bytes=dram_bytes,
                )
            )
        return FrameReport(
            device=self.spec.name,
            model_name=workload.model_name,
            latency_s=trace.total_time_s,
            energy_j=trace.total_energy_j,
            trace=trace,
        )

"""GEMM/GEMV compute-array baselines of paper Table 3.

Three baselines are compared against FlexNeRFer's MAC array:

* **SIGMA** -- a sparse, irregular GEMM array with a Benes distribution
  network and a forwarding adder network; INT16 only (no bit-scalability).
* **Bit Fusion** -- a bit-scalable (INT4/8/16) MAC array without sparsity
  support and with the unoptimised shifter-based reduction tree.
* **Bit-scalable SIGMA** -- Bit Fusion's MAC array behind SIGMA's flexible
  NoC: both sparsity and bit-scalability, but a larger, more power-hungry
  interconnect whose port width limits INT4 throughput.

Area is composed from the same 28 nm component library used for FlexNeRFer;
power is taken from the published Table 3 values (the baselines' switching
activity is not otherwise reproducible).  Peak efficiency is peak TOPS over
power; effective efficiency applies the utilisation model on the
representative sparse irregular NeRF GEMM.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.mac_array import PNR_AREA_FACTOR, _representative_gemm
from repro.core.mac_unit import BitScalableMACUnit
from repro.hw.components import DEFAULT_LIBRARY, ComponentLibrary
from repro.hw.cost import AreaReport
from repro.nerf.workload import GEMMOp
from repro.noc.benes import BenesNetwork
from repro.sim.array_config import ArrayConfig, MappingFlexibility
from repro.sim.utilization import (
    dense_mapping_utilization,
    sparse_mapping_utilization,
)
from repro.sparse.formats import Precision


@dataclass
class ArraySpecRow:
    """One row of the Table 3 comparison."""

    name: str
    bit_flexible: bool
    supports_sparsity: bool
    precisions: tuple[Precision, ...]
    area_mm2: float
    power_w: dict[Precision, float]
    peak_tops: dict[Precision, float]
    peak_efficiency: dict[Precision, float]
    effective_efficiency: dict[Precision, float]
    num_multipliers: dict[Precision, int]


class _BaseArray:
    """Shared helpers for the Table 3 baseline arrays."""

    name = "base"
    rows = 64
    cols = 64
    frequency_hz = 800e6
    bit_flexible = False
    supports_sparsity = False
    mapping = MappingFlexibility.RIGID
    #: Published power per precision mode (Table 3).
    published_power_w: dict[Precision, float] = {}
    #: Fraction of peak throughput reachable per precision (interconnect
    #: bandwidth limits; 1.0 unless stated otherwise).
    peak_throughput_factor: dict[Precision, float] = {}

    def __init__(self, library: ComponentLibrary = DEFAULT_LIBRARY) -> None:
        self.library = library

    # -- structure ------------------------------------------------------------

    def supported_precisions(self) -> tuple[Precision, ...]:
        if self.bit_flexible:
            return (Precision.INT4, Precision.INT8, Precision.INT16)
        return (Precision.INT16,)

    def num_multipliers(self, precision: Precision) -> int:
        if not self.bit_flexible:
            return self.rows * self.cols
        lanes = BitScalableMACUnit.lanes(precision)
        return self.rows * self.cols * lanes

    def array_config(self) -> ArrayConfig:
        return ArrayConfig(
            name=self.name,
            rows=self.rows,
            cols=self.cols,
            frequency_hz=self.frequency_hz,
            base_precision=Precision.INT16,
            bit_scalable=self.bit_flexible,
            supports_sparsity=self.supports_sparsity,
            mapping=self.mapping,
        )

    # -- metrics ----------------------------------------------------------------

    def power_w(self, precision: Precision) -> float:
        return self.published_power_w[precision]

    def peak_tops(self, precision: Precision) -> float:
        factor = self.peak_throughput_factor.get(precision, 1.0)
        return (
            2.0 * self.num_multipliers(precision) * self.frequency_hz / 1e12 * factor
        )

    def peak_efficiency(self, precision: Precision) -> float:
        return self.peak_tops(precision) / self.power_w(precision)

    def effective_efficiency(
        self, precision: Precision, op: GEMMOp | None = None
    ) -> float:
        op = op or _representative_gemm(precision)
        config = self.array_config()
        if self.supports_sparsity and self.mapping is MappingFlexibility.FLEXIBLE:
            utilization = sparse_mapping_utilization(op, config)
        else:
            density = (1.0 - op.weight_sparsity) * (1.0 - op.activation_sparsity)
            utilization = dense_mapping_utilization(op, config) * density
        return self.peak_efficiency(precision) * utilization

    def area(self) -> AreaReport:  # pragma: no cover - overridden
        raise NotImplementedError

    def spec_row(self) -> ArraySpecRow:
        precisions = self.supported_precisions()
        return ArraySpecRow(
            name=self.name,
            bit_flexible=self.bit_flexible,
            supports_sparsity=self.supports_sparsity,
            precisions=precisions,
            area_mm2=self.area().total_mm2,
            power_w={p: self.power_w(p) for p in precisions},
            peak_tops={p: self.peak_tops(p) for p in precisions},
            peak_efficiency={p: self.peak_efficiency(p) for p in precisions},
            effective_efficiency={p: self.effective_efficiency(p) for p in precisions},
            num_multipliers={p: self.num_multipliers(p) for p in precisions},
        )


class SigmaArray(_BaseArray):
    """SIGMA: sparse irregular GEMM array, INT16 only."""

    name = "SIGMA"
    bit_flexible = False
    supports_sparsity = True
    mapping = MappingFlexibility.FLEXIBLE
    published_power_w = {Precision.INT16: 5.8}

    def area(self) -> AreaReport:
        lib = self.library
        num_pes = self.rows * self.cols
        benes = BenesNetwork(num_pes)
        report = AreaReport()
        report.add(
            "mac_units", num_pes * lib.area_um2("mac_int16_dense") / 1e6 * PNR_AREA_FACTOR
        )
        report.add(
            "benes_network",
            benes.num_switches * lib.area_um2("benes_node") / 1e6 * PNR_AREA_FACTOR,
        )
        report.add(
            "forwarding_adder_network",
            (num_pes - 1) * lib.area_um2("flex_adder_node") / 1e6 * PNR_AREA_FACTOR,
        )
        report.add(
            "local_registers",
            num_pes * 4 * lib.area_um2("accum_reg32") / 1e6 * PNR_AREA_FACTOR,
        )
        return report


class BitFusionArray(_BaseArray):
    """Bit Fusion: bit-scalable MAC array without sparsity support."""

    name = "Bit Fusion"
    bit_flexible = True
    supports_sparsity = False
    mapping = MappingFlexibility.RIGID
    published_power_w = {
        Precision.INT4: 5.8,
        Precision.INT8: 5.3,
        Precision.INT16: 4.8,
    }

    def area(self) -> AreaReport:
        num_units = self.rows * self.cols
        unit = BitScalableMACUnit(optimized_shifters=False, library=self.library)
        report = AreaReport()
        report.add(
            "mac_units", num_units * unit.cost().area_um2 / 1e6 * PNR_AREA_FACTOR
        )
        report.add(
            "broadcast_network",
            num_units * self.library.area_um2("mesh_link") / 1e6 * PNR_AREA_FACTOR,
        )
        report.add(
            "accumulators",
            num_units * 2 * self.library.area_um2("accum_reg32") / 1e6 * PNR_AREA_FACTOR,
        )
        return report


class BitScalableSigmaArray(_BaseArray):
    """Bit Fusion's MAC array behind SIGMA's flexible interconnect."""

    name = "Bit-Scalable SIGMA"
    bit_flexible = True
    supports_sparsity = True
    mapping = MappingFlexibility.FLEXIBLE
    published_power_w = {
        Precision.INT4: 9.3,
        Precision.INT8: 8.7,
        Precision.INT16: 8.2,
    }
    #: The Benes network's port width is provisioned for 16-bit operands, so
    #: in INT4 mode it can feed only half of the multiplier lanes per cycle
    #: (no column-level bypass links).
    peak_throughput_factor = {Precision.INT4: 0.5}

    def area(self) -> AreaReport:
        lib = self.library
        num_units = self.rows * self.cols
        unit = BitScalableMACUnit(optimized_shifters=False, library=lib)
        benes = BenesNetwork(num_units)
        report = AreaReport()
        report.add(
            "mac_units", num_units * unit.cost().area_um2 / 1e6 * PNR_AREA_FACTOR
        )
        report.add(
            "benes_network",
            benes.num_switches * lib.area_um2("benes_node") / 1e6 * PNR_AREA_FACTOR,
        )
        report.add(
            "forwarding_adder_network",
            (num_units - 1) * lib.area_um2("flex_adder_node") / 1e6 * PNR_AREA_FACTOR,
        )
        report.add(
            "local_registers",
            num_units * 4 * lib.area_um2("accum_reg32") / 1e6 * PNR_AREA_FACTOR,
        )
        return report


#: The baselines of Table 3 in paper order.
TABLE3_BASELINES = (SigmaArray, BitFusionArray, BitScalableSigmaArray)

"""NeuRex accelerator model (Lee et al., ISCA 2023) -- the SOTA NeRF baseline.

NeuRex accelerates Instant-NGP with a hash encoding engine and a dense INT16
MLP engine.  Compared with FlexNeRFer it lacks: bit-scalability, sparsity
support (so structured pruning does not help it, Fig. 19), a flexible NoC
(so irregular layers leave its systolic MAC array under-utilised), and
sparsity-aware data compression.  Published implementation cost: 22.8 mm^2
and 5.1 W in the same 28 nm node (paper Fig. 16 / Fig. 17).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.accelerator import FrameReport, MISC_THROUGHPUT_FRACTION
from repro.core.encoding_unit import HashEncodingEngine, PositionalEncodingEngine
from repro.hw.cost import AreaReport, PowerReport
from repro.hw.dram import DRAMSpec, LPDDR3
from repro.nerf.workload import EncodingOp, GEMMOp, MiscOp, OpCategory, Workload
from repro.sim.array_config import ArrayConfig, MappingFlexibility
from repro.sim.engine import GEMMCycleModel
from repro.sim.memory import MemoryTrafficModel
from repro.sim.trace import ExecutionTrace, OpRecord
from repro.sparse.formats import Precision

#: Published implementation cost of NeuRex at 28 nm.
NEUREX_AREA_MM2 = 22.8
NEUREX_POWER_W = 5.1


@dataclass(frozen=True)
class NeuRexConfig:
    """Configuration of the NeuRex model."""

    array_rows: int = 64
    array_cols: int = 64
    frequency_hz: float = 800e6
    dram: DRAMSpec = LPDDR3
    #: NeuRex's encoding engine is specialised for hash encoding; positional
    #: encodings fall back to a narrower general-purpose datapath.
    pee_lanes: int = 16
    hee_units: int = 64


class NeuRex:
    """Frame-level performance / cost model of NeuRex."""

    name = "NeuRex"

    def __init__(self, config: NeuRexConfig | None = None) -> None:
        self.config = config or NeuRexConfig()
        self.array_config = ArrayConfig(
            name="neurex-mlp-engine",
            rows=self.config.array_rows,
            cols=self.config.array_cols,
            frequency_hz=self.config.frequency_hz,
            base_precision=Precision.INT16,
            bit_scalable=False,
            supports_sparsity=False,
            mapping=MappingFlexibility.RIGID,
        )
        self.memory = MemoryTrafficModel(
            dram=self.config.dram, compression_enabled=False
        )
        self.cycle_model = GEMMCycleModel(self.array_config, memory=self.memory)
        self.hee = HashEncodingEngine(
            num_units=self.config.hee_units, frequency_hz=self.config.frequency_hz
        )
        self.pee = PositionalEncodingEngine(
            num_lanes=self.config.pee_lanes, frequency_hz=self.config.frequency_hz
        )

    # -- hardware cost -----------------------------------------------------------

    def area(self) -> AreaReport:
        """Published area, with an approximate block breakdown (Fig. 17(a))."""
        report = AreaReport()
        report.add("mlp_engine", NEUREX_AREA_MM2 * 0.52)
        report.add("hash_encoding_engine", NEUREX_AREA_MM2 * 0.18)
        report.add("buffers", NEUREX_AREA_MM2 * 0.22)
        report.add("control_and_io", NEUREX_AREA_MM2 * 0.08)
        return report

    def power(self, precision: Precision = Precision.INT16) -> PowerReport:
        """Published power (INT16 only), with an approximate breakdown."""
        report = PowerReport()
        report.add("mlp_engine", NEUREX_POWER_W * 0.58)
        report.add("hash_encoding_engine", NEUREX_POWER_W * 0.14)
        report.add("buffers", NEUREX_POWER_W * 0.18)
        report.add("control_and_io", NEUREX_POWER_W * 0.10)
        return report

    @property
    def peak_tops(self) -> float:
        return (
            2.0
            * self.config.array_rows
            * self.config.array_cols
            * self.config.frequency_hz
            / 1e12
        )

    # -- frame execution ------------------------------------------------------------

    def render_frame(
        self,
        workload: Workload,
        precision: Precision | None = None,
        pruning_ratio: float = 0.0,
    ) -> FrameReport:
        """Estimate one frame's latency / energy on NeuRex.

        NeuRex only computes at INT16 and cannot skip pruned weights or sparse
        activations, so ``precision`` and ``pruning_ratio`` do not change its
        latency -- exactly the flat behaviour of Fig. 19.
        """
        chip_power = self.power().total_w
        trace = ExecutionTrace(device=self.name, model_name=workload.model_name)
        for op in workload.ops:
            if isinstance(op, GEMMOp):
                trace.add(self._run_gemm(op, chip_power))
            elif isinstance(op, EncodingOp):
                trace.add(self._run_encoding(op, chip_power))
            elif isinstance(op, MiscOp):
                trace.add(self._run_misc(op, chip_power))
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown op type {type(op)!r}")
        return FrameReport(
            device=self.name,
            model_name=workload.model_name,
            latency_s=trace.total_time_s,
            energy_j=trace.total_energy_j,
            trace=trace,
            precision=Precision.INT16,
        )

    def _run_gemm(self, op: GEMMOp, chip_power_w: float) -> OpRecord:
        # NeuRex always computes densely at INT16.
        dense_op = op.with_precision(Precision.INT16)
        execution = self.cycle_model.execute(dense_op)
        dram_energy = self.memory.transfer_energy_j(execution.traffic)
        energy = chip_power_w * execution.compute_time_s + dram_energy
        energy += 0.25 * chip_power_w * execution.dram_time_s
        return OpRecord(
            name=op.name,
            category=OpCategory.GEMM,
            time_s=execution.total_time_s,
            energy_j=energy,
            compute_time_s=execution.compute_time_s,
            dram_time_s=execution.dram_time_s,
            dram_bytes=execution.traffic.total_bytes,
            utilization=execution.utilization,
        )

    def _run_encoding(self, op: EncodingOp, chip_power_w: float) -> OpRecord:
        engine = self.hee if op.kind == "hash" else self.pee
        timing = engine.timing(op)
        dram_bytes = op.dram_bytes
        dram_time = self.config.dram.transfer_time_s(dram_bytes)
        time_s = timing.time_s + dram_time
        energy = 0.3 * chip_power_w * time_s + self.config.dram.transfer_energy_j(
            dram_bytes
        )
        return OpRecord(
            name=op.name,
            category=OpCategory.ENCODING,
            time_s=time_s,
            energy_j=energy,
            compute_time_s=timing.time_s,
            dram_time_s=dram_time,
            dram_bytes=dram_bytes,
        )

    def _run_misc(self, op: MiscOp, chip_power_w: float) -> OpRecord:
        vector_throughput = self.peak_tops * 1e12 * MISC_THROUGHPUT_FRACTION
        time_s = op.flops * op.count / vector_throughput
        return OpRecord(
            name=op.name,
            category=OpCategory.OTHER,
            time_s=time_s,
            energy_j=0.4 * chip_power_w * time_s,
            compute_time_s=time_s,
        )

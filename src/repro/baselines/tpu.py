"""TPU-style (weight-stationary systolic array) MAC-utilisation model (Fig. 4).

A weight-stationary systolic array pins the weight tile onto its K x N grid
and streams activations through it.  Utilisation is limited by how well the
layer's K and N dimensions fill the grid, by how many activation rows (M)
stream through relative to the pipeline depth, and -- for sparse operands --
by the fraction of scheduled products that are actually non-zero (the array
cannot skip zeros).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TPUModel:
    """Weight-stationary systolic-array utilisation model."""

    rows: int = 4    # reduction (K) dimension of the grid
    cols: int = 4    # output (N) dimension of the grid

    @property
    def num_macs(self) -> int:
        return self.rows * self.cols

    def gemm_utilization(
        self, m: int, n: int, k: int, density: float = 1.0
    ) -> float:
        """Utilisation of a (possibly sparse) GEMM of shape (M, N, K)."""
        if min(m, n, k) < 1:
            raise ValueError("GEMM dimensions must be positive")
        if not 0.0 < density <= 1.0:
            raise ValueError("density must be in (0, 1]")
        k_fill = min(k, self.rows) / self.rows
        n_fill = min(n, self.cols) / self.cols
        m_fill = min(m, self.rows) / self.rows
        return k_fill * n_fill * m_fill * density

    def conv_utilization(
        self,
        input_channels: int,
        output_channels: int,
        spatial_positions: int,
        density: float = 1.0,
    ) -> float:
        """Utilisation of a convolution lowered to GEMM (im2col).

        K is the input-channel (x kernel window) depth, N the output channels
        and M the number of output spatial positions streaming through.
        """
        return self.gemm_utilization(
            m=spatial_positions, n=output_channels, k=input_channels, density=density
        )

"""Ray generation and point sampling (paper Fig. 2, Step A).

Implements a simple pinhole camera model, per-pixel ray generation, and
stratified sampling of points along rays with the 5D representation used by
NeRF (x, y, z plus the azimuthal and polar viewing angles).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Camera:
    """A pinhole camera looking along -z of its own frame."""

    width: int
    height: int
    focal: float
    origin: tuple[float, float, float] = (0.0, 0.0, 4.0)

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError("image dimensions must be positive")
        if self.focal <= 0:
            raise ValueError("focal length must be positive")

    @property
    def num_pixels(self) -> int:
        return self.width * self.height


def generate_rays(camera: Camera) -> tuple[np.ndarray, np.ndarray]:
    """Generate one ray per pixel.

    Returns ``(origins, directions)`` with shape ``(H*W, 3)`` each; the
    directions are normalised.
    """
    ys, xs = np.meshgrid(
        np.arange(camera.height, dtype=np.float64),
        np.arange(camera.width, dtype=np.float64),
        indexing="ij",
    )
    dirs = np.stack(
        [
            (xs - camera.width * 0.5) / camera.focal,
            -(ys - camera.height * 0.5) / camera.focal,
            -np.ones_like(xs),
        ],
        axis=-1,
    ).reshape(-1, 3)
    dirs /= np.linalg.norm(dirs, axis=-1, keepdims=True)
    origins = np.broadcast_to(
        np.asarray(camera.origin, dtype=np.float64), dirs.shape
    ).copy()
    return origins, dirs


def sample_along_rays(
    origins: np.ndarray,
    directions: np.ndarray,
    num_samples: int,
    near: float = 2.0,
    far: float = 6.0,
    stratified: bool = True,
    rng: np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Sample ``num_samples`` points along each ray between ``near`` and ``far``.

    Returns ``(points, t_values)`` with shapes ``(R, S, 3)`` and ``(R, S)``.
    With ``stratified=True`` each sample is jittered within its bin, which is
    the scheme the vanilla NeRF uses during both training and rendering.
    """
    if num_samples < 1:
        raise ValueError("need at least one sample per ray")
    if far <= near:
        raise ValueError("far plane must lie beyond the near plane")
    origins = np.asarray(origins, dtype=np.float64)
    directions = np.asarray(directions, dtype=np.float64)
    if origins.shape != directions.shape or origins.ndim != 2 or origins.shape[1] != 3:
        raise ValueError("origins and directions must both have shape (R, 3)")
    num_rays = origins.shape[0]
    edges = np.linspace(near, far, num_samples + 1)
    lower, upper = edges[:-1], edges[1:]
    if stratified:
        rng = rng or np.random.default_rng()
        jitter = rng.random((num_rays, num_samples))
    else:
        jitter = np.full((num_rays, num_samples), 0.5)
    t_values = lower[None, :] + (upper - lower)[None, :] * jitter
    points = origins[:, None, :] + t_values[..., None] * directions[:, None, :]
    return points, t_values


def view_angles(directions: np.ndarray) -> np.ndarray:
    """Convert normalised view directions to (azimuth, polar) angle pairs."""
    directions = np.asarray(directions, dtype=np.float64)
    azimuth = np.arctan2(directions[..., 1], directions[..., 0])
    polar = np.arccos(np.clip(directions[..., 2], -1.0, 1.0))
    return np.stack([azimuth, polar], axis=-1)

"""Sinusoidal positional encoding (paper Eq. 1) and its hardware approximation.

FlexNeRFer's positional encoding engine replaces exact trigonometric units
with the piece-wise approximation of Eqs. (5)-(6), implementable with modulo
(bit-shift) arithmetic.  Both the exact and the approximated encodings are
provided so the encoding-engine tests can check that the approximation tracks
the exact values at the points the hardware evaluates.
"""

from __future__ import annotations

import numpy as np


def positional_encoding(
    values: np.ndarray, num_frequencies: int, include_input: bool = False
) -> np.ndarray:
    """Exact sinusoidal encoding gamma(v) of paper Eq. (1).

    ``values`` has shape ``(..., D)``; the result has shape
    ``(..., D * 2 * num_frequencies [+ D])`` with the layout
    ``[sin(2^0 pi v), cos(2^0 pi v), ..., cos(2^(N-1) pi v)]`` per input dim.
    """
    if num_frequencies < 1:
        raise ValueError("need at least one frequency band")
    values = np.asarray(values, dtype=np.float64)
    frequencies = 2.0 ** np.arange(num_frequencies) * np.pi
    scaled = values[..., None] * frequencies  # (..., D, N)
    encoded = np.concatenate([np.sin(scaled), np.cos(scaled)], axis=-1)
    encoded = encoded.reshape(*values.shape[:-1], -1)
    if include_input:
        encoded = np.concatenate([values, encoded], axis=-1)
    return encoded


def approx_sin_halfpi(values: np.ndarray) -> np.ndarray:
    """Hardware approximation of sin(pi*v/2) (paper Eq. 5).

    sin(2^-1 pi v) ~= (-1)^floor(v/2) * mod(v, 2) * mod(2 - v, 2)
    """
    values = np.asarray(values, dtype=np.float64)
    sign = np.where(np.floor(values / 2.0) % 2 == 0, 1.0, -1.0)
    return sign * np.mod(values, 2.0) * np.mod(2.0 - values, 2.0)


def approx_cos_halfpi(values: np.ndarray) -> np.ndarray:
    """Hardware approximation of cos(pi*v/2) (paper Eq. 6).

    cos(2^-1 pi v) ~= (-1)^floor(v/2) * mod(v + 1, 2) * mod(1 - v, 2)
    """
    values = np.asarray(values, dtype=np.float64)
    sign = np.where(np.floor(values / 2.0) % 2 == 0, 1.0, -1.0)
    return sign * np.mod(values + 1.0, 2.0) * np.mod(1.0 - values, 2.0)


def approx_positional_encoding(
    values: np.ndarray, num_frequencies: int, include_input: bool = False
) -> np.ndarray:
    """Positional encoding built from the approximated trigonometric units.

    The frequency scaling 2^k pi v = (pi/2) * (2^(k+1) v), so each band feeds
    the half-pi approximation with a shifted operand -- exactly what the PEE's
    arithmetic bit-shifters produce.
    """
    if num_frequencies < 1:
        raise ValueError("need at least one frequency band")
    values = np.asarray(values, dtype=np.float64)
    shifted = values[..., None] * (2.0 ** (np.arange(num_frequencies) + 1))
    encoded = np.concatenate(
        [approx_sin_halfpi(shifted), approx_cos_halfpi(shifted)], axis=-1
    )
    encoded = encoded.reshape(*values.shape[:-1], -1)
    if include_input:
        encoded = np.concatenate([values, encoded], axis=-1)
    return encoded


def encoding_output_dim(
    input_dim: int, num_frequencies: int, include_input: bool = False
) -> int:
    """Output dimensionality of the positional encoding."""
    dim = input_dim * 2 * num_frequencies
    if include_input:
        dim += input_dim
    return dim

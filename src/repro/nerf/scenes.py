"""Procedural synthetic scenes standing in for Synthetic-NeRF / NSVF scenes.

The paper evaluates on scenes from the Synthetic-NeRF dataset (e.g. Lego, Mic)
and the NSVF dataset (e.g. Palace).  The datasets themselves are not needed
for the hardware evaluation -- only their *statistics* are: how much of the
sampled space is occupied (which drives input sparsity after ray-marching /
empty-space skipping, Fig. 13(a)) and how geometrically complex the scene is
(which drives the number of effective samples per ray, Fig. 20(b)).

Each :class:`SyntheticScene` is a procedural density + color field made of
soft-edged spheres whose count and extent are tuned to match the occupancy
statistics the paper reports for the corresponding scene.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.device import canonical_digest

#: Upper bound on ``chunk_rows * num_primitives`` for the chunked distance
#: kernel: caps the per-chunk (rows, P) GEMM output at ~16 MB of float64 so
#: large query batches never materialize a full (N, P) distance matrix at
#: once (and never the (N, P, 3) broadcast cube the reference path builds).
_CHUNK_BUDGET = 1 << 21


@dataclass
class SyntheticScene:
    """A procedural radiance field with controllable occupancy / complexity."""

    name: str
    complexity: float           # relative geometric complexity (1.0 = Lego-like)
    target_occupancy: float     # fraction of sampled points inside geometry
    num_primitives: int
    seed: int = 0
    bounds: tuple[float, float] = (-1.0, 1.0)
    _centers: np.ndarray = field(init=False, repr=False)
    _radii: np.ndarray = field(init=False, repr=False)
    _colors: np.ndarray = field(init=False, repr=False)
    _center_sq: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 < self.target_occupancy < 1.0:
            raise ValueError("target occupancy must be in (0, 1)")
        if self.num_primitives < 1:
            raise ValueError("scene needs at least one primitive")
        rng = np.random.default_rng(self.seed)
        low, high = self.bounds
        extent = high - low
        self._centers = rng.uniform(low * 0.6, high * 0.6, size=(self.num_primitives, 3))
        # Choose radii so the union of spheres covers roughly the target
        # occupancy of the bounding volume (ignoring overlaps).
        volume = extent**3
        per_sphere = volume * self.target_occupancy / self.num_primitives
        radius = (3.0 * per_sphere / (4.0 * np.pi)) ** (1.0 / 3.0)
        self._radii = rng.uniform(0.8, 1.2, size=self.num_primitives) * radius
        self._colors = rng.uniform(0.2, 1.0, size=(self.num_primitives, 3))
        # ‖c‖² per center, hoisted out of every distance scan.
        self._center_sq = np.einsum("ij,ij->i", self._centers, self._centers)

    # -- field queries -------------------------------------------------------
    #
    # The batched kernels compute point-to-center distances via the squared
    # distance identity  ‖p - c‖² = ‖p‖² + ‖c‖² - 2·p·cᵀ  as one chunked
    # GEMM: a (rows, P) output block replaces the (N, P, 3) float64
    # broadcast cube the reference implementations materialize.  Distances
    # differ from the reference by float reassociation only (last-ulp,
    # bounded well below 1e-9 over the scene volume; pinned by
    # tests/nerf/test_scene_field_parity.py).

    def _scan_fields(
        self,
        flat: np.ndarray,
        want_density: bool = True,
        want_nearest: bool = True,
    ) -> tuple[np.ndarray | None, np.ndarray | None]:
        """Chunked distance scan over flat (N, 3) points.

        Returns ``(density, nearest)``; either is None when not requested.
        Both come from the same per-chunk distance block, so asking for
        both costs one GEMM, not two.
        """
        n = flat.shape[0]
        density = np.empty(n) if want_density else None
        nearest = np.empty(n, dtype=np.intp) if want_nearest else None
        centers_t = self._centers.T
        center_sq = self._center_sq
        chunk = max(1, _CHUNK_BUDGET // self.num_primitives)
        for lo in range(0, n, chunk):
            block = flat[lo : lo + chunk]
            sq = block @ centers_t  # (rows, P)
            sq *= -2.0
            sq += np.einsum("ij,ij->i", block, block)[:, None]
            sq += center_sq
            # Cancellation can leave tiny negative squared distances.
            np.maximum(sq, 0.0, out=sq)
            dists = np.sqrt(sq, out=sq)
            if want_nearest:
                nearest[lo : lo + chunk] = np.argmin(dists, axis=-1)
            if want_density:
                # Soft sphere: high density inside, decaying over a thin
                # shell (same expression as reference_density).
                inside = np.clip(
                    (self._radii - dists) / (0.1 * self._radii), 0.0, 1.0
                )
                density[lo : lo + chunk] = 30.0 * np.max(inside, axis=-1)
        return density, nearest

    def fields(
        self, points: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Fused single-pass ``(density, color, occupancy)`` at ``points``.

        One chunked distance scan feeds all three fields, so callers that
        need more than one (grid fitting, rendering) pay for one GEMM
        instead of three full broadcast passes.
        """
        points = np.asarray(points, dtype=np.float64)
        lead = points.shape[:-1]
        flat = np.ascontiguousarray(points.reshape(-1, 3))
        density, nearest = self._scan_fields(flat)
        density = density.reshape(lead)
        colors = self._colors[nearest].reshape(lead + (3,))
        return density, colors, density > 0.0

    def density(self, points: np.ndarray) -> np.ndarray:
        """Volume density at ``points`` of shape (..., 3)."""
        points = np.asarray(points, dtype=np.float64)
        lead = points.shape[:-1]
        flat = np.ascontiguousarray(points.reshape(-1, 3))
        density, _ = self._scan_fields(flat, want_nearest=False)
        return density.reshape(lead)

    def color(self, points: np.ndarray) -> np.ndarray:
        """Albedo color at ``points`` of shape (..., 3)."""
        points = np.asarray(points, dtype=np.float64)
        lead = points.shape[:-1]
        flat = np.ascontiguousarray(points.reshape(-1, 3))
        _, nearest = self._scan_fields(flat, want_density=False)
        return self._colors[nearest].reshape(lead + (3,))

    def occupancy(self, points: np.ndarray) -> np.ndarray:
        """Boolean mask of points that fall inside geometry."""
        return self.density(points) > 0.0

    # -- reference (seed) field implementations ------------------------------

    def reference_density(self, points: np.ndarray) -> np.ndarray:
        """Seed broadcast implementation of :meth:`density` (parity oracle)."""
        points = np.asarray(points, dtype=np.float64)
        dists = np.linalg.norm(
            points[..., None, :] - self._centers, axis=-1
        )  # (..., P)
        inside = np.clip((self._radii - dists) / (0.1 * self._radii), 0.0, 1.0)
        return 30.0 * np.max(inside, axis=-1)

    def reference_color(self, points: np.ndarray) -> np.ndarray:
        """Seed broadcast implementation of :meth:`color` (parity oracle)."""
        points = np.asarray(points, dtype=np.float64)
        dists = np.linalg.norm(points[..., None, :] - self._centers, axis=-1)
        nearest = np.argmin(dists, axis=-1)
        return self._colors[nearest]

    def reference_occupancy(self, points: np.ndarray) -> np.ndarray:
        """Seed implementation of :meth:`occupancy` (parity oracle)."""
        return self.reference_density(points) > 0.0

    def fingerprint(self) -> str:
        """Content hash of everything the scene's fields depend on.

        Keys the fitted-grid asset tier of the result store: two scenes
        with equal fingerprints produce bit-identical field queries, so a
        hash grid fitted to one serves the other.
        """
        return canonical_digest(
            {
                "name": self.name,
                "complexity": self.complexity,
                "target_occupancy": self.target_occupancy,
                "num_primitives": self.num_primitives,
                "seed": self.seed,
                "bounds": self.bounds,
            }
        )

    def measured_occupancy(
        self, num_samples: int = 20000, rng: np.random.Generator | None = None
    ) -> float:
        """Monte-Carlo estimate of the occupied fraction of the volume."""
        rng = rng or np.random.default_rng(self.seed + 1)
        low, high = self.bounds
        points = rng.uniform(low, high, size=(num_samples, 3))
        return float(np.mean(self.occupancy(points)))

    # -- statistics used by the workload models -------------------------------

    @property
    def ray_marching_sparsity(self) -> float:
        """Expected input sparsity after empty-space skipping.

        Samples landing in empty space contribute all-zero feature rows, so
        the input matrix sparsity equals one minus the occupancy along rays.
        """
        return 1.0 - self.target_occupancy

    @property
    def effective_samples_scale(self) -> float:
        """Relative number of samples surviving skipping (vs. a Lego-like scene)."""
        return 0.5 + 0.5 * self.complexity


#: Scene statistics approximating the scenes named in the paper.  The
#: occupancies are chosen so the ray-marching input sparsity matches
#: Fig. 13(a): ~69 % for Lego and ~88 % for Mic; Palace (NSVF) is the complex
#: scene of Fig. 20(b).
SCENE_LIBRARY: dict[str, SyntheticScene] = {}


def _register(scene: SyntheticScene) -> SyntheticScene:
    SCENE_LIBRARY[scene.name] = scene
    return scene


_register(SyntheticScene(name="lego", complexity=1.0, target_occupancy=0.307, num_primitives=48, seed=1))
_register(SyntheticScene(name="mic", complexity=0.6, target_occupancy=0.12, num_primitives=12, seed=2))
_register(SyntheticScene(name="chair", complexity=0.8, target_occupancy=0.22, num_primitives=24, seed=3))
_register(SyntheticScene(name="drums", complexity=0.9, target_occupancy=0.27, num_primitives=36, seed=4))
_register(SyntheticScene(name="palace", complexity=1.5, target_occupancy=0.45, num_primitives=96, seed=5))


def get_scene(name: str) -> SyntheticScene:
    """Look up a scene by name (case-insensitive)."""
    try:
        return SCENE_LIBRARY[name.lower()]
    except KeyError as exc:
        raise KeyError(
            f"unknown scene '{name}'; available: {sorted(SCENE_LIBRARY)}"
        ) from exc

"""Functional NeRF renderers.

Two renderers exercise the full pipeline of paper Fig. 2:

* :class:`VanillaNeRFRenderer` -- positional encoding + an 8x256 MLP with
  density and colour heads, matching the original NeRF architecture;
* :class:`InstantNGPRenderer` -- multi-resolution hash encoding + a tiny MLP,
  matching Instant-NGP.  Its hash tables can be *fitted* directly to a
  procedural scene (no training loop needed), which gives a deterministic
  FP32 reference image for the quantization study of paper Fig. 20(a).

Both renderers can record the sparsity of the matrices entering the MLP at
each stage, which backs the Fig. 13(a) experiment.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.core.device import canonical_digest
from repro.nerf.hashgrid import HashGrid, HashGridConfig
from repro.nerf.mlp import MLP
from repro.nerf.positional import positional_encoding
from repro.nerf.rays import Camera, generate_rays, sample_along_rays
from repro.nerf.scenes import SyntheticScene
from repro.nerf.volume import composite_rays
from repro.quant.outlier import outlier_quantize
from repro.quant.quantize import quantize
from repro.sparse.formats import Precision
from repro.sparse.tensor import sparsity_ratio

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.perf.store import GridAssetKey, ResultStore


def render_reference(
    scene: SyntheticScene,
    camera: Camera,
    num_samples: int = 64,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Oracle render of a synthetic scene (queries the scene fields directly)."""
    rng = rng or np.random.default_rng(0)
    origins, directions = generate_rays(camera)
    points, t_values = sample_along_rays(
        origins, directions, num_samples, stratified=False, rng=rng
    )
    densities, colors, _ = scene.fields(points)
    image = composite_rays(colors, densities, t_values)
    return image.reshape(camera.height, camera.width, 3)


@dataclass(frozen=True)
class RenderPlan:
    """The precision-independent half of an Instant-NGP render.

    Produced by :meth:`InstantNGPRenderer.prepare_render`: rays, depth
    samples, the occupancy mask and the FP32 feature matrix.  A plan is
    immutable and reusable -- :meth:`InstantNGPRenderer.render_prepared`
    consumes it once per quantization setting without re-running ray
    generation, occupancy or the hash-grid encode.
    """

    camera: Camera
    t_values: np.ndarray
    num_rays: int
    samples: int
    occupied: np.ndarray
    features: np.ndarray


@dataclass
class RenderStats:
    """Per-stage statistics recorded during a render."""

    stage_sparsity: dict[str, float] = field(default_factory=dict)
    num_rays: int = 0
    num_samples: int = 0
    skipped_samples: int = 0

    @property
    def skip_fraction(self) -> float:
        return self.skipped_samples / self.num_samples if self.num_samples else 0.0


class VanillaNeRFRenderer:
    """Positional encoding + 8x256 MLP renderer (vanilla NeRF)."""

    def __init__(
        self,
        num_frequencies_xyz: int = 10,
        num_frequencies_dir: int = 4,
        hidden_width: int = 256,
        num_hidden_layers: int = 8,
        rng: np.random.Generator | None = None,
    ) -> None:
        rng = rng or np.random.default_rng(0)
        self.num_frequencies_xyz = num_frequencies_xyz
        self.num_frequencies_dir = num_frequencies_dir
        xyz_dim = 3 * 2 * num_frequencies_xyz
        dir_dim = 3 * 2 * num_frequencies_dir
        trunk_widths = [xyz_dim] + [hidden_width] * num_hidden_layers
        self.trunk = MLP.build(trunk_widths, final_activation="relu", rng=rng)
        self.density_head = MLP.build([hidden_width, 1], final_activation="none", rng=rng)
        self.color_head = MLP.build(
            [hidden_width + dir_dim, hidden_width // 2, 3],
            final_activation="sigmoid",
            rng=rng,
        )
        self.stats = RenderStats()

    def query(self, points: np.ndarray, directions: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Return (densities, colors) for flattened points and per-point dirs."""
        encoded_xyz = positional_encoding(points, self.num_frequencies_xyz)
        encoded_dir = positional_encoding(directions, self.num_frequencies_dir)
        hidden = self.trunk.forward(encoded_xyz)
        densities = self.density_head.forward(hidden)[..., 0]
        colors = self.color_head.forward(
            np.concatenate([hidden, encoded_dir], axis=-1)
        )
        return densities, colors

    def render(
        self,
        camera: Camera,
        num_samples: int = 32,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Render an image with the current (untrained) network weights."""
        rng = rng or np.random.default_rng(0)
        origins, directions = generate_rays(camera)
        points, t_values = sample_along_rays(
            origins, directions, num_samples, stratified=False, rng=rng
        )
        num_rays, samples = points.shape[:2]
        flat_points = points.reshape(-1, 3)
        flat_dirs = np.repeat(directions, samples, axis=0)
        densities, colors = self.query(flat_points, flat_dirs)
        self.stats = RenderStats(num_rays=num_rays, num_samples=flat_points.shape[0])
        image = composite_rays(
            colors.reshape(num_rays, samples, 3),
            densities.reshape(num_rays, samples),
            t_values,
        )
        return image.reshape(camera.height, camera.width, 3)


class InstantNGPRenderer:
    """Hash-grid renderer whose tables are fitted directly to a scene.

    The grid stores 4 features per level: a density proxy and the RGB albedo
    sampled at the grid vertex.  Decoding sums the density proxies over levels
    and averages the colour channels, so no training is needed to produce a
    deterministic, scene-faithful FP32 reference image.  A small MLP is still
    instantiated (and used for the stage-sparsity measurements) because the
    hardware workload includes it.
    """

    def __init__(
        self,
        config: HashGridConfig | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        rng = rng or np.random.default_rng(0)
        self.config = config or HashGridConfig(
            num_levels=8, features_per_level=4, log2_table_size=15,
            base_resolution=16, max_resolution=128,
        )
        self.grid = HashGrid(self.config, rng=rng)
        self.mlp = MLP.build(
            [self.config.output_dim, 64, 64, 16], final_activation="relu", rng=rng
        )
        # Bias the first layer positively so its ReLU output is nearly dense,
        # matching the near-zero sparsity reported for 'Output ReLU1' in
        # Fig. 13(a).
        self.mlp.layers[0].bias += 1.5
        self.scene: SyntheticScene | None = None
        self.stats = RenderStats()

    # -- fitting -------------------------------------------------------------

    def asset_key(self, scene: SyntheticScene) -> "GridAssetKey":
        """Asset-tier store key of this grid config fitted to ``scene``."""
        from repro.perf.store import GridAssetKey

        return GridAssetKey(
            scene_fingerprint=scene.fingerprint(),
            grid_fingerprint=canonical_digest(dataclasses.asdict(self.config)),
        )

    def fit_to_scene(
        self, scene: SyntheticScene, store: "ResultStore | None" = None
    ) -> None:
        """Populate the hash tables from the scene's density / colour fields.

        With a ``store``, fitted tables are read from / written to the
        store's asset tier (keyed on scene fingerprint + grid config): a
        warm fit is a JSON load, not a field sweep, and reloads the exact
        IEEE-754 doubles the cold fit produced.
        """
        self.scene = scene
        if store is not None:
            key = self.asset_key(scene)
            payload = store.get_asset(key)
            tables = payload.get("tables") if payload else None
            if isinstance(tables, list) and len(tables) == self.config.num_levels:
                self.grid.tables = [
                    np.asarray(table, dtype=np.float64) for table in tables
                ]
                return
        low, high = scene.bounds
        for level in range(self.config.num_levels):
            resolution = self.config.resolution(level)
            table_size = self.grid.tables[level].shape[0]
            axis = np.linspace(0.0, 1.0, resolution + 1)
            gx, gy, gz = np.meshgrid(axis, axis, axis, indexing="ij")
            vertices01 = np.stack([gx, gy, gz], axis=-1).reshape(-1, 3)
            vertices_world = low + vertices01 * (high - low)
            # One fused field pass per level instead of separate density and
            # colour sweeps over the same vertices.
            raw_density, color, _ = scene.fields(vertices_world)
            density = raw_density / 30.0
            features = np.concatenate([density[:, None], color], axis=-1)
            corner_ids = np.stack(
                [
                    np.clip((vertices01[:, 0] * resolution), 0, resolution).astype(np.int64),
                    np.clip((vertices01[:, 1] * resolution), 0, resolution).astype(np.int64),
                    np.clip((vertices01[:, 2] * resolution), 0, resolution).astype(np.int64),
                ],
                axis=-1,
            )
            indices = self.grid._indices(corner_ids, level)
            table = np.zeros((table_size, self.config.features_per_level))
            counts = np.zeros(table_size)
            np.add.at(table, indices, features)
            np.add.at(counts, indices, 1.0)
            counts = np.maximum(counts, 1.0)
            self.grid.tables[level] = table / counts[:, None]
        if store is not None:
            store.put_asset(
                key, {"tables": [table.tolist() for table in self.grid.tables]}
            )

    # -- decoding ------------------------------------------------------------

    def _decode(self, features: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Decode per-point features into (density, color)."""
        per_level = features.reshape(features.shape[0], self.config.num_levels, -1)
        density = 30.0 * np.mean(per_level[:, :, 0], axis=-1)
        color = np.clip(np.mean(per_level[:, :, 1:4], axis=1), 0.0, 1.0)
        return density, color

    def _world_to_unit(self, points: np.ndarray) -> np.ndarray:
        low, high = (self.scene.bounds if self.scene else (-1.0, 1.0))
        return (points - low) / (high - low)

    def prepare_render(
        self,
        camera: Camera,
        num_samples: int = 48,
        rng: np.random.Generator | None = None,
    ) -> "RenderPlan":
        """Run the precision-independent half of :meth:`render` once.

        Ray generation, depth sampling, occupancy (empty-space skipping)
        and the FP32 hash-grid encode do not depend on the quantization
        knobs, so a study that renders the same view under several
        precisions (Fig. 20(a)) can prepare once and call
        :meth:`render_prepared` per setting.
        """
        if self.scene is None:
            raise RuntimeError("call fit_to_scene() before render()")
        rng = rng or np.random.default_rng(0)
        origins, directions = generate_rays(camera)
        # Sample only the depth range covered by the scene bounds so the
        # measured occupancy along rays matches the scene statistics.
        points, t_values = sample_along_rays(
            origins, directions, num_samples, stratified=False, rng=rng,
            near=3.0, far=5.0,
        )
        num_rays, samples = points.shape[:2]
        flat_points = points.reshape(-1, 3)

        # Empty-space skipping via the scene's occupancy: skipped samples
        # contribute all-zero feature rows (this drives the input sparsity
        # measured in Fig. 13(a)).
        occupied = self.scene.occupancy(flat_points)
        unit_points = np.clip(self._world_to_unit(flat_points), 0.0, 1.0)
        features = np.zeros((flat_points.shape[0], self.config.output_dim))
        if np.any(occupied):
            features[occupied] = self.grid.encode(unit_points[occupied])
        return RenderPlan(
            camera=camera,
            t_values=t_values,
            num_rays=num_rays,
            samples=samples,
            occupied=occupied,
            features=features,
        )

    def render_prepared(
        self,
        plan: "RenderPlan",
        precision: Precision | None = None,
        outlier_aware: bool = False,
        record_stats: bool = True,
    ) -> np.ndarray:
        """Finish a prepared render under the given quantization setting.

        The plan's FP32 feature matrix is never mutated (quantization
        produces a fresh array), so one plan serves any number of
        precision settings with bit-identical results to full renders.
        """
        occupied = plan.occupied
        features = plan.features
        if precision is not None:
            features = self._quantize_features(features, precision, outlier_aware)

        density, color = self._decode(features)
        density = np.where(occupied, density, 0.0)

        if record_stats:
            any_occupied = bool(np.any(occupied))
            hidden1 = self.mlp.layers[0].forward(features[occupied]) if any_occupied else np.zeros((0, 64))
            # Resume the stack from layer 1: layer 0's activation is
            # already in hand.
            hidden_out = self.mlp.forward(hidden1, start=1) if any_occupied else np.zeros((0, 16))
            self.stats = RenderStats(
                num_rays=plan.num_rays,
                num_samples=features.shape[0],
                skipped_samples=int(np.sum(~occupied)),
                stage_sparsity={
                    "input_ray_marching": sparsity_ratio(features),
                    "output_relu1": sparsity_ratio(hidden1),
                    "output": sparsity_ratio(hidden_out),
                },
            )

        image = composite_rays(
            color.reshape(plan.num_rays, plan.samples, 3),
            density.reshape(plan.num_rays, plan.samples),
            plan.t_values,
        )
        return image.reshape(plan.camera.height, plan.camera.width, 3)

    def render(
        self,
        camera: Camera,
        num_samples: int = 48,
        precision: Precision | None = None,
        outlier_aware: bool = False,
        record_stats: bool = True,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Render the fitted scene, optionally with quantized tables.

        ``precision=None`` renders in FP32.  With a precision, the hash-table
        features are quantized (plainly, or outlier-aware when
        ``outlier_aware=True``) before decoding, which is the quantization
        point the Fig. 20(a) study sweeps.  ``render`` is exactly
        :meth:`prepare_render` followed by :meth:`render_prepared`.
        """
        plan = self.prepare_render(camera, num_samples=num_samples, rng=rng)
        return self.render_prepared(
            plan,
            precision=precision,
            outlier_aware=outlier_aware,
            record_stats=record_stats,
        )

    @staticmethod
    def _quantize_features(
        features: np.ndarray, precision: Precision, outlier_aware: bool
    ) -> np.ndarray:
        if outlier_aware:
            return outlier_quantize(features, precision).dequantize()
        return quantize(features, precision).dequantize()

"""TensoRF workload descriptor (Chen et al., ECCV 2022).

TensoRF factorises the radiance field into vector-matrix (VM) components:
per sample it gathers plane/line features for every component, combines them
with a small GEMM, and decodes colour with a compact MLP.  Alpha-mask filtering
skips empty-space samples.
"""

from __future__ import annotations

from repro.nerf.models.base import FrameConfig, NeRFModel
from repro.nerf.workload import EncodingOp, GEMMOp, Workload


class TensoRF(NeRFModel):
    """Tensorial radiance fields (VM decomposition)."""

    name = "tensorf"
    encoding_kind = "hash"
    uses_empty_space_skipping = True

    nominal_samples = 440
    density_components = 16
    appearance_components = 48
    feature_dim = 27
    mlp_width = 128
    num_frequencies_dir = 2

    def samples_per_ray(self, config: FrameConfig) -> int:
        occupancy = config.scene.target_occupancy
        return max(16, int(round(self.nominal_samples * occupancy * 0.7)))

    def build_workload(self, config: FrameConfig | None = None) -> Workload:
        config = config or FrameConfig()
        num_samples = self.num_samples(config)
        components = self.density_components + self.appearance_components
        # Gathering the VM plane/line factors is a table-lookup-style
        # operation: 3 planes x (bilinear 4-tap) + 3 lines x (linear 2-tap).
        factor_gather = EncodingOp(
            name="tensorf/vm-gather",
            kind="hash",
            num_points=num_samples,
            input_dim=3,
            output_dim=components,
            table_lookups_per_point=3 * 4 + 3 * 2,
            # Three 300^2 feature planes plus three 300-long vectors per
            # component, stored at 16-bit.
            table_bytes=components * (3 * 300 * 300 + 3 * 300) * 2.0,
        )
        basis_matrix = GEMMOp(
            name="tensorf/basis-matrix",
            m=num_samples,
            n=self.feature_dim,
            k=self.appearance_components * 3,
            activation_sparsity=self.input_sparsity(config),
            precision=config.precision,
        )
        dir_dim = 3 * 2 * self.num_frequencies_dir
        color_mlp = self.mlp_gemms(
            "tensorf/color-mlp",
            [
                (self.feature_dim + dir_dim + 3, self.mlp_width),
                (self.mlp_width, self.mlp_width),
                (self.mlp_width, 3),
            ],
            num_samples,
            config,
            first_layer_sparsity=0.0,
        )
        ops = [
            self.sampling_op(config, self.nominal_samples),
            factor_gather,
            self.positional_encoding_op(
                config, num_samples, 3, self.num_frequencies_dir, "pe-dir"
            ),
            basis_matrix,
            *color_mlp,
            self.volume_rendering_op(config, num_samples),
        ]
        return self.make_workload(config, ops)

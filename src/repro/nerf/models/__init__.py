"""Workload descriptors for the seven NeRF models evaluated in the paper.

Every model builds a :class:`repro.nerf.workload.Workload` describing the
operations of one rendered frame (800x800 by default): the GEMM/GEMV layers of
its networks, its encoding operations (positional or hash) and the remaining
miscellaneous work (ray sampling, volume rendering).  These workloads feed the
GPU baseline (Fig. 1 and Fig. 3) and the accelerator models (Fig. 18-20).
"""

from repro.nerf.models.base import FrameConfig, NeRFModel
from repro.nerf.models.vanilla import VanillaNeRF
from repro.nerf.models.kilonerf import KiloNeRF
from repro.nerf.models.nsvf import NSVF
from repro.nerf.models.mip_nerf import MipNeRF
from repro.nerf.models.instant_ngp import InstantNGP
from repro.nerf.models.ibrnet import IBRNet
from repro.nerf.models.tensorf import TensoRF

#: The seven models of the paper's evaluation, in figure order.
MODEL_REGISTRY: dict[str, type[NeRFModel]] = {
    "nerf": VanillaNeRF,
    "kilonerf": KiloNeRF,
    "nsvf": NSVF,
    "mip-nerf": MipNeRF,
    "instant-ngp": InstantNGP,
    "ibrnet": IBRNet,
    "tensorf": TensoRF,
}


def get_model(name: str) -> NeRFModel:
    """Instantiate a model descriptor by its registry name."""
    try:
        return MODEL_REGISTRY[name.lower()]()
    except KeyError as exc:
        raise KeyError(
            f"unknown NeRF model '{name}'; available: {sorted(MODEL_REGISTRY)}"
        ) from exc


def all_models() -> list[NeRFModel]:
    """Instantiate every registered model in paper order."""
    return [cls() for cls in MODEL_REGISTRY.values()]


__all__ = [
    "FrameConfig",
    "NeRFModel",
    "VanillaNeRF",
    "KiloNeRF",
    "NSVF",
    "MipNeRF",
    "InstantNGP",
    "IBRNet",
    "TensoRF",
    "MODEL_REGISTRY",
    "get_model",
    "all_models",
]

"""IBRNet workload descriptor (Wang et al., CVPR 2021).

IBRNet renders by aggregating features from ~10 nearby source views: a CNN
extracts per-view feature maps, a per-sample MLP + ray transformer weighs the
source-view features along each ray, and volume rendering composites the
result.  The CNN and the attention GEMMs dominate, so the GEMM share of
runtime is the highest among the seven models (paper Fig. 3).
"""

from __future__ import annotations

from repro.nerf.models.base import FrameConfig, NeRFModel, RELU_SPARSITY
from repro.nerf.workload import GEMMOp, MiscOp, Workload


class IBRNet(NeRFModel):
    """Image-based rendering network with a ray transformer."""

    name = "ibrnet"
    encoding_kind = "positional"
    uses_empty_space_skipping = False

    num_source_views = 10
    coarse_samples = 64
    fine_samples = 64
    feature_dim = 32
    transformer_dim = 16
    mlp_width = 64

    def samples_per_ray(self, config: FrameConfig) -> int:
        return self.coarse_samples + self.fine_samples

    def _cnn_ops(self, config: FrameConfig) -> list[GEMMOp]:
        """Feature-extraction CNN over the source views, expressed as im2col GEMMs."""
        pixels = config.image_width * config.image_height
        # A small U-Net-like encoder: 3x3 convolutions at full, half and
        # quarter resolution.  Channels: 3 -> 32 -> 64 -> 128, decoded to 32.
        layers = [
            ("conv1", pixels, 32, 3 * 9),
            ("conv2", pixels // 4, 64, 32 * 9),
            ("conv3", pixels // 16, 128, 64 * 9),
            ("deconv", pixels // 4, 64, 128 * 9),
            ("head", pixels, self.feature_dim, 64 * 9),
        ]
        return [
            GEMMOp(
                name=f"ibrnet/cnn/{name}",
                m=m,
                n=n,
                k=k,
                activation_sparsity=0.0 if name == "conv1" else RELU_SPARSITY,
                precision=config.precision,
                count=self.num_source_views,
            )
            for name, m, n, k in layers
        ]

    def _aggregation_ops(self, config: FrameConfig, num_samples: int) -> list[GEMMOp]:
        """Per-sample feature aggregation MLP + ray transformer."""
        v, d, w = self.num_source_views, self.transformer_dim, self.mlp_width
        ops = [
            # Per-sample, per-view feature MLP.
            GEMMOp(
                name="ibrnet/agg/view-mlp",
                m=num_samples * v,
                n=w,
                k=self.feature_dim + 4,
                precision=config.precision,
            ),
            GEMMOp(
                name="ibrnet/agg/view-mlp2",
                m=num_samples * v,
                n=d,
                k=w,
                activation_sparsity=RELU_SPARSITY,
                precision=config.precision,
            ),
            # Ray transformer: QKV projections and attention over the samples
            # of each ray (sequence length = samples per ray).
            GEMMOp(
                name="ibrnet/transformer/qkv",
                m=num_samples,
                n=3 * d,
                k=d,
                activation_sparsity=RELU_SPARSITY,
                precision=config.precision,
            ),
            GEMMOp(
                name="ibrnet/transformer/attention",
                m=num_samples,
                n=self.samples_per_ray(config),
                k=d,
                precision=config.precision,
            ),
            GEMMOp(
                name="ibrnet/transformer/output",
                m=num_samples,
                n=d,
                k=d,
                precision=config.precision,
            ),
            # Density / colour heads.
            GEMMOp(
                name="ibrnet/heads",
                m=num_samples,
                n=4,
                k=d + self.feature_dim,
                activation_sparsity=RELU_SPARSITY,
                precision=config.precision,
            ),
        ]
        return ops

    def build_workload(self, config: FrameConfig | None = None) -> Workload:
        config = config or FrameConfig()
        samples = self.samples_per_ray(config)
        num_samples = self.num_samples(config)
        softmax = MiscOp(
            name="ibrnet/softmax",
            flops=num_samples * self.samples_per_ray(config) * 5.0,
            memory_bytes=num_samples * self.samples_per_ray(config) * 4.0,
        )
        ops = [
            self.sampling_op(config, samples),
            self.positional_encoding_op(config, num_samples, 3, 4, "pe-relative-dir"),
            *self._cnn_ops(config),
            *self._aggregation_ops(config, num_samples),
            softmax,
            self.volume_rendering_op(config, num_samples),
        ]
        return self.make_workload(config, ops)

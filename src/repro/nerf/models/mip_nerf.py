"""Mip-NeRF workload descriptor (Barron et al., ICCV 2021).

Mip-NeRF replaces point samples with conical frustums and the positional
encoding with an integrated positional encoding (IPE, L=16), which roughly
doubles the encoding cost per sample.  The MLP mirrors vanilla NeRF (8 x 256),
evaluated over 128 + 128 proposal/final samples per ray.
"""

from __future__ import annotations

from repro.nerf.models.base import FrameConfig, NeRFModel
from repro.nerf.workload import EncodingOp, Workload


class MipNeRF(NeRFModel):
    """Anti-aliased multiscale NeRF."""

    name = "mip-nerf"
    encoding_kind = "positional"
    uses_empty_space_skipping = False

    coarse_samples = 128
    fine_samples = 128
    hidden_width = 256
    num_frequencies_ipe = 16
    num_frequencies_dir = 4

    def samples_per_ray(self, config: FrameConfig) -> int:
        return self.coarse_samples + self.fine_samples

    def _trunk_shapes(self) -> list[tuple[int, int]]:
        ipe_dim = 3 * 2 * self.num_frequencies_ipe
        dir_dim = 3 * 2 * self.num_frequencies_dir
        width = self.hidden_width
        return [
            (ipe_dim, width),
            (width, width),
            (width, width),
            (width, width),
            (width + ipe_dim, width),
            (width, width),
            (width, width),
            (width, width),
            (width, 1 + width),
            (width + dir_dim, width // 2),
            (width // 2, 3),
        ]

    def build_workload(self, config: FrameConfig | None = None) -> Workload:
        config = config or FrameConfig()
        samples = self.samples_per_ray(config)
        num_samples = self.num_samples(config)
        # The IPE integrates the encoding over a Gaussian, costing roughly
        # twice a plain positional encoding of the same dimensionality; model
        # it as an encoding op with double the output width.
        ipe = EncodingOp(
            name="mip-nerf/integrated-pe",
            kind="positional",
            num_points=num_samples,
            input_dim=3,
            output_dim=2 * 3 * 2 * self.num_frequencies_ipe,
        )
        ops = [
            self.sampling_op(config, samples),
            ipe,
            self.positional_encoding_op(
                config, num_samples, 3, self.num_frequencies_dir, "pe-dir"
            ),
            *self.mlp_gemms("mip-nerf/mlp", self._trunk_shapes(), num_samples, config),
            self.volume_rendering_op(config, num_samples),
        ]
        return self.make_workload(config, ops)

"""Common infrastructure for the per-model workload descriptors."""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.nerf.scenes import SyntheticScene, get_scene
from repro.nerf.workload import EncodingOp, GEMMOp, MiscOp, Workload
from repro.sparse.formats import Precision


@dataclass(frozen=True)
class FrameConfig:
    """Rendering configuration shared by every model (paper Section 6.1)."""

    image_width: int = 800
    image_height: int = 800
    batch_size: int = 4096
    scene_name: str = "lego"
    precision: Precision = Precision.INT16

    def __post_init__(self) -> None:
        if min(self.image_width, self.image_height, self.batch_size) < 1:
            raise ValueError("image dimensions and batch size must be positive")

    @property
    def num_rays(self) -> int:
        return self.image_width * self.image_height

    @property
    def scene(self) -> SyntheticScene:
        return get_scene(self.scene_name)


#: Typical post-ReLU activation sparsity of MLP hidden layers.
RELU_SPARSITY = 0.5


class NeRFModel(abc.ABC):
    """Base class for a NeRF model's per-frame workload descriptor."""

    #: Registry / display name.
    name: str = "base"
    #: Dominant encoding mechanism ("positional" or "hash").
    encoding_kind: str = "positional"
    #: Whether the model skips samples in empty space before the network.
    uses_empty_space_skipping: bool = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"

    @abc.abstractmethod
    def samples_per_ray(self, config: FrameConfig) -> int:
        """Number of network-evaluated samples per ray (after any skipping)."""

    @abc.abstractmethod
    def build_workload(self, config: FrameConfig | None = None) -> Workload:
        """Construct the one-frame workload for ``config``."""

    # -- shared helpers -------------------------------------------------------

    def num_samples(self, config: FrameConfig) -> int:
        """Total network-evaluated samples in a frame."""
        return config.num_rays * self.samples_per_ray(config)

    def input_sparsity(self, config: FrameConfig) -> float:
        """Sparsity of the matrix feeding the first network layer."""
        if self.uses_empty_space_skipping:
            return config.scene.ray_marching_sparsity
        return 0.0

    def mlp_gemms(
        self,
        prefix: str,
        layer_shapes: list[tuple[int, int]],
        num_samples: int,
        config: FrameConfig,
        first_layer_sparsity: float | None = None,
    ) -> list[GEMMOp]:
        """Build GEMM ops for an MLP given its (in, out) layer shapes.

        The first layer consumes the encoded features (sparsity from
        ray-marching when the model skips empty space); the remaining layers
        consume post-ReLU activations with ~50 % sparsity.
        """
        if first_layer_sparsity is None:
            first_layer_sparsity = self.input_sparsity(config)
        ops = []
        for i, (in_features, out_features) in enumerate(layer_shapes):
            activation_sparsity = first_layer_sparsity if i == 0 else RELU_SPARSITY
            ops.append(
                GEMMOp(
                    name=f"{prefix}/layer{i}",
                    m=num_samples,
                    n=out_features,
                    k=in_features,
                    activation_sparsity=activation_sparsity,
                    precision=config.precision,
                )
            )
        return ops

    def sampling_op(self, config: FrameConfig, samples_per_ray: int) -> MiscOp:
        """Ray generation + stratified sampling cost."""
        num_samples = config.num_rays * samples_per_ray
        return MiscOp(
            name=f"{self.name}/ray-sampling",
            flops=num_samples * 8.0,
            memory_bytes=num_samples * 3 * 4.0,
        )

    def volume_rendering_op(self, config: FrameConfig, num_samples: int) -> MiscOp:
        """Volume-rendering (transmittance + compositing) cost."""
        return MiscOp(
            name=f"{self.name}/volume-rendering",
            flops=num_samples * 20.0,
            memory_bytes=num_samples * 4 * 4.0,
        )

    def positional_encoding_op(
        self,
        config: FrameConfig,
        num_points: int,
        input_dim: int,
        num_frequencies: int,
        name: str = "positional-encoding",
    ) -> EncodingOp:
        return EncodingOp(
            name=f"{self.name}/{name}",
            kind="positional",
            num_points=num_points,
            input_dim=input_dim,
            output_dim=input_dim * 2 * num_frequencies,
        )

    def hash_encoding_op(
        self,
        config: FrameConfig,
        num_points: int,
        num_levels: int,
        features_per_level: int,
        name: str = "hash-encoding",
        log2_table_size: int = 19,
    ) -> EncodingOp:
        table_bytes = num_levels * (1 << log2_table_size) * features_per_level * 2.0
        return EncodingOp(
            name=f"{self.name}/{name}",
            kind="hash",
            num_points=num_points,
            input_dim=3,
            output_dim=num_levels * features_per_level,
            table_lookups_per_point=num_levels * 8,
            table_bytes=table_bytes,
        )

    def make_workload(self, config: FrameConfig, ops: list) -> Workload:
        return Workload(
            model_name=self.name,
            ops=ops,
            image_width=config.image_width,
            image_height=config.image_height,
            batch_size=config.batch_size,
        )

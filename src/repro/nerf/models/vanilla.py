"""Vanilla NeRF workload descriptor (Mildenhall et al., ECCV 2020).

A coarse + fine hierarchy (64 + 128 samples per ray), sinusoidal positional
encoding (L=10 for coordinates, L=4 for view directions) and an 8-layer,
256-wide MLP with a skip connection, a density head and a view-dependent
colour head.  GEMM/GEMV work dominates the frame time (paper Fig. 3).
"""

from __future__ import annotations

from repro.nerf.models.base import FrameConfig, NeRFModel
from repro.nerf.workload import Workload


class VanillaNeRF(NeRFModel):
    """The original NeRF model."""

    name = "nerf"
    encoding_kind = "positional"
    uses_empty_space_skipping = False

    coarse_samples = 64
    fine_samples = 128
    hidden_width = 256
    num_frequencies_xyz = 10
    num_frequencies_dir = 4

    def samples_per_ray(self, config: FrameConfig) -> int:
        return self.coarse_samples + self.fine_samples

    def _trunk_shapes(self) -> list[tuple[int, int]]:
        xyz_dim = 3 * 2 * self.num_frequencies_xyz
        dir_dim = 3 * 2 * self.num_frequencies_dir
        width = self.hidden_width
        return [
            (xyz_dim, width),
            (width, width),
            (width, width),
            (width, width),
            (width + xyz_dim, width),   # skip connection re-injects the encoding
            (width, width),
            (width, width),
            (width, width),
            (width, 1 + width),          # density head + feature vector (fused)
            (width + dir_dim, width // 2),
            (width // 2, 3),
        ]

    def build_workload(self, config: FrameConfig | None = None) -> Workload:
        config = config or FrameConfig()
        samples = self.samples_per_ray(config)
        num_samples = self.num_samples(config)
        ops = [
            self.sampling_op(config, samples),
            self.positional_encoding_op(
                config, num_samples, 3, self.num_frequencies_xyz, "pe-xyz"
            ),
            self.positional_encoding_op(
                config, num_samples, 3, self.num_frequencies_dir, "pe-dir"
            ),
            *self.mlp_gemms("nerf/mlp", self._trunk_shapes(), num_samples, config),
            self.volume_rendering_op(config, num_samples),
        ]
        return self.make_workload(config, ops)

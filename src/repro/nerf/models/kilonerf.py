"""KiloNeRF workload descriptor (Reiser et al., ICCV 2021).

Thousands of tiny independent MLPs (4 layers, 32 wide) cover the scene; empty
space skipping removes most samples before network evaluation.  Per-sample
compute is ~100x smaller than vanilla NeRF, but the positional encoding and
the tiny irregular GEMMs make the encoding share of runtime much larger and
GPU utilisation much lower (paper Fig. 3 / Fig. 4).
"""

from __future__ import annotations

from repro.nerf.models.base import FrameConfig, NeRFModel
from repro.nerf.workload import Workload


class KiloNeRF(NeRFModel):
    """NeRF distilled into thousands of tiny MLPs."""

    name = "kilonerf"
    encoding_kind = "positional"
    uses_empty_space_skipping = True

    nominal_samples = 192
    hidden_width = 32
    num_frequencies_xyz = 10
    num_frequencies_dir = 4

    def samples_per_ray(self, config: FrameConfig) -> int:
        occupancy = config.scene.target_occupancy
        return max(8, int(round(self.nominal_samples * occupancy)))

    def _network_shapes(self) -> list[tuple[int, int]]:
        xyz_dim = 3 * 2 * self.num_frequencies_xyz
        dir_dim = 3 * 2 * self.num_frequencies_dir
        width = self.hidden_width
        return [
            (xyz_dim, width),
            (width, width),
            (width, 1 + width),        # density + feature
            (width + dir_dim, width),
            (width, 3),
        ]

    def build_workload(self, config: FrameConfig | None = None) -> Workload:
        config = config or FrameConfig()
        samples = self.samples_per_ray(config)
        num_samples = self.num_samples(config)
        ops = [
            self.sampling_op(config, self.nominal_samples),
            self.positional_encoding_op(
                config, num_samples, 3, self.num_frequencies_xyz, "pe-xyz"
            ),
            self.positional_encoding_op(
                config, num_samples, 3, self.num_frequencies_dir, "pe-dir"
            ),
            *self.mlp_gemms(
                "kilonerf/tiny-mlp", self._network_shapes(), num_samples, config
            ),
            self.volume_rendering_op(config, num_samples),
        ]
        return self.make_workload(config, ops)

"""Instant-NGP workload descriptor (Mueller et al., SIGGRAPH 2022).

Multi-resolution hash encoding (16 levels x 2 features) feeds a tiny fused
MLP; an occupancy grid skips most samples before the network.  Hash-table
lookups dominate memory traffic and the encoding share of runtime on a GPU
(paper Fig. 3); FlexNeRFer accelerates them with the hash encoding engine.
"""

from __future__ import annotations

from repro.nerf.models.base import FrameConfig, NeRFModel
from repro.nerf.workload import Workload


class InstantNGP(NeRFModel):
    """Instant neural graphics primitives."""

    name = "instant-ngp"
    encoding_kind = "hash"
    uses_empty_space_skipping = True

    nominal_samples = 96
    num_levels = 16
    features_per_level = 2
    density_width = 64
    color_width = 64
    sh_dir_dim = 16     # spherical-harmonics direction encoding

    def samples_per_ray(self, config: FrameConfig) -> int:
        occupancy = config.scene.target_occupancy
        return max(6, int(round(self.nominal_samples * occupancy)))

    def _density_shapes(self) -> list[tuple[int, int]]:
        encoded = self.num_levels * self.features_per_level
        return [(encoded, self.density_width), (self.density_width, 16)]

    def _color_shapes(self) -> list[tuple[int, int]]:
        return [
            (16 + self.sh_dir_dim, self.color_width),
            (self.color_width, self.color_width),
            (self.color_width, 3),
        ]

    def build_workload(self, config: FrameConfig | None = None) -> Workload:
        config = config or FrameConfig()
        num_samples = self.num_samples(config)
        ops = [
            self.sampling_op(config, self.nominal_samples),
            self.hash_encoding_op(
                config, num_samples, self.num_levels, self.features_per_level
            ),
            self.positional_encoding_op(config, num_samples, 3, 3, "sh-dir"),
            *self.mlp_gemms(
                "instant-ngp/density-mlp", self._density_shapes(), num_samples, config
            ),
            *self.mlp_gemms(
                "instant-ngp/color-mlp",
                self._color_shapes(),
                num_samples,
                config,
                first_layer_sparsity=0.0,
            ),
            self.volume_rendering_op(config, num_samples),
        ]
        return self.make_workload(config, ops)

"""NSVF workload descriptor (Liu et al., NeurIPS 2020).

Neural Sparse Voxel Fields store learned feature embeddings on a sparse voxel
octree; samples in empty voxels are skipped.  Each surviving sample gathers a
trilinearly interpolated 32-d voxel embedding (modelled as a hash-style table
lookup), positionally encodes it, and evaluates a medium-size MLP.
"""

from __future__ import annotations

from repro.nerf.models.base import FrameConfig, NeRFModel
from repro.nerf.workload import EncodingOp, Workload


class NSVF(NeRFModel):
    """Neural sparse voxel fields."""

    name = "nsvf"
    encoding_kind = "positional"
    uses_empty_space_skipping = True

    nominal_samples = 192
    voxel_feature_dim = 32
    num_frequencies_feature = 6
    hidden_width = 256
    num_hidden_layers = 4

    def samples_per_ray(self, config: FrameConfig) -> int:
        occupancy = config.scene.target_occupancy
        return max(8, int(round(self.nominal_samples * occupancy * 0.9)))

    def _network_shapes(self) -> list[tuple[int, int]]:
        encoded_dim = self.voxel_feature_dim * 2 * self.num_frequencies_feature
        width = self.hidden_width
        shapes = [(encoded_dim, width)]
        shapes += [(width, width)] * (self.num_hidden_layers - 1)
        shapes += [(width, 1 + width), (width, 3)]
        return shapes

    def build_workload(self, config: FrameConfig | None = None) -> Workload:
        config = config or FrameConfig()
        samples = self.samples_per_ray(config)
        num_samples = self.num_samples(config)
        voxel_lookup = EncodingOp(
            name="nsvf/voxel-embedding",
            kind="hash",
            num_points=num_samples,
            input_dim=3,
            output_dim=self.voxel_feature_dim,
            table_lookups_per_point=8,
            # Sparse voxel octree with ~200k occupied corners x 32 features.
            table_bytes=200_000 * self.voxel_feature_dim * 2.0,
        )
        ops = [
            self.sampling_op(config, self.nominal_samples),
            voxel_lookup,
            self.positional_encoding_op(
                config,
                num_samples,
                self.voxel_feature_dim,
                self.num_frequencies_feature,
                "pe-feature",
            ),
            *self.mlp_gemms("nsvf/mlp", self._network_shapes(), num_samples, config),
            self.volume_rendering_op(config, num_samples),
        ]
        return self.make_workload(config, ops)

"""Multi-resolution hash encoding (Instant-NGP style, paper Section 5.2.2).

Spatial coordinates are encoded by looking up learned feature vectors at the
corners of the voxel that contains the point, at several grid resolutions, and
trilinearly interpolating.  Low-resolution levels index a dense grid; levels
whose grid exceeds the hash-table size use the spatial hash of Instant-NGP.

The same functional model backs FlexNeRFer's hash encoding engine (HEE): the
coalescing-unit statistics (how many lookups share a hash index at coarse
levels) and the subgrid statistics (how many distinct table lines a batch
touches at fine levels) are derived from this implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Large primes used by the Instant-NGP spatial hash.
_HASH_PRIMES = np.array([1, 2654435761, 805459861], dtype=np.uint64)


@dataclass(frozen=True)
class HashGridConfig:
    """Configuration of the multi-resolution hash grid."""

    num_levels: int = 16
    features_per_level: int = 2
    log2_table_size: int = 19
    base_resolution: int = 16
    max_resolution: int = 512

    def __post_init__(self) -> None:
        if self.num_levels < 1:
            raise ValueError("need at least one level")
        if self.max_resolution < self.base_resolution:
            raise ValueError("max resolution must be >= base resolution")

    @property
    def table_size(self) -> int:
        return 1 << self.log2_table_size

    @property
    def growth_factor(self) -> float:
        if self.num_levels == 1:
            return 1.0
        return float(
            np.exp(
                (np.log(self.max_resolution) - np.log(self.base_resolution))
                / (self.num_levels - 1)
            )
        )

    def resolution(self, level: int) -> int:
        """Grid resolution of ``level`` (0-based)."""
        if not 0 <= level < self.num_levels:
            raise ValueError(f"level {level} outside [0, {self.num_levels})")
        return int(np.floor(self.base_resolution * self.growth_factor**level))

    @property
    def output_dim(self) -> int:
        return self.num_levels * self.features_per_level


@dataclass
class LevelStats:
    """Access statistics of one level for a batch of lookups."""

    level: int
    resolution: int
    uses_hash: bool
    num_lookups: int
    unique_indices: int

    @property
    def coalescing_factor(self) -> float:
        """Average number of lookups served per distinct table entry."""
        return self.num_lookups / self.unique_indices if self.unique_indices else 0.0


class HashGrid:
    """Functional multi-resolution hash grid with trilinear interpolation."""

    def __init__(
        self, config: HashGridConfig | None = None, rng: np.random.Generator | None = None
    ) -> None:
        self.config = config or HashGridConfig()
        rng = rng or np.random.default_rng(0)
        self.tables = [
            rng.normal(0.0, 1e-2, size=(self._level_table_size(level), self.config.features_per_level))
            for level in range(self.config.num_levels)
        ]
        self.last_level_stats: list[LevelStats] = []

    # -- table management --------------------------------------------------

    def _level_table_size(self, level: int) -> int:
        resolution = self.config.resolution(level)
        dense_size = (resolution + 1) ** 3
        return min(dense_size, self.config.table_size)

    def _level_uses_hash(self, level: int) -> bool:
        resolution = self.config.resolution(level)
        return (resolution + 1) ** 3 > self.config.table_size

    def _indices(self, corners: np.ndarray, level: int) -> np.ndarray:
        """Map integer corner coordinates to table indices at ``level``."""
        resolution = self.config.resolution(level)
        corners = corners.astype(np.uint64)
        if self._level_uses_hash(level):
            hashed = corners[..., 0] * _HASH_PRIMES[0]
            hashed ^= corners[..., 1] * _HASH_PRIMES[1]
            hashed ^= corners[..., 2] * _HASH_PRIMES[2]
            return (hashed % np.uint64(self._level_table_size(level))).astype(np.int64)
        stride = np.uint64(resolution + 1)
        flat = corners[..., 0] + stride * (corners[..., 1] + stride * corners[..., 2])
        return flat.astype(np.int64)

    # -- encoding ------------------------------------------------------------

    def encode(self, points: np.ndarray) -> np.ndarray:
        """Encode points in [0, 1]^3 into per-level interpolated features.

        Returns an array of shape ``(N, num_levels * features_per_level)`` and
        records per-level access statistics in :attr:`last_level_stats`.
        """
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != 3:
            raise ValueError(f"expected points of shape (N, 3), got {points.shape}")
        points = np.clip(points, 0.0, 1.0)
        features = []
        self.last_level_stats = []
        for level in range(self.config.num_levels):
            resolution = self.config.resolution(level)
            scaled = points * resolution
            base = np.floor(scaled).astype(np.int64)
            base = np.clip(base, 0, resolution - 1)
            frac = scaled - base
            level_feat = np.zeros(
                (points.shape[0], self.config.features_per_level), dtype=np.float64
            )
            all_indices = []
            for corner in range(8):
                offset = np.array(
                    [(corner >> 0) & 1, (corner >> 1) & 1, (corner >> 2) & 1],
                    dtype=np.int64,
                )
                corner_coords = base + offset
                weights = np.prod(
                    np.where(offset == 1, frac, 1.0 - frac), axis=-1, keepdims=True
                )
                indices = self._indices(corner_coords, level)
                all_indices.append(indices)
                level_feat += weights * self.tables[level][indices]
            features.append(level_feat)
            stacked = np.concatenate(all_indices)
            self.last_level_stats.append(
                LevelStats(
                    level=level,
                    resolution=resolution,
                    uses_hash=self._level_uses_hash(level),
                    num_lookups=int(stacked.size),
                    unique_indices=int(np.unique(stacked).size),
                )
            )
        return np.concatenate(features, axis=-1)

    @property
    def output_dim(self) -> int:
        return self.config.output_dim

"""Workload descriptors: the operations one frame of a NeRF model performs.

The hardware evaluation does not need trained weights -- it needs the *shape*
of the computation: which GEMM/GEMV operations run, at what sizes and sparsity,
how many encoding operations are performed, and how much miscellaneous work
(ray sampling, volume rendering) remains.  A :class:`Workload` is an ordered
list of such operations; every model in :mod:`repro.nerf.models` builds one
from its architecture, and the GPU baseline as well as the FlexNeRFer
simulator consume it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from repro.sparse.formats import Precision


class OpCategory(enum.Enum):
    """Runtime category used for the breakdowns of paper Fig. 3 and Fig. 18."""

    GEMM = "gemm"
    ENCODING = "encoding"
    OTHER = "other"


@dataclass(frozen=True)
class GEMMOp:
    """A (possibly sparse, possibly irregular) GEMM: (M x K) @ (K x N)."""

    name: str
    m: int
    n: int
    k: int
    weight_sparsity: float = 0.0
    activation_sparsity: float = 0.0
    precision: Precision = Precision.INT16
    count: int = 1
    #: Whether the activations are streamed from off-chip DRAM.  Intermediate
    #: MLP activations are produced on-chip by the previous layer (or by the
    #: encoding unit) in a fused, batch-tiled execution and default to False.
    activations_from_dram: bool = False
    #: Whether the outputs are written back to off-chip DRAM (only the final
    #: per-sample outputs consumed by volume rendering usually are not).
    outputs_to_dram: bool = False

    category = OpCategory.GEMM

    def __post_init__(self) -> None:
        if min(self.m, self.n, self.k) < 1 or self.count < 1:
            raise ValueError(f"GEMM dimensions and count must be positive: {self}")
        for value in (self.weight_sparsity, self.activation_sparsity):
            if not 0.0 <= value < 1.0:
                raise ValueError(f"sparsity must be in [0, 1): {self}")

    @property
    def macs(self) -> float:
        """Dense multiply-accumulate count."""
        return float(self.m) * self.n * self.k * self.count

    @property
    def flops(self) -> float:
        return 2.0 * self.macs

    @property
    def effective_macs(self) -> float:
        """MACs remaining after zero-skipping both operands."""
        return self.macs * (1.0 - self.weight_sparsity) * (1.0 - self.activation_sparsity)

    @property
    def input_bytes(self) -> float:
        """Bytes of both operands at the op's precision (dense layout)."""
        per_element = self.precision.bits / 8.0
        return (self.m * self.k + self.k * self.n) * per_element * self.count

    @property
    def output_bytes(self) -> float:
        return self.m * self.n * 4.0 * self.count  # 32-bit accumulators

    def pruned(self, ratio: float) -> "GEMMOp":
        """Return a copy with structured pruning applied to the weights."""
        if not 0.0 <= ratio < 1.0:
            raise ValueError(f"pruning ratio must be in [0, 1), got {ratio}")
        combined = 1.0 - (1.0 - self.weight_sparsity) * (1.0 - ratio)
        return replace(self, weight_sparsity=combined)

    def with_precision(self, precision: Precision) -> "GEMMOp":
        return replace(self, precision=precision)


@dataclass(frozen=True)
class EncodingOp:
    """A neural feature-encoding operation (positional or hash encoding)."""

    name: str
    kind: str                   # "positional" or "hash"
    num_points: int
    input_dim: int
    output_dim: int
    table_lookups_per_point: int = 0
    count: int = 1
    #: Size of the lookup table backing a hash/voxel/factor encoding, in bytes
    #: (e.g. ~32 MiB for Instant-NGP's 16-level hash grid).  Zero for
    #: positional encodings, which have no table.
    table_bytes: float = 0.0
    #: How many times the table is effectively streamed from DRAM per frame
    #: (captures cache misses beyond the first compulsory pass).
    table_passes: float = 2.0

    category = OpCategory.ENCODING

    def __post_init__(self) -> None:
        if self.kind not in ("positional", "hash"):
            raise ValueError(f"unknown encoding kind '{self.kind}'")
        if min(self.num_points, self.input_dim, self.output_dim, self.count) < 1:
            raise ValueError(f"encoding op dimensions must be positive: {self}")

    @property
    def flops(self) -> float:
        if self.kind == "positional":
            # Two trig evaluations (or their approximations) per output value.
            per_point = self.output_dim * 6.0
        else:
            # Per lookup: hash computation + trilinear interpolation of the
            # 8 corners for each feature channel.
            per_point = self.table_lookups_per_point * (8.0 + 2.0 * self.output_dim)
        return per_point * self.num_points * self.count

    @property
    def input_bytes(self) -> float:
        return self.num_points * self.input_dim * 4.0 * self.count

    @property
    def output_bytes(self) -> float:
        return self.num_points * self.output_dim * 2.0 * self.count

    @property
    def memory_bytes(self) -> float:
        """Total bytes moved including table lookups (hash encoding)."""
        lookup_bytes = (
            self.num_points * self.table_lookups_per_point * 4.0 * self.count
        )
        return self.input_bytes + self.output_bytes + lookup_bytes

    @property
    def dram_bytes(self) -> float:
        """Off-chip traffic: the table working set streamed ``table_passes`` times.

        Individual lookups hit the on-chip encoding buffer / caches; only the
        table itself must be brought in from DRAM.
        """
        if self.kind != "hash" or self.table_bytes <= 0:
            return 0.0
        lookup_bytes = (
            self.num_points * self.table_lookups_per_point * 4.0 * self.count
        )
        return min(self.table_bytes * self.table_passes * self.count, lookup_bytes)


@dataclass(frozen=True)
class MiscOp:
    """Everything else: ray sampling, volume rendering, compositing, etc."""

    name: str
    flops: float
    memory_bytes: float
    count: int = 1

    category = OpCategory.OTHER

    def __post_init__(self) -> None:
        if self.flops < 0 or self.memory_bytes < 0 or self.count < 1:
            raise ValueError(f"MiscOp fields must be non-negative: {self}")

    @property
    def input_bytes(self) -> float:
        return self.memory_bytes * 0.5 * self.count

    @property
    def output_bytes(self) -> float:
        return self.memory_bytes * 0.5 * self.count


Op = GEMMOp | EncodingOp | MiscOp


@dataclass
class Workload:
    """One frame's worth of operations for a NeRF model."""

    model_name: str
    ops: list[Op] = field(default_factory=list)
    image_width: int = 800
    image_height: int = 800
    batch_size: int = 4096

    @property
    def num_rays(self) -> int:
        return self.image_width * self.image_height

    @property
    def num_batches(self) -> int:
        return -(-self.num_rays // self.batch_size)

    def gemm_ops(self) -> list[GEMMOp]:
        return [op for op in self.ops if isinstance(op, GEMMOp)]

    def encoding_ops(self) -> list[EncodingOp]:
        return [op for op in self.ops if isinstance(op, EncodingOp)]

    def misc_ops(self) -> list[MiscOp]:
        return [op for op in self.ops if isinstance(op, MiscOp)]

    @property
    def total_flops(self) -> float:
        return sum(self._op_flops(op) for op in self.ops)

    def flops_by_category(self) -> dict[OpCategory, float]:
        out = {category: 0.0 for category in OpCategory}
        for op in self.ops:
            out[op.category] += self._op_flops(op)
        return out

    def pruned(self, ratio: float) -> "Workload":
        """Workload with structured pruning applied to every GEMM weight."""
        new_ops: list[Op] = [
            op.pruned(ratio) if isinstance(op, GEMMOp) else op for op in self.ops
        ]
        return Workload(
            model_name=self.model_name,
            ops=new_ops,
            image_width=self.image_width,
            image_height=self.image_height,
            batch_size=self.batch_size,
        )

    def with_precision(self, precision: Precision) -> "Workload":
        """Workload with every GEMM re-expressed at ``precision``."""
        new_ops: list[Op] = [
            op.with_precision(precision) if isinstance(op, GEMMOp) else op
            for op in self.ops
        ]
        return Workload(
            model_name=self.model_name,
            ops=new_ops,
            image_width=self.image_width,
            image_height=self.image_height,
            batch_size=self.batch_size,
        )

    @staticmethod
    def _op_flops(op: Op) -> float:
        return op.flops

"""Minimal NumPy MLP used by the functional NeRF renderers.

Layers expose their GEMM shapes so the workload descriptors can be derived
directly from the network definitions instead of being hand-written twice.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(x, 0.0)


@dataclass
class LinearLayer:
    """A fully connected layer ``y = x @ W + b``."""

    weight: np.ndarray
    bias: np.ndarray
    activation: str = "relu"

    def __post_init__(self) -> None:
        self.weight = np.asarray(self.weight, dtype=np.float64)
        self.bias = np.asarray(self.bias, dtype=np.float64)
        if self.weight.ndim != 2:
            raise ValueError("weight must be 2D (in_features, out_features)")
        if self.bias.shape != (self.weight.shape[1],):
            raise ValueError("bias shape must match out_features")
        if self.activation not in ("relu", "none", "sigmoid"):
            raise ValueError(f"unsupported activation '{self.activation}'")

    @property
    def in_features(self) -> int:
        return self.weight.shape[0]

    @property
    def out_features(self) -> int:
        return self.weight.shape[1]

    @classmethod
    def random(
        cls,
        in_features: int,
        out_features: int,
        activation: str = "relu",
        rng: np.random.Generator | None = None,
    ) -> "LinearLayer":
        rng = rng or np.random.default_rng()
        scale = np.sqrt(2.0 / in_features)
        return cls(
            weight=rng.normal(0.0, scale, size=(in_features, out_features)),
            bias=np.zeros(out_features),
            activation=activation,
        )

    def forward(self, x: np.ndarray) -> np.ndarray:
        y = x @ self.weight + self.bias
        if self.activation == "relu":
            return relu(y)
        if self.activation == "sigmoid":
            return 1.0 / (1.0 + np.exp(-y))
        return y

    def weight_sparsity(self) -> float:
        """Fraction of exactly-zero weights (non-zero after pruning)."""
        if self.weight.size == 0:
            return 0.0
        return 1.0 - np.count_nonzero(self.weight) / self.weight.size

    def prune(self, ratio: float) -> None:
        """Structured magnitude pruning: zero the smallest-norm output columns."""
        if not 0.0 <= ratio < 1.0:
            raise ValueError(f"pruning ratio must be in [0, 1), got {ratio}")
        num_prune = int(round(self.out_features * ratio))
        if num_prune == 0:
            return
        norms = np.linalg.norm(self.weight, axis=0)
        prune_cols = np.argsort(norms)[:num_prune]
        self.weight[:, prune_cols] = 0.0
        self.bias[prune_cols] = 0.0


@dataclass
class MLP:
    """A stack of linear layers."""

    layers: list[LinearLayer] = field(default_factory=list)

    @classmethod
    def build(
        cls,
        layer_widths: list[int],
        final_activation: str = "none",
        rng: np.random.Generator | None = None,
    ) -> "MLP":
        """Create an MLP from ``layer_widths`` = [in, h1, ..., out]."""
        if len(layer_widths) < 2:
            raise ValueError("need at least an input and an output width")
        rng = rng or np.random.default_rng()
        layers = []
        for i in range(len(layer_widths) - 1):
            is_last = i == len(layer_widths) - 2
            layers.append(
                LinearLayer.random(
                    layer_widths[i],
                    layer_widths[i + 1],
                    activation=final_activation if is_last else "relu",
                    rng=rng,
                )
            )
        return cls(layers=layers)

    def forward(self, x: np.ndarray, start: int = 0) -> np.ndarray:
        """Run ``x`` through the layers from ``start`` onwards.

        ``start`` lets callers that already hold an intermediate activation
        (e.g. layer 0's output, recorded for sparsity stats) resume the
        stack without recomputing the earlier layers.
        """
        for layer in self.layers[start:]:
            x = layer.forward(x)
        return x

    def gemm_shapes(self, batch: int) -> list[tuple[int, int, int]]:
        """Per-layer (M, N, K) GEMM shapes for a batch of ``batch`` samples."""
        return [(batch, layer.out_features, layer.in_features) for layer in self.layers]

    def num_parameters(self) -> int:
        return sum(layer.weight.size + layer.bias.size for layer in self.layers)

    def prune(self, ratio: float) -> None:
        """Apply structured pruning to every hidden layer."""
        for layer in self.layers[:-1]:
            layer.prune(ratio)

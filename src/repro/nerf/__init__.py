"""NeRF algorithm substrate.

Functional NumPy implementations of the NeRF rendering pipeline (paper
Section 2.1.1): ray generation and sampling, sinusoidal positional encoding
(exact and the hardware-approximated form of Eqs. 5-6), multi-resolution hash
encoding with trilinear interpolation, MLP evaluation, and volume rendering.
On top of that, :mod:`repro.nerf.models` provides per-frame *workload
descriptors* for the seven NeRF models evaluated in the paper, which feed both
the GPU baseline and the accelerator simulator.
"""

from repro.nerf.rays import Camera, generate_rays, sample_along_rays
from repro.nerf.positional import (
    positional_encoding,
    approx_sin_halfpi,
    approx_cos_halfpi,
    approx_positional_encoding,
)
from repro.nerf.hashgrid import HashGrid, HashGridConfig
from repro.nerf.mlp import MLP, LinearLayer, relu
from repro.nerf.volume import composite_rays, transmittance_weights
from repro.nerf.scenes import SyntheticScene, SCENE_LIBRARY, get_scene
from repro.nerf.renderer import VanillaNeRFRenderer, InstantNGPRenderer
from repro.nerf.workload import (
    EncodingOp,
    GEMMOp,
    MiscOp,
    OpCategory,
    Workload,
)

__all__ = [
    "Camera",
    "generate_rays",
    "sample_along_rays",
    "positional_encoding",
    "approx_sin_halfpi",
    "approx_cos_halfpi",
    "approx_positional_encoding",
    "HashGrid",
    "HashGridConfig",
    "MLP",
    "LinearLayer",
    "relu",
    "composite_rays",
    "transmittance_weights",
    "SyntheticScene",
    "SCENE_LIBRARY",
    "get_scene",
    "VanillaNeRFRenderer",
    "InstantNGPRenderer",
    "GEMMOp",
    "EncodingOp",
    "MiscOp",
    "OpCategory",
    "Workload",
]

"""Volume rendering (paper Eq. 2-3, Step D of the pipeline).

Given per-sample densities and colors along each ray, compute the accumulated
transmittance weights and composite them into final pixel colors using the
numerical quadrature of Eq. (3).
"""

from __future__ import annotations

import numpy as np


def transmittance_weights(
    densities: np.ndarray, deltas: np.ndarray
) -> np.ndarray:
    """Per-sample compositing weights ``T_i * (1 - exp(-sigma_i * delta_i))``.

    ``densities`` and ``deltas`` have shape ``(R, S)``; densities are clamped
    to be non-negative as in the reference implementation.
    """
    densities = np.maximum(np.asarray(densities, dtype=np.float64), 0.0)
    deltas = np.asarray(deltas, dtype=np.float64)
    if densities.shape != deltas.shape:
        raise ValueError(
            f"densities {densities.shape} and deltas {deltas.shape} must match"
        )
    alpha = 1.0 - np.exp(-densities * deltas)
    # T_i = exp(-sum_{j<i} sigma_j * delta_j): exclusive cumulative product.
    optical_depth = np.cumsum(densities * deltas, axis=-1)
    shifted = np.concatenate(
        [np.zeros_like(optical_depth[..., :1]), optical_depth[..., :-1]], axis=-1
    )
    transmittance = np.exp(-shifted)
    return transmittance * alpha


def composite_rays(
    colors: np.ndarray,
    densities: np.ndarray,
    t_values: np.ndarray,
    white_background: bool = True,
) -> np.ndarray:
    """Composite per-sample colors into per-ray RGB values (Eq. 3).

    ``colors`` has shape ``(R, S, 3)``, ``densities`` and ``t_values`` have
    shape ``(R, S)``.  The last sample's interval is treated as unbounded
    (a large delta), following the reference implementation.
    """
    colors = np.asarray(colors, dtype=np.float64)
    t_values = np.asarray(t_values, dtype=np.float64)
    deltas = np.diff(t_values, axis=-1)
    deltas = np.concatenate([deltas, np.full_like(deltas[..., :1], 1e10)], axis=-1)
    weights = transmittance_weights(densities, deltas)
    rgb = np.sum(weights[..., None] * colors, axis=-2)
    if white_background:
        accumulated = np.sum(weights, axis=-1, keepdims=True)
        rgb = rgb + (1.0 - accumulated)
    return np.clip(rgb, 0.0, 1.0)


def expected_depth(densities: np.ndarray, t_values: np.ndarray) -> np.ndarray:
    """Expected termination depth per ray (used for depth-map rendering)."""
    t_values = np.asarray(t_values, dtype=np.float64)
    deltas = np.diff(t_values, axis=-1)
    deltas = np.concatenate([deltas, np.full_like(deltas[..., :1], 1e10)], axis=-1)
    weights = transmittance_weights(densities, deltas)
    total = np.sum(weights, axis=-1)
    depth = np.sum(weights * t_values, axis=-1)
    return np.where(total > 1e-8, depth / np.maximum(total, 1e-8), 0.0)

"""Core types of the determinism / cache-safety static-analysis pass.

The whole stack rests on invariants no test can economically guard: store
keys must capture *all* state that affects results, shard/assemble runs
must be bit-identical to serial runs, and every stream / simulator must be
seed-deterministic.  ``repro lint`` turns those invariants into
machine-checked design rules over the package's own AST.

This module defines the pieces every rule builds on:

* :class:`Severity` / :class:`Finding` -- one diagnostic, content-matched
  by the baseline machinery (rule + path + message, never line numbers);
* :class:`SourceModule` / :class:`Project` -- a parsed source tree with
  import-alias resolution (:meth:`SourceModule.call_name`), so rules match
  ``np.random.shuffle`` and ``from time import perf_counter`` alike;
* :class:`Rule` -- the pluggable base class (whole-program view) and
  :class:`ModuleRule` -- the common per-module specialization with dotted
  module-prefix scoping.

Rules live in :mod:`repro.analysis.rules` (one module per rule, discovered
by :func:`repro.analysis.rules.discover_rules`); the driver that runs them
is :mod:`repro.analysis.driver`.
"""

from __future__ import annotations

import abc
import ast
import enum
from dataclasses import dataclass, field
from pathlib import Path
from typing import ClassVar, Iterator


class Severity(enum.Enum):
    """How bad a finding is: ``ERROR`` gates CI, ``WARNING`` is advisory."""

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One diagnostic: a rule violated at a specific source location.

    ``path`` is relative to the linted root (POSIX separators) so findings
    -- and the committed baseline that grandfathers them -- are portable
    across checkouts.  Baseline matching deliberately ignores ``line``:
    unrelated edits move code, they do not change what is wrong with it.
    """

    rule_id: str
    severity: Severity
    path: str
    line: int
    message: str

    @property
    def key(self) -> tuple[str, str, str]:
        """The content identity baseline entries match on (no line number)."""
        return (self.rule_id, self.path, self.message)

    def location(self) -> str:
        """The finding's ``path:line`` source location."""
        return f"{self.path}:{self.line}"

    def to_dict(self) -> dict[str, object]:
        """JSON-safe form, one row of ``repro lint --format json``."""
        return {
            "rule": self.rule_id,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }


def _resolve_relative(package: str, level: int, module: str | None) -> str:
    """Absolute dotted module targeted by a relative ``from``-import."""
    parts = package.split(".") if package else []
    # level=1 means "the current package", each further level strips one.
    parts = parts[: len(parts) - (level - 1)] if level - 1 else parts
    if module:
        parts = parts + module.split(".")
    return ".".join(parts)


@dataclass
class SourceModule:
    """One parsed source file plus the lookups rules need over it."""

    #: Repo-root-relative POSIX path of the file (as findings report it).
    path: str
    #: Dotted module name relative to the linted root, e.g. ``repro.sim.sweep``.
    name: str
    #: The parsed abstract syntax tree.
    tree: ast.Module
    #: The file's physical source lines (1-indexed via ``lines[i - 1]``).
    lines: list[str]
    _aliases: dict[str, str] = field(default_factory=dict, repr=False)

    @property
    def package(self) -> str:
        """The module's parent package (itself, for a package ``__init__``)."""
        if self.path.endswith("__init__.py"):
            return self.name
        return self.name.rpartition(".")[0]

    def _build_aliases(self) -> dict[str, str]:
        """Local name -> canonical dotted target, from the module's imports."""
        aliases: dict[str, str] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for item in node.names:
                    local = item.asname or item.name.split(".")[0]
                    target = item.name if item.asname else item.name.split(".")[0]
                    aliases[local] = target
            elif isinstance(node, ast.ImportFrom):
                base = (
                    _resolve_relative(self.package, node.level, node.module)
                    if node.level
                    else (node.module or "")
                )
                for item in node.names:
                    if item.name == "*":
                        continue
                    local = item.asname or item.name
                    aliases[local] = f"{base}.{item.name}" if base else item.name
        return aliases

    @property
    def aliases(self) -> dict[str, str]:
        """Import-alias map (``np`` -> ``numpy``), built lazily and cached."""
        if not self._aliases:
            self._aliases = self._build_aliases()
        return self._aliases

    def dotted(self, node: ast.expr) -> str | None:
        """Canonical dotted name of a ``Name`` / ``Attribute`` chain.

        The chain's base name is resolved through the module's import
        aliases, so ``np.random.shuffle`` canonicalizes to
        ``numpy.random.shuffle`` and a bare ``perf_counter`` imported from
        :mod:`time` canonicalizes to ``time.perf_counter``.  Returns None
        for expressions that are not plain attribute chains.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self.aliases.get(node.id, node.id)
        parts.append(base)
        return ".".join(reversed(parts))

    def call_name(self, node: ast.Call) -> str | None:
        """Canonical dotted name of a call's callee (None when not a chain)."""
        return self.dotted(node.func)


@dataclass
class Project:
    """Every parsed module under the linted root, in path order."""

    root: Path
    modules: list[SourceModule]

    def module(self, name: str) -> SourceModule | None:
        """Look one module up by its dotted name (None when absent)."""
        for module in self.modules:
            if module.name == name:
                return module
        return None


class Rule(abc.ABC):
    """One design rule: a whole-program check producing :class:`Finding`\\ s.

    Subclasses set the class attributes (``id`` must be unique across the
    rule set; :func:`repro.analysis.rules.discover_rules` enforces it) and
    implement :meth:`check`.  Rules that work file-by-file should subclass
    :class:`ModuleRule` instead and get module-prefix scoping for free.
    """

    #: Unique rule identifier, e.g. ``DET001`` (used in pragmas / baselines).
    id: ClassVar[str] = ""
    #: One-line summary of what the rule forbids.
    title: ClassVar[str] = ""
    #: Why violating the rule corrupts caching / reproducibility.
    rationale: ClassVar[str] = ""
    #: Whether findings gate CI (:attr:`Severity.ERROR`) or only advise.
    severity: ClassVar[Severity] = Severity.ERROR

    @abc.abstractmethod
    def check(self, project: Project) -> Iterator[Finding]:
        """Yield every violation of this rule found in ``project``."""

    def finding(self, module: SourceModule, node: ast.AST, message: str) -> Finding:
        """Build one :class:`Finding` at ``node``'s location in ``module``."""
        return Finding(
            rule_id=self.id,
            severity=self.severity,
            path=module.path,
            line=getattr(node, "lineno", 1),
            message=message,
        )


class ModuleRule(Rule):
    """A rule checked independently per module, scoped by dotted prefixes.

    ``scope`` limits the rule to modules matching any prefix (empty means
    every module); ``exempt`` then carves allowed modules back out -- e.g.
    the wall-clock rule exempts ``repro.perf``, whose whole point is
    measuring wall time.  A prefix matches the module itself and everything
    beneath it.
    """

    #: Dotted module prefixes the rule applies to (empty: all modules).
    scope: ClassVar[tuple[str, ...]] = ()
    #: Dotted module prefixes exempted from the rule.
    exempt: ClassVar[tuple[str, ...]] = ()

    @staticmethod
    def _matches(name: str, prefixes: tuple[str, ...]) -> bool:
        """Whether ``name`` is one of ``prefixes`` or nested under one."""
        return any(
            name == prefix or name.startswith(prefix + ".") for prefix in prefixes
        )

    def applies_to(self, module: SourceModule) -> bool:
        """Whether ``module`` is inside the rule's scope and not exempted."""
        if self.scope and not self._matches(module.name, self.scope):
            return False
        return not self._matches(module.name, self.exempt)

    def check(self, project: Project) -> Iterator[Finding]:
        """Run :meth:`check_module` over every in-scope module."""
        for module in project.modules:
            if self.applies_to(module):
                yield from self.check_module(module)

    @abc.abstractmethod
    def check_module(self, module: SourceModule) -> Iterator[Finding]:
        """Yield every violation of this rule inside one module."""

"""Rendering of lint reports: the CLI's ``table`` and ``json`` formats.

Mirrors the conventions of the experiment CLI renderers: the table format
is aligned fixed-width text for humans, the JSON format is an
indent-2 document with a stable schema (guarded by the test suite) for
tooling.
"""

from __future__ import annotations

import json

from repro.analysis.driver import LintReport


def render_json(report: LintReport) -> str:
    """The report as a stable-schema JSON document."""
    return json.dumps(report.to_dict(), indent=2)


def render_table(report: LintReport) -> str:
    """The report as human-readable diagnostic lines plus a summary.

    One ``path:line: RULE [severity] message`` line per actionable
    finding, stale-baseline notes, and a final summary line the CI log
    always shows.
    """
    lines = []
    for finding in report.findings:
        lines.append(
            f"{finding.location()}: {finding.rule_id} "
            f"[{finding.severity.value}] {finding.message}"
        )
    for entry in report.stale_baseline:
        lines.append(
            f"note: stale baseline entry ({entry.rule} at {entry.path}) "
            f"matches nothing; remove it or rerun --update-baseline"
        )
    summary = (
        f"{len(report.findings)} finding(s), "
        f"{len(report.suppressed)} suppressed inline, "
        f"{len(report.baselined)} baselined"
    )
    if report.clean:
        summary = "clean: " + summary
    lines.append(summary)
    return "\n".join(lines)

"""The committed lint baseline: grandfathered findings with justifications.

A baseline entry matches a finding by *content* -- (rule, path, message) --
never by line number, so unrelated edits that move code do not resurrect
grandfathered findings.  Every entry carries a one-line ``justification``
explaining why it is a tolerated false positive rather than a defect;
``repro lint --update-baseline`` regenerates the file, preserving the
justifications of entries that survive.

The file is plain sorted JSON so diffs stay reviewable; see
``docs/linting.md`` for the policy on when baselining is acceptable.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.base import Finding

#: The ``schema`` marker every baseline file carries.
BASELINE_SCHEMA = "repro-lint-baseline"

#: Version of the baseline layout; bump on structural change.
BASELINE_SCHEMA_VERSION = 1

#: Justification placeholder ``--update-baseline`` writes for new entries.
TODO_JUSTIFICATION = "TODO: justify why this finding is a false positive"


@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered finding: its content key plus the justification."""

    rule: str
    path: str
    message: str
    justification: str = TODO_JUSTIFICATION

    @property
    def key(self) -> tuple[str, str, str]:
        """The content identity matched against :attr:`Finding.key`."""
        return (self.rule, self.path, self.message)

    def to_dict(self) -> dict[str, str]:
        """JSON-safe form, one entry of the baseline file."""
        return {
            "rule": self.rule,
            "path": self.path,
            "message": self.message,
            "justification": self.justification,
        }


@dataclass(frozen=True)
class Baseline:
    """A loaded baseline file: entries plus the path they came from."""

    path: Path | None
    entries: tuple[BaselineEntry, ...] = ()

    def matches(self, finding: Finding) -> bool:
        """Whether ``finding`` is grandfathered by some entry."""
        return finding.key in {entry.key for entry in self.entries}

    def stale_entries(self, findings: Iterable[Finding]) -> tuple[BaselineEntry, ...]:
        """Entries matching no current finding (candidates for removal)."""
        live = {finding.key for finding in findings}
        return tuple(entry for entry in self.entries if entry.key not in live)


def load_baseline(path: Path) -> Baseline:
    """Read a baseline file; a missing file is an empty baseline.

    Malformed files raise ValueError with a one-line description -- a
    silently ignored baseline would un-grandfather every entry and fail
    the build confusingly.
    """
    if not path.exists():
        return Baseline(path=path)
    try:
        document = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise ValueError(f"cannot read baseline {path}: {exc}") from None
    if not isinstance(document, dict) or document.get("schema") != BASELINE_SCHEMA:
        raise ValueError(f"{path} is not a '{BASELINE_SCHEMA}' document")
    if document.get("schema_version") != BASELINE_SCHEMA_VERSION:
        raise ValueError(
            f"{path} has baseline schema version "
            f"{document.get('schema_version')}, expected {BASELINE_SCHEMA_VERSION}"
        )
    entries = []
    for index, raw in enumerate(document.get("entries", [])):
        if not isinstance(raw, dict) or not all(
            isinstance(raw.get(k), str) for k in ("rule", "path", "message")
        ):
            raise ValueError(f"{path}: entry {index} lacks rule/path/message")
        entries.append(
            BaselineEntry(
                rule=raw["rule"],
                path=raw["path"],
                message=raw["message"],
                justification=str(
                    raw.get("justification", TODO_JUSTIFICATION)
                ),
            )
        )
    return Baseline(path=path, entries=tuple(entries))


def update_baseline(
    path: Path, findings: Sequence[Finding], previous: Baseline
) -> Baseline:
    """Write ``path`` grandfathering exactly ``findings``; returns the result.

    Justifications of entries that survive the update are preserved; new
    entries get :data:`TODO_JUSTIFICATION` so review can spot them.  The
    entry list is deduplicated and sorted for stable diffs.
    """
    kept = {entry.key: entry.justification for entry in previous.entries}
    entries = sorted(
        {
            BaselineEntry(
                rule=finding.rule_id,
                path=finding.path,
                message=finding.message,
                justification=kept.get(finding.key, TODO_JUSTIFICATION),
            )
            for finding in findings
        },
        key=lambda entry: entry.key,
    )
    document = {
        "schema": BASELINE_SCHEMA,
        "schema_version": BASELINE_SCHEMA_VERSION,
        "entries": [entry.to_dict() for entry in entries],
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=2) + "\n")
    return Baseline(path=path, entries=tuple(entries))

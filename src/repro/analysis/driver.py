"""The lint driver: parse a tree, run rules, apply suppressions + baseline.

:func:`run_lint` is the one entry point the CLI, CI and the test suite
share.  It loads every ``*.py`` under a root into a
:class:`~repro.analysis.base.Project`, runs the (optionally filtered) rule
set, then partitions the raw findings three ways:

* **suppressed** -- carrying a matching inline
  ``# repro: lint-ignore[RULE-ID]`` pragma on the flagged line (or alone on
  the line directly above it);
* **baselined** -- grandfathered by the committed baseline file
  (:mod:`repro.analysis.baseline`), matched on content, not line numbers;
* **findings** -- everything else: these gate CI.

Files that fail to parse surface as :data:`SYNTAX_RULE_ID` findings rather
than crashing the pass -- a tree the linter cannot read is not a tree it
can vouch for.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.base import Finding, Project, Rule, Severity, SourceModule
from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.rules import discover_rules

#: Pseudo rule id of files the parser could not read (always reported).
SYNTAX_RULE_ID = "SYNTAX"

#: Inline suppression pragma: ``# repro: lint-ignore[DET001]`` (one or more
#: comma-separated rule ids, or ``*`` for all rules).
_PRAGMA = re.compile(r"#\s*repro:\s*lint-ignore\[([A-Za-z0-9_*,\s]+)\]")


def default_lint_root() -> Path:
    """What ``repro lint`` scans by default: the installed package's tree.

    Anchored to the source checkout containing this package (mirroring
    :func:`repro.experiments.catalog.default_catalog_path`), so the
    installed console script lints the real sources from any working
    directory.  The root is the ``src/`` directory, so module names carry
    their full ``repro.`` prefix and rule scopes match.
    """
    return Path(__file__).resolve().parents[2]


def default_baseline_path() -> Path:
    """Where the committed baseline lives: ``lint-baseline.json`` at the root."""
    root = Path(__file__).resolve().parents[3]
    if (root / "pyproject.toml").exists():
        return root / "lint-baseline.json"
    return Path("lint-baseline.json")


def _module_name(rel_path: Path) -> str:
    """Dotted module name of a file path relative to the linted root."""
    parts = list(rel_path.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def load_project(root: Path) -> tuple[Project, list[Finding]]:
    """Parse every ``*.py`` under ``root``; unparseable files become findings."""
    modules: list[SourceModule] = []
    problems: list[Finding] = []
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root)
        rel_posix = rel.as_posix()
        try:
            text = path.read_text()
            tree = ast.parse(text, filename=str(path))
        except (OSError, SyntaxError, ValueError) as exc:
            line = getattr(exc, "lineno", None) or 1
            problems.append(
                Finding(
                    rule_id=SYNTAX_RULE_ID,
                    severity=Severity.ERROR,
                    path=rel_posix,
                    line=int(line),
                    message=f"file could not be parsed: {exc}",
                )
            )
            continue
        modules.append(
            SourceModule(
                path=rel_posix,
                name=_module_name(rel),
                tree=tree,
                lines=text.splitlines(),
            )
        )
    return Project(root=root, modules=modules), problems


def suppressed_ids(lines: Sequence[str], line: int) -> frozenset[str]:
    """Rule ids suppressed at physical ``line`` (1-indexed) of a file.

    A pragma suppresses the line it sits on; a pragma on a comment-only
    line additionally covers the following line, so multi-rule or long
    messages can be acknowledged without overlong source lines.
    """
    ids: set[str] = set()
    for candidate in (line, line - 1):
        if not 1 <= candidate <= len(lines):
            continue
        text = lines[candidate - 1]
        match = _PRAGMA.search(text)
        if match is None:
            continue
        comment_only = text.strip().startswith("#")
        if candidate == line - 1 and not comment_only:
            continue  # a trailing pragma covers its own line only
        ids.update(part.strip() for part in match.group(1).split(",") if part.strip())
    return frozenset(ids)


def _is_suppressed(finding: Finding, module: SourceModule | None) -> bool:
    """Whether ``finding`` carries a matching inline pragma."""
    if module is None:
        return False
    ids = suppressed_ids(module.lines, finding.line)
    return finding.rule_id in ids or "*" in ids


@dataclass(frozen=True)
class LintReport:
    """Outcome of one lint pass, already partitioned for reporting.

    ``findings`` are the actionable diagnostics (exit code 1 when
    non-empty); ``suppressed`` / ``baselined`` record what the pragmas and
    the baseline absorbed; ``stale_baseline`` lists baseline entries that
    no longer match anything (time to delete them).
    """

    root: str
    rules: tuple[type[Rule], ...]
    findings: tuple[Finding, ...]
    suppressed: tuple[Finding, ...]
    baselined: tuple[Finding, ...]
    stale_baseline: tuple[BaselineEntry, ...]

    @property
    def clean(self) -> bool:
        """Whether the pass found nothing actionable."""
        return not self.findings

    def to_dict(self) -> dict[str, object]:
        """JSON-safe form, the ``repro lint --format json`` document."""
        return {
            "schema": "repro-lint",
            "schema_version": 1,
            "root": self.root,
            "rules": [
                {
                    "id": rule.id,
                    "title": rule.title,
                    "severity": rule.severity.value,
                }
                for rule in self.rules
            ],
            "findings": [finding.to_dict() for finding in self.findings],
            "suppressed": [finding.to_dict() for finding in self.suppressed],
            "baselined": [finding.to_dict() for finding in self.baselined],
            "stale_baseline": [entry.to_dict() for entry in self.stale_baseline],
            "clean": self.clean,
        }


def select_rules(
    rule_ids: Iterable[str] | None = None,
) -> tuple[type[Rule], ...]:
    """The discovered rule set, optionally filtered to ``rule_ids``.

    Unknown ids raise ValueError with the valid set -- a typo silently
    selecting zero rules would report a misleading clean pass.
    """
    rules = discover_rules()
    if rule_ids is None:
        return rules
    wanted = list(rule_ids)
    known = {rule.id for rule in rules}
    unknown = sorted(set(wanted) - known)
    if unknown:
        raise ValueError(
            f"unknown rule id(s) {', '.join(unknown)}; "
            f"valid: {', '.join(sorted(known))}"
        )
    return tuple(rule for rule in rules if rule.id in set(wanted))


def run_lint(
    root: Path,
    rule_ids: Iterable[str] | None = None,
    baseline: Baseline | None = None,
) -> LintReport:
    """Lint the tree under ``root`` and return the partitioned report."""
    rules = select_rules(rule_ids)
    project, raw = load_project(root)
    for rule_class in rules:
        raw.extend(rule_class().check(project))
    raw.sort(key=lambda f: (f.path, f.line, f.rule_id, f.message))

    by_path = {module.path: module for module in project.modules}
    actionable: list[Finding] = []
    suppressed: list[Finding] = []
    baselined: list[Finding] = []
    for finding in raw:
        if _is_suppressed(finding, by_path.get(finding.path)):
            suppressed.append(finding)
        elif baseline is not None and baseline.matches(finding):
            baselined.append(finding)
        else:
            actionable.append(finding)
    # Staleness is only judgeable for rules that actually ran: a --rules
    # subset must not report the other rules' entries as removable.
    active = {rule.id for rule in rules} | {SYNTAX_RULE_ID}
    stale = tuple(
        entry
        for entry in (baseline.stale_entries(raw) if baseline is not None else ())
        if entry.rule in active
    )
    return LintReport(
        root=str(root),
        rules=rules,
        findings=tuple(actionable),
        suppressed=tuple(suppressed),
        baselined=tuple(baselined),
        stale_baseline=tuple(stale),
    )

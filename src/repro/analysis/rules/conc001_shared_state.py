"""CONC001: unlocked mutation of shared state on parallel code paths."""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator

from repro.analysis.base import Finding, ModuleRule, SourceModule

#: Method names that mutate their receiver in place.
_MUTATORS = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "popleft",
        "clear",
        "extend",
        "insert",
        "remove",
        "discard",
        "sort",
    }
)

#: Constructor callees whose results are mutable containers.
_MUTABLE_CALLS = frozenset(
    {
        "dict",
        "list",
        "set",
        "collections.defaultdict",
        "collections.OrderedDict",
        "collections.Counter",
        "collections.deque",
    }
)


def _is_mutable_value(module: SourceModule, node: ast.expr | None) -> bool:
    """Whether an assigned value is statically a mutable container."""
    if node is None:
        return False
    if isinstance(
        node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
    ):
        return True
    if isinstance(node, ast.Call):
        return module.call_name(node) in _MUTABLE_CALLS
    return False


def _bound_mutables(body: list[ast.stmt], module: SourceModule) -> set[str]:
    """Names bound to mutable containers by the given statement list."""
    out: set[str] = set()
    for statement in body:
        value: ast.expr | None = None
        targets: list[ast.expr] = []
        if isinstance(statement, ast.Assign):
            value, targets = statement.value, list(statement.targets)
        elif isinstance(statement, ast.AnnAssign):
            value, targets = statement.value, [statement.target]
        if not _is_mutable_value(module, value):
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                out.add(target.id)
    return out


def _class_level_mutables(node: ast.ClassDef, module: SourceModule) -> set[str]:
    """Class-body attribute names bound to mutable containers.

    Attributes re-assigned per instance (``self.X = ...`` in any method)
    are excluded: those become instance state, not shared class state.
    """
    mutable = _bound_mutables(node.body, module)
    if not mutable:
        return mutable
    for item in ast.walk(node):
        if isinstance(item, ast.Assign):
            for target in item.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    mutable.discard(target.attr)
    return mutable


def _lock_guarded(node: ast.With, module: SourceModule) -> bool:
    """Whether a ``with`` statement's context manager looks like a lock."""
    for item in node.items:
        expr = item.context_expr
        target = expr.func if isinstance(expr, ast.Call) else expr
        name = module.dotted(target)
        if name is None and isinstance(target, ast.Attribute):
            name = target.attr
        if name is not None and "lock" in name.lower():
            return True
    return False


def _own_nodes(statement: ast.stmt) -> Iterator[ast.AST]:
    """The statement and its expressions, without nested statements."""

    def walk(node: ast.AST) -> Iterator[ast.AST]:
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.stmt):
                continue
            yield from walk(child)

    yield from walk(statement)


class SharedStateRule(ModuleRule):
    """Flag unlocked mutation of module/class-level state on parallel paths.

    The sweep engine fans experiments over threads (``repro run --jobs``)
    and cache misses over a process pool; any module-level or class-level
    mutable container mutated on those paths without a lock is a data race
    -- lost updates at best, corrupted caches at worst.  The engine's own
    caches mutate under ``self._lock``; mutations lexically inside a
    ``with <...lock...>:`` block, and instance state assigned per object,
    are recognised as safe.
    """

    id = "CONC001"
    title = "unlocked shared-state mutation on a parallel code path"
    rationale = (
        "repro run --jobs and the process-pool prefill run this code "
        "concurrently; mutating module- or class-level containers without "
        "a lock races, silently corrupting caches and statistics.  Guard "
        "the mutation with a lock, as the engine's caches do."
    )
    #: The subsystems that execute under threads / process pools.
    scope: ClassVar[tuple[str, ...]] = ("repro.sim", "repro.serve", "repro.perf")

    def _statement_mutations(
        self,
        statement: ast.stmt,
        globals_: set[str],
        class_mutables: set[str],
        declared_global: set[str],
    ) -> Iterator[tuple[ast.AST, str]]:
        """Racy mutations in one statement's own expressions (no blocks)."""

        def receiver_kind(expr: ast.expr) -> str | None:
            if isinstance(expr, ast.Name) and expr.id in globals_:
                return f"module-level '{expr.id}'"
            if (
                isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
                and expr.attr in class_mutables
            ):
                return f"class-level 'self.{expr.attr}'"
            return None

        for node in _own_nodes(statement):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr in _MUTATORS:
                    kind = receiver_kind(node.func.value)
                    if kind is not None:
                        yield node, f"{kind} mutated via .{node.func.attr}()"
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Subscript):
                        kind = receiver_kind(target.value)
                        if kind is not None:
                            yield node, f"{kind} mutated via item assignment"
                    elif (
                        isinstance(target, ast.Name)
                        and target.id in declared_global
                    ):
                        yield node, (
                            f"module-level '{target.id}' rebound via "
                            f"'global' without a lock"
                        )
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if isinstance(target, ast.Subscript):
                        kind = receiver_kind(target.value)
                        if kind is not None:
                            yield node, f"{kind} mutated via del"

    def _block_mutations(
        self,
        body: list[ast.stmt],
        module: SourceModule,
        globals_: set[str],
        class_mutables: set[str],
        declared_global: set[str],
    ) -> Iterator[tuple[ast.AST, str]]:
        """Racy mutations in a statement block, honouring lock guards."""
        for statement in body:
            if isinstance(statement, ast.Global):
                declared_global.update(statement.names)
                continue
            if isinstance(statement, ast.With) and _lock_guarded(statement, module):
                continue  # everything under a lock is presumed safe
            if isinstance(
                statement, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue  # nested definitions are visited separately
            yield from self._statement_mutations(
                statement, globals_, class_mutables, declared_global
            )
            for attr in ("body", "orelse", "finalbody"):
                inner = getattr(statement, attr, None)
                if isinstance(inner, list):
                    yield from self._block_mutations(
                        inner, module, globals_, class_mutables, declared_global
                    )
            for handler in getattr(statement, "handlers", None) or []:
                yield from self._block_mutations(
                    handler.body, module, globals_, class_mutables, declared_global
                )

    def check_module(self, module: SourceModule) -> Iterator[Finding]:
        """Flag racy shared-state mutation inside every function body."""
        globals_ = _bound_mutables(module.tree.body, module)

        def visit(node: ast.AST, class_mutables: set[str]) -> Iterator[Finding]:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.ClassDef):
                    yield from visit(child, _class_level_mutables(child, module))
                elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    declared: set[str] = set()
                    for racy, description in self._block_mutations(
                        list(child.body),
                        module,
                        globals_,
                        class_mutables,
                        declared,
                    ):
                        yield self.finding(
                            module,
                            racy,
                            f"{description} on a --jobs/process-pool code "
                            f"path; guard it with a lock, as the engine's "
                            f"caches do",
                        )
                    yield from visit(child, class_mutables)
                else:
                    yield from visit(child, class_mutables)

        yield from visit(module.tree, set())

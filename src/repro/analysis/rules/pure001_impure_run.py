"""PURE001: experiment bodies doing I/O behind the result store's back."""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator

from repro.analysis.base import Finding, ModuleRule, SourceModule

#: Canonical callee names that touch the filesystem or process environment.
_IMPURE_CALLS = frozenset(
    {
        "open",
        "os.getenv",
        "os.putenv",
        "os.listdir",
        "os.remove",
        "os.unlink",
        "os.rename",
        "os.replace",
        "os.makedirs",
        "os.mkdir",
        "os.scandir",
        "os.stat",
        "os.system",
        "subprocess.run",
        "subprocess.check_output",
        "subprocess.check_call",
        "subprocess.Popen",
    }
)

#: Impure canonical-name prefixes (any attribute under them is flagged).
_IMPURE_PREFIXES = ("tempfile.", "shutil.", "os.path.")

#: ``pathlib.Path`` methods that read or write the filesystem.  Matched by
#: attribute name on *any* receiver: inside an experiment body a
#: ``.read_text()`` is filesystem access no matter what it hangs off.
_PATH_IO_METHODS = frozenset(
    {
        "read_text",
        "write_text",
        "read_bytes",
        "write_bytes",
        "mkdir",
        "rmdir",
        "unlink",
        "touch",
        "glob",
        "rglob",
        "iterdir",
    }
)


def _is_experiment_decorator(module: SourceModule, node: ast.expr) -> bool:
    """Whether a decorator expression is the ``@experiment(...)`` registrar."""
    target = node.func if isinstance(node, ast.Call) else node
    name = module.dotted(target)
    return bool(name) and name.split(".")[-1] == "experiment"


class ImpureRunRule(ModuleRule):
    """Flag filesystem / environment access inside experiment ``run`` bodies.

    Cached experiment results are keyed purely on parameters, device
    fingerprints and workload digests; a ``run()`` that also reads files or
    ``os.environ`` has inputs the key never sees, so the store happily
    replays results computed under *different* external state.  All
    persistence belongs to the :class:`repro.perf.store.ResultStore` /
    CLI layer, which owns the artifacts directory and the cache key.
    """

    id = "PURE001"
    title = "experiment run() touches the filesystem or environment"
    rationale = (
        "Experiment results are cached by (params, device fingerprints, "
        "workload digests); file or environment reads inside run() are "
        "inputs the cache key cannot see, so warm replays return results "
        "computed under different external state."
    )
    scope: ClassVar[tuple[str, ...]] = ("repro.experiments",)
    #: The CLI / catalog layer legitimately writes artifacts and docs.
    exempt: ClassVar[tuple[str, ...]] = (
        "repro.experiments.cli",
        "repro.experiments.catalog",
    )

    def _experiment_functions(
        self, module: SourceModule
    ) -> Iterator[ast.FunctionDef]:
        """Functions registered with ``@experiment`` (or simply named run)."""
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.FunctionDef):
                continue
            if node.name == "run" or any(
                _is_experiment_decorator(module, decorator)
                for decorator in node.decorator_list
            ):
                yield node

    def _impure_accesses(
        self, module: SourceModule, fn: ast.FunctionDef
    ) -> Iterator[tuple[ast.AST, str]]:
        """Yield (node, description) for each impure access inside ``fn``."""
        for node in ast.walk(fn):
            if isinstance(node, ast.Call):
                name = module.call_name(node)
                if name in _IMPURE_CALLS or (
                    name is not None and name.startswith(_IMPURE_PREFIXES)
                ):
                    yield node, f"call to '{name}'"
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in _PATH_IO_METHODS
                ):
                    yield node, f"filesystem method '.{node.func.attr}()'"
            elif isinstance(node, ast.Attribute) and node.attr == "environ":
                name = module.dotted(node)
                if name == "os.environ":
                    yield node, "'os.environ' read"

    def check_module(self, module: SourceModule) -> Iterator[Finding]:
        """Flag impure access inside every experiment body of ``module``."""
        for fn in self._experiment_functions(module):
            for node, description in self._impure_accesses(module, fn):
                yield self.finding(
                    module,
                    node,
                    f"{description} inside experiment '{fn.name}()': state "
                    f"bypassing the ResultStore cannot reach the cache key",
                )

"""The shipped rule set, one module per rule, discovered dynamically.

Adding a rule is one file: drop a module defining a
:class:`repro.analysis.base.Rule` subclass (with a unique ``id``) into
this package and :func:`discover_rules` picks it up -- the CLI's
``--rules`` filter, the generated docs catalog and the test suite all
enumerate through here.
"""

from __future__ import annotations

import importlib
import pkgutil

from repro.analysis.base import Rule


def discover_rules() -> tuple[type[Rule], ...]:
    """Every concrete rule class shipped in this package, sorted by id.

    Scans the package's submodules for :class:`Rule` subclasses that
    declare an ``id``, enforcing id uniqueness (two rules claiming one id
    would make pragmas and baselines ambiguous).
    """
    by_id: dict[str, type[Rule]] = {}
    for info in sorted(pkgutil.iter_modules(__path__), key=lambda i: i.name):
        module = importlib.import_module(f"{__name__}.{info.name}")
        for obj in vars(module).values():
            if (
                isinstance(obj, type)
                and issubclass(obj, Rule)
                and obj.__module__ == module.__name__
                and getattr(obj, "id", "")
            ):
                existing = by_id.get(obj.id)
                if existing is not None and existing is not obj:
                    raise ValueError(
                        f"duplicate rule id '{obj.id}': "
                        f"{existing.__qualname__} and {obj.__qualname__}"
                    )
                by_id[obj.id] = obj
    return tuple(by_id[rule_id] for rule_id in sorted(by_id))


__all__ = ["discover_rules"]

"""DET003: ordering-sensitive iteration over unordered sets."""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator

from repro.analysis.base import Finding, ModuleRule, SourceModule

#: Builtin constructors producing unordered collections.
_UNORDERED_CALLS = frozenset({"set", "frozenset"})

#: Callees whose argument order lands in an ordered output (so feeding them
#: a set makes that output hash-order dependent).
_ORDER_SENSITIVE_CALLS = frozenset({"list", "tuple", "enumerate", "iter"})


def _is_unordered(module: SourceModule, node: ast.expr) -> bool:
    """Whether ``node`` statically evaluates to an unordered collection."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return module.call_name(node) in _UNORDERED_CALLS
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        # Set algebra: unordered if either side visibly is.
        return _is_unordered(module, node.left) or _is_unordered(module, node.right)
    return False


class UnorderedIterationRule(ModuleRule):
    """Flag iteration over sets where element order reaches an output.

    Set iteration order depends on insertion history and value hashing
    (``PYTHONHASHSEED`` for strings), so a ``for`` loop, comprehension,
    ``str.join`` or ``list()`` over a set produces run-dependent order.  In
    the modules that feed store-key digests and rendered tables that means
    different cache keys -- or different bytes -- for identical content.
    Wrap the set in ``sorted(...)`` instead; order-insensitive reductions
    (``len`` / ``sum`` / ``min`` / ``max`` / ``any`` / ``all`` /
    membership) are fine and not flagged.
    """

    id = "DET003"
    title = "unordered set iteration feeding digests or rendered output"
    rationale = (
        "Set iteration order is a function of value hashing and insertion "
        "history, not content; in digest- and table-producing code it "
        "makes byte-identical inputs hash or render differently across "
        "runs.  Iterate sorted(the_set) instead."
    )
    #: The digest- and rendering-producing modules the rule guards.
    scope: ClassVar[tuple[str, ...]] = (
        "repro.perf",
        "repro.core.device",
        "repro.experiments.api",
        "repro.experiments.cli",
        "repro.experiments.catalog",
        "repro.serve.report",
    )

    def _flagged_expressions(
        self, module: SourceModule
    ) -> Iterator[tuple[ast.expr, str]]:
        """Yield (unordered expression, consuming context) pairs."""
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if _is_unordered(module, node.iter):
                    yield node.iter, "a for loop"
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                for comp in node.generators:
                    if _is_unordered(module, comp.iter):
                        yield comp.iter, "a comprehension"
            elif isinstance(node, ast.Call):
                name = module.call_name(node)
                is_join = isinstance(node.func, ast.Attribute) and (
                    node.func.attr == "join"
                )
                if name in _ORDER_SENSITIVE_CALLS or is_join:
                    context = "str.join" if is_join else f"{name}()"
                    for arg in node.args:
                        if _is_unordered(module, arg):
                            yield arg, context

    def check_module(self, module: SourceModule) -> Iterator[Finding]:
        """Flag every order-sensitive consumption of a set in ``module``."""
        for expr, context in self._flagged_expressions(module):
            yield self.finding(
                module,
                expr,
                f"set iterated by {context}: element order is "
                f"hash/insertion dependent; wrap it in sorted(...)",
            )

"""DET002: wall-clock reads outside the measurement / provenance layer."""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator

from repro.analysis.base import Finding, ModuleRule, SourceModule

#: Canonical callee names that read the wall clock (or a monotonic clock --
#: equally non-reproducible as a *result* input).
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.clock_gettime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


class WallClockRule(ModuleRule):
    """Flag wall-clock reads anywhere but ``repro.perf``.

    A timestamp that reaches a simulated result, a rendered table or a
    store-key digest makes every run unique: warm replays stop being
    byte-identical and shard outputs stop matching the serial run.  Only
    the measurement harness (``repro.perf`` -- bench timings, store entry
    timestamps) legitimately reads clocks; provenance wall-time capture
    elsewhere carries an inline ``lint-ignore`` with its justification.
    """

    id = "DET002"
    title = "wall-clock read outside repro.perf"
    rationale = (
        "Clock reads feeding results, tables or digests make every run "
        "unique, breaking byte-identical warm replays and shard/serial "
        "equivalence.  Measure time only in repro.perf, or suppress with "
        "a justified inline pragma where wall time *is* the datum."
    )
    exempt: ClassVar[tuple[str, ...]] = ("repro.perf",)

    def check_module(self, module: SourceModule) -> Iterator[Finding]:
        """Flag every wall-clock call in ``module``."""
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = module.call_name(node)
            if name in WALL_CLOCK_CALLS:
                yield self.finding(
                    module,
                    node,
                    f"'{name}' reads the clock outside repro.perf; results "
                    f"must not depend on when they were computed",
                )

"""STORE001: device state invisible to the store's cache key."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from repro.analysis.base import Finding, Project, Rule, SourceModule

#: The root of the adapter hierarchy (its own empty ``_fingerprint_state``
#: is the documented default, not a violation).
_BASE_CLASS = "Device"

#: Instance attributes the protocol-level :meth:`Device.fingerprint` already
#: covers, so adapters need not re-emit them.
_PROTOCOL_ATTRS = frozenset({"name"})


@dataclass
class _ClassInfo:
    """What STORE001 needs to know about one class definition."""

    name: str
    module: SourceModule
    node: ast.ClassDef
    base_names: tuple[str, ...]
    #: ``self.X`` attributes assigned in ``__init__`` -> assignment node.
    init_attrs: dict[str, ast.AST] = field(default_factory=dict)
    #: Dataclass field names (annotated class-level assignments).
    dataclass_attrs: dict[str, ast.AST] = field(default_factory=dict)
    #: Whether the class body defines ``_fingerprint_state``.
    has_fingerprint: bool = False
    #: ``self.X`` names read anywhere inside ``_fingerprint_state``.
    fingerprint_refs: frozenset[str] = frozenset()


def _self_attribute_targets(fn: ast.FunctionDef) -> Iterator[tuple[str, ast.AST]]:
    """Yield ``(attr, node)`` for every ``self.attr = ...`` in ``fn``."""
    for node in ast.walk(fn):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                yield target.attr, node


def _self_attribute_reads(fn: ast.FunctionDef) -> frozenset[str]:
    """Every ``self.X`` attribute name referenced anywhere inside ``fn``."""
    return frozenset(
        node.attr
        for node in ast.walk(fn)
        if isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


def _is_dataclass_decorated(node: ast.ClassDef, module: SourceModule) -> bool:
    """Whether the class carries a ``dataclass`` decorator."""
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = module.dotted(target)
        if name and name.split(".")[-1] == "dataclass":
            return True
    return False


def _collect_class(module: SourceModule, node: ast.ClassDef) -> _ClassInfo:
    """Extract the attribute / fingerprint summary of one class body."""
    info = _ClassInfo(
        name=node.name,
        module=module,
        node=node,
        base_names=tuple(
            (module.dotted(base) or "").split(".")[-1] for base in node.bases
        ),
    )
    if _is_dataclass_decorated(node, module):
        for statement in node.body:
            if isinstance(statement, ast.AnnAssign) and isinstance(
                statement.target, ast.Name
            ):
                info.dataclass_attrs[statement.target.id] = statement
    for statement in node.body:
        if not isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if statement.name == "__init__" and isinstance(statement, ast.FunctionDef):
            for attr, assign in _self_attribute_targets(statement):
                info.init_attrs.setdefault(attr, assign)
        if statement.name == "_fingerprint_state" and isinstance(
            statement, ast.FunctionDef
        ):
            info.has_fingerprint = True
            info.fingerprint_refs = _self_attribute_reads(statement)
    return info


class FingerprintCoverageRule(Rule):
    """Cross-check each ``Device`` adapter's state against its fingerprint.

    The persistent result store keys frame simulations on
    :meth:`repro.core.device.Device.fingerprint`, which hashes what
    ``_fingerprint_state()`` emits.  Any behavioural attribute an adapter's
    ``__init__`` (or dataclass body) sets but its ``_fingerprint_state``
    never references is invisible to the cache key: two differently
    configured instances collide on one store entry and warm runs replay
    *stale* results.  The rule resolves ``_fingerprint_state`` up the
    class hierarchy (by name, within the linted tree), so adapters relying
    on an inherited fingerprint are checked against it.
    """

    id = "STORE001"
    title = "device attribute missing from _fingerprint_state"
    rationale = (
        "The store keys simulations on Device.fingerprint(); constructor "
        "state that _fingerprint_state() does not emit cannot invalidate "
        "cache entries, so differently configured devices silently share "
        "-- and replay stale -- stored results."
    )

    def _device_classes(
        self, classes: dict[str, _ClassInfo]
    ) -> dict[str, _ClassInfo]:
        """The transitive subclasses of :data:`_BASE_CLASS` in the project."""

        def is_device(name: str, seen: frozenset[str]) -> bool:
            if name == _BASE_CLASS:
                return True
            info = classes.get(name)
            if info is None or name in seen:
                return False
            return any(
                is_device(base, seen | {name}) for base in info.base_names
            )

        return {
            name: info
            for name, info in classes.items()
            if name != _BASE_CLASS and is_device(name, frozenset())
        }

    def _inherited_refs(
        self, info: _ClassInfo, classes: dict[str, _ClassInfo]
    ) -> frozenset[str] | None:
        """``self.X`` reads of the nearest ``_fingerprint_state`` up the MRO.

        Returns None when no definition is visible in the linted tree
        (outside the base class's documented empty default).
        """
        queue = [info.name]
        seen: set[str] = set()
        refs: frozenset[str] | None = None
        while queue:
            name = queue.pop(0)
            if name in seen or name == _BASE_CLASS:
                continue
            seen.add(name)
            node = classes.get(name)
            if node is None:
                continue
            if node.has_fingerprint:
                # Union along the chain: an override that calls super()
                # still covers what the parent emitted.
                refs = (refs or frozenset()) | node.fingerprint_refs
            queue.extend(node.base_names)
        return refs

    def check(self, project: Project) -> Iterator[Finding]:
        """Flag every adapter attribute its fingerprint cannot see."""
        classes: dict[str, _ClassInfo] = {}
        for module in project.modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef):
                    classes.setdefault(node.name, _collect_class(module, node))
        for name, info in sorted(self._device_classes(classes).items()):
            attrs = dict(info.dataclass_attrs)
            attrs.update(info.init_attrs)
            behavioural = {
                attr: node
                for attr, node in attrs.items()
                if attr not in _PROTOCOL_ATTRS and not attr.startswith("_")
            }
            if not behavioural:
                continue
            refs = self._inherited_refs(info, classes)
            for attr, node in sorted(behavioural.items()):
                if refs is not None and attr in refs:
                    continue
                reason = (
                    "no _fingerprint_state() is defined anywhere on its "
                    "class chain"
                    if refs is None
                    else "_fingerprint_state() never references it"
                )
                yield self.finding(
                    info.module,
                    node,
                    f"device adapter '{name}' sets attribute '{attr}' but "
                    f"{reason}; the store cannot invalidate entries when "
                    f"it changes",
                )

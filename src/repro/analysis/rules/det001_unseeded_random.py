"""DET001: unseeded global-state RNG calls in deterministic subsystems."""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator

from repro.analysis.base import Finding, ModuleRule, SourceModule

#: ``random`` module attributes that *construct* seedable generators -- the
#: only module-level access the deterministic subsystems may make.
_STDLIB_ALLOWED = frozenset({"Random", "SystemRandom"})

#: ``numpy.random`` attributes that construct seedable generators.
_NUMPY_ALLOWED = frozenset({"default_rng", "Generator", "SeedSequence", "PCG64"})


class UnseededRandomRule(ModuleRule):
    """Flag ``random.*`` / ``np.random.*`` global-state calls.

    Calls like ``random.shuffle`` or ``np.random.uniform`` draw from the
    interpreter-wide RNG: their results depend on everything else that
    touched that stream, so two runs -- or two shards -- of the same seeded
    experiment diverge.  Constructing a seedable generator
    (``random.Random(seed)``, ``np.random.default_rng(seed)``) and threading
    it through, as every stream / renderer in the tree already does, is the
    compliant pattern.
    """

    id = "DET001"
    title = "unseeded global-state RNG call"
    rationale = (
        "Global RNG streams are shared process state: any other caller "
        "advances them, so seeded experiments, shard runs and cached "
        "results silently diverge.  Thread a random.Random(seed) / "
        "np.random.default_rng(seed) instance instead."
    )
    scope: ClassVar[tuple[str, ...]] = (
        "repro.sim",
        "repro.serve",
        "repro.nerf",
        "repro.sparse",
        "repro.experiments",
    )

    def _violation(self, name: str) -> str | None:
        """Why a canonical callee name is a global-RNG call (None when fine)."""
        prefix, _, attr = name.rpartition(".")
        if prefix == "random" and attr not in _STDLIB_ALLOWED:
            return (
                f"'{name}' draws from the interpreter-wide RNG; "
                f"thread a seeded random.Random instead"
            )
        if prefix == "numpy.random" and attr not in _NUMPY_ALLOWED:
            return (
                f"'{name}' mutates numpy's global RNG state; "
                f"thread a seeded np.random.default_rng instead"
            )
        return None

    def check_module(self, module: SourceModule) -> Iterator[Finding]:
        """Flag every global-state RNG call in ``module``."""
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = module.call_name(node)
            if name is None:
                continue
            message = self._violation(name)
            if message is not None:
                yield self.finding(module, node, message)

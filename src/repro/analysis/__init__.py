"""Determinism & cache-safety static analysis (the ``repro lint`` pass).

The subsystem turns the repo's load-bearing invariants -- seed
determinism, wall-clock-free results, fingerprint-complete store keys,
store-mediated experiment I/O, lock-guarded shared state -- into
machine-checked design rules over the package's own AST, in the spirit of
the design-rule checks hardware pipelines bake into their model flows.

Layout:

* :mod:`repro.analysis.base` -- :class:`Finding` / :class:`Rule` /
  :class:`ModuleRule` plus the parsed-module model with import-alias
  resolution;
* :mod:`repro.analysis.rules` -- one module per shipped rule (DET001,
  DET002, DET003, STORE001, PURE001, CONC001), discovered dynamically;
* :mod:`repro.analysis.driver` -- :func:`run_lint`: parse, check,
  apply inline ``# repro: lint-ignore[RULE-ID]`` pragmas and the
  committed baseline;
* :mod:`repro.analysis.baseline` -- the grandfathering file format;
* :mod:`repro.analysis.report` -- the CLI's table / json renderers.

See ``docs/linting.md`` for the rule catalog and the suppression /
baseline policy; CI gates every PR on a clean ``repro lint`` run.
"""

from repro.analysis.base import Finding, ModuleRule, Project, Rule, Severity, SourceModule
from repro.analysis.baseline import (
    Baseline,
    BaselineEntry,
    load_baseline,
    update_baseline,
)
from repro.analysis.driver import (
    LintReport,
    default_baseline_path,
    default_lint_root,
    load_project,
    run_lint,
    select_rules,
)
from repro.analysis.report import render_json, render_table
from repro.analysis.rules import discover_rules

__all__ = [
    "Baseline",
    "BaselineEntry",
    "Finding",
    "LintReport",
    "ModuleRule",
    "Project",
    "Rule",
    "Severity",
    "SourceModule",
    "default_baseline_path",
    "default_lint_root",
    "discover_rules",
    "load_baseline",
    "load_project",
    "render_json",
    "render_table",
    "run_lint",
    "select_rules",
    "update_baseline",
]

"""Scenario library: trace import plus generative traffic shapes.

This package supplies the demand-side workloads the ROADMAP's "scenario
library" item asks for, all on the
:class:`~repro.serve.request.RequestStream` contract (seeded
bit-determinism, sequential ids, non-decreasing arrivals) so they drop
into both the event-loop and FIFO fast-path simulators unchanged:

* :mod:`repro.serve.traffic.importer` -- :func:`load_trace` /
  :func:`dump_trace` for CSV and JSON-lines serving logs, with strict
  ``path:line:`` validation (surfaced by ``repro trace``), and
  :class:`ImportedTraceStream` to replay them;
* :mod:`repro.serve.traffic.streams` -- :class:`FlashCrowdStream`
  (baseline + seeded burst epochs), :class:`MarkedBurstStream`
  (self-exciting correlated arrivals) and :class:`MultiTenantStream`
  (per-tenant rates / mixes / SLAs);
* :mod:`repro.serve.traffic.session` -- :class:`SessionStream`,
  interactive orbit sessions with strict per-frame deadlines and a
  quality-degradable flag for the degradation ladder.

Every stream here is certified by the conformance harness in
``tests/serve/stream_conformance.py``; see ``docs/scenarios.md``.
"""

from repro.serve.traffic.importer import (
    CSV_COLUMNS,
    JSONL_KEYS,
    ImportedTrace,
    ImportedTraceStream,
    TraceFormatError,
    dump_trace,
    load_trace,
    trace_to_jsonl,
)
from repro.serve.traffic.session import SessionStream
from repro.serve.traffic.streams import (
    FlashCrowdStream,
    MarkedBurstStream,
    MultiTenantStream,
    TenantSpec,
)

__all__ = [
    "CSV_COLUMNS",
    "FlashCrowdStream",
    "ImportedTrace",
    "ImportedTraceStream",
    "JSONL_KEYS",
    "MarkedBurstStream",
    "MultiTenantStream",
    "SessionStream",
    "TenantSpec",
    "TraceFormatError",
    "dump_trace",
    "load_trace",
    "trace_to_jsonl",
]

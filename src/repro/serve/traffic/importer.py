"""Serving-log trace import/export: CSV and JSON-lines to request streams.

Production serving logs are the ground truth traffic shape; this module
turns them into the simulator's native objects with *strict* validation --
every malformed field is reported as ``path:line: message`` and surfaces
as an exit-2 one-liner through ``repro trace``.

Two on-disk formats share one record model:

* **CSV** (``.csv``): header row with the required columns ``timestamp``
  and ``model`` plus any of ``scene``, ``width``, ``height``,
  ``precision``, ``pruning_ratio``, ``tenant``, ``session``,
  ``deadline_s``; unknown columns are rejected.  Empty cells mean
  "absent".
* **JSON lines** (``.jsonl`` / ``.ndjson`` / ``.json``): one object per
  line with the same keys plus the CSV-inexpressible ``degradable`` and
  ``pose`` fields.  This is the lossless format: every
  :class:`~repro.serve.request.Request` round-trips exactly through
  :func:`dump_trace` -> :func:`load_trace`.

``timestamp`` is the absolute arrival time in seconds (non-negative,
non-decreasing in file order) and ``deadline_s`` an absolute deadline at
or after it.  Request ids are assigned ``0..n-1`` in file order.
"""

from __future__ import annotations

import csv
import json
import math
import random
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, Sequence

from repro.serve.request import Request, RequestStream, Scenario, ScenarioMix
from repro.sparse.formats import Precision


class TraceFormatError(ValueError):
    """A trace file failed validation (message carries ``path:line:``)."""


#: CSV columns accepted by :func:`load_trace`, in canonical write order.
CSV_COLUMNS = (
    "timestamp",
    "model",
    "scene",
    "width",
    "height",
    "precision",
    "pruning_ratio",
    "tenant",
    "session",
    "deadline_s",
)

#: JSON-lines keys: the CSV columns plus the lossless-only fields.
JSONL_KEYS = CSV_COLUMNS + ("degradable", "pose")

_REQUIRED = ("timestamp", "model")


def _parse_float(raw: Any, name: str, where: str) -> float:
    """Parse ``raw`` as a finite float or fail with a located message."""
    try:
        value = float(raw)
    except (TypeError, ValueError):
        raise TraceFormatError(f"{where}: {name} is not a number: {raw!r}") from None
    if isinstance(raw, bool) or not math.isfinite(value):
        raise TraceFormatError(f"{where}: {name} is not a number: {raw!r}")
    return value


def _parse_int(raw: Any, name: str, where: str) -> int:
    """Parse ``raw`` as an int or fail with a located message."""
    if isinstance(raw, bool) or (isinstance(raw, float) and not raw.is_integer()):
        raise TraceFormatError(f"{where}: {name} is not an integer: {raw!r}")
    try:
        return int(raw)
    except (TypeError, ValueError):
        raise TraceFormatError(
            f"{where}: {name} is not an integer: {raw!r}"
        ) from None


def _build_request(index: int, record: dict[str, Any], where: str) -> Request:
    """Turn one normalized record dict into a :class:`Request`.

    ``record`` uses ``None`` for absent optional fields; values may still
    be strings (CSV) or JSON scalars (JSONL) -- conversion and validation
    happen here so both formats share one rule book.
    """
    for name in _REQUIRED:
        if record.get(name) in (None, ""):
            raise TraceFormatError(f"{where}: missing required field {name!r}")
    timestamp = _parse_float(record["timestamp"], "timestamp", where)
    if timestamp < 0.0:
        raise TraceFormatError(f"{where}: timestamp must be non-negative")
    model = str(record["model"])
    scene = str(record["scene"]) if record.get("scene") not in (None, "") else "lego"
    width = (
        _parse_int(record["width"], "width", where)
        if record.get("width") not in (None, "")
        else 400
    )
    height = (
        _parse_int(record["height"], "height", where)
        if record.get("height") not in (None, "")
        else 400
    )
    precision = None
    if record.get("precision") not in (None, ""):
        name = str(record["precision"]).upper()
        try:
            precision = Precision[name]
        except KeyError:
            valid = ", ".join(p.name for p in Precision)
            raise TraceFormatError(
                f"{where}: unknown precision {record['precision']!r}"
                f" (expected one of {valid})"
            ) from None
    pruning = (
        _parse_float(record["pruning_ratio"], "pruning_ratio", where)
        if record.get("pruning_ratio") not in (None, "")
        else 0.0
    )
    try:
        scenario = Scenario(
            model=model,
            scene=scene,
            width=width,
            height=height,
            precision=precision,
            pruning_ratio=pruning,
        )
    except ValueError as exc:
        raise TraceFormatError(f"{where}: {exc}") from None
    deadline = None
    if record.get("deadline_s") not in (None, ""):
        deadline = _parse_float(record["deadline_s"], "deadline_s", where)
        if deadline < timestamp:
            raise TraceFormatError(
                f"{where}: deadline_s ({deadline:g}) precedes"
                f" timestamp ({timestamp:g})"
            )
    tenant = None
    if record.get("tenant") not in (None, ""):
        tenant = str(record["tenant"])
    session = None
    if record.get("session") not in (None, ""):
        session = _parse_int(record["session"], "session", where)
        if session < 0:
            raise TraceFormatError(f"{where}: session must be non-negative")
    degradable = record.get("degradable")
    if degradable is None:
        degradable = True
    elif not isinstance(degradable, bool):
        raise TraceFormatError(
            f"{where}: degradable must be a JSON boolean: {degradable!r}"
        )
    pose = record.get("pose")
    if pose is not None:
        if not (
            isinstance(pose, (list, tuple))
            and len(pose) == 3
            and all(isinstance(p, (int, float)) and not isinstance(p, bool) for p in pose)
        ):
            raise TraceFormatError(
                f"{where}: pose must be a 3-element number array: {pose!r}"
            )
        pose = (float(pose[0]), float(pose[1]), float(pose[2]))
    return Request(
        request_id=index,
        arrival_s=timestamp,
        scenario=scenario,
        deadline_s=deadline,
        tenant=tenant,
        session=session,
        degradable=degradable,
        pose=pose,
    )


def _load_csv(path: Path) -> list[Request]:
    """Parse a CSV serving log into ordered requests."""
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise TraceFormatError(f"{path}:1: empty trace file") from None
        unknown = [c for c in header if c not in CSV_COLUMNS]
        if unknown:
            raise TraceFormatError(
                f"{path}:1: unknown column(s) {unknown}"
                f" (expected a subset of {list(CSV_COLUMNS)})"
            )
        missing = [c for c in _REQUIRED if c not in header]
        if missing:
            raise TraceFormatError(f"{path}:1: missing required column(s) {missing}")
        if len(set(header)) != len(header):
            raise TraceFormatError(f"{path}:1: duplicate column in header")
        requests = []
        for line, row in enumerate(reader, start=2):
            if not row or all(not cell.strip() for cell in row):
                continue
            if len(row) != len(header):
                raise TraceFormatError(
                    f"{path}:{line}: expected {len(header)} cells, got {len(row)}"
                )
            record = dict(zip(header, row))
            requests.append(_build_request(len(requests), record, f"{path}:{line}"))
    return requests


def _load_jsonl(path: Path) -> list[Request]:
    """Parse a JSON-lines serving log into ordered requests."""
    requests = []
    with path.open() as handle:
        for line, text in enumerate(handle, start=1):
            if not text.strip():
                continue
            where = f"{path}:{line}"
            try:
                record = json.loads(text)
            except json.JSONDecodeError as exc:
                raise TraceFormatError(f"{where}: invalid JSON ({exc.msg})") from None
            if not isinstance(record, dict):
                raise TraceFormatError(f"{where}: each line must be a JSON object")
            unknown = sorted(set(record) - set(JSONL_KEYS))
            if unknown:
                raise TraceFormatError(
                    f"{where}: unknown key(s) {unknown}"
                    f" (expected a subset of {list(JSONL_KEYS)})"
                )
            requests.append(_build_request(len(requests), record, where))
    return requests


def load_trace(path: str | Path) -> "ImportedTrace":
    """Parse and validate a serving-log trace file.

    The format follows the suffix: ``.csv`` is parsed as CSV, ``.jsonl`` /
    ``.ndjson`` / ``.json`` as JSON lines.  Raises
    :class:`TraceFormatError` (a ``ValueError``) with a ``path:line:``
    message on any malformed record, out-of-order timestamp, or empty
    trace.
    """
    path = Path(path)
    if not path.is_file():
        raise TraceFormatError(f"no such trace file: {path}")
    if path.suffix == ".csv":
        fmt, requests = "csv", _load_csv(path)
    elif path.suffix in (".jsonl", ".ndjson", ".json"):
        fmt, requests = "jsonl", _load_jsonl(path)
    else:
        raise TraceFormatError(
            f"unsupported trace format {path.suffix!r} for {path}"
            " (expected .csv or .jsonl)"
        )
    if not requests:
        raise TraceFormatError(f"{path}: trace contains no records")
    for prev, nxt in zip(requests, requests[1:]):
        if nxt.arrival_s < prev.arrival_s:
            raise TraceFormatError(
                f"{path}: timestamps must be non-decreasing"
                f" (record {nxt.request_id}: {nxt.arrival_s:g}"
                f" after {prev.arrival_s:g})"
            )
    return ImportedTrace(path=str(path), format=fmt, requests=tuple(requests))


@dataclass(frozen=True)
class ImportedTrace:
    """A validated serving-log trace: ordered requests plus provenance."""

    path: str
    format: str
    requests: tuple[Request, ...]

    def mix(self) -> ScenarioMix:
        """Empirical scenario mix (counts as weights, first-appearance order)."""
        order: list[Scenario] = []
        counts: dict[Scenario, int] = {}
        for request in self.requests:
            if request.scenario not in counts:
                order.append(request.scenario)
                counts[request.scenario] = 0
            counts[request.scenario] += 1
        return ScenarioMix(
            tuple(order), tuple(float(counts[s]) for s in order)
        )

    def stream(self) -> "ImportedTraceStream":
        """A replayable :class:`RequestStream` over the imported requests."""
        return ImportedTraceStream(self.requests, self.mix())

    def summary(self) -> dict[str, Any]:
        """JSON-safe overview: span, rate, per-scenario/tenant/session counts."""
        n = len(self.requests)
        first = self.requests[0].arrival_s
        last = self.requests[-1].arrival_s
        span = last - first
        tenants: dict[str, int] = {}
        sessions = set()
        for request in self.requests:
            if request.tenant is not None:
                tenants[request.tenant] = tenants.get(request.tenant, 0) + 1
            if request.session is not None:
                sessions.add(request.session)
        mix = self.mix()
        assert mix.weights is not None
        return {
            "path": self.path,
            "format": self.format,
            "requests": n,
            "first_arrival_s": first,
            "last_arrival_s": last,
            "duration_s": span,
            "offered_rps": n / span if span > 0 else 0.0,
            "with_deadline": sum(
                1 for r in self.requests if r.deadline_s is not None
            ),
            "pinned": sum(1 for r in self.requests if not r.degradable),
            "tenants": {name: tenants[name] for name in sorted(tenants)},
            "sessions": len(sessions),
            "scenarios": [
                {"label": s.label, "count": int(w), "share": w / n}
                for s, w in zip(mix.scenarios, mix.weights)
            ],
        }


class ImportedTraceStream(RequestStream):
    """Verbatim replay of an imported trace's requests.

    The trace *is* the realization, so :meth:`generate` ignores the seed
    and returns the recorded requests unchanged -- the conformance
    harness marks this stream seed-insensitive by design.
    """

    def __init__(self, requests: Sequence[Request], mix: ScenarioMix) -> None:
        """Wrap already-validated ordered requests and their empirical mix."""
        super().__init__(mix, sla_s=None)
        self._requests = tuple(requests)

    def arrivals(self, rng: random.Random) -> Iterator[float]:
        """Yield the recorded arrival times verbatim."""
        yield from (r.arrival_s for r in self._requests)

    def pick(self, index: int, rng: random.Random) -> Scenario:
        """Return the recorded scenario of request ``index``."""
        return self._requests[index].scenario

    def generate(self, seed: int = 0) -> tuple[Request, ...]:
        """Replay the imported requests (the seed is irrelevant)."""
        return self._requests


def _jsonl_record(request: Request) -> dict[str, Any]:
    """The JSON-lines object for one request (defaults elided)."""
    scenario = request.scenario
    record: dict[str, Any] = {
        "timestamp": request.arrival_s,
        "model": scenario.model,
        "scene": scenario.scene,
        "width": scenario.width,
        "height": scenario.height,
    }
    if scenario.precision is not None:
        record["precision"] = scenario.precision.name
    if scenario.pruning_ratio:
        record["pruning_ratio"] = scenario.pruning_ratio
    if request.tenant is not None:
        record["tenant"] = request.tenant
    if request.session is not None:
        record["session"] = request.session
    if request.deadline_s is not None:
        record["deadline_s"] = request.deadline_s
    if not request.degradable:
        record["degradable"] = False
    if request.pose is not None:
        record["pose"] = list(request.pose)
    return record


def trace_to_jsonl(requests: Sequence[Request]) -> str:
    """Render requests as the lossless JSON-lines trace text."""
    return "".join(json.dumps(_jsonl_record(r)) + "\n" for r in requests)


def _csv_cell(value: Any) -> str:
    """One CSV cell: floats via ``repr`` (lossless), ``None`` as empty."""
    if value is None:
        return ""
    if isinstance(value, float):
        return repr(value)
    return str(value)


def dump_trace(requests: Sequence[Request], path: str | Path) -> None:
    """Write requests as a trace file (format by suffix, like the loader).

    CSV cannot express ``pose`` or ``degradable=False``; dumping such a
    request to ``.csv`` raises :class:`TraceFormatError` pointing at the
    JSON-lines format instead.
    """
    path = Path(path)
    if path.suffix == ".csv":
        for request in requests:
            if request.pose is not None or not request.degradable:
                raise TraceFormatError(
                    f"request {request.request_id} carries pose/degradable"
                    " fields CSV cannot express; write a .jsonl trace instead"
                )
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(CSV_COLUMNS)
            for request in requests:
                scenario = request.scenario
                writer.writerow(
                    [
                        _csv_cell(request.arrival_s),
                        scenario.model,
                        scenario.scene,
                        scenario.width,
                        scenario.height,
                        scenario.precision.name if scenario.precision else "",
                        _csv_cell(scenario.pruning_ratio),
                        _csv_cell(request.tenant),
                        _csv_cell(request.session),
                        _csv_cell(request.deadline_s),
                    ]
                )
    elif path.suffix in (".jsonl", ".ndjson", ".json"):
        path.write_text(trace_to_jsonl(requests))
    else:
        raise TraceFormatError(
            f"unsupported trace format {path.suffix!r} for {path}"
            " (expected .csv or .jsonl)"
        )

"""Interactive-rendering sessions: correlated camera-pose frame streams.

A :class:`SessionStream` models users orbiting a scene interactively: each
session picks one scenario (correlation -- consecutive frames render the
same model/scene), starts at a seeded offset, and emits frames at a fixed
frame rate with optional per-frame jitter.  Every frame carries

* a deterministic orbit camera ``pose`` (azimuth sweeps 0..360 degrees over
  the session, fixed elevation and radius),
* a **strict per-frame deadline** (one frame period past arrival unless a
  looser ``sla_s`` is given), and
* the stream's ``degradable`` flag, which is what lets a
  :class:`~repro.serve.control.DegradationLadder` trade resolution for
  deadline attainment on interactive traffic -- or, pinned to ``False``,
  forbids exactly that.

Certified by ``tests/serve/stream_conformance.py`` like every stream.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.serve.request import Request, RequestStream, Scenario, ScenarioMix

#: Orbit camera elevation (degrees) and radius shared by all session poses.
ORBIT_ELEVATION_DEG = 30.0
ORBIT_RADIUS = 4.0


class SessionStream(RequestStream):
    """Frames of ``num_sessions`` interactive orbit sessions, merged.

    Each session contributes exactly ``frames_per_session`` requests, so
    ``generate`` always returns ``num_sessions * frames_per_session``
    requests -- rate conservation is exact, not statistical.  Frames of one
    session share its scenario and session id and arrive monotonically
    (jitter is validated to stay under the frame period).
    """

    def __init__(
        self,
        mix: ScenarioMix,
        num_sessions: int,
        frames_per_session: int,
        fps: float = 24.0,
        start_spread_s: float = 2.0,
        jitter_s: float = 0.0,
        sla_s: float | None = None,
        degradable: bool = True,
    ) -> None:
        """Configure the session count, frame cadence and deadline budget."""
        if num_sessions < 1 or frames_per_session < 1:
            raise ValueError("num_sessions and frames_per_session must be >= 1")
        if fps <= 0.0:
            raise ValueError("fps must be positive")
        if start_spread_s < 0.0:
            raise ValueError("start_spread_s must be non-negative")
        period = 1.0 / fps
        if not 0.0 <= jitter_s < period:
            raise ValueError(
                f"jitter_s must be in [0, frame period): {jitter_s} vs {period}"
            )
        super().__init__(mix, sla_s if sla_s is not None else period)
        self.num_sessions = num_sessions
        self.frames_per_session = frames_per_session
        self.fps = fps
        self.start_spread_s = start_spread_s
        self.jitter_s = jitter_s
        self.degradable = degradable

    def pose_at(self, frame: int) -> tuple[float, float, float]:
        """Deterministic orbit pose of frame ``frame``: (azimuth, elev, radius)."""
        azimuth = 360.0 * frame / self.frames_per_session
        return (azimuth, ORBIT_ELEVATION_DEG, ORBIT_RADIUS)

    def arrivals(self, rng: random.Random) -> Iterator[float]:
        """Merged frame arrival times of one realization (seed from ``rng``)."""
        for request in self.generate(seed=rng.getrandbits(32)):
            yield request.arrival_s

    def generate(self, seed: int = 0) -> tuple[Request, ...]:
        """Merge the per-session frame trains into one renumbered stream."""
        rng = random.Random(seed)
        period = 1.0 / self.fps
        events: list[tuple[float, int, int, Scenario]] = []
        for session in range(self.num_sessions):
            start = (
                rng.uniform(0.0, self.start_spread_s)
                if self.start_spread_s > 0.0
                else 0.0
            )
            scenario = self.mix.sample(rng)
            for frame in range(self.frames_per_session):
                jitter = (
                    rng.uniform(0.0, self.jitter_s) if self.jitter_s > 0.0 else 0.0
                )
                events.append((start + frame * period + jitter, session, frame, scenario))
        events.sort(key=lambda e: (e[0], e[1], e[2]))
        return tuple(
            Request(
                request_id=i,
                arrival_s=arrival,
                scenario=scenario,
                deadline_s=arrival + self.sla_s,
                session=session,
                degradable=self.degradable,
                pose=self.pose_at(frame),
            )
            for i, (arrival, session, frame, scenario) in enumerate(events)
        )

"""Overload control for the serving layer: autoscaling, admission, shedding.

The fleet simulator (:mod:`repro.serve.fleet`) replays a request stream
against a *fixed* pool of devices and serves every request at full quality.
Production serving stacks survive overload with three mechanism classes,
and this module provides deterministic, pluggable models of each:

* **Autoscaling** (:class:`QueueDepthAutoscaler`,
  :class:`LatencyTargetAutoscaler`): grow or shrink the *active* subset of
  the provisioned device pool.  Policies are evaluated on a fixed control
  tick; scale-out pays a configurable provisioning delay before the new
  worker accepts traffic, and scale-in *drains* -- a deactivated worker
  finishes its in-flight work and simply stops receiving dispatches.
* **Admission control** (:class:`TokenBucketAdmission`,
  :class:`QueueCapAdmission`): reject requests at ingress, before they
  queue.  Rejections are a first-class outcome on
  :class:`~repro.serve.report.ServingReport` -- conservation
  (``arrived == completed + rejected``) is asserted by the property suite.
* **Quality shedding** (:class:`DegradationLadder`,
  :class:`QueueDepthShedder`): under load, serve a cheaper, lower-PSNR
  variant of the requested scenario instead of rejecting it.  Ladder steps
  turn the same knobs the paper's fig. 20(a) studies (resolution, samples
  per ray, quantized precision, pruning), and :func:`price_ladder` measures
  each step's actual latency / energy / PSNR cost with the repository's own
  frame-report cache and renderer, so the simulator's quality numbers are
  grounded in the same models as the figures.

Everything here is deterministic and stateless-per-run: policies are frozen
dataclasses, admission state lives in a per-run session object, and the
shedding decision is a pure integer function of the queue depth a request
observes at ingress -- which is what lets the FIFO fast path reproduce the
event loop bit for bit.  See ``docs/serving-control.md`` for the guide.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.serve.request import Scenario
from repro.sparse.formats import Precision

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.accelerator import FrameReport
    from repro.sim.sweep import SweepEngine

#: PSNR (dB) treated as "indistinguishable from full quality": delivered
#: quality is ``min(1.0, psnr_db / FULL_QUALITY_DB)``, which keeps the
#: quality scale finite even when a ladder step is lossless (PSNR = inf).
FULL_QUALITY_DB = 40.0


# -- fleet state the policies observe -----------------------------------------


@dataclass(frozen=True)
class FleetSnapshot:
    """What a control policy sees at one evaluation instant.

    Snapshots are built by the simulator on every control tick: queue depth
    counts admitted-but-undispatched requests, ``busy_workers`` counts
    active workers still occupied, and ``recent_p95_s`` is the p95 latency
    over the policy's completion window (``None`` until anything finishes).
    """

    now: float
    queue_depth: int
    active_workers: int
    busy_workers: int
    pool_size: int
    recent_p95_s: float | None = None


# -- autoscaling ---------------------------------------------------------------


@dataclass(frozen=True)
class AutoscalePolicy(abc.ABC):
    """Decide how many workers of the provisioned pool should be active.

    Policies are pure functions of a :class:`FleetSnapshot`: the simulator
    evaluates :meth:`desired_workers` once per control tick and applies the
    (clamped) decision -- scale-out through a provisioning delay, scale-in
    by draining the highest-indexed active workers.  ``latency_window``
    bounds the completion history summarized into ``recent_p95_s``.
    """

    min_workers: int = 1
    max_workers: int | None = None
    latency_window: int = 64

    def __post_init__(self) -> None:
        """Validate the worker bounds and window size."""
        if self.min_workers < 1:
            raise ValueError("min_workers must be >= 1")
        if self.max_workers is not None and self.max_workers < self.min_workers:
            raise ValueError("max_workers must be >= min_workers")
        if self.latency_window < 1:
            raise ValueError("latency_window must be >= 1")

    @abc.abstractmethod
    def desired_workers(self, snapshot: FleetSnapshot) -> int:
        """The active-worker count this policy wants given ``snapshot``."""

    def clamp(self, desired: int, pool_size: int) -> int:
        """Clamp ``desired`` into [min_workers, min(max_workers, pool_size)]."""
        ceiling = pool_size
        if self.max_workers is not None:
            ceiling = min(ceiling, self.max_workers)
        return max(self.min_workers, min(desired, ceiling))


@dataclass(frozen=True)
class QueueDepthAutoscaler(AutoscalePolicy):
    """Scale on queue backlog: out when deep, in when drained.

    Scale out by one worker when the queue holds at least
    ``scale_out_depth`` requests *per active worker*; scale in by one when
    the queue has drained to ``scale_in_depth`` or fewer (absolute) and at
    least one active worker is idle.  Integer arithmetic only, so the
    decision is trivially platform-stable.
    """

    scale_out_depth: int = 4
    scale_in_depth: int = 0

    def __post_init__(self) -> None:
        """Validate the depth thresholds."""
        super().__post_init__()
        if self.scale_out_depth < 1:
            raise ValueError("scale_out_depth must be >= 1")
        if self.scale_in_depth < 0:
            raise ValueError("scale_in_depth must be >= 0")

    def desired_workers(self, snapshot: FleetSnapshot) -> int:
        """One-step hysteresis on the per-worker backlog."""
        active = snapshot.active_workers
        if snapshot.queue_depth >= self.scale_out_depth * active:
            return active + 1
        if (
            snapshot.queue_depth <= self.scale_in_depth
            and snapshot.busy_workers < active
        ):
            return active - 1
        return active


@dataclass(frozen=True)
class LatencyTargetAutoscaler(AutoscalePolicy):
    """Track a p95 latency target over the recent completion window.

    Scale out by one worker while the windowed p95 exceeds ``target_p95_s``;
    scale in by one when it has fallen below ``low_fraction * target_p95_s``
    and an active worker is idle.  Holds while no completions have been
    observed yet.
    """

    target_p95_s: float = 0.25
    low_fraction: float = 0.5

    def __post_init__(self) -> None:
        """Validate the latency target and hysteresis band."""
        super().__post_init__()
        if self.target_p95_s <= 0.0:
            raise ValueError("target_p95_s must be positive")
        if not 0.0 < self.low_fraction < 1.0:
            raise ValueError("low_fraction must be in (0, 1)")

    def desired_workers(self, snapshot: FleetSnapshot) -> int:
        """One-step hysteresis on the windowed p95 latency."""
        active = snapshot.active_workers
        p95 = snapshot.recent_p95_s
        if p95 is None:
            return active
        if p95 > self.target_p95_s:
            return active + 1
        if p95 < self.low_fraction * self.target_p95_s and (
            snapshot.busy_workers < active
        ):
            return active - 1
        return active


# -- admission control ---------------------------------------------------------


class AdmissionSession(abc.ABC):
    """Per-run admission state: decides accept/reject at each arrival.

    Sessions are created fresh for every :meth:`FleetSimulator.run
    <repro.serve.fleet.FleetSimulator.run>` call, so repeated runs of the
    same simulator see identical admission behaviour.  ``admit`` is called
    once per request in ``(arrival, request_id)`` order with the queue
    depth the request observes at ingress -- the same order and depths on
    the event loop and the FIFO fast path.
    """

    #: Human-readable rejection reason recorded on rejected requests.
    reason: str = "admission"

    @abc.abstractmethod
    def admit(self, now: float, queue_depth: int) -> bool:
        """Whether to accept the request arriving at ``now``."""


@dataclass(frozen=True)
class AdmissionPolicy(abc.ABC):
    """Factory for per-run :class:`AdmissionSession` state."""

    @abc.abstractmethod
    def session(self) -> AdmissionSession:
        """A fresh mutable session for one simulation run."""


class _TokenBucketSession(AdmissionSession):
    """Mutable token-bucket state for one run."""

    reason = "token-bucket"

    def __init__(self, rate_rps: float, burst: float) -> None:
        """Start with a full bucket; refill is lazy from the first arrival."""
        self._rate = rate_rps
        self._burst = burst
        self._tokens = burst
        self._last: float | None = None

    def admit(self, now: float, queue_depth: int) -> bool:
        """Refill by elapsed time, then spend one token if available."""
        if self._last is not None:
            self._tokens = min(
                self._burst, self._tokens + (now - self._last) * self._rate
            )
        self._last = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False


@dataclass(frozen=True)
class TokenBucketAdmission(AdmissionPolicy):
    """Classic token bucket: sustained ``rate_rps`` with ``burst`` headroom.

    The bucket starts full and refills continuously; each admitted request
    spends one token.  Arrivals that find less than one token are rejected
    -- a rate limiter that is independent of queue state, which makes it
    the right tool when the *offered* load must be capped regardless of
    how fast the fleet is currently draining.
    """

    rate_rps: float
    burst: float = 1.0

    def __post_init__(self) -> None:
        """Validate rate and burst."""
        if self.rate_rps <= 0.0:
            raise ValueError("rate_rps must be positive")
        if self.burst < 1.0:
            raise ValueError("burst must be >= 1 (room for one request)")

    def session(self) -> AdmissionSession:
        """A full bucket, refilling from the first arrival onward."""
        return _TokenBucketSession(self.rate_rps, self.burst)


class _QueueCapSession(AdmissionSession):
    """Stateless queue-cap check wrapped in the session interface."""

    reason = "queue-cap"

    def __init__(self, max_queue: int) -> None:
        """Remember the queue bound."""
        self._max_queue = max_queue

    def admit(self, now: float, queue_depth: int) -> bool:
        """Accept while the observed queue is below the cap."""
        return queue_depth < self._max_queue


@dataclass(frozen=True)
class QueueCapAdmission(AdmissionPolicy):
    """Reject arrivals that would push the queue past ``max_queue``.

    Load shedding keyed to the *actual* backlog: under a burst the queue
    fills to the cap and the overflow is rejected immediately instead of
    waiting out an SLA it could never meet.
    """

    max_queue: int

    def __post_init__(self) -> None:
        """Validate the cap."""
        if self.max_queue < 1:
            raise ValueError("max_queue must be >= 1")

    def session(self) -> AdmissionSession:
        """A session enforcing the (stateless) cap."""
        return _QueueCapSession(self.max_queue)


# -- quality shedding ----------------------------------------------------------


@dataclass(frozen=True)
class DegradationStep:
    """One rung of a degradation ladder: which knobs to turn, how far.

    ``resolution_scale`` scales both image dimensions; ``sample_scale``
    scales samples per ray.  The frame-level cost model has no per-request
    samples knob, so :meth:`apply` folds ``sample_scale`` into an
    *equivalent resolution* (total work is rays x samples, so halving the
    samples prices like scaling each dimension by ``sqrt(0.5)``), while
    :func:`price_ladder` measures the PSNR impact with a probe render that
    genuinely reduces the sample count.  ``precision`` / ``pruning_ratio``
    override the scenario's quant / sparsity knobs when set.
    """

    label: str
    resolution_scale: float = 1.0
    sample_scale: float = 1.0
    precision: Precision | None = None
    pruning_ratio: float | None = None

    def __post_init__(self) -> None:
        """Validate the scale factors and knob overrides."""
        if not 0.0 < self.resolution_scale <= 1.0:
            raise ValueError("resolution_scale must be in (0, 1]")
        if not 0.0 < self.sample_scale <= 1.0:
            raise ValueError("sample_scale must be in (0, 1]")
        if self.pruning_ratio is not None and not 0.0 <= self.pruning_ratio < 1.0:
            raise ValueError("pruning_ratio must be in [0, 1)")

    @property
    def work_scale(self) -> float:
        """Linear-dimension scale equivalent to this step's total work cut."""
        return self.resolution_scale * math.sqrt(self.sample_scale)

    def apply(self, scenario: Scenario) -> Scenario:
        """The degraded scenario this step serves in place of ``scenario``."""
        scale = self.work_scale
        return Scenario(
            model=scenario.model,
            scene=scenario.scene,
            width=max(1, round(scenario.width * scale)),
            height=max(1, round(scenario.height * scale)),
            precision=(
                self.precision if self.precision is not None else scenario.precision
            ),
            pruning_ratio=(
                self.pruning_ratio
                if self.pruning_ratio is not None
                else scenario.pruning_ratio
            ),
        )


#: Default ladder steps, mildest first: quantize, then trade samples, then
#: resolution, then both resolution and aggressive quantization.
DEFAULT_LADDER_STEPS: tuple[DegradationStep, ...] = (
    DegradationStep("int8", precision=Precision.INT8),
    DegradationStep("int8+half-samples", sample_scale=0.5, precision=Precision.INT8),
    DegradationStep("int8+half-res", resolution_scale=0.5, precision=Precision.INT8),
    DegradationStep("int4+half-res", resolution_scale=0.5, precision=Precision.INT4),
)


@dataclass(frozen=True)
class DegradationLadder:
    """An ordered menu of degradation steps with their delivered qualities.

    Steps run mildest to most aggressive; shedding *level* ``L`` means
    "serve step ``L`` of the ladder" with level 0 reserved for full quality.
    ``qualities`` carries the delivered-quality score of each step on the
    0-1 scale (1.0 = full quality); build a measured ladder with
    :func:`price_ladder`, or pass modelled values directly (the property
    suite does) when no renderer is in the loop.
    """

    steps: tuple[DegradationStep, ...]
    qualities: tuple[float, ...]

    def __post_init__(self) -> None:
        """Validate that every step carries an in-range quality score."""
        if not self.steps:
            raise ValueError("a degradation ladder needs at least one step")
        if len(self.qualities) != len(self.steps):
            raise ValueError(
                f"{len(self.qualities)} qualities for {len(self.steps)} steps"
            )
        if any(not 0.0 < q <= 1.0 for q in self.qualities):
            raise ValueError("step qualities must be in (0, 1]")

    @property
    def depth(self) -> int:
        """Number of rungs (the maximum shedding level)."""
        return len(self.steps)

    def quality_of(self, level: int) -> float:
        """Delivered quality at ``level`` (level 0 is full quality)."""
        if level == 0:
            return 1.0
        return self.qualities[level - 1]

    def apply(self, scenario: Scenario, level: int) -> Scenario:
        """The scenario actually served at ``level`` (level 0: unchanged)."""
        if level == 0:
            return scenario
        return self.steps[level - 1].apply(scenario)


@dataclass(frozen=True)
class SheddingPolicy(abc.ABC):
    """Map ingress queue state to a degradation level on a ladder.

    The level is decided *when the request is admitted* from the queue
    depth it observes -- a pure integer function, evaluated in the same
    ``(arrival, request_id)`` order by the event loop and the FIFO fast
    path, which is what keeps the two bit-identical under shedding.
    """

    ladder: DegradationLadder

    @abc.abstractmethod
    def level(self, queue_depth: int, active_workers: int) -> int:
        """Shedding level (0..ladder.depth) for a request seeing ``queue_depth``."""


@dataclass(frozen=True)
class QueueDepthShedder(SheddingPolicy):
    """Climb one ladder rung per ``depth_per_step`` queued requests per worker.

    With the default ladder and ``depth_per_step=4`` on a single worker:
    a backlog of 0-3 serves full quality, 4-7 serves step 1, and so on,
    saturating at the ladder's deepest step.
    """

    depth_per_step: int = 4

    def __post_init__(self) -> None:
        """Validate the per-level depth quantum."""
        if self.depth_per_step < 1:
            raise ValueError("depth_per_step must be >= 1")

    def level(self, queue_depth: int, active_workers: int) -> int:
        """Integer backlog-per-worker divided down into a ladder level."""
        per_worker = queue_depth // max(1, active_workers)
        return min(self.ladder.depth, per_worker // self.depth_per_step)


# -- ladder pricing ------------------------------------------------------------


@dataclass(frozen=True)
class PricedStep:
    """One ladder step with its measured cost and quality.

    ``speedup`` / ``energy_gain`` are the full-quality cost divided by this
    step's cost on the pricing device; ``psnr_db`` is the probe render's
    PSNR against the full-quality render (``inf`` when lossless) and
    ``quality`` its normalization onto the 0-1 delivered-quality scale.
    """

    step: DegradationStep
    latency_s: float
    energy_j: float
    speedup: float
    energy_gain: float
    psnr_db: float
    quality: float


@dataclass(frozen=True)
class LadderPricing:
    """A ladder priced on one (scenario, device) with the repo's own models."""

    scenario: Scenario
    device: str
    base_latency_s: float
    base_energy_j: float
    rows: tuple[PricedStep, ...]

    def __post_init__(self) -> None:
        """Reject rungs that price *slower* than full quality.

        A degradation rung exists to buy latency headroom; a step whose
        measured speedup is below 1 would make the shedder serve backlog
        more slowly at lower quality -- strictly worse on both axes -- so
        it is a configuration error, not a valid ladder.
        """
        for row in self.rows:
            if row.speedup < 1.0:
                raise ValueError(
                    f"ladder step '{row.step.label}' on {self.device} prices "
                    f"slower than full quality (speedup {row.speedup:.3f} < 1)"
                )

    def ladder(self) -> DegradationLadder:
        """The measured :class:`DegradationLadder` (qualities from PSNR)."""
        return DegradationLadder(
            steps=tuple(r.step for r in self.rows),
            qualities=tuple(r.quality for r in self.rows),
        )


def quality_from_psnr(psnr_db: float) -> float:
    """Normalize a PSNR (dB) onto the 0-1 delivered-quality scale."""
    if psnr_db == float("inf"):
        return 1.0
    return max(0.0, min(1.0, psnr_db / FULL_QUALITY_DB))


def _nearest_resize(image: np.ndarray, size: int) -> np.ndarray:
    """Nearest-neighbour upsample of a square image to ``size`` pixels."""
    height, width = image.shape[:2]
    rows = (np.arange(size) * height) // size
    cols = (np.arange(size) * width) // size
    return image[rows][:, cols]


def price_ladder(
    scenario: Scenario,
    device: str,
    steps: Sequence[DegradationStep] = DEFAULT_LADDER_STEPS,
    engine: "SweepEngine | None" = None,
    probe_size: int = 32,
    probe_samples: int = 24,
) -> LadderPricing:
    """Measure each ladder step's latency / energy / PSNR on ``device``.

    Costs come from the shared frame-report cache (the *same* cached frame
    simulations the figures and the fleet simulator use), so pricing a
    ladder warms exactly the reports the shedding simulator will ask for.
    Quality comes from a small probe render (fig. 20(a)'s machinery): the
    scenario's scene is fitted once -- through the store's asset tier when
    available -- rendered at full quality in FP32, then re-rendered per
    step with the step's resolution / sample / precision knobs applied and
    compared by PSNR.  Pruning steps are priced for cost but treated as
    visually lossless by the probe (the renderer has no pruning knob);
    model such steps' qualities explicitly if that matters.
    """
    from repro.nerf.hashgrid import HashGridConfig
    from repro.nerf.rays import Camera
    from repro.nerf.renderer import InstantNGPRenderer
    from repro.nerf.scenes import get_scene
    from repro.quant.metrics import psnr
    from repro.sim.sweep import get_default_engine

    engine = engine or get_default_engine()
    base_report = _scenario_report(engine, device, scenario)
    renderer = InstantNGPRenderer(
        HashGridConfig(
            num_levels=6,
            features_per_level=4,
            log2_table_size=13,
            base_resolution=8,
            max_resolution=64,
        )
    )
    renderer.fit_to_scene(get_scene(scenario.scene), store=engine.store)
    camera = Camera(width=probe_size, height=probe_size, focal=probe_size * 1.2)
    reference_plan = renderer.prepare_render(camera, num_samples=probe_samples)
    reference = renderer.render_prepared(reference_plan, record_stats=False)

    rows = []
    for step in steps:
        degraded = step.apply(scenario)
        report = _scenario_report(engine, device, degraded)
        size = max(1, round(probe_size * step.resolution_scale))
        samples = max(1, round(probe_samples * step.sample_scale))
        if size == probe_size and samples == probe_samples:
            plan = reference_plan
        else:
            probe_camera = Camera(width=size, height=size, focal=size * 1.2)
            plan = renderer.prepare_render(probe_camera, num_samples=samples)
        image = renderer.render_prepared(
            plan, precision=step.precision, record_stats=False
        )
        if size != probe_size:
            image = _nearest_resize(image, probe_size)
        psnr_db = psnr(reference, image)
        rows.append(
            PricedStep(
                step=step,
                latency_s=report.latency_s,
                energy_j=report.energy_j,
                speedup=base_report.latency_s / report.latency_s,
                energy_gain=base_report.energy_j / report.energy_j,
                psnr_db=psnr_db,
                quality=quality_from_psnr(psnr_db),
            )
        )
    return LadderPricing(
        scenario=scenario,
        device=device,
        base_latency_s=base_report.latency_s,
        base_energy_j=base_report.energy_j,
        rows=tuple(rows),
    )


def _scenario_report(
    engine: "SweepEngine", device: str, scenario: Scenario
) -> "FrameReport":
    """The cached frame report pricing ``scenario`` on ``device``."""
    return engine.frame_report(
        device,
        scenario.model,
        config=scenario.frame_config(),
        precision=scenario.precision,
        pruning_ratio=scenario.pruning_ratio,
    )


# -- the control-plane configuration ------------------------------------------


@dataclass(frozen=True)
class ControlConfig:
    """The control plane one :class:`~repro.serve.fleet.FleetSimulator` runs.

    Any subset of the three mechanisms may be present.  ``tick_s`` is the
    autoscaler evaluation cadence; ``provision_delay_s`` is how long a
    scale-out decision takes before the new worker accepts traffic;
    ``initial_workers`` seeds the active count when an autoscaler is
    present (default: the policy's ``min_workers``).  Admission and
    shedding are closed-form at ingress and keep the FIFO fast path
    available; an autoscaler's tick feedback loop forces the event loop
    (see :attr:`fast_path_compatible`).
    """

    admission: AdmissionPolicy | None = None
    shedder: SheddingPolicy | None = None
    autoscaler: AutoscalePolicy | None = None
    tick_s: float = 0.05
    provision_delay_s: float = 0.5
    initial_workers: int | None = None

    def __post_init__(self) -> None:
        """Validate the tick cadence and provisioning model."""
        if self.tick_s <= 0.0:
            raise ValueError("tick_s must be positive")
        if self.provision_delay_s < 0.0:
            raise ValueError("provision_delay_s must be >= 0")
        if self.initial_workers is not None and self.initial_workers < 1:
            raise ValueError("initial_workers must be >= 1")

    @property
    def fast_path_compatible(self) -> bool:
        """Whether FIFO fleets under this config may take the batched fast path."""
        return self.autoscaler is None

    @property
    def active(self) -> bool:
        """Whether any mechanism is actually configured."""
        return (
            self.admission is not None
            or self.shedder is not None
            or self.autoscaler is not None
        )

"""Discrete-event fleet simulator driving the cached frame model.

The :class:`FleetSimulator` closes the loop between the demand side
(:mod:`repro.serve.request`), the policy side (:mod:`repro.serve.scheduler`)
and the frame-level device models: it replays a request stream against a
fleet of registered devices, asking the shared
:class:`~repro.sim.sweep.SweepEngine` for every per-request service time.
Because service estimates go through the engine's report cache, a stream of
thousands of requests over a handful of scenarios performs a handful of
frame simulations -- and those simulations are *bit-exact* the ones the
paper's figures use, so serving results and figure results never drift
apart.  When the engine carries a persistent result store
(:mod:`repro.perf.store`; the CLI attaches one by default), those frame
simulations are read from disk too, so a warm serving study performs no
cycle-level simulation at all.

The event loop is deterministic: events are ordered by ``(time, kind,
sequence number)``, all simultaneous events are drained before the
scheduler runs,
and no wall-clock or unseeded randomness is consulted anywhere.  The same
stream + fleet + scheduler therefore produces an identical
:class:`~repro.serve.report.ServingReport` on every run, every platform and
every ``--jobs`` setting.
"""

from __future__ import annotations

import dataclasses
import enum
import heapq
import itertools
from typing import TYPE_CHECKING, Sequence

from repro.serve.report import CompletedRequest, ServingReport
from repro.serve.scheduler import (
    Dispatch,
    FIFOScheduler,
    Scheduler,
    ServiceEstimate,
    Worker,
)
from repro.sim.sweep import SweepEngine, get_default_engine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serve.request import Request


class _EventKind(enum.IntEnum):
    """Event ordering at equal timestamps: arrivals, then completions, wakes."""

    ARRIVAL = 0
    COMPLETE = 1
    WAKE = 2


class FleetSimulator:
    """Replay a request stream against a fleet of simulated devices.

    ``devices`` are registry names (:data:`repro.core.device.DEVICE_REGISTRY`)
    and may repeat -- ``("flexnerfer", "flexnerfer", "neurex")`` is a
    three-chip fleet.  ``default_sla_s`` stamps a deadline onto requests that
    do not carry one; ``engine`` defaults to the shared process-wide sweep
    engine so serving runs reuse (and warm) the figures' report cache.
    """

    def __init__(
        self,
        devices: Sequence[str],
        scheduler: Scheduler | None = None,
        engine: SweepEngine | None = None,
        default_sla_s: float | None = None,
    ) -> None:
        """Resolve the fleet's devices and bind the scheduler and engine."""
        if not devices:
            raise ValueError("a fleet needs at least one device")
        self.engine = engine or get_default_engine()
        self.scheduler = scheduler or FIFOScheduler()
        self.default_sla_s = default_sla_s
        # Devices are resolved (and validated) once; per-run Worker state is
        # built fresh inside run(), so one simulator can serve many streams.
        self._fleet = [
            (name.lower(), self.engine.device(name)) for name in devices
        ]

    # -- service estimation ----------------------------------------------------

    def estimate(self, request: "Request", worker: Worker) -> ServiceEstimate:
        """Cached frame-model estimate of one request on one worker.

        Unsupported knobs are collapsed by the device's capability flags
        (exactly as in sweeps), so e.g. a pruned scenario estimated on
        NeuRex reuses NeuRex's single dense simulation.
        """
        scenario = request.scenario
        report = self.engine.frame_report(
            worker.name,
            scenario.model,
            config=scenario.frame_config(),
            precision=scenario.precision,
            pruning_ratio=scenario.pruning_ratio,
        )
        return ServiceEstimate(latency_s=report.latency_s, energy_j=report.energy_j)

    # -- the event loop --------------------------------------------------------

    def run(self, requests: Sequence["Request"]) -> ServingReport:
        """Simulate serving ``requests`` and aggregate a :class:`ServingReport`.

        Worker state is per-run: calling ``run`` again on the same simulator
        starts from an idle fleet (only the engine's caches persist).
        """
        workers = [
            Worker(index=i, name=name, device=device)
            for i, (name, device) in enumerate(self._fleet)
        ]
        seq = itertools.count()
        # Heap entries are (time, kind, seq, payload): at equal timestamps
        # arrivals order before completions before wakes, then by push order.
        events: list[tuple[float, int, int, object]] = []
        pending_arrivals = 0
        for request in sorted(requests, key=lambda r: (r.arrival_s, r.request_id)):
            if request.deadline_s is None and self.default_sla_s is not None:
                request = dataclasses.replace(
                    request, deadline_s=request.arrival_s + self.default_sla_s
                )
            heapq.heappush(
                events,
                (request.arrival_s, int(_EventKind.ARRIVAL), next(seq), request),
            )
            pending_arrivals += 1

        queue: list["Request"] = []
        completed: list[CompletedRequest] = []
        scheduled_wakes: set[float] = set()

        while events:
            now = events[0][0]
            # Drain every event at this timestamp before scheduling, so the
            # policy sees a consistent snapshot of queue + idle devices.
            while events and events[0][0] == now:
                _, kind, _, payload = heapq.heappop(events)
                if kind == int(_EventKind.ARRIVAL):
                    queue.append(payload)
                    pending_arrivals -= 1
                elif kind == int(_EventKind.COMPLETE):
                    completed.extend(payload)
                else:  # WAKE: state already advanced, scheduling happens below
                    scheduled_wakes.discard(now)

            idle = [w for w in workers if w.busy_until_s <= now]
            dispatches, wake = self.scheduler.assign(
                now, queue, idle, self.estimate, draining=pending_arrivals == 0
            )
            for dispatch in dispatches:
                finish, records = self._serve(now, dispatch)
                heapq.heappush(
                    events, (finish, int(_EventKind.COMPLETE), next(seq), records)
                )
            if wake is not None and wake > now and wake not in scheduled_wakes:
                scheduled_wakes.add(wake)
                heapq.heappush(events, (wake, int(_EventKind.WAKE), next(seq), None))
            if not events and queue:
                raise RuntimeError(
                    f"scheduler '{self.scheduler.name}' stalled with "
                    f"{len(queue)} queued requests and no pending events"
                )

        return ServingReport.from_completions(
            scheduler=self.scheduler.name,
            fleet=tuple(w.name for w in workers),
            workers=workers,
            completed=completed,
            num_requests=len(requests),
        )

    def _serve(
        self, now: float, dispatch: Dispatch
    ) -> tuple[float, tuple[CompletedRequest, ...]]:
        """Occupy the dispatch's worker and build its completion records."""
        worker = dispatch.worker
        if worker.busy_until_s > now:  # pragma: no cover - defensive
            raise RuntimeError(
                f"{worker.label} dispatched at {now} but busy until "
                f"{worker.busy_until_s}"
            )
        per_frame = self.estimate(dispatch.requests[0], worker)
        batch = len(dispatch.requests)
        service_s = worker.device.service_time_s(per_frame.latency_s, batch)
        energy_j = worker.device.service_energy_j(per_frame.energy_j, batch)
        finish = now + service_s
        worker.busy_until_s = finish
        worker.busy_s += service_s
        worker.energy_j += energy_j
        worker.requests_served += batch
        worker.batches_served += 1
        records = tuple(
            CompletedRequest(
                request=request,
                worker=worker.label,
                start_s=now,
                finish_s=finish,
                batch_size=batch,
                energy_j=energy_j / batch,
            )
            for request in dispatch.requests
        )
        return finish, records

"""Discrete-event fleet simulator driving the cached frame model.

The :class:`FleetSimulator` closes the loop between the demand side
(:mod:`repro.serve.request`), the policy side (:mod:`repro.serve.scheduler`)
and the frame-level device models: it replays a request stream against a
fleet of registered devices, asking the shared
:class:`~repro.sim.sweep.SweepEngine` for every per-request service time.
Because service estimates go through the engine's report cache, a stream of
thousands of requests over a handful of scenarios performs a handful of
frame simulations -- and those simulations are *bit-exact* the ones the
paper's figures use, so serving results and figure results never drift
apart.  When the engine carries a persistent result store
(:mod:`repro.perf.store`; the CLI attaches one by default), those frame
simulations are read from disk too, so a warm serving study performs no
cycle-level simulation at all.

A :class:`~repro.serve.control.ControlConfig` attaches an overload control
plane: admission policies reject requests at ingress, a shedding policy
serves degraded-but-cheaper scenarios when the queue an arrival observes is
deep, and an autoscaler grows / shrinks the active worker subset on a fixed
control tick (scale-out pays a provisioning delay; scale-in drains).
Admission and shedding are decided at ingress from integer queue depths, so
FIFO fleets keep the batched fast path *and* its bit-identical guarantee;
autoscaling's feedback loop runs on the event loop only.

The event loop is deterministic: events are ordered by ``(time, kind,
sequence number)``, all simultaneous events are drained before the
scheduler runs,
and no wall-clock or unseeded randomness is consulted anywhere.  The same
stream + fleet + scheduler therefore produces an identical
:class:`~repro.serve.report.ServingReport` on every run, every platform and
every ``--jobs`` setting.
"""

from __future__ import annotations

import collections
import dataclasses
import enum
import heapq
import itertools
from bisect import bisect_left
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from repro.serve.control import ControlConfig, FleetSnapshot
from repro.serve.report import (
    CompletedRequest,
    RejectedRequest,
    ServingReport,
    percentile,
)
from repro.serve.scheduler import (
    Dispatch,
    FIFOScheduler,
    Scheduler,
    ServiceEstimate,
    Worker,
)
from repro.sim.sweep import SweepEngine, get_default_engine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serve.request import Request, Scenario


class _EventKind(enum.IntEnum):
    """Event ordering at equal timestamps: arrivals, completions, wakes, ticks."""

    ARRIVAL = 0
    COMPLETE = 1
    WAKE = 2
    TICK = 3


class _ControlState:
    """Per-run mutable state of one :class:`ControlConfig` evaluation.

    Built fresh inside every ``run()`` call so repeated runs of the same
    simulator (and the same shared ``ControlConfig``) stay bit-identical:
    admission sessions, shed-level stamps, the autoscaler's active flags
    and latency window all live here and die with the run.
    """

    def __init__(self, config: ControlConfig, workers: Sequence[Worker]) -> None:
        self.config = config
        self.admission = (
            config.admission.session() if config.admission is not None else None
        )
        self.shedder = config.shedder
        self.autoscaler = config.autoscaler
        pool = len(workers)
        if self.autoscaler is not None:
            initial = (
                config.initial_workers
                if config.initial_workers is not None
                else self.autoscaler.min_workers
            )
            initial = self.autoscaler.clamp(initial, pool)
        else:
            initial = pool
        self.active = [index < initial for index in range(pool)]
        self.active_count = initial
        self.peak_active = initial
        self.tick_scheduled = False
        self.latencies: collections.deque[float] | None = (
            collections.deque(maxlen=self.autoscaler.latency_window)
            if self.autoscaler is not None
            else None
        )
        # Shed level stamped at ingress, keyed by request object identity
        # (the queued object flows through to dispatch unchanged).
        self.shed_levels: dict[int, int] = {}
        # Degraded scenarios resolved once per (scenario, level); the id()
        # probe mirrors the fast path's row cache, with a by-value fallback
        # for distinct-but-equal scenario objects.
        self._degraded_by_id: dict[tuple[int, int], "Scenario"] = {}
        self._degraded_by_value: dict[tuple[object, int], "Scenario"] = {}
        # Time-weighted active-worker accounting (autoscaler runs only).
        self._integral_origin: float | None = None
        self._last_change_s = 0.0
        self._active_integral = 0.0

    # -- ingress ---------------------------------------------------------------

    def admit_or_reject(
        self,
        now: float,
        request: "Request",
        queue_depth: int,
        rejected: list[RejectedRequest],
    ) -> bool:
        """Run admission + shed stamping for one arrival; False when rejected."""
        if self.admission is not None and not self.admission.admit(now, queue_depth):
            rejected.append(
                RejectedRequest(
                    request=request, time_s=now, reason=self.admission.reason
                )
            )
            return False
        if self.shedder is not None and request.degradable:
            level = self.shedder.level(queue_depth, self.active_count)
            if level:
                self.shed_levels[id(request)] = level
        return True

    def degraded(self, scenario: "Scenario", level: int) -> "Scenario":
        """The (cached) scenario actually served at ``level``."""
        key = (id(scenario), level)
        cached = self._degraded_by_id.get(key)
        if cached is None:
            value_key = (scenario, level)
            cached = self._degraded_by_value.get(value_key)
            if cached is None:
                assert self.shedder is not None
                cached = self.shedder.ladder.apply(scenario, level)
                self._degraded_by_value[value_key] = cached
            self._degraded_by_id[key] = cached
        return cached

    # -- autoscaling -----------------------------------------------------------

    def begin(self, now: float) -> None:
        """Anchor the active-worker time integral at the first event."""
        self._integral_origin = now
        self._last_change_s = now

    def observe(self, records: Sequence[CompletedRequest]) -> None:
        """Feed completion latencies into the autoscaler's window."""
        if self.latencies is not None:
            for record in records:
                self.latencies.append(record.finish_s - record.request.arrival_s)

    def autoscale(
        self,
        now: float,
        workers: Sequence[Worker],
        queue_depth: int,
        schedule_wake: Callable[[float], None],
    ) -> None:
        """Evaluate the autoscaler once and apply its (clamped) decision."""
        policy = self.autoscaler
        assert policy is not None
        self._account(now)
        busy = sum(
            1 for w in workers if self.active[w.index] and w.busy_until_s > now
        )
        recent = (
            percentile(list(self.latencies), 95.0) if self.latencies else None
        )
        snapshot = FleetSnapshot(
            now=now,
            queue_depth=queue_depth,
            active_workers=self.active_count,
            busy_workers=busy,
            pool_size=len(workers),
            recent_p95_s=recent,
        )
        desired = policy.clamp(policy.desired_workers(snapshot), len(workers))
        while desired > self.active_count:
            index = next(i for i, a in enumerate(self.active) if not a)
            self.active[index] = True
            self.active_count += 1
            worker = workers[index]
            ready = now + self.config.provision_delay_s
            if worker.busy_until_s < ready:
                worker.busy_until_s = ready
            if ready > now:
                schedule_wake(ready)
        while desired < self.active_count:
            index = next(
                i for i in range(len(self.active) - 1, -1, -1) if self.active[i]
            )
            # Drain: the worker finishes any in-flight dispatch and simply
            # stops being eligible for new ones.
            self.active[index] = False
            self.active_count -= 1
        if self.active_count > self.peak_active:
            self.peak_active = self.active_count

    def _account(self, now: float) -> None:
        """Accumulate the active-worker time integral up to ``now``."""
        if self._integral_origin is None:
            self.begin(now)
            return
        self._active_integral += self.active_count * (now - self._last_change_s)
        self._last_change_s = now

    def mean_active(self, final_now: float) -> float:
        """Time-weighted mean active workers over the simulated span."""
        if self._integral_origin is None:
            return float(self.active_count)
        self._account(final_now)
        span = final_now - self._integral_origin
        if span <= 0.0:
            return float(self.active_count)
        return self._active_integral / span


class FleetSimulator:
    """Replay a request stream against a fleet of simulated devices.

    ``devices`` are registry names (:data:`repro.core.device.DEVICE_REGISTRY`)
    and may repeat -- ``("flexnerfer", "flexnerfer", "neurex")`` is a
    three-chip fleet.  ``default_sla_s`` stamps a deadline onto requests that
    do not carry one; ``engine`` defaults to the shared process-wide sweep
    engine so serving runs reuse (and warm) the figures' report cache.
    ``control`` attaches an overload control plane
    (:class:`~repro.serve.control.ControlConfig`); with an autoscaler the
    ``devices`` list is the *provisioned pool* and the policy decides how
    much of it is active at any instant.
    """

    def __init__(
        self,
        devices: Sequence[str],
        scheduler: Scheduler | None = None,
        engine: SweepEngine | None = None,
        default_sla_s: float | None = None,
        control: ControlConfig | None = None,
    ) -> None:
        """Resolve the fleet's devices and bind scheduler, engine and control."""
        if not devices:
            raise ValueError("a fleet needs at least one device")
        self.engine = engine or get_default_engine()
        self.scheduler = scheduler or FIFOScheduler()
        self.default_sla_s = default_sla_s
        self.control = control
        # Devices are resolved (and validated) once; per-run Worker state is
        # built fresh inside run(), so one simulator can serve many streams.
        self._fleet = [
            (name.lower(), self.engine.device(name)) for name in devices
        ]

    # -- service estimation ----------------------------------------------------

    def estimate(self, request: "Request", worker: Worker) -> ServiceEstimate:
        """Cached frame-model estimate of one request on one worker.

        Unsupported knobs are collapsed by the device's capability flags
        (exactly as in sweeps), so e.g. a pruned scenario estimated on
        NeuRex reuses NeuRex's single dense simulation.
        """
        return self._estimate_scenario(request.scenario, worker)

    def _estimate_scenario(self, scenario, worker: Worker) -> ServiceEstimate:
        """The frame-model estimate behind :meth:`estimate`, keyed by scenario."""
        report = self.engine.frame_report(
            worker.name,
            scenario.model,
            config=scenario.frame_config(),
            precision=scenario.precision,
            pruning_ratio=scenario.pruning_ratio,
        )
        return ServiceEstimate(latency_s=report.latency_s, energy_j=report.energy_j)

    # -- the event loop --------------------------------------------------------

    def run(self, requests: Sequence["Request"]) -> ServingReport:
        """Simulate serving ``requests`` and aggregate a :class:`ServingReport`.

        Worker state is per-run: calling ``run`` again on the same simulator
        starts from an idle fleet (only the engine's caches persist).

        Plain FIFO fleets take the batched fast path
        (:meth:`_run_fifo_batched`), which produces a bit-identical report
        at an order of magnitude higher request throughput; every other
        scheduler -- and any config with an autoscaler, whose tick feedback
        has no closed form -- runs the discrete-event loop.  Admission and
        shedding alone keep the fast path.
        """
        if type(self.scheduler) is FIFOScheduler and (
            self.control is None or self.control.fast_path_compatible
        ):
            return self._run_fifo_batched(requests)
        return self._run_event_loop(requests)

    def _run_event_loop(self, requests: Sequence["Request"]) -> ServingReport:
        """The general discrete-event engine (any scheduler, full control)."""
        workers = [
            Worker(index=i, name=name, device=device)
            for i, (name, device) in enumerate(self._fleet)
        ]
        state = (
            _ControlState(self.control, workers)
            if self.control is not None and self.control.active
            else None
        )
        seq = itertools.count()
        # Heap entries are (time, kind, seq, payload): at equal timestamps
        # arrivals order before completions before wakes and control ticks,
        # then by push order.
        events: list[tuple[float, int, int, object]] = []
        pending_arrivals = 0
        ordered = sorted(requests, key=lambda r: (r.arrival_s, r.request_id))
        arrival_span = (
            ordered[-1].arrival_s - ordered[0].arrival_s if ordered else 0.0
        )
        for request in ordered:
            if request.deadline_s is None and self.default_sla_s is not None:
                request = dataclasses.replace(
                    request, deadline_s=request.arrival_s + self.default_sla_s
                )
            heapq.heappush(
                events,
                (request.arrival_s, int(_EventKind.ARRIVAL), next(seq), request),
            )
            pending_arrivals += 1

        queue: list["Request"] = []
        completed: list[CompletedRequest] = []
        rejected: list[RejectedRequest] = []
        scheduled_wakes: set[float] = set()

        def schedule_wake(at: float) -> None:
            """Queue a WAKE so scheduling re-runs when a worker becomes ready."""
            if at not in scheduled_wakes:
                scheduled_wakes.add(at)
                heapq.heappush(events, (at, int(_EventKind.WAKE), next(seq), None))

        autoscaling = state is not None and state.autoscaler is not None
        if autoscaling and events:
            first = events[0][0]
            state.begin(first)
            heapq.heappush(
                events, (first + state.config.tick_s, int(_EventKind.TICK), next(seq), None)
            )
            state.tick_scheduled = True

        now = 0.0
        while events:
            now = events[0][0]
            tick_due = False
            # Drain every event at this timestamp before scheduling, so the
            # policy sees a consistent snapshot of queue + idle devices.
            while events and events[0][0] == now:
                _, kind, _, payload = heapq.heappop(events)
                if kind == int(_EventKind.ARRIVAL):
                    pending_arrivals -= 1
                    if state is None or state.admit_or_reject(
                        now, payload, len(queue), rejected
                    ):
                        queue.append(payload)
                elif kind == int(_EventKind.COMPLETE):
                    completed.extend(payload)
                    if state is not None:
                        state.observe(payload)
                elif kind == int(_EventKind.WAKE):
                    scheduled_wakes.discard(now)
                else:  # TICK: the autoscaler runs after the drain below
                    tick_due = True
                    state.tick_scheduled = False
            if tick_due:
                state.autoscale(now, workers, len(queue), schedule_wake)
            if autoscaling and not state.tick_scheduled and (
                pending_arrivals
                or queue
                or any(w.busy_until_s > now for w in workers)
            ):
                heapq.heappush(
                    events,
                    (now + state.config.tick_s, int(_EventKind.TICK), next(seq), None),
                )
                state.tick_scheduled = True

            idle = [
                w
                for w in workers
                if w.busy_until_s <= now
                and (state is None or state.active[w.index])
            ]
            dispatches, wake = self.scheduler.assign(
                now, queue, idle, self.estimate, draining=pending_arrivals == 0
            )
            for dispatch in dispatches:
                finish, records = self._serve(now, dispatch, state)
                heapq.heappush(
                    events, (finish, int(_EventKind.COMPLETE), next(seq), records)
                )
            if wake is not None and wake > now:
                schedule_wake(wake)
            if not events and queue:
                raise RuntimeError(
                    f"scheduler '{self.scheduler.name}' stalled with "
                    f"{len(queue)} queued requests and no pending events"
                )

        return ServingReport.from_completions(
            scheduler=self.scheduler.name,
            fleet=tuple(w.name for w in workers),
            workers=workers,
            completed=completed,
            num_requests=len(requests),
            rejected=tuple(rejected),
            arrival_span_s=arrival_span,
            peak_active_workers=state.peak_active if autoscaling else None,
            mean_active_workers=state.mean_active(now) if autoscaling else None,
        )

    def _serve(
        self, now: float, dispatch: Dispatch, state: _ControlState | None = None
    ) -> tuple[float, tuple[CompletedRequest, ...]]:
        """Occupy the dispatch's worker and build its completion records.

        Under quality shedding a batch is rendered once at the *deepest*
        shed level stamped on any of its members (a batch shares one render
        configuration), and every member's record carries that level and
        its delivered quality.
        """
        worker = dispatch.worker
        if worker.busy_until_s > now:  # pragma: no cover - defensive
            raise RuntimeError(
                f"{worker.label} dispatched at {now} but busy until "
                f"{worker.busy_until_s}"
            )
        level = 0
        quality = 1.0
        scenario = dispatch.requests[0].scenario
        if state is not None and state.shedder is not None:
            # A batch renders once, so degrading it would degrade every
            # member; a single pinned (degradable=False) request therefore
            # pins its whole batch at full quality.
            if all(request.degradable for request in dispatch.requests):
                level = max(
                    state.shed_levels.get(id(request), 0)
                    for request in dispatch.requests
                )
            if level:
                quality = state.shedder.ladder.quality_of(level)
                scenario = state.degraded(scenario, level)
        per_frame = self._estimate_scenario(scenario, worker)
        batch = len(dispatch.requests)
        service_s = worker.device.service_time_s(per_frame.latency_s, batch)
        energy_j = worker.device.service_energy_j(per_frame.energy_j, batch)
        finish = now + service_s
        worker.busy_until_s = finish
        worker.busy_s += service_s
        worker.energy_j += energy_j
        worker.requests_served += batch
        worker.batches_served += 1
        records = tuple(
            CompletedRequest(
                request=request,
                worker=worker.label,
                start_s=now,
                finish_s=finish,
                batch_size=batch,
                energy_j=energy_j / batch,
                shed_level=level,
                quality=quality,
            )
            for request in dispatch.requests
        )
        return finish, records

    # -- the FIFO fast path ----------------------------------------------------

    def _run_fifo_batched(self, requests: Sequence["Request"]) -> ServingReport:
        """Batched replay of a plain-FIFO fleet, bit-identical to the loop.

        FIFO with single-request dispatch admits a closed-form schedule:
        processing requests in ``(arrival, request_id)`` order, each either
        starts immediately on the lowest-indexed worker already free at its
        arrival, or waits for the earliest-freeing worker (lowest index on
        ties) -- exactly what the event loop's drain-then-assign cycle
        produces.  That turns the heap, the scheduler round-trips and the
        per-event bookkeeping into one linear pass with per-scenario
        service times resolved once per (scenario, worker) pair, which is
        where the >=10x request throughput comes from.  Per-worker float
        accumulation runs in the same dispatch order as the event loop, so
        the resulting :class:`ServingReport` -- including the ``completed``
        log -- is bit-identical (pinned by ``tests/serve/test_fleet.py``).

        Admission and shedding configs take :meth:`_run_fifo_controlled`,
        which extends the same closed form (the queue depth a request
        observes at ingress is a pure function of already-computed start
        times); the control-free hot loop below is untouched.
        """
        if self.control is not None and self.control.active:
            return self._run_fifo_controlled(requests)
        workers = [
            Worker(index=i, name=name, device=device)
            for i, (name, device) in enumerate(self._fleet)
        ]
        ordered = sorted(requests, key=lambda r: (r.arrival_s, r.request_id))
        if self.default_sla_s is not None:
            sla = self.default_sla_s
            ordered = [
                r
                if r.deadline_s is not None
                else dataclasses.replace(r, deadline_s=r.arrival_s + sla)
                for r in ordered
            ]
        n = len(ordered)
        k = len(workers)
        labels = [w.label for w in workers]
        arrival_span = (
            ordered[-1].arrival_s - ordered[0].arrival_s if ordered else 0.0
        )
        # (service_s, energy_j) per worker, resolved once per scenario.
        # Streams share scenario instances, so the id() probe almost always
        # hits; the by-value fallback keeps distinct-but-equal scenario
        # objects on the same cached frame simulation (requests keep their
        # scenarios alive for the whole run, so ids stay valid).
        rows_by_id: dict[int, tuple[tuple[float, ...], tuple[float, ...]]] = {}
        rows_by_value: dict[object, tuple[tuple[float, ...], tuple[float, ...]]] = {}

        free = [w.busy_until_s for w in workers]
        busy = [0.0] * k
        worker_energy = [0.0] * k
        served = [0] * k
        batches = [0] * k
        completed: list[CompletedRequest] = []
        ids: list[int] = []
        arrivals: list[float] = []
        starts: list[float] = []
        finishes: list[float] = []
        energies: list[float] = []
        deadlines: list[float | None] = []
        new_completion = CompletedRequest.__new__

        for request in ordered:
            scenario = request.scenario
            row = rows_by_id.get(id(scenario))
            if row is None:
                row = rows_by_value.get(scenario)
                if row is None:
                    estimates = [
                        self._estimate_scenario(scenario, w) for w in workers
                    ]
                    row = (
                        tuple(
                            w.device.service_time_s(e.latency_s, 1)
                            for w, e in zip(workers, estimates)
                        ),
                        tuple(
                            w.device.service_energy_j(e.energy_j, 1)
                            for w, e in zip(workers, estimates)
                        ),
                    )
                    rows_by_value[scenario] = row
                rows_by_id[id(scenario)] = row
            service_row, energy_row = row
            arrival = request.arrival_s
            chosen = -1
            for j in range(k):
                if free[j] <= arrival:
                    chosen = j
                    start = arrival
                    break
            if chosen < 0:
                chosen = 0
                start = free[0]
                for j in range(1, k):
                    if free[j] < start:
                        start = free[j]
                        chosen = j
            service_s = service_row[chosen]
            energy_j = energy_row[chosen]
            finish = start + service_s
            free[chosen] = finish
            busy[chosen] += service_s
            worker_energy[chosen] += energy_j
            served[chosen] += 1
            batches[chosen] += 1
            # CompletedRequest construction dominates the pass at dataclass
            # __init__ speed; __new__ plus direct __dict__ stores builds the
            # same frozen instances ~3x faster (shed_level / quality fall
            # back to the dataclass defaults on this control-free path).
            record = new_completion(CompletedRequest)
            fields = record.__dict__
            fields["request"] = request
            fields["worker"] = labels[chosen]
            fields["start_s"] = start
            fields["finish_s"] = finish
            fields["batch_size"] = 1
            fields["energy_j"] = energy_j
            completed.append(record)
            ids.append(request.request_id)
            arrivals.append(arrival)
            starts.append(start)
            finishes.append(finish)
            energies.append(energy_j)
            deadlines.append(request.deadline_s)

        for j, worker in enumerate(workers):
            worker.busy_until_s = free[j]
            worker.busy_s = busy[j]
            worker.energy_j = worker_energy[j]
            worker.requests_served = served[j]
            worker.batches_served = batches[j]

        arrival_col = np.asarray(arrivals, dtype=np.float64)
        start_col = np.asarray(starts, dtype=np.float64)
        finish_col = np.asarray(finishes, dtype=np.float64)
        energy_col = np.asarray(energies, dtype=np.float64)
        id_col = np.asarray(ids, dtype=np.int64)
        if n and np.any(id_col[1:] < id_col[:-1]):
            # Trace streams may number requests out of arrival order; the
            # report contract is request-id order.
            order = np.argsort(id_col, kind="stable")
            arrival_col = arrival_col[order]
            start_col = start_col[order]
            finish_col = finish_col[order]
            energy_col = energy_col[order]
            positions = order.tolist()
            completed = [completed[i] for i in positions]
            deadlines = [deadlines[i] for i in positions]
        return ServingReport.from_arrays(
            scheduler=self.scheduler.name,
            fleet=tuple(w.name for w in workers),
            workers=workers,
            completed=tuple(completed),
            num_requests=len(requests),
            arrivals=arrival_col,
            starts=start_col,
            finishes=finish_col,
            deadlines=deadlines,
            batch_sizes=[1] * n,
            energies=energy_col,
            arrival_span_s=arrival_span,
        )

    def _run_fifo_controlled(self, requests: Sequence["Request"]) -> ServingReport:
        """The FIFO fast path with admission control and quality shedding.

        Extends the closed form of :meth:`_run_fifo_batched`: both controls
        are decided at ingress from the queue depth the arrival observes,
        and in FIFO order that depth is exactly ``admitted so far minus
        starts before this arrival`` -- start times are non-decreasing in
        ``(arrival, request_id)`` order, so one :func:`bisect_left` over
        the running start list recovers the event loop's ``len(queue)``
        bit for bit (the differential fuzz suite pins this).  Service rows
        are resolved once per (scenario, shed level, worker).
        """
        control = self.control
        assert control is not None
        session = (
            control.admission.session() if control.admission is not None else None
        )
        shedder = control.shedder
        ladder = shedder.ladder if shedder is not None else None
        workers = [
            Worker(index=i, name=name, device=device)
            for i, (name, device) in enumerate(self._fleet)
        ]
        ordered = sorted(requests, key=lambda r: (r.arrival_s, r.request_id))
        if self.default_sla_s is not None:
            sla = self.default_sla_s
            ordered = [
                r
                if r.deadline_s is not None
                else dataclasses.replace(r, deadline_s=r.arrival_s + sla)
                for r in ordered
            ]
        k = len(workers)
        labels = [w.label for w in workers]
        arrival_span = (
            ordered[-1].arrival_s - ordered[0].arrival_s if ordered else 0.0
        )
        rows_by_key: dict[
            tuple[int, int], tuple[tuple[float, ...], tuple[float, ...]]
        ] = {}
        rows_by_value: dict[
            tuple[object, int], tuple[tuple[float, ...], tuple[float, ...]]
        ] = {}

        free = [w.busy_until_s for w in workers]
        busy = [0.0] * k
        worker_energy = [0.0] * k
        served = [0] * k
        batches = [0] * k
        completed: list[CompletedRequest] = []
        rejected: list[RejectedRequest] = []
        ids: list[int] = []
        arrivals: list[float] = []
        starts: list[float] = []
        finishes: list[float] = []
        energies: list[float] = []
        deadlines: list[float | None] = []
        qualities: list[float] = []
        shed_levels: list[int] = []
        admitted = 0
        new_completion = CompletedRequest.__new__

        for request in ordered:
            arrival = request.arrival_s
            # Queue depth this arrival observes: previously admitted
            # requests whose service has not started strictly before it.
            depth = admitted - bisect_left(starts, arrival)
            if session is not None and not session.admit(arrival, depth):
                rejected.append(
                    RejectedRequest(
                        request=request, time_s=arrival, reason=session.reason
                    )
                )
                continue
            level = (
                shedder.level(depth, k)
                if shedder is not None and request.degradable
                else 0
            )
            scenario = request.scenario
            key = (id(scenario), level)
            row = rows_by_key.get(key)
            if row is None:
                value_key = (scenario, level)
                row = rows_by_value.get(value_key)
                if row is None:
                    serve_scenario = (
                        ladder.apply(scenario, level) if level else scenario
                    )
                    estimates = [
                        self._estimate_scenario(serve_scenario, w) for w in workers
                    ]
                    row = (
                        tuple(
                            w.device.service_time_s(e.latency_s, 1)
                            for w, e in zip(workers, estimates)
                        ),
                        tuple(
                            w.device.service_energy_j(e.energy_j, 1)
                            for w, e in zip(workers, estimates)
                        ),
                    )
                    rows_by_value[value_key] = row
                rows_by_key[key] = row
            service_row, energy_row = row
            chosen = -1
            for j in range(k):
                if free[j] <= arrival:
                    chosen = j
                    start = arrival
                    break
            if chosen < 0:
                chosen = 0
                start = free[0]
                for j in range(1, k):
                    if free[j] < start:
                        start = free[j]
                        chosen = j
            service_s = service_row[chosen]
            energy_j = energy_row[chosen]
            finish = start + service_s
            free[chosen] = finish
            busy[chosen] += service_s
            worker_energy[chosen] += energy_j
            served[chosen] += 1
            batches[chosen] += 1
            quality = ladder.quality_of(level) if ladder is not None else 1.0
            record = new_completion(CompletedRequest)
            fields = record.__dict__
            fields["request"] = request
            fields["worker"] = labels[chosen]
            fields["start_s"] = start
            fields["finish_s"] = finish
            fields["batch_size"] = 1
            fields["energy_j"] = energy_j
            fields["shed_level"] = level
            fields["quality"] = quality
            completed.append(record)
            admitted += 1
            ids.append(request.request_id)
            arrivals.append(arrival)
            starts.append(start)
            finishes.append(finish)
            energies.append(energy_j)
            deadlines.append(request.deadline_s)
            qualities.append(quality)
            shed_levels.append(level)

        for j, worker in enumerate(workers):
            worker.busy_until_s = free[j]
            worker.busy_s = busy[j]
            worker.energy_j = worker_energy[j]
            worker.requests_served = served[j]
            worker.batches_served = batches[j]

        n = len(completed)
        arrival_col = np.asarray(arrivals, dtype=np.float64)
        start_col = np.asarray(starts, dtype=np.float64)
        finish_col = np.asarray(finishes, dtype=np.float64)
        energy_col = np.asarray(energies, dtype=np.float64)
        id_col = np.asarray(ids, dtype=np.int64)
        if n and np.any(id_col[1:] < id_col[:-1]):
            order = np.argsort(id_col, kind="stable")
            arrival_col = arrival_col[order]
            start_col = start_col[order]
            finish_col = finish_col[order]
            energy_col = energy_col[order]
            positions = order.tolist()
            completed = [completed[i] for i in positions]
            deadlines = [deadlines[i] for i in positions]
            qualities = [qualities[i] for i in positions]
            shed_levels = [shed_levels[i] for i in positions]
        return ServingReport.from_arrays(
            scheduler=self.scheduler.name,
            fleet=tuple(w.name for w in workers),
            workers=workers,
            completed=tuple(completed),
            num_requests=len(requests),
            arrivals=arrival_col,
            starts=start_col,
            finishes=finish_col,
            deadlines=deadlines,
            batch_sizes=[1] * n,
            energies=energy_col,
            qualities=qualities,
            shed_levels=shed_levels,
            rejected=tuple(rejected),
            arrival_span_s=arrival_span,
        )

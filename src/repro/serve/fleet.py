"""Discrete-event fleet simulator driving the cached frame model.

The :class:`FleetSimulator` closes the loop between the demand side
(:mod:`repro.serve.request`), the policy side (:mod:`repro.serve.scheduler`)
and the frame-level device models: it replays a request stream against a
fleet of registered devices, asking the shared
:class:`~repro.sim.sweep.SweepEngine` for every per-request service time.
Because service estimates go through the engine's report cache, a stream of
thousands of requests over a handful of scenarios performs a handful of
frame simulations -- and those simulations are *bit-exact* the ones the
paper's figures use, so serving results and figure results never drift
apart.  When the engine carries a persistent result store
(:mod:`repro.perf.store`; the CLI attaches one by default), those frame
simulations are read from disk too, so a warm serving study performs no
cycle-level simulation at all.

The event loop is deterministic: events are ordered by ``(time, kind,
sequence number)``, all simultaneous events are drained before the
scheduler runs,
and no wall-clock or unseeded randomness is consulted anywhere.  The same
stream + fleet + scheduler therefore produces an identical
:class:`~repro.serve.report.ServingReport` on every run, every platform and
every ``--jobs`` setting.
"""

from __future__ import annotations

import dataclasses
import enum
import heapq
import itertools
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.serve.report import CompletedRequest, ServingReport
from repro.serve.scheduler import (
    Dispatch,
    FIFOScheduler,
    Scheduler,
    ServiceEstimate,
    Worker,
)
from repro.sim.sweep import SweepEngine, get_default_engine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serve.request import Request


class _EventKind(enum.IntEnum):
    """Event ordering at equal timestamps: arrivals, then completions, wakes."""

    ARRIVAL = 0
    COMPLETE = 1
    WAKE = 2


class FleetSimulator:
    """Replay a request stream against a fleet of simulated devices.

    ``devices`` are registry names (:data:`repro.core.device.DEVICE_REGISTRY`)
    and may repeat -- ``("flexnerfer", "flexnerfer", "neurex")`` is a
    three-chip fleet.  ``default_sla_s`` stamps a deadline onto requests that
    do not carry one; ``engine`` defaults to the shared process-wide sweep
    engine so serving runs reuse (and warm) the figures' report cache.
    """

    def __init__(
        self,
        devices: Sequence[str],
        scheduler: Scheduler | None = None,
        engine: SweepEngine | None = None,
        default_sla_s: float | None = None,
    ) -> None:
        """Resolve the fleet's devices and bind the scheduler and engine."""
        if not devices:
            raise ValueError("a fleet needs at least one device")
        self.engine = engine or get_default_engine()
        self.scheduler = scheduler or FIFOScheduler()
        self.default_sla_s = default_sla_s
        # Devices are resolved (and validated) once; per-run Worker state is
        # built fresh inside run(), so one simulator can serve many streams.
        self._fleet = [
            (name.lower(), self.engine.device(name)) for name in devices
        ]

    # -- service estimation ----------------------------------------------------

    def estimate(self, request: "Request", worker: Worker) -> ServiceEstimate:
        """Cached frame-model estimate of one request on one worker.

        Unsupported knobs are collapsed by the device's capability flags
        (exactly as in sweeps), so e.g. a pruned scenario estimated on
        NeuRex reuses NeuRex's single dense simulation.
        """
        return self._estimate_scenario(request.scenario, worker)

    def _estimate_scenario(self, scenario, worker: Worker) -> ServiceEstimate:
        """The frame-model estimate behind :meth:`estimate`, keyed by scenario."""
        report = self.engine.frame_report(
            worker.name,
            scenario.model,
            config=scenario.frame_config(),
            precision=scenario.precision,
            pruning_ratio=scenario.pruning_ratio,
        )
        return ServiceEstimate(latency_s=report.latency_s, energy_j=report.energy_j)

    # -- the event loop --------------------------------------------------------

    def run(self, requests: Sequence["Request"]) -> ServingReport:
        """Simulate serving ``requests`` and aggregate a :class:`ServingReport`.

        Worker state is per-run: calling ``run`` again on the same simulator
        starts from an idle fleet (only the engine's caches persist).

        Plain FIFO fleets take the batched fast path
        (:meth:`_run_fifo_batched`), which produces a bit-identical report
        at an order of magnitude higher request throughput; every other
        scheduler runs the discrete-event loop.
        """
        if type(self.scheduler) is FIFOScheduler:
            return self._run_fifo_batched(requests)
        return self._run_event_loop(requests)

    def _run_event_loop(self, requests: Sequence["Request"]) -> ServingReport:
        """The general discrete-event engine (any scheduler)."""
        workers = [
            Worker(index=i, name=name, device=device)
            for i, (name, device) in enumerate(self._fleet)
        ]
        seq = itertools.count()
        # Heap entries are (time, kind, seq, payload): at equal timestamps
        # arrivals order before completions before wakes, then by push order.
        events: list[tuple[float, int, int, object]] = []
        pending_arrivals = 0
        for request in sorted(requests, key=lambda r: (r.arrival_s, r.request_id)):
            if request.deadline_s is None and self.default_sla_s is not None:
                request = dataclasses.replace(
                    request, deadline_s=request.arrival_s + self.default_sla_s
                )
            heapq.heappush(
                events,
                (request.arrival_s, int(_EventKind.ARRIVAL), next(seq), request),
            )
            pending_arrivals += 1

        queue: list["Request"] = []
        completed: list[CompletedRequest] = []
        scheduled_wakes: set[float] = set()

        while events:
            now = events[0][0]
            # Drain every event at this timestamp before scheduling, so the
            # policy sees a consistent snapshot of queue + idle devices.
            while events and events[0][0] == now:
                _, kind, _, payload = heapq.heappop(events)
                if kind == int(_EventKind.ARRIVAL):
                    queue.append(payload)
                    pending_arrivals -= 1
                elif kind == int(_EventKind.COMPLETE):
                    completed.extend(payload)
                else:  # WAKE: state already advanced, scheduling happens below
                    scheduled_wakes.discard(now)

            idle = [w for w in workers if w.busy_until_s <= now]
            dispatches, wake = self.scheduler.assign(
                now, queue, idle, self.estimate, draining=pending_arrivals == 0
            )
            for dispatch in dispatches:
                finish, records = self._serve(now, dispatch)
                heapq.heappush(
                    events, (finish, int(_EventKind.COMPLETE), next(seq), records)
                )
            if wake is not None and wake > now and wake not in scheduled_wakes:
                scheduled_wakes.add(wake)
                heapq.heappush(events, (wake, int(_EventKind.WAKE), next(seq), None))
            if not events and queue:
                raise RuntimeError(
                    f"scheduler '{self.scheduler.name}' stalled with "
                    f"{len(queue)} queued requests and no pending events"
                )

        return ServingReport.from_completions(
            scheduler=self.scheduler.name,
            fleet=tuple(w.name for w in workers),
            workers=workers,
            completed=completed,
            num_requests=len(requests),
        )

    def _serve(
        self, now: float, dispatch: Dispatch
    ) -> tuple[float, tuple[CompletedRequest, ...]]:
        """Occupy the dispatch's worker and build its completion records."""
        worker = dispatch.worker
        if worker.busy_until_s > now:  # pragma: no cover - defensive
            raise RuntimeError(
                f"{worker.label} dispatched at {now} but busy until "
                f"{worker.busy_until_s}"
            )
        per_frame = self.estimate(dispatch.requests[0], worker)
        batch = len(dispatch.requests)
        service_s = worker.device.service_time_s(per_frame.latency_s, batch)
        energy_j = worker.device.service_energy_j(per_frame.energy_j, batch)
        finish = now + service_s
        worker.busy_until_s = finish
        worker.busy_s += service_s
        worker.energy_j += energy_j
        worker.requests_served += batch
        worker.batches_served += 1
        records = tuple(
            CompletedRequest(
                request=request,
                worker=worker.label,
                start_s=now,
                finish_s=finish,
                batch_size=batch,
                energy_j=energy_j / batch,
            )
            for request in dispatch.requests
        )
        return finish, records

    # -- the FIFO fast path ----------------------------------------------------

    def _run_fifo_batched(self, requests: Sequence["Request"]) -> ServingReport:
        """Batched replay of a plain-FIFO fleet, bit-identical to the loop.

        FIFO with single-request dispatch admits a closed-form schedule:
        processing requests in ``(arrival, request_id)`` order, each either
        starts immediately on the lowest-indexed worker already free at its
        arrival, or waits for the earliest-freeing worker (lowest index on
        ties) -- exactly what the event loop's drain-then-assign cycle
        produces.  That turns the heap, the scheduler round-trips and the
        per-event bookkeeping into one linear pass with per-scenario
        service times resolved once per (scenario, worker) pair, which is
        where the >=10x request throughput comes from.  Per-worker float
        accumulation runs in the same dispatch order as the event loop, so
        the resulting :class:`ServingReport` -- including the ``completed``
        log -- is bit-identical (pinned by ``tests/serve/test_fleet.py``).
        """
        workers = [
            Worker(index=i, name=name, device=device)
            for i, (name, device) in enumerate(self._fleet)
        ]
        ordered = sorted(requests, key=lambda r: (r.arrival_s, r.request_id))
        if self.default_sla_s is not None:
            sla = self.default_sla_s
            ordered = [
                r
                if r.deadline_s is not None
                else dataclasses.replace(r, deadline_s=r.arrival_s + sla)
                for r in ordered
            ]
        n = len(ordered)
        k = len(workers)
        labels = [w.label for w in workers]
        # (service_s, energy_j) per worker, resolved once per scenario.
        # Streams share scenario instances, so the id() probe almost always
        # hits; the by-value fallback keeps distinct-but-equal scenario
        # objects on the same cached frame simulation (requests keep their
        # scenarios alive for the whole run, so ids stay valid).
        rows_by_id: dict[int, tuple[tuple[float, ...], tuple[float, ...]]] = {}
        rows_by_value: dict[object, tuple[tuple[float, ...], tuple[float, ...]]] = {}

        free = [w.busy_until_s for w in workers]
        busy = [0.0] * k
        worker_energy = [0.0] * k
        served = [0] * k
        batches = [0] * k
        completed: list[CompletedRequest] = []
        ids: list[int] = []
        arrivals: list[float] = []
        starts: list[float] = []
        finishes: list[float] = []
        energies: list[float] = []
        deadlines: list[float | None] = []
        new_completion = CompletedRequest.__new__

        for request in ordered:
            scenario = request.scenario
            row = rows_by_id.get(id(scenario))
            if row is None:
                row = rows_by_value.get(scenario)
                if row is None:
                    estimates = [
                        self._estimate_scenario(scenario, w) for w in workers
                    ]
                    row = (
                        tuple(
                            w.device.service_time_s(e.latency_s, 1)
                            for w, e in zip(workers, estimates)
                        ),
                        tuple(
                            w.device.service_energy_j(e.energy_j, 1)
                            for w, e in zip(workers, estimates)
                        ),
                    )
                    rows_by_value[scenario] = row
                rows_by_id[id(scenario)] = row
            service_row, energy_row = row
            arrival = request.arrival_s
            chosen = -1
            for j in range(k):
                if free[j] <= arrival:
                    chosen = j
                    start = arrival
                    break
            if chosen < 0:
                chosen = 0
                start = free[0]
                for j in range(1, k):
                    if free[j] < start:
                        start = free[j]
                        chosen = j
            service_s = service_row[chosen]
            energy_j = energy_row[chosen]
            finish = start + service_s
            free[chosen] = finish
            busy[chosen] += service_s
            worker_energy[chosen] += energy_j
            served[chosen] += 1
            batches[chosen] += 1
            # CompletedRequest construction dominates the pass at dataclass
            # __init__ speed; __new__ plus direct __dict__ stores builds the
            # same frozen instances ~3x faster.
            record = new_completion(CompletedRequest)
            fields = record.__dict__
            fields["request"] = request
            fields["worker"] = labels[chosen]
            fields["start_s"] = start
            fields["finish_s"] = finish
            fields["batch_size"] = 1
            fields["energy_j"] = energy_j
            completed.append(record)
            ids.append(request.request_id)
            arrivals.append(arrival)
            starts.append(start)
            finishes.append(finish)
            energies.append(energy_j)
            deadlines.append(request.deadline_s)

        for j, worker in enumerate(workers):
            worker.busy_until_s = free[j]
            worker.busy_s = busy[j]
            worker.energy_j = worker_energy[j]
            worker.requests_served = served[j]
            worker.batches_served = batches[j]

        arrival_col = np.asarray(arrivals, dtype=np.float64)
        start_col = np.asarray(starts, dtype=np.float64)
        finish_col = np.asarray(finishes, dtype=np.float64)
        energy_col = np.asarray(energies, dtype=np.float64)
        id_col = np.asarray(ids, dtype=np.int64)
        if n and np.any(id_col[1:] < id_col[:-1]):
            # Trace streams may number requests out of arrival order; the
            # report contract is request-id order.
            order = np.argsort(id_col, kind="stable")
            arrival_col = arrival_col[order]
            start_col = start_col[order]
            finish_col = finish_col[order]
            energy_col = energy_col[order]
            positions = order.tolist()
            completed = [completed[i] for i in positions]
            deadlines = [deadlines[i] for i in positions]
        return ServingReport.from_arrays(
            scheduler=self.scheduler.name,
            fleet=tuple(w.name for w in workers),
            workers=workers,
            completed=tuple(completed),
            num_requests=len(requests),
            arrivals=arrival_col,
            starts=start_col,
            finishes=finish_col,
            deadlines=deadlines,
            batch_sizes=[1] * n,
            energies=energy_col,
        )

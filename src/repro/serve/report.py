"""Serving-level metrics: latency percentiles, goodput, energy, utilization.

Where a :class:`~repro.core.accelerator.FrameReport` answers "how long does
one frame take", a :class:`ServingReport` answers the fleet-level questions
the ROADMAP's north star asks: what latency distribution do *users* see
(p50/p95/p99 of arrival -> completion), how many requests per second finish
inside their SLA (goodput), what does each request cost in energy, and how
busy each device actually was.  Reports are plain frozen dataclasses built
once from the completed-request log, so they serialize to JSON and compare
exactly in tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serve.request import Request
    from repro.serve.scheduler import Worker


def sorted_percentile(ordered: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile of already-sorted ``ordered``.

    This is THE percentile definition of the serving layer: both
    :meth:`ServingReport.from_arrays` (the fast path's reducer) and the
    event-loop path (via :func:`percentile`) delegate here, so p50/p95/p99
    semantics cannot drift between them.  A one-element log returns its
    single sample for every ``q``; longer logs interpolate linearly at
    position ``(q / 100) * (n - 1)`` -- e.g. the p95 of a two-element log
    is ``0.05 * low + 0.95 * high``.  Pure Python on purpose: serving
    metrics stay bit-reproducible everywhere the event loop is.
    """
    if len(ordered) == 1:
        return ordered[0]
    position = (q / 100.0) * (len(ordered) - 1)
    lower = int(position)
    upper = min(lower + 1, len(ordered) - 1)
    fraction = position - lower
    return ordered[lower] * (1.0 - fraction) + ordered[upper] * fraction


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile (``q`` in [0, 100]) of ``values``.

    Validates and sorts, then delegates to :func:`sorted_percentile` --
    the single pinned implementation shared with the report reducers.
    """
    if not values:
        raise ValueError("percentile of an empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    return sorted_percentile(sorted(values), q)


@dataclass(frozen=True)
class CompletedRequest:
    """One served request: who ran it, when, and at what energy cost.

    ``shed_level`` / ``quality`` record quality shedding
    (:mod:`repro.serve.control`): level 0 / quality 1.0 is a full-quality
    serve, higher levels mean the fleet served a cheaper rung of the
    degradation ladder (a batch is rendered once, so every member shares
    the batch's level).
    """

    request: "Request"
    worker: str
    start_s: float
    finish_s: float
    batch_size: int
    energy_j: float
    shed_level: int = 0
    quality: float = 1.0

    @property
    def latency_s(self) -> float:
        """End-to-end latency the user saw (arrival to completion)."""
        return self.finish_s - self.request.arrival_s

    @property
    def wait_s(self) -> float:
        """Time spent queued before service started."""
        return self.start_s - self.request.arrival_s

    @property
    def met_deadline(self) -> bool:
        """Whether the request finished inside its SLA (no deadline -> True)."""
        deadline = self.request.deadline_s
        return deadline is None or self.finish_s <= deadline


@dataclass(frozen=True)
class RejectedRequest:
    """One request turned away at ingress by an admission policy."""

    request: "Request"
    time_s: float
    reason: str


@dataclass(frozen=True)
class WorkerStats:
    """Per-device aggregate over one serving run."""

    worker: str
    device: str
    requests_served: int
    batches_served: int
    busy_s: float
    utilization: float
    energy_j: float


#: Group label for requests that carry no tenant tag.
UNTAGGED_TENANT = "-"


@dataclass(frozen=True)
class TenantStats:
    """Per-tenant aggregate over one serving run (multi-tenant streams).

    ``slo_attainment`` is the tenant's end-user SLO: deadline-met
    completions over *offered* requests (rejections count against it),
    matching :attr:`ServingReport.slo_attainment` fleet-wide.  A declared
    tenant that offered nothing trivially attains 1.0.
    """

    tenant: str
    offered: int
    completed: int
    rejected: int
    met_deadline: int
    slo_attainment: float
    mean_latency_s: float
    p95_latency_s: float
    mean_quality: float


@dataclass(frozen=True)
class SessionStats:
    """Per-session aggregate over one serving run (interactive streams).

    ``missed`` counts offered frames that did not finish inside their
    deadline -- rejected frames included -- so ``fully_met`` means the
    session's user saw every single frame on time.
    """

    session: int
    frames: int
    completed: int
    missed: int
    slo_attainment: float
    mean_latency_s: float
    p95_latency_s: float
    fully_met: bool


@dataclass(frozen=True)
class ServingReport:
    """Fleet-level summary of one serving simulation.

    All aggregate fields are derived deterministically from ``completed``
    via :meth:`from_completions`; ``completed`` itself is kept (excluded
    from equality) for drill-down analysis.

    With a control plane attached (:mod:`repro.serve.control`) the report
    also accounts for the other two request outcomes: ``rejected_requests``
    were turned away at ingress (conservation holds: ``num_requests ==
    completed_requests + rejected_requests``), and ``shed_requests`` were
    completed at reduced quality, summarized by the delivered-quality
    mean / percentiles (1.0 when nothing was shed).
    """

    scheduler: str
    fleet: tuple[str, ...]
    num_requests: int
    completed_requests: int
    makespan_s: float
    offered_rps: float
    goodput_rps: float
    sla_attainment: float
    p50_latency_s: float
    p95_latency_s: float
    p99_latency_s: float
    mean_latency_s: float
    mean_wait_s: float
    mean_batch_size: float
    energy_per_request_j: float
    workers: tuple[WorkerStats, ...]
    rejected_requests: int = 0
    shed_requests: int = 0
    met_deadline_requests: int = 0
    mean_quality: float = 1.0
    p50_quality: float = 1.0
    p05_quality: float = 1.0
    peak_active_workers: int = 0
    mean_active_workers: float = 0.0
    completed: tuple[CompletedRequest, ...] = field(
        default=(), compare=False, repr=False
    )
    rejected: tuple[RejectedRequest, ...] = field(
        default=(), compare=False, repr=False
    )

    @classmethod
    def from_completions(
        cls,
        scheduler: str,
        fleet: Sequence[str],
        workers: Sequence["Worker"],
        completed: Sequence[CompletedRequest],
        num_requests: int,
        rejected: Sequence[RejectedRequest] = (),
        arrival_span_s: float | None = None,
        peak_active_workers: int | None = None,
        mean_active_workers: float | None = None,
    ) -> "ServingReport":
        """Aggregate a completed-request log into the uniform report shape."""
        completed = tuple(sorted(completed, key=lambda c: c.request.request_id))
        return cls.from_arrays(
            scheduler=scheduler,
            fleet=fleet,
            workers=workers,
            completed=completed,
            num_requests=num_requests,
            arrivals=np.array(
                [c.request.arrival_s for c in completed], dtype=np.float64
            ),
            starts=np.array([c.start_s for c in completed], dtype=np.float64),
            finishes=np.array([c.finish_s for c in completed], dtype=np.float64),
            deadlines=[c.request.deadline_s for c in completed],
            batch_sizes=[c.batch_size for c in completed],
            energies=np.array([c.energy_j for c in completed], dtype=np.float64),
            qualities=[c.quality for c in completed],
            shed_levels=[c.shed_level for c in completed],
            rejected=rejected,
            arrival_span_s=arrival_span_s,
            peak_active_workers=peak_active_workers,
            mean_active_workers=mean_active_workers,
        )

    @classmethod
    def from_arrays(
        cls,
        scheduler: str,
        fleet: Sequence[str],
        workers: Sequence["Worker"],
        completed: tuple[CompletedRequest, ...],
        num_requests: int,
        arrivals: np.ndarray,
        starts: np.ndarray,
        finishes: np.ndarray,
        deadlines: Sequence[float | None],
        batch_sizes: Sequence[int],
        energies: np.ndarray,
        qualities: Sequence[float] | None = None,
        shed_levels: Sequence[int] | None = None,
        rejected: Sequence[RejectedRequest] = (),
        arrival_span_s: float | None = None,
        peak_active_workers: int | None = None,
        mean_active_workers: float | None = None,
    ) -> "ServingReport":
        """Aggregate pre-extracted per-request columns into a report.

        Inputs must already be sorted by request id (``completed`` and the
        columns in the same order).  Every statistic is computed with the
        same IEEE-754 operations in the same order as the historical
        per-object aggregation, so reports are bit-identical whichever
        entry point built them; the column form just skips per-completion
        attribute and property calls on the fleet fast path's hot loop.

        ``arrival_span_s`` is the arrival span of *all offered* requests
        (the simulator computes it before admission); without it the span
        of the completed log is used, which under-reports offered load
        when requests were rejected -- and is undefined (0) when *every*
        request was, the empty-report edge the control plane exposed.
        """
        n = len(completed)
        # All rates share one time origin -- the first arrival -- so replayed
        # traces with a nonzero origin report honest numbers: the makespan is
        # first arrival -> last completion, and offered load is measured over
        # the arrival span alone (under overload the queue drains long after
        # the last arrival; dividing arrivals by the drain-extended makespan
        # would just re-measure completion throughput).
        first_arrival = float(arrivals.min()) if n else 0.0
        last_finish = float(finishes.max()) if n else 0.0
        makespan = last_finish - first_arrival if n else 0.0
        if arrival_span_s is not None:
            arrival_span = arrival_span_s
        else:
            arrival_span = float(arrivals.max()) - first_arrival if n else 0.0
        # Elementwise float64 subtraction matches the per-completion
        # ``finish_s - arrival_s`` property exactly; sums run left-to-right
        # over the request-id order, as the per-object loop always did.
        latency_column = finishes - arrivals
        latencies = latency_column.tolist()
        waits = (starts - arrivals).tolist()
        ordered_latencies = np.sort(latency_column).tolist()
        if n:
            deadline_bounds = np.array(
                [math.inf if d is None else d for d in deadlines],
                dtype=np.float64,
            )
            met = int(np.count_nonzero(finishes <= deadline_bounds))
        else:
            met = 0
        if qualities is None:
            qualities = []
        quality_list = list(qualities)
        ordered_qualities = sorted(quality_list)
        shed = sum(1 for level in shed_levels if level > 0) if shed_levels else 0
        rejected_log = tuple(
            sorted(rejected, key=lambda r: r.request.request_id)
        )
        worker_stats = tuple(
            WorkerStats(
                worker=w.label,
                device=w.device.name,
                requests_served=w.requests_served,
                batches_served=w.batches_served,
                busy_s=w.busy_s,
                utilization=w.busy_s / makespan if makespan > 0 else 0.0,
                energy_j=w.energy_j,
            )
            for w in workers
        )
        return cls(
            scheduler=scheduler,
            fleet=tuple(fleet),
            num_requests=num_requests,
            completed_requests=n,
            makespan_s=makespan,
            offered_rps=num_requests / arrival_span if arrival_span > 0 else 0.0,
            goodput_rps=met / makespan if makespan > 0 else 0.0,
            sla_attainment=met / n if n else 1.0,
            p50_latency_s=sorted_percentile(ordered_latencies, 50.0) if n else 0.0,
            p95_latency_s=sorted_percentile(ordered_latencies, 95.0) if n else 0.0,
            p99_latency_s=sorted_percentile(ordered_latencies, 99.0) if n else 0.0,
            mean_latency_s=sum(latencies) / n if n else 0.0,
            mean_wait_s=sum(waits) / n if n else 0.0,
            mean_batch_size=sum(batch_sizes) / n if n else 0.0,
            energy_per_request_j=sum(energies.tolist()) / n if n else 0.0,
            workers=worker_stats,
            rejected_requests=len(rejected_log),
            shed_requests=shed,
            met_deadline_requests=met,
            mean_quality=sum(quality_list) / n if quality_list else 1.0,
            p50_quality=sorted_percentile(ordered_qualities, 50.0) if quality_list else 1.0,
            p05_quality=sorted_percentile(ordered_qualities, 5.0) if quality_list else 1.0,
            peak_active_workers=(
                peak_active_workers
                if peak_active_workers is not None
                else len(worker_stats)
            ),
            mean_active_workers=(
                mean_active_workers
                if mean_active_workers is not None
                else float(len(worker_stats))
            ),
            completed=completed,
            rejected=rejected_log,
        )

    @property
    def slo_attainment(self) -> float:
        """Fraction of *offered* requests that finished inside their SLA.

        Unlike :attr:`sla_attainment` (which conditions on completion),
        rejected requests count against the SLO here -- this is the number
        an end user experiences, and the one the overload-control
        experiments compare.  An empty offered load trivially attains 1.0.
        """
        if self.num_requests == 0:
            return 1.0
        return self.met_deadline_requests / self.num_requests

    @property
    def mean_utilization(self) -> float:
        """Average busy fraction across the fleet's devices."""
        if not self.workers:
            return 0.0
        return sum(w.utilization for w in self.workers) / len(self.workers)

    def by_tenant(
        self, declared: Sequence[str] | None = None
    ) -> tuple[TenantStats, ...]:
        """Per-tenant attainment breakdown of the request logs.

        Requests without a tenant tag group under :data:`UNTAGGED_TENANT`.
        ``declared`` fixes the leading row order and forces a row for
        every named tenant even when it offered no requests (attainment
        trivially 1.0); tenants seen in the logs but not declared follow
        in sorted-name order.  Pure function of the ``completed`` /
        ``rejected`` logs, so both simulator paths agree exactly.
        """
        completed_by: dict[str, list[CompletedRequest]] = {}
        rejected_by: dict[str, int] = {}
        for record in self.completed:
            name = record.request.tenant or UNTAGGED_TENANT
            completed_by.setdefault(name, []).append(record)
        for rejection in self.rejected:
            name = rejection.request.tenant or UNTAGGED_TENANT
            rejected_by[name] = rejected_by.get(name, 0) + 1
        names = list(declared) if declared is not None else []
        extras = sorted({*completed_by, *rejected_by} - set(names))
        stats = []
        for name in [*names, *extras]:
            completions = completed_by.get(name, [])
            rejections = rejected_by.get(name, 0)
            offered = len(completions) + rejections
            met = sum(1 for c in completions if c.met_deadline)
            latencies = [c.latency_s for c in completions]
            stats.append(
                TenantStats(
                    tenant=name,
                    offered=offered,
                    completed=len(completions),
                    rejected=rejections,
                    met_deadline=met,
                    slo_attainment=met / offered if offered else 1.0,
                    mean_latency_s=(
                        sum(latencies) / len(latencies) if latencies else 0.0
                    ),
                    p95_latency_s=(
                        sorted_percentile(sorted(latencies), 95.0)
                        if latencies
                        else 0.0
                    ),
                    mean_quality=(
                        sum(c.quality for c in completions) / len(completions)
                        if completions
                        else 1.0
                    ),
                )
            )
        return tuple(stats)

    def by_session(self) -> tuple[SessionStats, ...]:
        """Per-session frame attainment, for interactive session streams.

        Only requests stamped with a ``session`` id participate; sessions
        are reported in ascending id order.  Pure function of the request
        logs, so both simulator paths agree exactly.
        """
        completed_by: dict[int, list[CompletedRequest]] = {}
        offered_by: dict[int, int] = {}
        for record in self.completed:
            session = record.request.session
            if session is None:
                continue
            completed_by.setdefault(session, []).append(record)
            offered_by[session] = offered_by.get(session, 0) + 1
        for rejection in self.rejected:
            session = rejection.request.session
            if session is None:
                continue
            offered_by[session] = offered_by.get(session, 0) + 1
        stats = []
        for session in sorted(offered_by):
            completions = completed_by.get(session, [])
            frames = offered_by[session]
            met = sum(1 for c in completions if c.met_deadline)
            latencies = [c.latency_s for c in completions]
            stats.append(
                SessionStats(
                    session=session,
                    frames=frames,
                    completed=len(completions),
                    missed=frames - met,
                    slo_attainment=met / frames if frames else 1.0,
                    mean_latency_s=(
                        sum(latencies) / len(latencies) if latencies else 0.0
                    ),
                    p95_latency_s=(
                        sorted_percentile(sorted(latencies), 95.0)
                        if latencies
                        else 0.0
                    ),
                    fully_met=frames - met == 0,
                )
            )
        return tuple(stats)

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe summary (completed-request log elided)."""
        return {
            "scheduler": self.scheduler,
            "fleet": list(self.fleet),
            "num_requests": self.num_requests,
            "completed_requests": self.completed_requests,
            "rejected_requests": self.rejected_requests,
            "shed_requests": self.shed_requests,
            "met_deadline_requests": self.met_deadline_requests,
            "slo_attainment": self.slo_attainment,
            "mean_quality": self.mean_quality,
            "p50_quality": self.p50_quality,
            "p05_quality": self.p05_quality,
            "peak_active_workers": self.peak_active_workers,
            "mean_active_workers": self.mean_active_workers,
            "makespan_s": self.makespan_s,
            "offered_rps": self.offered_rps,
            "goodput_rps": self.goodput_rps,
            "sla_attainment": self.sla_attainment,
            "p50_latency_s": self.p50_latency_s,
            "p95_latency_s": self.p95_latency_s,
            "p99_latency_s": self.p99_latency_s,
            "mean_latency_s": self.mean_latency_s,
            "mean_wait_s": self.mean_wait_s,
            "mean_batch_size": self.mean_batch_size,
            "energy_per_request_j": self.energy_per_request_j,
            "mean_utilization": self.mean_utilization,
            "workers": [
                {
                    "worker": w.worker,
                    "device": w.device,
                    "requests_served": w.requests_served,
                    "batches_served": w.batches_served,
                    "busy_s": w.busy_s,
                    "utilization": w.utilization,
                    "energy_j": w.energy_j,
                }
                for w in self.workers
            ],
        }

"""Pluggable scheduling policies for the fleet simulator.

A scheduler decides, whenever the fleet's state changes (a request arrives,
a device frees up, a hold timer fires), which queued requests to dispatch to
which idle devices.  Three policies are provided:

* :class:`FIFOScheduler` -- head-of-line request to the first idle device,
  one request per dispatch: the baseline every serving paper compares
  against;
* :class:`SparsityAwareScheduler` -- routes each request to the idle device
  with the smallest *estimated* service time for that request's scenario.
  Estimates come from the same cached frame model the figures use, so the
  router automatically prefers FlexNeRFer for pruned / low-precision
  scenarios (where its sparsity wins compound) and spreads dense work onto
  whatever is free;
* :class:`BatchDeadlineScheduler` -- accumulates same-scenario requests into
  batches and dispatches when the batch is full, the oldest request has
  waited ``max_wait_s``, or its deadline would otherwise be missed.
  Batching devices amortize per-frame setup via
  :meth:`repro.core.device.Device.service_time_s`.

Schedulers mutate the queue they are handed (removing the requests they
dispatch) and may return a wake-up time so the event loop revisits a held
batch even if nothing else happens.
"""

from __future__ import annotations

import abc
from collections import Counter
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, ClassVar

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.device import Device
    from repro.serve.request import Request, Scenario


@dataclass
class Worker:
    """One device instance of the fleet plus its running service statistics."""

    index: int
    name: str
    device: "Device"
    busy_until_s: float = 0.0
    busy_s: float = 0.0
    energy_j: float = 0.0
    requests_served: int = 0
    batches_served: int = 0

    @property
    def label(self) -> str:
        """Unique display name within the fleet, e.g. ``flexnerfer#0``."""
        return f"{self.name}#{self.index}"


@dataclass(frozen=True)
class ServiceEstimate:
    """Frame-model estimate of serving one request on one device."""

    latency_s: float
    energy_j: float


#: ``estimate(request, worker)`` callback the fleet simulator provides; it is
#: backed by the sweep engine's report cache, so repeated scenarios are free.
EstimateFn = Callable[["Request", Worker], ServiceEstimate]


@dataclass(frozen=True)
class Dispatch:
    """One scheduling decision: a batch of same-scenario requests on a worker."""

    worker: Worker
    requests: tuple["Request", ...]

    def __post_init__(self) -> None:
        """Reject empty or mixed-scenario batches."""
        if not self.requests:
            raise ValueError("a dispatch needs at least one request")
        scenarios = {r.scenario for r in self.requests}
        if len(scenarios) != 1:
            raise ValueError(f"a dispatch must share one scenario, got {scenarios}")

    @property
    def scenario(self) -> "Scenario":
        """The scenario every request of the batch shares."""
        return self.requests[0].scenario


class Scheduler(abc.ABC):
    """Policy interface: turn (queue, idle workers) into dispatches.

    ``assign`` removes dispatched requests from ``queue`` in place and may
    return a wake-up time (absolute seconds) at which it wants to be called
    again even if no arrival / completion happens before then.
    """

    #: Policy name stamped into the serving report.
    name: ClassVar[str] = "scheduler"

    @abc.abstractmethod
    def assign(
        self,
        now: float,
        queue: list["Request"],
        idle: list[Worker],
        estimate: EstimateFn,
        draining: bool,
    ) -> tuple[list[Dispatch], float | None]:
        """Decide dispatches at time ``now``; ``draining`` means no more arrivals."""


class FIFOScheduler(Scheduler):
    """First-come first-served, one request per device, fleet order."""

    name = "fifo"

    def assign(self, now, queue, idle, estimate, draining):
        """Pair the head of the queue with idle workers in fleet order."""
        dispatches = []
        for worker in idle:
            if not queue:
                break
            dispatches.append(Dispatch(worker, (queue.pop(0),)))
        return dispatches, None


class SparsityAwareScheduler(Scheduler):
    """Route each request to the idle device that serves its scenario fastest.

    Service-time estimates come from the cached frame model, so scenario
    sparsity (empty-space skipping, pruning) and precision modes shift
    routing exactly as they shift the paper's latency figures: pruned
    INT4/INT8 scenarios land on FlexNeRFer, dense work fills the rest of
    the fleet.
    """

    name = "sparsity-aware"

    def assign(self, now, queue, idle, estimate, draining):
        """Greedily match FIFO-ordered requests to their fastest idle device."""
        free = list(idle)
        dispatches = []
        while queue and free:
            request = queue.pop(0)
            best = min(
                free, key=lambda w: (estimate(request, w).latency_s, w.index)
            )
            free.remove(best)
            dispatches.append(Dispatch(best, (request,)))
        return dispatches, None


@dataclass
class BatchDeadlineScheduler(Scheduler):
    """Batch same-scenario requests up to a size / wait / deadline bound.

    A group of queued requests sharing one scenario is dispatched as soon as
    any of these holds: the group reached ``max_batch``; its oldest request
    has waited ``max_wait_s``; its oldest deadline leaves no slack beyond the
    estimated service time; or the stream is draining (no further arrivals
    to batch with).  Otherwise the group is held and a wake-up is requested.
    """

    max_batch: int = 8
    max_wait_s: float = 0.05
    name: ClassVar[str] = "batch-deadline"

    def __post_init__(self) -> None:
        """Validate batching bounds."""
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_wait_s < 0.0:
            raise ValueError("max_wait_s must be >= 0")

    def assign(self, now, queue, idle, estimate, draining):
        """Dispatch ready scenario groups; hold (with a wake-up) the rest.

        Readiness comparisons are written as ``now >= arrival + bound``
        (never ``now - arrival >= bound``) so they are float-consistent
        with the wake-up times this method returns: a wake scheduled at
        ``arrival + bound`` is guaranteed to find its batch ready.
        """
        free = list(idle)
        dispatches: list[Dispatch] = []
        wake: float | None = None
        dispatched: Counter[int] = Counter()
        groups: dict["Scenario", list["Request"]] = {}
        for request in queue:
            groups.setdefault(request.scenario, []).append(request)
        for group in groups.values():
            index = 0
            while free and index < len(group):
                batch = group[index : index + self.max_batch]
                oldest = batch[0]
                worker = min(
                    free, key=lambda w: (estimate(oldest, w).latency_s, w.index)
                )
                # Latest dispatch time that can still meet the batch's
                # tightest deadline on the chosen worker, for the batch as
                # currently formed (batched service, not single-frame
                # latency).
                deadlines = [
                    r.deadline_s for r in batch if r.deadline_s is not None
                ]
                dispatch_by = (
                    min(deadlines)
                    - worker.device.service_time_s(
                        estimate(oldest, worker).latency_s, len(batch)
                    )
                    if deadlines
                    else None
                )
                ready = (
                    len(batch) >= self.max_batch
                    or now >= oldest.arrival_s + self.max_wait_s
                    or (dispatch_by is not None and now >= dispatch_by)
                    or draining
                )
                if not ready:
                    # Both candidates are > now, or ready would have held.
                    hold_until = oldest.arrival_s + self.max_wait_s
                    if dispatch_by is not None:
                        hold_until = min(hold_until, dispatch_by)
                    wake = hold_until if wake is None else min(wake, hold_until)
                    break  # the rest of this group is younger still
                free.remove(worker)
                dispatched.update(id(request) for request in batch)
                dispatches.append(Dispatch(worker, tuple(batch)))
                index += len(batch)
        if dispatched:
            # Remove exactly the dispatched occurrences (a multiset, so a
            # request object appearing twice in the queue loses only the
            # occurrences that were actually served).
            remaining = []
            for request in queue:
                if dispatched.get(id(request), 0) > 0:
                    dispatched[id(request)] -= 1
                else:
                    remaining.append(request)
            queue[:] = remaining
        return dispatches, wake

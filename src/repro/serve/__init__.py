"""Serving simulation: request streams, scheduling policies, fleet metrics.

This package extends the repository's frame-level models to the regime the
ROADMAP targets -- heavy request traffic against a fleet of accelerators.
It is a third layer on top of the existing two:

1. *frame layer*: NeRF models build :class:`~repro.nerf.workload.Workload`
   descriptors; :class:`~repro.core.device.Device` models estimate one
   frame's latency / energy;
2. *sweep layer*: :class:`~repro.sim.sweep.SweepEngine` caches frame
   simulations across devices x models x knobs;
3. *serving layer* (this package): :class:`RequestStream` generators produce
   seeded arrival processes over a :class:`ScenarioMix`, a
   :class:`Scheduler` policy assigns queued requests to fleet devices, and
   the :class:`FleetSimulator` event loop turns cached frame reports into
   :class:`ServingReport` metrics (p50/p95/p99 latency, goodput,
   energy/request, per-device utilization).

Overload control (:mod:`repro.serve.control`) layers on top: admission
policies reject excess arrivals, a :class:`DegradationLadder` lets the
fleet serve cheaper lower-PSNR frames under load, and autoscaler policies
grow / shrink the active device pool -- see ``docs/serving-control.md``.

Everything is deterministic under a fixed seed; see ``docs/architecture.md``
for the end-to-end data flow.
"""

from repro.serve.control import (
    AdmissionPolicy,
    AdmissionSession,
    AutoscalePolicy,
    ControlConfig,
    DegradationLadder,
    DegradationStep,
    FleetSnapshot,
    LadderPricing,
    LatencyTargetAutoscaler,
    PricedStep,
    QueueCapAdmission,
    QueueDepthAutoscaler,
    QueueDepthShedder,
    SheddingPolicy,
    TokenBucketAdmission,
    price_ladder,
    quality_from_psnr,
)
from repro.serve.fleet import FleetSimulator
from repro.serve.report import (
    CompletedRequest,
    RejectedRequest,
    ServingReport,
    SessionStats,
    TenantStats,
    WorkerStats,
    percentile,
    sorted_percentile,
)
from repro.serve.request import (
    DiurnalStream,
    PoissonStream,
    Request,
    RequestStream,
    Scenario,
    ScenarioMix,
    TraceStream,
)
from repro.serve.scheduler import (
    BatchDeadlineScheduler,
    Dispatch,
    FIFOScheduler,
    Scheduler,
    ServiceEstimate,
    SparsityAwareScheduler,
    Worker,
)
from repro.serve.traffic import (
    FlashCrowdStream,
    ImportedTrace,
    ImportedTraceStream,
    MarkedBurstStream,
    MultiTenantStream,
    SessionStream,
    TenantSpec,
    TraceFormatError,
    dump_trace,
    load_trace,
)

__all__ = [
    "AdmissionPolicy",
    "AdmissionSession",
    "AutoscalePolicy",
    "BatchDeadlineScheduler",
    "CompletedRequest",
    "ControlConfig",
    "DegradationLadder",
    "DegradationStep",
    "DiurnalStream",
    "Dispatch",
    "FIFOScheduler",
    "FlashCrowdStream",
    "FleetSimulator",
    "FleetSnapshot",
    "ImportedTrace",
    "ImportedTraceStream",
    "LadderPricing",
    "LatencyTargetAutoscaler",
    "MarkedBurstStream",
    "MultiTenantStream",
    "PoissonStream",
    "PricedStep",
    "QueueCapAdmission",
    "QueueDepthAutoscaler",
    "QueueDepthShedder",
    "RejectedRequest",
    "Request",
    "RequestStream",
    "Scenario",
    "ScenarioMix",
    "Scheduler",
    "ServiceEstimate",
    "ServingReport",
    "SessionStats",
    "SessionStream",
    "SheddingPolicy",
    "SparsityAwareScheduler",
    "TenantSpec",
    "TenantStats",
    "TokenBucketAdmission",
    "TraceFormatError",
    "TraceStream",
    "Worker",
    "WorkerStats",
    "dump_trace",
    "load_trace",
    "percentile",
    "price_ladder",
    "quality_from_psnr",
    "sorted_percentile",
]

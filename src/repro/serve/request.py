"""Request streams and scenario mixes for the serving simulator.

A production NeRF service does not render one frame in isolation: requests
*arrive* over time, each asking for some (model, scene, resolution, knob)
combination.  This module provides the demand side of the serving layer:

* :class:`Scenario` -- one renderable configuration (model, scene, resolution
  and the FlexNeRFer knobs precision / pruning), convertible to the exact
  :class:`~repro.nerf.models.FrameConfig` the frame-level model simulates;
* :class:`ScenarioMix` -- a weighted distribution over scenarios, sampled
  per request;
* :class:`RequestStream` subclasses -- deterministic (seeded) arrival
  processes: :class:`PoissonStream` (open-loop memoryless traffic),
  :class:`DiurnalStream` (sinusoidally modulated Poisson, i.e. a smooth
  burst / trough pattern) and :class:`TraceStream` (replay of recorded
  arrival times).  The scenario library in :mod:`repro.serve.traffic`
  adds flash crowds, self-exciting bursts, multi-tenant merges, interactive
  sessions and imported serving-log traces on the same contract.

Streams are pure generators: ``stream.generate(seed)`` returns an immutable
tuple of :class:`Request` objects, so the same seed always produces the same
demand regardless of scheduler, fleet or execution parallelism.
"""

from __future__ import annotations

import abc
import math
import random
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.nerf.models import FrameConfig
from repro.sparse.formats import Precision


@dataclass(frozen=True)
class Scenario:
    """One renderable request configuration (model, scene, resolution, knobs).

    Scenarios are hashable: the scheduler batches requests that share one
    scenario, and the sweep engine caches one frame simulation per scenario
    x device, so a million-request stream over a three-scenario mix costs
    three simulations per device.
    """

    model: str
    scene: str = "lego"
    width: int = 400
    height: int = 400
    precision: Precision | None = None
    pruning_ratio: float = 0.0

    def __post_init__(self) -> None:
        """Validate resolution and pruning ratio."""
        if min(self.width, self.height) < 1:
            raise ValueError(f"resolution must be positive: {self}")
        if not 0.0 <= self.pruning_ratio < 1.0:
            raise ValueError(f"pruning ratio must be in [0, 1): {self}")

    def frame_config(self, batch_size: int = 4096) -> FrameConfig:
        """The :class:`FrameConfig` the frame-level model simulates for this scenario."""
        return FrameConfig(
            image_width=self.width,
            image_height=self.height,
            batch_size=batch_size,
            scene_name=self.scene,
        )

    @property
    def label(self) -> str:
        """Compact human-readable identity, e.g. ``instant-ngp/lego@400x400``."""
        parts = f"{self.model}/{self.scene}@{self.width}x{self.height}"
        if self.precision is not None:
            parts += f"/{self.precision.name}"
        if self.pruning_ratio:
            parts += f"/p{self.pruning_ratio:g}"
        return parts


@dataclass(frozen=True)
class ScenarioMix:
    """A weighted distribution over scenarios, sampled once per request."""

    scenarios: tuple[Scenario, ...]
    weights: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        """Validate that weights (if given) match the scenarios and are positive."""
        if not self.scenarios:
            raise ValueError("a scenario mix needs at least one scenario")
        if self.weights is not None:
            if len(self.weights) != len(self.scenarios):
                raise ValueError(
                    f"{len(self.weights)} weights for {len(self.scenarios)} scenarios"
                )
            if min(self.weights) <= 0.0:
                raise ValueError("scenario weights must be positive")

    def sample(self, rng: random.Random) -> Scenario:
        """Draw one scenario according to the mix weights."""
        return rng.choices(self.scenarios, weights=self.weights)[0]


@dataclass(frozen=True)
class Request:
    """One arrival of the serving simulation.

    ``deadline_s`` is the absolute SLA deadline (``None`` -> the fleet
    simulator's default SLA applies, or no deadline at all).  The optional
    provenance fields carry workload structure the scenario library
    (:mod:`repro.serve.traffic`) generates and :class:`ServingReport`
    aggregates: ``tenant`` names the issuing tenant of a multi-tenant
    merge, ``session`` groups the frames of one interactive session, and
    ``pose`` records the camera pose (azimuth deg, elevation deg, radius)
    a session frame asked for.  ``degradable`` gates quality shedding: a
    pinned (``degradable=False``) request is always served at full quality
    even when a :class:`~repro.serve.control.DegradationLadder` is active.
    """

    request_id: int
    arrival_s: float
    scenario: Scenario
    deadline_s: float | None = None
    tenant: str | None = None
    session: int | None = None
    degradable: bool = True
    pose: tuple[float, float, float] | None = None


class RequestStream(abc.ABC):
    """Deterministic generator of a request arrival process.

    Subclasses implement :meth:`arrivals` (non-decreasing arrival times);
    the base class samples one scenario per arrival from the mix and stamps
    SLA deadlines, so ``generate(seed)`` is reproducible end to end.
    """

    def __init__(self, mix: ScenarioMix, sla_s: float | None = None) -> None:
        """Remember the scenario mix and the per-request SLA budget."""
        if sla_s is not None and sla_s <= 0.0:
            raise ValueError("sla_s must be positive")
        self.mix = mix
        self.sla_s = sla_s

    @abc.abstractmethod
    def arrivals(self, rng: random.Random) -> Iterator[float]:
        """Yield non-decreasing arrival times in seconds."""

    def pick(self, index: int, rng: random.Random) -> Scenario:
        """Choose the scenario of the ``index``-th request (mix sample by default)."""
        return self.mix.sample(rng)

    def build_request(
        self, index: int, arrival_s: float, rng: random.Random
    ) -> Request:
        """Materialize the ``index``-th request at ``arrival_s``.

        The default stamps the mix-sampled scenario and the stream-wide SLA
        deadline; subclasses override this (or :meth:`generate` outright)
        to attach tenants, sessions, poses or per-request deadlines.  The
        contract either way -- sequential ids, non-decreasing arrivals,
        seeded determinism -- is certified for every subclass by
        ``tests/serve/stream_conformance.py``.
        """
        deadline = arrival_s + self.sla_s if self.sla_s is not None else None
        return Request(
            request_id=index,
            arrival_s=arrival_s,
            scenario=self.pick(index, rng),
            deadline_s=deadline,
        )

    def generate(self, seed: int = 0) -> tuple[Request, ...]:
        """Materialize the stream: one immutable request list per seed."""
        rng = random.Random(seed)
        return tuple(
            self.build_request(i, arrival, rng)
            for i, arrival in enumerate(self.arrivals(rng))
        )


class PoissonStream(RequestStream):
    """Open-loop Poisson arrivals at a constant rate for a fixed duration."""

    def __init__(
        self,
        rate_rps: float,
        duration_s: float,
        mix: ScenarioMix,
        sla_s: float | None = None,
    ) -> None:
        """Configure a constant-rate memoryless arrival process."""
        if rate_rps <= 0.0 or duration_s <= 0.0:
            raise ValueError("rate_rps and duration_s must be positive")
        super().__init__(mix, sla_s)
        self.rate_rps = rate_rps
        self.duration_s = duration_s

    def arrivals(self, rng: random.Random) -> Iterator[float]:
        """Exponential inter-arrival gaps at ``rate_rps`` until ``duration_s``."""
        t = 0.0
        while True:
            t += rng.expovariate(self.rate_rps)
            if t >= self.duration_s:
                return
            yield t


class DiurnalStream(RequestStream):
    """Sinusoidally modulated Poisson arrivals (smooth burst / trough cycle).

    The instantaneous rate swings from ``base_rps`` (start of the period)
    up to ``peak_rps`` (mid-period) and back; arrivals are drawn by thinning
    a ``peak_rps`` Poisson process, the textbook way to simulate an
    inhomogeneous Poisson process deterministically.
    """

    def __init__(
        self,
        base_rps: float,
        peak_rps: float,
        period_s: float,
        duration_s: float,
        mix: ScenarioMix,
        sla_s: float | None = None,
    ) -> None:
        """Configure the modulation envelope and its duration."""
        if base_rps <= 0.0 or peak_rps < base_rps:
            raise ValueError("need 0 < base_rps <= peak_rps")
        if period_s <= 0.0 or duration_s <= 0.0:
            raise ValueError("period_s and duration_s must be positive")
        super().__init__(mix, sla_s)
        self.base_rps = base_rps
        self.peak_rps = peak_rps
        self.period_s = period_s
        self.duration_s = duration_s

    def rate_at(self, t: float) -> float:
        """Instantaneous arrival rate at time ``t``."""
        swing = 0.5 * (1.0 - math.cos(2.0 * math.pi * t / self.period_s))
        return self.base_rps + (self.peak_rps - self.base_rps) * swing

    def arrivals(self, rng: random.Random) -> Iterator[float]:
        """Thinned peak-rate Poisson arrivals following :meth:`rate_at`."""
        t = 0.0
        while True:
            t += rng.expovariate(self.peak_rps)
            if t >= self.duration_s:
                return
            if rng.random() * self.peak_rps <= self.rate_at(t):
                yield t


class TraceStream(RequestStream):
    """Replay of recorded arrival times, optionally with recorded scenarios."""

    def __init__(
        self,
        arrival_times_s: Sequence[float],
        mix: ScenarioMix,
        scenarios: Sequence[Scenario] | None = None,
        sla_s: float | None = None,
    ) -> None:
        """Validate and store the trace to replay."""
        super().__init__(mix, sla_s)
        times = tuple(float(t) for t in arrival_times_s)
        if any(b < a for a, b in zip(times, times[1:])):
            raise ValueError("trace arrival times must be non-decreasing")
        if any(t < 0.0 for t in times):
            raise ValueError("trace arrival times must be non-negative")
        if scenarios is not None and len(scenarios) != len(times):
            raise ValueError(
                f"{len(scenarios)} scenarios for {len(times)} arrivals"
            )
        self.arrival_times_s = times
        self.scenarios = tuple(scenarios) if scenarios is not None else None

    def arrivals(self, rng: random.Random) -> Iterator[float]:
        """Yield the recorded arrival times verbatim."""
        yield from self.arrival_times_s

    def pick(self, index: int, rng: random.Random) -> Scenario:
        """Use the recorded scenario when the trace carries one."""
        if self.scenarios is not None:
            return self.scenarios[index]
        return super().pick(index, rng)

"""FlexNeRFer reproduction: a multi-dataflow, adaptive sparsity-aware
accelerator model for on-device NeRF rendering (ISCA 2025).

Public API overview
-------------------

* :class:`repro.FlexNeRFer` -- the accelerator model (area/power reports and
  frame-level latency/energy estimation).
* :mod:`repro.nerf` -- the NeRF substrate: functional renderers and the seven
  per-model workload descriptors.
* :mod:`repro.baselines` -- the GPU, NeuRex and compute-array baselines.
* :mod:`repro.sparse`, :mod:`repro.quant`, :mod:`repro.noc`, :mod:`repro.hw`,
  :mod:`repro.sim` -- the substrates (sparse formats, quantization, NoCs,
  hardware cost models, performance simulation).
* :mod:`repro.experiments` -- one module per paper table/figure.
"""

from repro.core import FlexNeRFer, FlexNeRFerConfig, FrameReport, MACArray
from repro.sparse.formats import Precision, SparsityFormat

__version__ = "1.0.0"

__all__ = [
    "FlexNeRFer",
    "FlexNeRFerConfig",
    "FrameReport",
    "MACArray",
    "Precision",
    "SparsityFormat",
    "__version__",
]

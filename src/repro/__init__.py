"""FlexNeRFer reproduction: a multi-dataflow, adaptive sparsity-aware
accelerator model for on-device NeRF rendering (ISCA 2025).

Public API overview
-------------------

* :class:`repro.FlexNeRFer` -- the accelerator model (area/power reports and
  frame-level latency/energy estimation).
* :mod:`repro.nerf` -- the NeRF substrate: functional renderers and the seven
  per-model workload descriptors.
* :mod:`repro.baselines` -- the GPU, NeuRex and compute-array baselines.
* :mod:`repro.sparse`, :mod:`repro.quant`, :mod:`repro.noc`, :mod:`repro.hw`,
  :mod:`repro.sim` -- the substrates (sparse formats, quantization, NoCs,
  hardware cost models, performance simulation).
* :mod:`repro.core.device` -- the unified :class:`Device` protocol and the
  ``DEVICE_REGISTRY`` covering FlexNeRFer and every baseline device.
* :mod:`repro.sim.sweep` -- the cached :class:`SweepEngine` that runs
  device x model x precision x pruning x batch sweeps for the experiments.
* :mod:`repro.serve` -- the serving layer: request streams, scheduling
  policies, the :class:`~repro.serve.fleet.FleetSimulator` event loop and
  fleet-level :class:`~repro.serve.report.ServingReport` metrics.
* :mod:`repro.perf` -- the persistent content-addressed result store the
  sweep engine reads through, and the ``repro bench`` measurement harness
  (``BENCH_<rev>.json`` trajectory points).
* :mod:`repro.experiments` -- one module per paper table/figure plus the
  ``serve-*`` serving studies.
"""

from repro.core import FlexNeRFer, FlexNeRFerConfig, FrameReport, MACArray
from repro.core.device import DEVICE_REGISTRY, Device, get_device
from repro.sim.sweep import SweepEngine, SweepSpec, get_default_engine
from repro.sparse.formats import Precision, SparsityFormat

__version__ = "1.6.0"

__all__ = [
    "FlexNeRFer",
    "FlexNeRFerConfig",
    "FrameReport",
    "MACArray",
    "Device",
    "DEVICE_REGISTRY",
    "get_device",
    "SweepEngine",
    "SweepSpec",
    "get_default_engine",
    "Precision",
    "SparsityFormat",
    "__version__",
]

"""RISC-V controller and DMA engine models (paper Fig. 14).

The RISC-V controller decodes programs copied from the host and produces the
global control signals (tile descriptors, NoC routing configuration, format
encoder settings); the DMA engine moves data between host memory and the
accelerator's local DRAM.  Both are modelled at the throughput level plus a
28 nm area/power cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.components import DEFAULT_LIBRARY, ComponentLibrary, ComponentSpec
from repro.hw.dram import DRAMSpec, LPDDR3
from repro.hw.sram import SRAMMacro


@dataclass
class ControlProgram:
    """A decoded control program: one instruction per tile-level action."""

    name: str
    num_instructions: int
    num_tiles: int = 0

    def __post_init__(self) -> None:
        if self.num_instructions < 0 or self.num_tiles < 0:
            raise ValueError("instruction and tile counts must be non-negative")


class RISCVController:
    """Single-issue control core with a 16 KB program memory."""

    def __init__(
        self,
        frequency_hz: float = 800e6,
        program_memory_bytes: int = 16 << 10,
        instructions_per_cycle: float = 1.0,
        library: ComponentLibrary = DEFAULT_LIBRARY,
    ) -> None:
        self.frequency_hz = frequency_hz
        self.program_memory = SRAMMacro(
            "program-memory", capacity_bytes=program_memory_bytes, width_bits=32
        )
        self.instructions_per_cycle = instructions_per_cycle
        self.library = library

    def decode_time_s(self, program: ControlProgram) -> float:
        """Time to decode a control program."""
        cycles = program.num_instructions / self.instructions_per_cycle
        return cycles / self.frequency_hz

    def program_for_gemm(self, num_tiles: int) -> ControlProgram:
        """Control program for a tiled GEMM: a handful of instructions per tile."""
        return ControlProgram(
            name="gemm", num_instructions=6 * max(num_tiles, 1), num_tiles=num_tiles
        )

    def cost(self) -> ComponentSpec:
        core = self.library.get("riscv_core")
        return ComponentSpec(
            name="riscv-controller",
            area_um2=core.area_um2 + self.program_memory.area_um2,
            power_mw=core.power_mw + self.program_memory.leakage_w * 1e3,
        )


@dataclass
class DMATransfer:
    """One host <-> local-DRAM transfer."""

    num_bytes: float
    direction: str = "host-to-local"

    def __post_init__(self) -> None:
        if self.num_bytes < 0:
            raise ValueError("transfer size must be non-negative")
        if self.direction not in ("host-to-local", "local-to-host"):
            raise ValueError(f"unknown direction '{self.direction}'")


class DMAEngine:
    """Descriptor-based DMA engine feeding the local DRAM."""

    def __init__(
        self,
        dram: DRAMSpec = LPDDR3,
        setup_cycles: int = 32,
        frequency_hz: float = 800e6,
        library: ComponentLibrary = DEFAULT_LIBRARY,
    ) -> None:
        self.dram = dram
        self.setup_cycles = setup_cycles
        self.frequency_hz = frequency_hz
        self.library = library
        self.completed: list[DMATransfer] = field(default_factory=list) if False else []

    def transfer_time_s(self, transfer: DMATransfer) -> float:
        """Setup latency plus streaming time at the DRAM interface bandwidth."""
        setup = self.setup_cycles / self.frequency_hz
        return setup + self.dram.transfer_time_s(transfer.num_bytes)

    def transfer_energy_j(self, transfer: DMATransfer) -> float:
        return self.dram.transfer_energy_j(transfer.num_bytes)

    def execute(self, transfer: DMATransfer) -> float:
        """Record a transfer and return its duration."""
        self.completed.append(transfer)
        return self.transfer_time_s(transfer)

    def cost(self) -> ComponentSpec:
        return self.library.get("dma_engine")

"""NeRF encoding unit: positional and hash encoding engines (Section 5.2).

The encoding unit sits next to the GEMM/GEMV acceleration unit (Fig. 14) and
removes the encoding bottleneck identified in Fig. 3:

* the positional encoding engine (PEE) evaluates the approximated
  trigonometric functions of Eq. (5)-(6) on 64 parallel lanes, which is 8.2x
  smaller and 12.8x lower power than a DesignWare-based exact implementation;
* the hash encoding engine (HEE) extends NeuRex's unit with 64 coalescing hash
  units (low-resolution levels), 64 subgrid hash units (high-resolution
  levels) and 64 trilinear interpolation units.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hw.components import DEFAULT_LIBRARY, ComponentLibrary, ComponentSpec
from repro.hw.sram import SRAMMacro
from repro.nerf.hashgrid import HashGrid
from repro.nerf.positional import approx_positional_encoding
from repro.nerf.workload import EncodingOp


@dataclass
class EncodingTiming:
    """Cycles / time estimate for one encoding operation."""

    cycles: float
    frequency_hz: float

    @property
    def time_s(self) -> float:
        return self.cycles / self.frequency_hz


class PositionalEncodingEngine:
    """64-lane approximate sinusoidal positional encoding engine."""

    def __init__(
        self,
        num_lanes: int = 64,
        frequency_hz: float = 800e6,
        library: ComponentLibrary = DEFAULT_LIBRARY,
    ) -> None:
        if num_lanes < 1:
            raise ValueError("PEE needs at least one lane")
        self.num_lanes = num_lanes
        self.frequency_hz = frequency_hz
        self.library = library

    def encode(self, values: np.ndarray, num_frequencies: int) -> np.ndarray:
        """Functionally encode ``values`` with the hardware approximation."""
        return approx_positional_encoding(values, num_frequencies)

    def timing(self, op: EncodingOp) -> EncodingTiming:
        """Throughput model: each lane produces one encoded scalar per cycle."""
        if op.kind != "positional":
            raise ValueError(f"PEE cannot execute a '{op.kind}' encoding op")
        encodings = op.num_points * op.output_dim * op.count
        cycles = np.ceil(encodings / self.num_lanes)
        return EncodingTiming(cycles=float(cycles), frequency_hz=self.frequency_hz)

    def cost(self) -> ComponentSpec:
        return self.library.compose("pee", {"pee_lane": self.num_lanes})

    def designware_cost(self) -> ComponentSpec:
        """Cost of the exact DesignWare-IP implementation (the 8.2x / 12.8x baseline)."""
        return self.library.compose(
            "pee-designware", {"pee_lane_designware": self.num_lanes}
        )


class HashEncodingEngine:
    """Hash encoding engine with coalescing, subgrid and interpolation units."""

    def __init__(
        self,
        num_units: int = 64,
        frequency_hz: float = 800e6,
        coalescing_factor: float = 4.0,
        library: ComponentLibrary = DEFAULT_LIBRARY,
    ) -> None:
        if num_units < 1:
            raise ValueError("HEE needs at least one unit")
        if coalescing_factor < 1.0:
            raise ValueError("coalescing factor must be >= 1")
        self.num_units = num_units
        self.frequency_hz = frequency_hz
        self.coalescing_factor = coalescing_factor
        self.library = library

    def encode(self, grid: HashGrid, points: np.ndarray) -> np.ndarray:
        """Functionally encode points through a hash grid."""
        return grid.encode(points)

    def measured_coalescing(self, grid: HashGrid) -> float:
        """Average coalescing factor over the grid's coarse (dense) levels."""
        coarse = [s for s in grid.last_level_stats if not s.uses_hash]
        if not coarse:
            return 1.0
        return float(np.mean([s.coalescing_factor for s in coarse]))

    def timing(self, op: EncodingOp) -> EncodingTiming:
        """Throughput model for hash-table lookups + trilinear interpolation.

        Each unit retires one (possibly coalesced) lookup per cycle; the
        coalescing units merge lookups that share a table line at the coarse
        levels, which divides the effective lookup count.
        """
        if op.kind != "hash":
            raise ValueError(f"HEE cannot execute a '{op.kind}' encoding op")
        lookups = op.num_points * op.table_lookups_per_point * op.count
        effective_lookups = lookups / self.coalescing_factor
        interp_cycles = np.ceil(op.num_points * op.count / self.num_units)
        lookup_cycles = np.ceil(effective_lookups / self.num_units)
        return EncodingTiming(
            cycles=float(lookup_cycles + interp_cycles),
            frequency_hz=self.frequency_hz,
        )

    def cost(self) -> ComponentSpec:
        return self.library.compose(
            "hee",
            {
                "hee_coalesce_unit": self.num_units,
                "hee_subgrid_unit": self.num_units,
                "hee_interp_unit": self.num_units,
            },
        )


class NeRFEncodingUnit:
    """The full encoding unit: PEE + HEE + encoding buffer."""

    def __init__(
        self,
        frequency_hz: float = 800e6,
        buffer_bytes: int = 512 << 10,
        library: ComponentLibrary = DEFAULT_LIBRARY,
    ) -> None:
        self.pee = PositionalEncodingEngine(frequency_hz=frequency_hz, library=library)
        self.hee = HashEncodingEngine(frequency_hz=frequency_hz, library=library)
        self.buffer = SRAMMacro("encoding-buffer", capacity_bytes=buffer_bytes)
        self.frequency_hz = frequency_hz

    def timing(self, op: EncodingOp) -> EncodingTiming:
        """Dispatch an encoding op to the matching engine."""
        if op.kind == "positional":
            return self.pee.timing(op)
        return self.hee.timing(op)

    def area_mm2(self) -> float:
        return (
            self.pee.cost().area_um2 + self.hee.cost().area_um2 + self.buffer.area_um2
        ) / 1e6

    def power_w(self, utilisation: float = 0.6) -> float:
        dynamic_mw = (self.pee.cost().power_mw + self.hee.cost().power_mw) * utilisation
        return dynamic_mw / 1e3 + self.buffer.power_w(utilisation, self.frequency_hz)

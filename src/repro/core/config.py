"""Top-level configuration of the FlexNeRFer accelerator (paper Fig. 14)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.dram import DRAMSpec, LPDDR3
from repro.sparse.formats import Precision


@dataclass(frozen=True)
class FlexNeRFerConfig:
    """Static configuration of a FlexNeRFer instance."""

    array_rows: int = 64
    array_cols: int = 64
    frequency_hz: float = 800e6
    default_precision: Precision = Precision.INT16

    # On-chip buffers (paper Fig. 14).
    input_buffer_bytes: int = 2 << 20
    output_buffer_bytes: int = 2 << 20
    weight_buffer_bytes: int = 512 << 10
    encoding_buffer_bytes: int = 512 << 10
    program_memory_bytes: int = 16 << 10

    # Encoding unit sizing (Section 5.2).
    pee_lanes: int = 64
    hee_units: int = 64

    # Local memory.
    dram: DRAMSpec = field(default_factory=lambda: LPDDR3)

    # Fraction of total execution time spent on format conversion in 16-bit
    # mode (paper Fig. 18(a) reports 8.7 %); expressed as an overhead relative
    # to the compute time inside the cycle model.
    format_conversion_overhead: float = 0.095

    def __post_init__(self) -> None:
        if self.array_rows < 1 or self.array_cols < 1:
            raise ValueError("array dimensions must be positive")
        if self.frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        for name in (
            "input_buffer_bytes",
            "output_buffer_bytes",
            "weight_buffer_bytes",
            "encoding_buffer_bytes",
            "program_memory_bytes",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")

    @property
    def num_mac_units(self) -> int:
        return self.array_rows * self.array_cols

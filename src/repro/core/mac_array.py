"""The bit-scalable MAC array of FlexNeRFer's GEMM/GEMV acceleration unit.

Combines the functional pieces (MAC units + distribution network + reduction
trees) with a 28 nm cost model calibrated against paper Table 3 / Fig. 15:
a 64x64 array occupies ~28.6 mm^2 and consumes ~5.5 / 6.4 / 6.9 W in the
16- / 8- / 4-bit modes at 800 MHz.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.distribution import DistributionNetwork
from repro.core.mac_unit import BitScalableMACUnit
from repro.core.reduction import FlexibleReductionTree
from repro.hw.components import DEFAULT_LIBRARY, ComponentLibrary
from repro.hw.cost import AreaReport, PowerReport
from repro.hw.tech import TECH_28NM
from repro.nerf.workload import GEMMOp
from repro.sim.array_config import ArrayConfig, MappingFlexibility
from repro.sim.utilization import sparse_mapping_utilization
from repro.sparse.formats import Precision

#: Place-and-route utilisation: composed block area is inflated by this factor
#: to account for routing, clock tree and whitespace.
PNR_AREA_FACTOR = 1.23

#: Average switching-activity factor of the MAC units per precision mode
#: (SAIF-based averages in the paper's flow; lower precision modes toggle more
#: lanes and therefore more capacitance).
MAC_ACTIVITY = {
    Precision.INT16: 0.61,
    Precision.INT8: 0.725,
    Precision.INT4: 0.79,
}

#: Switching activity assumed for the interconnect / reduction / codec blocks.
FABRIC_ACTIVITY = 0.55

#: Intra-MAC-unit HMF-NoC switches (Lv0/Lv1) per MAC unit.
INTRA_UNIT_SWITCHES = 5

#: Flexible format encoder/decoder lanes attached to the array.
FORMAT_CODEC_LANES = 512


@dataclass
class MACArray:
    """A ``rows x cols`` array of bit-scalable MAC units."""

    rows: int = 64
    cols: int = 64
    frequency_hz: float = TECH_28NM.frequency_hz
    library: ComponentLibrary = field(default_factory=lambda: DEFAULT_LIBRARY)

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ValueError("array dimensions must be positive")
        self.mac_unit = BitScalableMACUnit(optimized_shifters=True, library=self.library)
        self.distribution = DistributionNetwork(self.rows, self.cols)
        self.reduction = FlexibleReductionTree(self.rows * self.cols, library=self.library)

    # -- structural properties -------------------------------------------------

    @property
    def num_mac_units(self) -> int:
        return self.rows * self.cols

    def num_multipliers(self, precision: Precision) -> int:
        """Effective multiplier lanes at ``precision`` (Table 3 row)."""
        return self.num_mac_units * self.mac_unit.lanes(precision)

    def peak_tops(self, precision: Precision) -> float:
        """Peak throughput (tera-operations/s, 2 ops per MAC) at ``precision``."""
        return 2.0 * self.num_multipliers(precision) * self.frequency_hz / 1e12

    def peak_efficiency_tops_per_w(self, precision: Precision) -> float:
        return self.peak_tops(precision) / self.power(precision).total_w

    def effective_efficiency_tops_per_w(
        self, precision: Precision, workload_op: GEMMOp | None = None
    ) -> float:
        """Effective efficiency on a representative sparse irregular GEMM.

        Table 3 reports effective efficiency on the NeRF workload mix; here a
        representative irregular GEMM with 50 % activation sparsity is used
        unless an explicit op is provided.
        """
        op = workload_op or _representative_gemm(precision)
        config = self.array_config()
        utilization = sparse_mapping_utilization(op, config)
        return self.peak_tops(precision) * utilization / self.power(precision).total_w

    # -- functional GEMM ----------------------------------------------------------

    def gemm(
        self, matrix_a: np.ndarray, matrix_b: np.ndarray, precision: Precision
    ) -> np.ndarray:
        """Compute ``A @ B`` through the dense sparse-mapping path.

        The distribution network packs non-zero products onto MAC slots and
        the flexible reduction accumulates them per output element; the result
        is bit-exact for integer operands within the precision's range.
        """
        plan = self.distribution.map_sparse_gemm(matrix_a, matrix_b)
        result = plan.compute_outputs((matrix_a.shape[0], matrix_b.shape[1]))
        return result

    # -- cost model -----------------------------------------------------------------

    def area(self) -> AreaReport:
        """Area breakdown of the compute array in mm^2 (Table 3 / Fig. 15(a))."""
        lib = self.library
        units_mm2 = self.num_mac_units * self.mac_unit.cost().area_um2 / 1e6
        array_switches = self.distribution.num_switches()
        dn_mm2 = (
            array_switches * lib.area_um2("switch3x3")
            + self.num_mac_units * INTRA_UNIT_SWITCHES * lib.area_um2("switch3x3_small")
            + self.num_mac_units * lib.area_um2("mesh_link")
        ) / 1e6
        rt_mm2 = self.reduction.cost().area_um2 / 1e6
        codec_mm2 = (
            FORMAT_CODEC_LANES * lib.area_um2("format_codec_lane")
            + self.cols * lib.area_um2("popcount64")
            + lib.area_um2("brent_kung32")
        ) / 1e6
        report = AreaReport()
        report.add("mac_units", units_mm2 * PNR_AREA_FACTOR)
        report.add("distribution_network", dn_mm2 * PNR_AREA_FACTOR)
        report.add("reduction_tree", rt_mm2 * PNR_AREA_FACTOR)
        report.add("format_codec", codec_mm2 * PNR_AREA_FACTOR)
        return report

    def power(self, precision: Precision = Precision.INT16) -> PowerReport:
        """Power breakdown in watts at ``precision`` (Table 3 / Fig. 15(b))."""
        lib = self.library
        activity = MAC_ACTIVITY[precision]
        units_w = self.num_mac_units * self.mac_unit.cost().power_mw * activity / 1e3
        array_switches = self.distribution.num_switches()
        dn_w = (
            array_switches * lib.power_mw("switch3x3")
            + self.num_mac_units * INTRA_UNIT_SWITCHES * lib.power_mw("switch3x3_small")
            + self.num_mac_units * lib.power_mw("mesh_link")
        ) * FABRIC_ACTIVITY / 1e3
        rt_w = self.reduction.cost().power_mw * FABRIC_ACTIVITY / 1e3
        codec_w = (
            FORMAT_CODEC_LANES * lib.power_mw("format_codec_lane")
            + self.cols * lib.power_mw("popcount64")
            + lib.power_mw("brent_kung32")
        ) * FABRIC_ACTIVITY / 1e3
        report = PowerReport()
        report.add("mac_units", units_w)
        report.add("distribution_network", dn_w)
        report.add("reduction_tree", rt_w)
        report.add("format_codec", codec_w)
        return report

    # -- simulator hook ----------------------------------------------------------------

    def array_config(self, format_conversion_overhead: float = 0.095) -> ArrayConfig:
        """Array configuration consumed by the cycle model.

        The format-conversion overhead corresponds to the ~8.7 % of total
        execution time spent on encoding/decoding in 16-bit mode (Fig. 18(a)).
        """
        return ArrayConfig(
            name="flexnerfer-mac-array",
            rows=self.rows,
            cols=self.cols,
            frequency_hz=self.frequency_hz,
            base_precision=Precision.INT16,
            bit_scalable=True,
            supports_sparsity=True,
            mapping=MappingFlexibility.FLEXIBLE,
            format_conversion_overhead=format_conversion_overhead,
        )


def _representative_gemm(precision: Precision) -> GEMMOp:
    """Representative sparse irregular NeRF GEMM used for effective efficiency."""
    return GEMMOp(
        name="representative",
        m=4096 * 24,
        n=200,
        k=144,
        weight_sparsity=0.3,
        activation_sparsity=0.5,
        precision=precision,
    )

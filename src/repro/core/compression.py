"""Online sparsity-aware data compression (paper Section 4.3, Fig. 13(b)).

Input tensors have dynamic sparsity that varies across rendering stages, so
FlexNeRFer measures the sparsity ratio of each tile on the fly (popcount over
the fetched non-zero bitmap, Eq. 4), selects the optimal storage format for
the active precision mode, and encodes the tile with the flexible format
encoder before it is written back to memory.  Weights are static, so their
sparsity is pre-analysed offline and they are stored in their optimal format
in local DRAM ahead of time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sparse.codecs import EncodedTensor, get_codec
from repro.sparse.formats import Precision, SparsityFormat, tile_shape_for_precision
from repro.sparse.selector import FormatDecision, FormatSelector


@dataclass
class SparsityRatioCalculator:
    """Popcount-based online sparsity-ratio measurement (paper Eq. 4)."""

    precision: Precision = Precision.INT16
    popcount_width: int = 64
    _total_nonzero: int = field(default=0, init=False)
    _total_elements: int = field(default=0, init=False)
    _num_fetches: int = field(default=0, init=False)

    @property
    def elements_per_fetch(self) -> int:
        """N_data/fetch: elements delivered per data fetch at this precision.

        Quadruples each time the precision is halved (paper Section 4.3).
        """
        rows, cols = tile_shape_for_precision(self.precision)
        return rows * cols

    def reset(self) -> None:
        self._total_nonzero = 0
        self._total_elements = 0
        self._num_fetches = 0

    def observe_fetch(self, tile: np.ndarray) -> int:
        """Process one fetched tile; returns its popcount (non-zero count)."""
        tile = np.asarray(tile)
        bitmap = tile != 0
        popcount = int(np.count_nonzero(bitmap))
        self._total_nonzero += popcount
        self._total_elements += int(tile.size)
        self._num_fetches += 1
        return popcount

    @property
    def num_fetches(self) -> int:
        return self._num_fetches

    @property
    def sparsity_ratio(self) -> float:
        """Accumulated sparsity ratio in [0, 1] (Eq. 4 divided by 100)."""
        if self._total_elements == 0:
            return 0.0
        return 1.0 - self._total_nonzero / self._total_elements

    @property
    def sparsity_percent(self) -> float:
        return self.sparsity_ratio * 100.0


@dataclass
class CompressionRecord:
    """Result of compressing one tensor."""

    encoded: EncodedTensor
    decision: FormatDecision
    original_bits: int

    @property
    def compressed_bits(self) -> int:
        return self.encoded.storage_bits

    @property
    def compression_ratio(self) -> float:
        """Original size over compressed size (>1 means the format helped)."""
        return self.original_bits / max(self.compressed_bits, 1)


class SparsityAwareCompressor:
    """The flexible format encoder/decoder pair plus the SR calculator."""

    def __init__(self, precision: Precision = Precision.INT16) -> None:
        self.precision = precision
        self.calculator = SparsityRatioCalculator(precision=precision)
        self.selector = FormatSelector()
        self._weight_formats: dict[str, SparsityFormat] = {}

    # -- online path (inputs) ---------------------------------------------------

    def compress_input(self, tile: np.ndarray) -> CompressionRecord:
        """Measure a tile's sparsity online and encode it in the best format."""
        tile = np.asarray(tile)
        self.calculator.reset()
        self.calculator.observe_fetch(tile)
        sparsity = self.calculator.sparsity_ratio
        decision = self.selector.decide(sparsity, self.precision)
        encoded = get_codec(decision.fmt).encode(tile, self.precision)
        return CompressionRecord(
            encoded=encoded,
            decision=decision,
            original_bits=tile.size * self.precision.bits,
        )

    # -- offline path (weights) ----------------------------------------------------

    def analyze_weights(self, name: str, weights: np.ndarray) -> FormatDecision:
        """Pre-analyse a static weight tensor and remember its format."""
        weights = np.asarray(weights)
        sparsity = 1.0 - np.count_nonzero(weights) / weights.size if weights.size else 0.0
        decision = self.selector.decide(sparsity, self.precision)
        self._weight_formats[name] = decision.fmt
        return decision

    def weight_format(self, name: str) -> SparsityFormat:
        """Format chosen for a previously analysed weight tensor."""
        try:
            return self._weight_formats[name]
        except KeyError as exc:
            raise KeyError(f"weight tensor '{name}' has not been analysed") from exc

    def compress_weights(self, name: str, weights: np.ndarray) -> CompressionRecord:
        """Encode a pre-analysed weight tensor in its recorded format."""
        fmt = self.weight_format(name)
        weights = np.asarray(weights)
        encoded = get_codec(fmt).encode(weights, self.precision)
        sparsity = 1.0 - np.count_nonzero(weights) / weights.size if weights.size else 0.0
        return CompressionRecord(
            encoded=encoded,
            decision=self.selector.decide(sparsity, self.precision),
            original_bits=weights.size * self.precision.bits,
        )

    # -- decode path -----------------------------------------------------------------

    @staticmethod
    def decompress(encoded: EncodedTensor) -> np.ndarray:
        """Flexible format decoder: reconstruct the dense tile."""
        return get_codec(encoded.fmt).decode(encoded)

"""Distribution network: dense mapping of sparse irregular GEMMs (Section 4.1).

The distribution network (DN) combines:

* an array-level HMF-NoC (Lv3 over columns, Lv2 per row) that delivers the
  shared operand with broadcast / multicast / unicast dataflows,
* a 1D mesh that delivers the per-MAC unique operand, and
* MAC-unit level HMF-NoCs plus column-level bypass links (CLBs) that replicate
  operand sub-words across sub-multipliers in the higher precision modes.

The central algorithm here is :meth:`DistributionNetwork.map_sparse_gemm`,
which reproduces paper Fig. 5 / Fig. 11: every non-zero product of an
irregular sparse GEMM is assigned to a MAC slot so that the array is filled
densely, and the per-row dataflow (who broadcasts, who multicasts, who
unicasts) falls out of the assignment.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.noc.dataflow import DataflowMode, classify_assignment
from repro.noc.hierarchical import HMFNoC
from repro.noc.mesh import Mesh1D
from repro.sparse.formats import Precision


@dataclass(frozen=True)
class ProductAssignment:
    """One non-zero product placed on one MAC slot."""

    mac_row: int
    mac_col: int
    a_index: tuple[int, int]   # (row, col) of the element from matrix 1
    b_index: tuple[int, int]   # (row, col) of the element from matrix 2
    a_value: float
    b_value: float
    output_index: tuple[int, int]

    @property
    def product(self) -> float:
        return self.a_value * self.b_value


@dataclass
class MappingPlan:
    """Dense mapping of one sparse GEMM tile onto the MAC array."""

    array_rows: int
    array_cols: int
    assignments: list[ProductAssignment] = field(default_factory=list)
    num_passes: int = 0

    @property
    def num_products(self) -> int:
        return len(self.assignments)

    @property
    def utilization(self) -> float:
        """Fraction of MAC slots doing useful work across all passes."""
        slots = self.array_rows * self.array_cols * max(self.num_passes, 1)
        return self.num_products / slots if slots else 0.0

    def row_dataflows(self) -> list[DataflowMode]:
        """Dataflow of the shared operand per MAC-array row, first pass."""
        first_pass = self.assignments[: self.array_rows * self.array_cols]
        grid: list[list[object]] = [
            [None] * self.array_cols for _ in range(self.array_rows)
        ]
        for item in first_pass:
            grid[item.mac_row][item.mac_col] = item.a_index
        return [classify_assignment(row) for row in grid]

    def compute_outputs(self, shape: tuple[int, int]) -> np.ndarray:
        """Accumulate the assigned products into the GEMM result matrix."""
        out = np.zeros(shape, dtype=np.float64)
        for item in self.assignments:
            out[item.output_index] += item.product
        return out


class DistributionNetwork:
    """The hierarchical DN of FlexNeRFer's MAC array."""

    def __init__(self, array_rows: int = 64, array_cols: int = 64) -> None:
        if array_rows < 1 or array_cols < 1:
            raise ValueError("array dimensions must be positive")
        self.array_rows = array_rows
        self.array_cols = array_cols
        self.column_noc = HMFNoC(array_cols)        # HMF-NoC (Lv3)
        self.row_nocs = [HMFNoC(array_cols) for _ in range(array_rows)]  # Lv2
        self.row_meshes = [Mesh1D(array_cols) for _ in range(array_rows)]

    # -- dense mapping -----------------------------------------------------------

    def map_sparse_gemm(
        self, matrix_a: np.ndarray, matrix_b: np.ndarray
    ) -> MappingPlan:
        """Densely map the non-zero products of ``A @ B`` onto the array.

        For every non-zero ``A[i, k]`` the non-zero elements of row ``k`` of
        ``B`` produce one product each (Gustavson's row-wise formulation, the
        same order as paper Fig. 5).  Products are packed row-major onto MAC
        slots; when the array is full, a new pass begins.
        """
        matrix_a = np.asarray(matrix_a)
        matrix_b = np.asarray(matrix_b)
        if matrix_a.ndim != 2 or matrix_b.ndim != 2:
            raise ValueError("operands must be 2D matrices")
        if matrix_a.shape[1] != matrix_b.shape[0]:
            raise ValueError(
                f"inner dimensions differ: {matrix_a.shape} @ {matrix_b.shape}"
            )
        plan = MappingPlan(array_rows=self.array_rows, array_cols=self.array_cols)
        slots_per_pass = self.array_rows * self.array_cols
        slot = 0
        a_rows, a_cols = np.nonzero(matrix_a)
        for i, k in zip(a_rows, a_cols):
            b_cols = np.nonzero(matrix_b[k])[0]
            for j in b_cols:
                mac_index = slot % slots_per_pass
                plan.assignments.append(
                    ProductAssignment(
                        mac_row=mac_index // self.array_cols,
                        mac_col=mac_index % self.array_cols,
                        a_index=(int(i), int(k)),
                        b_index=(int(k), int(j)),
                        a_value=float(matrix_a[i, k]),
                        b_value=float(matrix_b[k, j]),
                        output_index=(int(i), int(j)),
                    )
                )
                slot += 1
        plan.num_passes = -(-slot // slots_per_pass) if slot else 0
        return plan

    # -- routing cost ---------------------------------------------------------------

    def distribute(self, plan: MappingPlan) -> dict[str, int]:
        """Route one pass of a mapping plan through the NoCs and count costs."""
        first_pass = plan.assignments[: self.array_rows * self.array_cols]
        buffer_reads = 0
        switch_traversals = 0
        mesh_traversals = 0
        # The shared operand (matrix 1) goes through the HMF-NoC hierarchy.
        grid: list[list[object]] = [
            [None] * self.array_cols for _ in range(self.array_rows)
        ]
        unique_grid: list[list[object]] = [
            [None] * self.array_cols for _ in range(self.array_rows)
        ]
        for item in first_pass:
            grid[item.mac_row][item.mac_col] = item.a_index
            unique_grid[item.mac_row][item.mac_col] = item.b_index
        for row, row_noc in enumerate(self.row_nocs):
            result = row_noc.route(grid[row])
            buffer_reads += result.buffer_reads
            switch_traversals += result.switch_traversals + result.feedback_forwards
        # The unique operand (matrix 2) is unicast over the 1D meshes.
        for row, mesh in enumerate(self.row_meshes):
            delivery = mesh.route(unique_grid[row])
            buffer_reads += delivery.buffer_reads
            mesh_traversals += delivery.link_traversals
        return {
            "buffer_reads": buffer_reads,
            "switch_traversals": switch_traversals,
            "mesh_traversals": mesh_traversals,
        }

    # -- CLB bandwidth model --------------------------------------------------------

    @staticmethod
    def clb_bandwidth_utilization(precision: Precision, with_clb: bool = True) -> float:
        """Input-bandwidth utilisation of a MAC unit (paper Section 4.1.3).

        Bandwidth is provisioned for the 4-bit mode (64 bits per operand per
        cycle).  Without the column-level bypass links the higher precision
        modes only use 16 or 32 of those bits; the CLB's pipelined 16-bit
        links restore full utilisation in every mode.
        """
        if with_clb:
            return 1.0
        # Without the CLB only 16 / 32 / 64 of the provisioned 64 bits are
        # used in 16- / 8- / 4-bit mode respectively.
        return 4.0 / precision.bits

    def num_switches(self) -> int:
        """Total 3x3 switches across the array-level HMF-NoCs."""
        return self.column_noc.num_switches + sum(
            noc.num_switches for noc in self.row_nocs
        )

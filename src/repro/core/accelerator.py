"""The FlexNeRFer accelerator: hardware cost and frame-level performance.

Combines the GEMM/GEMV acceleration unit (MAC array + flexible NoC + format
codec), the NeRF encoding unit, the RISC-V controller, the DMA engine and the
on-chip buffers into one model that can

* report chip-level area and power breakdowns (paper Fig. 16 / Fig. 17), and
* estimate the latency and energy of rendering one frame of any NeRF workload
  (paper Fig. 18 - Fig. 20).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import FlexNeRFerConfig
from repro.core.controller import DMAEngine, RISCVController
from repro.core.encoding_unit import NeRFEncodingUnit
from repro.core.mac_array import MACArray
from repro.hw.cost import AreaReport, PowerReport
from repro.hw.sram import SRAMMacro
from repro.nerf.workload import (
    EncodingOp,
    GEMMOp,
    MiscOp,
    OpCategory,
    Workload,
)
from repro.sim.engine import GEMMCycleModel
from repro.sim.memory import MemoryTrafficModel
from repro.sim.trace import ExecutionTrace, OpRecord
from repro.sparse.formats import Precision


@dataclass
class FrameReport:
    """Latency / energy summary of rendering one frame."""

    device: str
    model_name: str
    latency_s: float
    energy_j: float
    trace: ExecutionTrace
    precision: Precision | None = None
    extra: dict[str, float] = field(default_factory=dict)

    @property
    def fps(self) -> float:
        return 1.0 / self.latency_s if self.latency_s > 0 else float("inf")

    @property
    def frame_time_ms(self) -> float:
        return self.latency_s * 1e3

    @property
    def energy_per_frame_mj(self) -> float:
        return self.energy_j * 1e3


#: Fraction of peak GEMM throughput available to miscellaneous vector work
#: (ray sampling, volume rendering) executed on the array's vector datapath.
MISC_THROUGHPUT_FRACTION = 0.25


class FlexNeRFer:
    """Top-level accelerator model."""

    name = "FlexNeRFer"

    def __init__(self, config: FlexNeRFerConfig | None = None) -> None:
        self.config = config or FlexNeRFerConfig()
        self.mac_array = MACArray(
            rows=self.config.array_rows,
            cols=self.config.array_cols,
            frequency_hz=self.config.frequency_hz,
        )
        self.encoding_unit = NeRFEncodingUnit(
            frequency_hz=self.config.frequency_hz,
            buffer_bytes=self.config.encoding_buffer_bytes,
        )
        self.controller = RISCVController(
            frequency_hz=self.config.frequency_hz,
            program_memory_bytes=self.config.program_memory_bytes,
        )
        self.dma = DMAEngine(dram=self.config.dram, frequency_hz=self.config.frequency_hz)
        self.buffers = {
            "input_buffer": SRAMMacro("input-buffer", self.config.input_buffer_bytes, banks=8),
            "output_buffer": SRAMMacro("output-buffer", self.config.output_buffer_bytes, banks=8),
            "weight_buffer": SRAMMacro("weight-buffer", self.config.weight_buffer_bytes, banks=4),
        }
        self._memory_model = MemoryTrafficModel(
            dram=self.config.dram,
            weight_buffer=self.buffers["weight_buffer"],
            activation_buffer=self.buffers["input_buffer"],
            compression_enabled=True,
        )
        self._cycle_model = GEMMCycleModel(
            self.mac_array.array_config(self.config.format_conversion_overhead),
            memory=self._memory_model,
        )

    # -- hardware cost ---------------------------------------------------------

    def area(self) -> AreaReport:
        """Chip-level area breakdown in mm^2 (paper Fig. 16(a) / Fig. 17(a))."""
        report = AreaReport()
        for block, value in self.mac_array.area().breakdown.items():
            report.add(f"gemm_unit/{block}", value)
        report.add("encoding_unit", self.encoding_unit.area_mm2())
        buffers_mm2 = sum(macro.area_mm2 for macro in self.buffers.values())
        report.add("buffers", buffers_mm2)
        report.add("controller", self.controller.cost().area_um2 / 1e6)
        report.add("dma", self.dma.cost().area_um2 / 1e6)
        # System bus, high-speed I/O pads and top-level integration glue.
        report.add("io_and_bus", 2.9)
        return report

    def power(self, precision: Precision | None = None) -> PowerReport:
        """Chip-level power breakdown in watts (paper Fig. 16(b) / Fig. 17(b))."""
        precision = precision or self.config.default_precision
        report = PowerReport()
        for block, value in self.mac_array.power(precision).breakdown.items():
            report.add(f"gemm_unit/{block}", value)
        report.add("encoding_unit", self.encoding_unit.power_w())
        buffer_w = sum(
            macro.power_w(utilisation=0.5, frequency_hz=self.config.frequency_hz)
            for macro in self.buffers.values()
        )
        report.add("buffers", buffer_w)
        report.add("controller", self.controller.cost().power_mw / 1e3)
        report.add("dma", self.dma.cost().power_mw / 1e3)
        report.add("io_and_bus", 0.45)
        # LPDDR3 PHY + wider on-chip fetch datapaths at lower precision.
        dram_interface_w = {
            Precision.INT16: 1.20,
            Precision.INT8: 1.45,
            Precision.INT4: 1.85,
        }
        report.add("dram_interface", dram_interface_w[precision])
        return report

    # -- frame execution ------------------------------------------------------------

    def render_frame(
        self,
        workload: Workload,
        precision: Precision | None = None,
        pruning_ratio: float = 0.0,
    ) -> FrameReport:
        """Estimate latency and energy for one frame of ``workload``.

        The workload's GEMMs are re-expressed at ``precision`` and optionally
        structurally pruned; encoding ops run on the encoding unit, GEMMs on
        the MAC array through the flexible NoC, and miscellaneous work on the
        array's vector datapath.
        """
        precision = precision or self.config.default_precision
        prepared = workload.with_precision(precision)
        if pruning_ratio > 0.0:
            prepared = prepared.pruned(pruning_ratio)

        chip_power = self.power(precision).total_w
        trace = ExecutionTrace(device=self.name, model_name=prepared.model_name)
        for op in prepared.ops:
            if isinstance(op, GEMMOp):
                trace.add(self._run_gemm(op, chip_power))
            elif isinstance(op, EncodingOp):
                trace.add(self._run_encoding(op, chip_power))
            elif isinstance(op, MiscOp):
                trace.add(self._run_misc(op, precision, chip_power))
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown op type {type(op)!r}")
        return FrameReport(
            device=self.name,
            model_name=prepared.model_name,
            latency_s=trace.total_time_s,
            energy_j=trace.total_energy_j,
            trace=trace,
            precision=precision,
        )

    # -- per-op execution --------------------------------------------------------------

    def _run_gemm(self, op: GEMMOp, chip_power_w: float) -> OpRecord:
        execution = self._cycle_model.execute(op)
        time_s = execution.total_time_s
        dram_energy = self._memory_model.transfer_energy_j(execution.traffic)
        compute_energy = chip_power_w * (
            execution.compute_time_s + execution.format_conversion_time_s
        )
        idle_energy = 0.25 * chip_power_w * execution.dram_time_s
        return OpRecord(
            name=op.name,
            category=OpCategory.GEMM,
            time_s=time_s,
            energy_j=compute_energy + dram_energy + idle_energy,
            compute_time_s=execution.compute_time_s,
            dram_time_s=execution.dram_time_s,
            format_conversion_time_s=execution.format_conversion_time_s,
            dram_bytes=execution.traffic.total_bytes,
            utilization=execution.utilization,
        )

    def _run_encoding(self, op: EncodingOp, chip_power_w: float) -> OpRecord:
        timing = self.encoding_unit.timing(op)
        dram_bytes = op.dram_bytes
        dram_time = self.config.dram.transfer_time_s(dram_bytes)
        time_s = timing.time_s + dram_time
        energy = (
            self.encoding_unit.power_w() * timing.time_s
            + self.config.dram.transfer_energy_j(dram_bytes)
            + 0.15 * chip_power_w * time_s
        )
        return OpRecord(
            name=op.name,
            category=OpCategory.ENCODING,
            time_s=time_s,
            energy_j=energy,
            compute_time_s=timing.time_s,
            dram_time_s=dram_time,
            dram_bytes=dram_bytes,
        )

    def _run_misc(self, op: MiscOp, precision: Precision, chip_power_w: float) -> OpRecord:
        vector_throughput = (
            self.mac_array.peak_tops(precision) * 1e12 * MISC_THROUGHPUT_FRACTION
        )
        time_s = op.flops * op.count / vector_throughput
        return OpRecord(
            name=op.name,
            category=OpCategory.OTHER,
            time_s=time_s,
            energy_j=0.4 * chip_power_w * time_s,
            compute_time_s=time_s,
        )

"""Unified device protocol and registry for every simulated device.

The evaluation compares one accelerator against five baseline device
families, and historically every experiment module hand-instantiated the
models it needed and called their (slightly different) ``render_frame``
signatures.  This module defines the one interface they all share:

* :class:`Device` -- abstract base with a uniform
  ``render_frame(workload, *, precision=None, pruning_ratio=0.0)`` plus
  capability flags (``supports_precision`` / ``supports_pruning`` /
  ``supports_batching``) that tell callers -- most importantly the
  :class:`repro.sim.sweep.SweepEngine` -- which knobs actually change the
  device's behaviour;
* adapter subclasses wrapping :class:`repro.core.accelerator.FlexNeRFer`,
  :class:`repro.baselines.neurex.NeuRex`, the four GPU specs of
  :mod:`repro.baselines.gpu`, and frame-level analytical models built on the
  NVDLA / TPU utilisation models of Fig. 4;
* :data:`DEVICE_REGISTRY` -- name -> factory mapping, so new devices are one
  registry entry away from every sweep and experiment.

Unsupported knobs are handled per device, as flagged: the GPUs *raise*
:class:`UnsupportedKnobError` when asked for a precision mode or pruning
(nothing in their roofline model could honour it), while NeuRex silently
no-ops (it always computes densely at INT16 -- exactly the flat bars of
Fig. 19).  Baseline imports happen lazily inside the adapters so that
``repro.core`` and ``repro.baselines`` stay free of import cycles.
"""

from __future__ import annotations

import abc
import dataclasses
import enum
import hashlib
import json
from typing import Any, TYPE_CHECKING, Callable, ClassVar

from repro.sparse.formats import Precision

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.accelerator import FrameReport
    from repro.hw.cost import AreaReport, PowerReport
    from repro.nerf.workload import Workload


class UnsupportedKnobError(ValueError):
    """A device was asked for a knob (precision / pruning) it cannot honour."""


def _canonical(value: Any) -> Any:
    """JSON-safe canonical form of fingerprint state (dataclasses, enums)."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__class__": type(value).__qualname__,
            **{
                f.name: _canonical(getattr(value, f.name))
                for f in dataclasses.fields(value)
            },
        }
    if isinstance(value, enum.Enum):
        return value.name
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    return value


def canonical_digest(value: Any) -> str:
    """SHA-1 hex digest of ``value``'s canonical JSON representation.

    Raises TypeError for values :func:`_canonical` cannot make
    deterministic (sets, arbitrary objects): a silent ``repr`` fallback
    would embed memory addresses or hash-randomized orderings and make
    fingerprints differ on every interpreter start, which the persistent
    result store could never recover from.
    """
    payload = json.dumps(_canonical(value), sort_keys=True)
    return hashlib.sha1(payload.encode()).hexdigest()


#: Precision modes a precision-scalable device is swept over by default.
PRECISION_MODES = (Precision.INT16, Precision.INT8, Precision.INT4)


class Device(abc.ABC):
    """Uniform frame-level interface over every simulated device.

    Capability flags describe which sweep knobs change the device's
    behaviour; the sweep engine uses them (via :meth:`effective_precision` /
    :meth:`effective_pruning`) to collapse redundant sweep points onto one
    cached simulation.
    """

    #: Display name (matches the paper's figures, e.g. ``"RTX 2080 Ti"``).
    name: str = "device"
    #: Whether ``precision`` changes the device's latency / energy.
    supports_precision: ClassVar[bool] = False
    #: Whether structured pruning changes the device's latency / energy.
    supports_pruning: ClassVar[bool] = False
    #: Whether the device benefits from sweeping the ray batch size.
    supports_batching: ClassVar[bool] = True
    #: The precision the device natively computes at (None -> FP32).
    native_precision: ClassVar[Precision | None] = None

    @abc.abstractmethod
    def render_frame(
        self,
        workload: "Workload",
        *,
        precision: Precision | None = None,
        pruning_ratio: float = 0.0,
    ) -> "FrameReport":
        """Estimate latency / energy of rendering one frame of ``workload``."""

    # -- capability-aware knob normalisation ----------------------------------

    def effective_precision(self, precision: Precision | None) -> Precision | None:
        """The precision the device will actually compute at.

        Devices without precision support always land on their native
        precision, which lets callers cache one simulation for every
        requested mode.
        """
        if self.supports_precision:
            return precision
        return self.native_precision

    def effective_pruning(self, pruning_ratio: float) -> float:
        """The pruning ratio that actually reaches the device's datapath."""
        return pruning_ratio if self.supports_pruning else 0.0

    # -- content-addressable identity ------------------------------------------

    def _fingerprint_state(self) -> dict[str, Any]:
        """Model parameters that change this device's simulated behaviour.

        Adapters override this with everything their frame estimates depend
        on (configs, specs, array geometry); the base contribution covers
        the protocol-level knobs.  Values must be JSON-canonicalizable
        (scalars, enums, dataclasses, nested containers).
        """
        return {}

    def fingerprint(self) -> str:
        """Stable content hash of the device's modelled behaviour.

        Two device instances with the same fingerprint are promised to
        produce bit-identical :class:`FrameReport` objects for identical
        workloads, which is what lets the persistent result store
        (:mod:`repro.perf.store`) key simulations on it.  Any constructor
        parameter that alters latency / energy must feed
        :meth:`_fingerprint_state` so edits invalidate stored entries.
        """
        return canonical_digest(
            {
                "class": type(self).__qualname__,
                "name": self.name,
                "supports_precision": self.supports_precision,
                "supports_pruning": self.supports_pruning,
                "supports_batching": self.supports_batching,
                "native_precision": self.native_precision,
                "batch_marginal_latency": self.batch_marginal_latency,
                "batch_marginal_energy": self.batch_marginal_energy,
                "state": self._fingerprint_state(),
            }
        )

    # -- serving hooks ---------------------------------------------------------

    #: Marginal latency of each extra same-scenario frame co-scheduled in one
    #: batch, as a fraction of the single-frame latency.  The default 1.0
    #: means pure serialization; devices that amortize weight fetch /
    #: encoding-table residency across a batch override this below.  (This
    #: is a serving-layer knob, independent of ``supports_batching``, which
    #: is about the *ray* batch-size sweep axis.)
    batch_marginal_latency: ClassVar[float] = 1.0
    #: Marginal energy of each extra frame in a batch (same convention).
    batch_marginal_energy: ClassVar[float] = 1.0

    def service_time_s(self, frame_latency_s: float, batch: int = 1) -> float:
        """Busy time to serve ``batch`` identical requests in one dispatch.

        The first frame pays full price; each additional co-scheduled frame
        costs ``batch_marginal_latency`` of the single-frame latency, so a
        device that keeps the default of 1.0 simply serializes.
        """
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        return frame_latency_s * (1.0 + self.batch_marginal_latency * (batch - 1))

    def service_energy_j(self, frame_energy_j: float, batch: int = 1) -> float:
        """Energy to serve ``batch`` identical requests in one dispatch."""
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        return frame_energy_j * (1.0 + self.batch_marginal_energy * (batch - 1))

    # -- hardware cost --------------------------------------------------------

    def area_mm2(self) -> float:
        """Chip / board area in mm^2 (spec sheet or modelled)."""
        raise NotImplementedError(f"{self.name} has no area model")

    def power_w(self, precision: Precision | None = None) -> float:
        """Power draw in watts, optionally at a specific precision mode."""
        raise NotImplementedError(f"{self.name} has no power model")

    def power_profile(self) -> dict[str, float]:
        """Labelled power figures for cost tables (Fig. 16)."""
        return {"typical": self.power_w()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


# -- FlexNeRFer ---------------------------------------------------------------


class FlexNeRFerDevice(Device):
    """The paper's accelerator: precision-scalable and sparsity-aware."""

    supports_precision = True
    supports_pruning = True
    supports_batching = True
    native_precision = Precision.INT16
    # Weights, format metadata and the hash-encoding tables stay resident
    # across co-scheduled frames, so extra frames of a batch skip most DRAM
    # setup traffic.
    batch_marginal_latency = 0.6
    batch_marginal_energy = 0.75

    def __init__(self, config=None) -> None:
        """Wrap a fresh :class:`~repro.core.accelerator.FlexNeRFer` model."""
        from repro.core.accelerator import FlexNeRFer

        self.impl = FlexNeRFer(config)
        self.name = self.impl.name

    def effective_precision(self, precision: Precision | None) -> Precision | None:
        """Default the precision knob to the config's precision mode."""
        return precision or self.impl.config.default_precision

    def _fingerprint_state(self) -> dict:
        """The full accelerator config (array, buffers, DRAM, overheads)."""
        return {"config": self.impl.config}

    def render_frame(self, workload, *, precision=None, pruning_ratio=0.0):
        """Simulate one frame on the accelerator at the requested knobs."""
        return self.impl.render_frame(
            workload, precision=precision, pruning_ratio=pruning_ratio
        )

    def area_mm2(self) -> float:
        """Total modelled chip area in mm^2."""
        return self.impl.area().total_mm2

    def power_w(self, precision: Precision | None = None) -> float:
        """Total modelled power at ``precision`` (default mode when None)."""
        return self.impl.power(precision).total_w

    def power_profile(self) -> dict[str, float]:
        """Power at each supported precision mode (Fig. 16's rows)."""
        return {p.name: self.power_w(p) for p in PRECISION_MODES}

    def area_report(self) -> "AreaReport":
        """Full per-block area breakdown."""
        return self.impl.area()

    def power_report(self, precision: Precision | None = None) -> "PowerReport":
        """Full per-block power breakdown at ``precision``."""
        return self.impl.power(precision)


# -- NeuRex -------------------------------------------------------------------


class NeuRexDevice(Device):
    """NeuRex (ISCA 2023): dense INT16 only, so both knobs no-op.

    The flags are False but the knobs are *accepted and ignored* rather than
    raising: sweeping pruning over NeuRex and seeing flat gains is exactly
    the comparison Fig. 19 makes.
    """

    supports_precision = False
    supports_pruning = False
    supports_batching = True
    native_precision = Precision.INT16
    # Dense INT16 pipeline: batching only amortizes weight refetch, not the
    # (dominant) dense compute, so the marginal frame stays expensive.
    batch_marginal_latency = 0.8
    batch_marginal_energy = 0.9

    def __init__(self, config=None) -> None:
        """Wrap a fresh :class:`~repro.baselines.neurex.NeuRex` model."""
        from repro.baselines.neurex import NeuRex

        self.impl = NeuRex(config)
        self.name = self.impl.name

    def _fingerprint_state(self) -> dict:
        """The NeuRex config (array geometry, encoding engine, DRAM)."""
        return {"config": self.impl.config}

    def render_frame(self, workload, *, precision=None, pruning_ratio=0.0):
        """Simulate one frame; unsupported knobs are accepted and ignored."""
        return self.impl.render_frame(
            workload, precision=precision, pruning_ratio=pruning_ratio
        )

    def area_mm2(self) -> float:
        """Total modelled chip area in mm^2."""
        return self.impl.area().total_mm2

    def power_w(self, precision: Precision | None = None) -> float:
        """Total modelled power (NeuRex has a single INT16 operating point)."""
        return self.impl.power().total_w

    def power_profile(self) -> dict[str, float]:
        """The single INT16 power figure, labelled for cost tables."""
        return {Precision.INT16.name: self.power_w()}

    def area_report(self) -> "AreaReport":
        """Full per-block area breakdown."""
        return self.impl.area()

    def power_report(self, precision: Precision | None = None) -> "PowerReport":
        """Full per-block power breakdown (precision is ignored)."""
        return self.impl.power()


# -- GPUs ---------------------------------------------------------------------


class GPUDevice(Device):
    """Roofline GPU adapter.  FP32 only; unsupported knobs raise."""

    supports_precision = False
    supports_pruning = False
    supports_batching = True
    native_precision = None
    # CUDA kernels overlap poorly across frames; batching mostly saves
    # per-launch overheads, a small fraction of a NeRF frame.
    batch_marginal_latency = 0.9
    batch_marginal_energy = 0.95

    def __init__(self, spec=None) -> None:
        """Wrap the roofline model of ``spec`` (RTX 2080 Ti by default)."""
        from repro.baselines.gpu import GPUModel, RTX_2080_TI

        self.impl = GPUModel(spec or RTX_2080_TI)
        self.spec = self.impl.spec
        self.name = self.spec.name

    def _fingerprint_state(self) -> dict:
        """The GPU spec sheet (peak FLOPS, power, memory interface)."""
        return {"spec": self.spec}

    def render_frame(self, workload, *, precision=None, pruning_ratio=0.0):
        """Simulate one FP32 frame; precision / pruning requests raise."""
        if precision is not None:
            raise UnsupportedKnobError(
                f"{self.name} computes at FP32 only (requested {precision.name})"
            )
        if pruning_ratio != 0.0:
            raise UnsupportedKnobError(
                f"{self.name} gains nothing from structured pruning "
                f"(requested ratio {pruning_ratio})"
            )
        return self.impl.render_frame(workload)

    def area_mm2(self) -> float:
        """Die area from the GPU's spec sheet."""
        return self.spec.area_mm2

    def power_w(self, precision: Precision | None = None) -> float:
        """Typical board power from the GPU's spec sheet."""
        return self.spec.typical_power_w


# -- NVDLA / TPU --------------------------------------------------------------


class _UtilizationFrameDevice(Device):
    """Frame-level analytical model on top of a MAC-utilisation model.

    The paper analyses NVDLA and the TPU only through their MAC utilisation
    (Fig. 4); to make them first-class sweep citizens we extend that analysis
    to a full frame: every GEMM runs at ``peak * structural utilisation``
    (zeros cannot be skipped, so sparsity never helps), and encoding / misc
    work falls back to a narrow vector datapath, since neither device has a
    NeRF encoding engine.
    """

    supports_precision = False
    supports_pruning = False
    supports_batching = False
    native_precision = Precision.INT8

    #: Fraction of peak throughput available to non-GEMM (fallback) work.
    FALLBACK_THROUGHPUT_FRACTION = 0.02
    #: Fraction of peak power drawn while stalled on memory.
    IDLE_POWER_FRACTION = 0.3

    def __init__(self, num_macs: int, frequency_hz: float, typical_power_w: float):
        """Record the array's peak compute and power operating point."""
        from repro.hw.dram import LPDDR4_XAVIER

        self.num_macs = num_macs
        self.frequency_hz = frequency_hz
        self.typical_power_w = typical_power_w
        self.dram = LPDDR4_XAVIER

    def _fingerprint_state(self) -> dict:
        """Array operating point plus the utilisation model's geometry."""
        return {
            "impl": self.impl,
            "num_macs": self.num_macs,
            "frequency_hz": self.frequency_hz,
            "typical_power_w": self.typical_power_w,
            "dram": self.dram,
            "fallback_fraction": self.FALLBACK_THROUGHPUT_FRACTION,
            "idle_power_fraction": self.IDLE_POWER_FRACTION,
        }

    def gemm_utilization(self, op) -> float:
        """Structural MAC utilisation for one GEMM (zeros still scheduled)."""
        raise NotImplementedError

    @property
    def peak_macs_per_s(self) -> float:
        """Peak MAC throughput of the dense array."""
        return self.num_macs * self.frequency_hz

    def render_frame(self, workload, *, precision=None, pruning_ratio=0.0):
        """Estimate one frame from per-op utilisation and DRAM transfer time."""
        from repro.core.accelerator import FrameReport
        from repro.nerf.workload import EncodingOp, GEMMOp, MiscOp, OpCategory
        from repro.sim.trace import ExecutionTrace, OpRecord

        if precision is not None and precision is not self.native_precision:
            raise UnsupportedKnobError(
                f"{self.name} computes at {self.native_precision.name} only"
            )
        if pruning_ratio != 0.0:
            raise UnsupportedKnobError(
                f"{self.name} schedules zeros like any other operand and "
                f"cannot exploit pruning (requested ratio {pruning_ratio})"
            )
        fallback = self.peak_macs_per_s * 2.0 * self.FALLBACK_THROUGHPUT_FRACTION
        trace = ExecutionTrace(device=self.name, model_name=workload.model_name)
        for op in workload.ops:
            if isinstance(op, GEMMOp):
                utilization = self.gemm_utilization(op)
                compute_time = op.macs / (self.peak_macs_per_s * utilization)
                dram_bytes = (
                    (op.m * op.k + op.k * op.n + op.m * op.n) * 1.0 * op.count
                )
                category = OpCategory.GEMM
            elif isinstance(op, EncodingOp):
                utilization = self.FALLBACK_THROUGHPUT_FRACTION
                compute_time = op.flops / fallback
                dram_bytes = op.memory_bytes
                category = OpCategory.ENCODING
            elif isinstance(op, MiscOp):
                utilization = self.FALLBACK_THROUGHPUT_FRACTION
                compute_time = op.flops * op.count / fallback
                dram_bytes = op.memory_bytes * op.count
                category = OpCategory.OTHER
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown op type {type(op)!r}")
            memory_time = self.dram.transfer_time_s(dram_bytes)
            time_s = max(compute_time, memory_time)
            idle = self.IDLE_POWER_FRACTION * self.typical_power_w
            power = idle + (self.typical_power_w - idle) * min(utilization, 1.0)
            trace.add(
                OpRecord(
                    name=op.name,
                    category=category,
                    time_s=time_s,
                    energy_j=power * time_s + self.dram.transfer_energy_j(dram_bytes),
                    compute_time_s=compute_time,
                    dram_time_s=max(0.0, time_s - compute_time),
                    dram_bytes=dram_bytes,
                    utilization=utilization,
                )
            )
        return FrameReport(
            device=self.name,
            model_name=workload.model_name,
            latency_s=trace.total_time_s,
            energy_j=trace.total_energy_j,
            trace=trace,
            precision=self.native_precision,
        )

    def power_w(self, precision: Precision | None = None) -> float:
        """Typical power of the operating point (precision is fixed)."""
        return self.typical_power_w


class NVDLADevice(_UtilizationFrameDevice):
    """NVDLA-style channel-parallel engine at full configuration (2048 MACs)."""

    name = "NVDLA"

    def __init__(
        self,
        atomic_input_channels: int = 64,
        atomic_output_kernels: int = 32,
        frequency_hz: float = 1.0e9,
        typical_power_w: float = 2.5,
    ) -> None:
        """Build the utilisation model for the configured NVDLA geometry."""
        from repro.baselines.nvdla import NVDLAModel

        self.impl = NVDLAModel(
            atomic_input_channels=atomic_input_channels,
            atomic_output_kernels=atomic_output_kernels,
        )
        super().__init__(
            num_macs=self.impl.num_macs,
            frequency_hz=frequency_hz,
            typical_power_w=typical_power_w,
        )

    def gemm_utilization(self, op) -> float:
        """Channel-parallel structural utilisation of one GEMM."""
        return self.impl.gemm_utilization(op.m, op.n, op.k)


class TPUDevice(_UtilizationFrameDevice):
    """Edge-TPU-style weight-stationary systolic array (64x64 grid)."""

    name = "TPU"

    def __init__(
        self,
        rows: int = 64,
        cols: int = 64,
        frequency_hz: float = 700e6,
        typical_power_w: float = 2.0,
    ) -> None:
        """Build the utilisation model for the configured systolic grid."""
        from repro.baselines.tpu import TPUModel

        self.impl = TPUModel(rows=rows, cols=cols)
        super().__init__(
            num_macs=self.impl.num_macs,
            frequency_hz=frequency_hz,
            typical_power_w=typical_power_w,
        )

    def gemm_utilization(self, op) -> float:
        """Systolic-array structural utilisation of one GEMM."""
        # density=1.0: the dense schedule determines the cycle count.
        return self.impl.gemm_utilization(op.m, op.n, op.k, density=1.0)


# -- registry -----------------------------------------------------------------

DeviceFactory = Callable[[], Device]


def _gpu_factory(spec_name: str) -> DeviceFactory:
    def factory() -> Device:
        from repro.baselines import gpu

        return GPUDevice(getattr(gpu, spec_name))

    return factory


#: Registry key -> factory for every device of the evaluation.
DEVICE_REGISTRY: dict[str, DeviceFactory] = {
    "flexnerfer": FlexNeRFerDevice,
    "neurex": NeuRexDevice,
    "rtx-2080-ti": _gpu_factory("RTX_2080_TI"),
    "rtx-4090": _gpu_factory("RTX_4090"),
    "jetson-nano": _gpu_factory("JETSON_NANO"),
    "xavier-nx": _gpu_factory("XAVIER_NX"),
    "nvdla": NVDLADevice,
    "tpu": TPUDevice,
}


def register_device(name: str, factory: DeviceFactory, *, overwrite: bool = False) -> None:
    """Register a new device factory under ``name`` (lower-case slug)."""
    key = name.lower()
    if key in DEVICE_REGISTRY and not overwrite:
        raise ValueError(f"device '{key}' is already registered")
    DEVICE_REGISTRY[key] = factory


def get_device(name: str) -> Device:
    """Instantiate a fresh device by registry name."""
    try:
        factory = DEVICE_REGISTRY[name.lower()]
    except KeyError as exc:
        raise KeyError(
            f"unknown device '{name}'; available: {sorted(DEVICE_REGISTRY)}"
        ) from exc
    return factory()


def available_devices() -> tuple[str, ...]:
    """Registry names of every known device."""
    return tuple(DEVICE_REGISTRY)

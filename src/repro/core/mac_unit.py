"""Bit-scalable MAC unit (Bit Fusion style, paper Fig. 6(a) and Fig. 12).

One MAC unit contains sixteen 4-bit x 4-bit signed sub-multipliers whose
partial products are fused by a shift-add reduction tree:

* **INT16 mode** -- all sixteen sub-multipliers cooperate on a single
  16-bit x 16-bit product (4x4 nibble decomposition);
* **INT8 mode**  -- four groups of four sub-multipliers each compute an
  8-bit x 8-bit product;
* **INT4 mode**  -- every sub-multiplier computes an independent 4-bit
  product.

The functional model here is bit-exact: tests check the fused results against
plain integer multiplication.  The cost model composes the unit from the
28 nm component library and reproduces the optimised / unoptimised comparison
of paper Fig. 12(c).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hw.components import DEFAULT_LIBRARY, ComponentLibrary, ComponentSpec
from repro.sparse.formats import Precision

#: Sub-multipliers per MAC unit (4x4 grid).
SUB_MULTIPLIERS = 16

#: Shifter counts with and without the shared-shifter optimisation
#: (paper Section 4.2: 24 -> 16, a 33.3 % reduction).
SHIFTERS_UNOPTIMIZED = 24
SHIFTERS_OPTIMIZED = 16


def _split_nibbles(value: int, num_nibbles: int) -> list[int]:
    """Split a signed integer into ``num_nibbles`` 4-bit digits, LSB first.

    All digits are unsigned except the most significant one, which carries the
    sign -- the standard radix-16 signed decomposition used by fused
    multiplier arrays.
    """
    unsigned = int(value) & ((1 << (4 * num_nibbles)) - 1)
    digits = [(unsigned >> (4 * i)) & 0xF for i in range(num_nibbles)]
    # Re-apply the sign to the most significant digit.
    if digits[-1] >= 8:
        digits[-1] -= 16
    return digits


@dataclass
class MACUnitResult:
    """Result of one MAC-unit cycle."""

    products: list[int]
    sub_multiplier_ops: int
    shift_add_ops: int


class BitScalableMACUnit:
    """Functional + cost model of one bit-scalable MAC unit."""

    def __init__(
        self,
        optimized_shifters: bool = True,
        library: ComponentLibrary = DEFAULT_LIBRARY,
    ) -> None:
        self.optimized_shifters = optimized_shifters
        self.library = library
        self.accumulator = 0

    # -- functional model -----------------------------------------------------

    @staticmethod
    def lanes(precision: Precision) -> int:
        """Independent multiply lanes provided at ``precision``."""
        nibbles = precision.bits // 4
        return SUB_MULTIPLIERS // (nibbles * nibbles)

    def multiply(self, a: int, b: int, precision: Precision) -> int:
        """Single fused multiplication of two signed ``precision`` operands."""
        self._check_range(a, precision)
        self._check_range(b, precision)
        nibbles = precision.bits // 4
        a_digits = _split_nibbles(a, nibbles)
        b_digits = _split_nibbles(b, nibbles)
        # Sum of shifted partial products of the sub-multipliers.
        result = 0
        for i, da in enumerate(a_digits):
            for j, db in enumerate(b_digits):
                result += (da * db) << (4 * (i + j))
        return result

    def multiply_vector(
        self, a: np.ndarray, b: np.ndarray, precision: Precision
    ) -> MACUnitResult:
        """Process one cycle's worth of operands.

        The number of (a, b) pairs must equal the lane count of the precision
        mode: 1 pair at INT16, 4 at INT8, 16 at INT4.
        """
        a = np.asarray(a).ravel()
        b = np.asarray(b).ravel()
        lanes = self.lanes(precision)
        if a.size != lanes or b.size != lanes:
            raise ValueError(
                f"{precision.name} mode processes {lanes} operand pairs per "
                f"cycle, got {a.size} and {b.size}"
            )
        products = [
            self.multiply(int(a[i]), int(b[i]), precision) for i in range(lanes)
        ]
        nibbles = precision.bits // 4
        return MACUnitResult(
            products=products,
            sub_multiplier_ops=lanes * nibbles * nibbles,
            shift_add_ops=SUB_MULTIPLIERS - lanes,
        )

    def multiply_accumulate(
        self, a: np.ndarray, b: np.ndarray, precision: Precision
    ) -> int:
        """Multiply a cycle's operands and accumulate the lane sum."""
        result = self.multiply_vector(a, b, precision)
        self.accumulator += sum(result.products)
        return self.accumulator

    def reset(self) -> None:
        self.accumulator = 0

    @staticmethod
    def _check_range(value: int, precision: Precision) -> None:
        if not precision.min_value <= value <= precision.max_value:
            raise ValueError(
                f"operand {value} outside {precision.name} range "
                f"[{precision.min_value}, {precision.max_value}]"
            )

    # -- cost model -------------------------------------------------------------

    @property
    def num_shifters(self) -> int:
        return SHIFTERS_OPTIMIZED if self.optimized_shifters else SHIFTERS_UNOPTIMIZED

    def cost(self) -> ComponentSpec:
        """Area (um^2) and power (mW) of the MAC unit (paper Fig. 12(c)).

        The unoptimised unit replicates shifters for identical shift amounts
        and lacks the pipelined CLB datapath, which costs extra registers and
        switching power.
        """
        counts = {
            "mult4x4": SUB_MULTIPLIERS,
            "shifter4": self.num_shifters,
            "adder8": 8,
            "adder16": 4,
            "adder32": 2,
            "flex_adder_node": 4,
            "accum_reg32": 1,
            "clb_link": 16,
            "pipe_reg16": 4 if self.optimized_shifters else 0,
        }
        spec = self.library.compose("mac-unit", counts)
        if not self.optimized_shifters:
            # Duplicated shift/add activity and longer unbalanced wires raise
            # switching power well beyond the pure component delta (the layout
            # factors below are calibrated against paper Fig. 12(c)).
            spec = ComponentSpec(
                name="mac-unit-unoptimized",
                area_um2=spec.area_um2 * 1.314,
                power_mw=spec.power_mw * 1.70,
            )
        return spec

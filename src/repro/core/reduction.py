"""Reduction trees (paper Section 4.2, Fig. 12).

Two levels of reduction exist in FlexNeRFer:

* inside each bit-scalable MAC unit, a shifter-optimised shift-add tree fuses
  the sixteen 4-bit partial products into 1 / 4 / 16 results depending on the
  precision mode (:class:`MACUnitReductionTree`);
* across MAC units, a flexible augmented reduction tree (ART) whose nodes are
  bypassable adders with index comparators either adds two incoming partial
  sums (when they belong to the same output element) or forwards them
  unchanged (:class:`FlexibleReductionTree`).  This is what allows several
  output rows of a sparse GEMM to share one physical column of the array.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.mac_unit import (
    SHIFTERS_OPTIMIZED,
    SHIFTERS_UNOPTIMIZED,
    BitScalableMACUnit,
)
from repro.hw.components import DEFAULT_LIBRARY, ComponentLibrary
from repro.sparse.formats import Precision


@dataclass
class ReductionResult:
    """Outcome of one flexible-reduction pass."""

    outputs: dict[object, float]
    add_operations: int
    bypass_operations: int

    @property
    def node_operations(self) -> int:
        return self.add_operations + self.bypass_operations


class MACUnitReductionTree:
    """Shifter-optimised shift-add tree inside one MAC unit."""

    def __init__(self, optimized: bool = True) -> None:
        self.optimized = optimized

    @property
    def num_shifters(self) -> int:
        return SHIFTERS_OPTIMIZED if self.optimized else SHIFTERS_UNOPTIMIZED

    def shifters_for_array(self, rows: int, cols: int) -> int:
        """Total shifters in a ``rows x cols`` MAC array (paper: 6,144 for 16x16 unoptimised)."""
        return rows * cols * self.num_shifters

    @staticmethod
    def reduce(partial_products: list[int], precision: Precision) -> list[int]:
        """Fuse 16 shifted partial products into per-lane results.

        ``partial_products[i*4 + j]`` is the product of nibble ``i`` of operand
        A and nibble ``j`` of operand B for the lane those nibbles belong to.
        The grouping per precision mode follows paper Fig. 6(a).
        """
        if len(partial_products) != 16:
            raise ValueError("a MAC unit produces 16 partial products per cycle")
        if precision is Precision.INT16:
            total = 0
            for i in range(4):
                for j in range(4):
                    total += partial_products[i * 4 + j] << (4 * (i + j))
            return [total]
        if precision is Precision.INT8:
            results = []
            for lane in range(4):
                base = lane * 4
                lane_sum = 0
                for i in range(2):
                    for j in range(2):
                        lane_sum += partial_products[base + i * 2 + j] << (4 * (i + j))
                results.append(lane_sum)
            return results
        return list(partial_products)


class FlexibleReductionTree:
    """Array-level augmented reduction tree with bypassable adder nodes."""

    def __init__(
        self, num_leaves: int, library: ComponentLibrary = DEFAULT_LIBRARY
    ) -> None:
        if num_leaves < 2:
            raise ValueError("reduction tree needs at least two leaves")
        self.num_leaves = num_leaves
        self.library = library

    @property
    def num_nodes(self) -> int:
        return self.num_leaves - 1

    def reduce(
        self, values: list[float], output_ids: list[object]
    ) -> ReductionResult:
        """Reduce leaf values, summing only values that share an output id.

        Models the comparator + bypassable adder behaviour: at every tree node
        the two incoming operands are added if their output indices match and
        forwarded side by side otherwise.  The result maps each output id to
        its accumulated sum.
        """
        if len(values) != len(output_ids):
            raise ValueError("values and output_ids must have the same length")
        if len(values) > self.num_leaves:
            raise ValueError(
                f"got {len(values)} leaves for a {self.num_leaves}-leaf tree"
            )
        adds = 0
        bypasses = 0
        # Each tree level merges adjacent groups; we model the value flow with
        # per-group dictionaries keyed by output id.
        groups: list[dict[object, float]] = [
            {oid: val} for val, oid in zip(values, output_ids)
        ]
        while len(groups) > 1:
            merged: list[dict[object, float]] = []
            for i in range(0, len(groups) - 1, 2):
                left, right = groups[i], groups[i + 1]
                combined = dict(left)
                for oid, val in right.items():
                    if oid in combined:
                        combined[oid] += val
                        adds += 1
                    else:
                        combined[oid] = val
                        bypasses += 1
                merged.append(combined)
            if len(groups) % 2 == 1:
                merged.append(groups[-1])
            groups = merged
        return ReductionResult(
            outputs=groups[0] if groups else {},
            add_operations=adds,
            bypass_operations=bypasses,
        )

    def cost(self):
        """Area/power of the array-level ART (bypassable adder nodes)."""
        return self.library.compose(
            "flexible-reduction-tree", {"flex_adder_node": self.num_nodes}
        )

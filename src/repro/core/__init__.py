"""FlexNeRFer core: the paper's primary contribution.

* :mod:`repro.core.mac_unit` / :mod:`repro.core.mac_array` -- the
  precision-scalable (bit-fusion style) MAC unit and the 64x64 MAC array
  built from it, with both functional (bit-exact) behaviour and 28 nm
  area/power cost models.
* :mod:`repro.core.reduction` -- the shifter-optimised intra-unit reduction
  tree and the flexible augmented reduction tree at the array level.
* :mod:`repro.core.distribution` -- the hierarchical distribution network
  (HMF-NoC + 1D mesh + column-level bypass links) and the dense mapping of
  sparse irregular GEMMs onto the array.
* :mod:`repro.core.compression` -- online sparsity-aware data compression
  (sparsity-ratio calculator + flexible format encoder/decoder).
* :mod:`repro.core.encoding_unit` -- the NeRF encoding unit (positional and
  hash encoding engines).
* :mod:`repro.core.controller` -- RISC-V controller and DMA engine models.
* :mod:`repro.core.accelerator` -- the full accelerator: hardware cost
  reports and frame-level performance/energy estimation.
"""

from repro.core.config import FlexNeRFerConfig
from repro.core.mac_unit import BitScalableMACUnit
from repro.core.mac_array import MACArray
from repro.core.reduction import FlexibleReductionTree, MACUnitReductionTree
from repro.core.distribution import DistributionNetwork, MappingPlan
from repro.core.compression import SparsityAwareCompressor, SparsityRatioCalculator
from repro.core.encoding_unit import HashEncodingEngine, NeRFEncodingUnit, PositionalEncodingEngine
from repro.core.controller import DMAEngine, RISCVController
from repro.core.accelerator import FlexNeRFer, FrameReport
from repro.core.device import (
    DEVICE_REGISTRY,
    Device,
    FlexNeRFerDevice,
    GPUDevice,
    NeuRexDevice,
    NVDLADevice,
    TPUDevice,
    UnsupportedKnobError,
    available_devices,
    get_device,
    register_device,
)

__all__ = [
    "Device",
    "DEVICE_REGISTRY",
    "FlexNeRFerDevice",
    "NeuRexDevice",
    "GPUDevice",
    "NVDLADevice",
    "TPUDevice",
    "UnsupportedKnobError",
    "available_devices",
    "get_device",
    "register_device",
    "FlexNeRFerConfig",
    "BitScalableMACUnit",
    "MACArray",
    "MACUnitReductionTree",
    "FlexibleReductionTree",
    "DistributionNetwork",
    "MappingPlan",
    "SparsityAwareCompressor",
    "SparsityRatioCalculator",
    "PositionalEncodingEngine",
    "HashEncodingEngine",
    "NeRFEncodingUnit",
    "RISCVController",
    "DMAEngine",
    "FlexNeRFer",
    "FrameReport",
]

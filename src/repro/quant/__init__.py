"""Quantization substrate: INT4/8/16 symmetric quantization, outlier-aware
mixed-precision quantization, and image-quality metrics (PSNR / MSE).

Used by the PSNR-vs-energy sensitivity study (paper Fig. 20(a)) and by the
workload descriptors that execute NeRF layers at reduced precision.
"""

from repro.quant.quantize import (
    QuantizedTensor,
    dequantize,
    quantization_error,
    quantize,
)
from repro.quant.outlier import OutlierQuantizedTensor, outlier_quantize, outlier_dequantize
from repro.quant.metrics import mse, psnr

__all__ = [
    "QuantizedTensor",
    "quantize",
    "dequantize",
    "quantization_error",
    "OutlierQuantizedTensor",
    "outlier_quantize",
    "outlier_dequantize",
    "mse",
    "psnr",
]

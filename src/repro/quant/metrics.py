"""Image-quality metrics used by the quantization sensitivity study."""

from __future__ import annotations

import numpy as np


def mse(reference: np.ndarray, test: np.ndarray) -> float:
    """Mean squared error between two images / tensors of the same shape."""
    reference = np.asarray(reference, dtype=np.float64)
    test = np.asarray(test, dtype=np.float64)
    if reference.shape != test.shape:
        raise ValueError(
            f"shape mismatch: reference {reference.shape} vs test {test.shape}"
        )
    if reference.size == 0:
        return 0.0
    return float(np.mean((reference - test) ** 2))


def psnr(reference: np.ndarray, test: np.ndarray, data_range: float = 1.0) -> float:
    """Peak signal-to-noise ratio in dB (infinite for identical inputs)."""
    if data_range <= 0:
        raise ValueError(f"data_range must be positive, got {data_range}")
    error = mse(reference, test)
    if error == 0.0:
        return float("inf")
    return float(10.0 * np.log10(data_range**2 / error))

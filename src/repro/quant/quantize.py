"""Symmetric integer quantization for the precisions supported by the MAC array."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sparse.formats import Precision


@dataclass
class QuantizedTensor:
    """An integer tensor together with the scale used to quantize it."""

    data: np.ndarray
    scale: float
    precision: Precision

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    def dequantize(self) -> np.ndarray:
        """Reconstruct the floating-point values."""
        return self.data.astype(np.float64) * self.scale


def quantize(
    tensor: np.ndarray,
    precision: Precision,
    scale: float | None = None,
) -> QuantizedTensor:
    """Symmetrically quantize ``tensor`` to ``precision``.

    The scale maps the maximum absolute value to the largest representable
    integer unless an explicit ``scale`` is given (used to share scales across
    tensors that are accumulated together).
    """
    tensor = np.asarray(tensor, dtype=np.float64)
    if scale is None:
        max_abs = float(np.max(np.abs(tensor))) if tensor.size else 0.0
        scale = max_abs / precision.max_value if max_abs > 0 else 1.0
        if scale == 0.0:
            # Subnormal inputs can underflow the division; fall back to a unit
            # scale, which quantizes such values to zero.
            scale = 1.0
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    quantized = np.clip(
        np.round(tensor / scale), precision.min_value, precision.max_value
    ).astype(np.int32)
    return QuantizedTensor(data=quantized, scale=scale, precision=precision)


def dequantize(quantized: QuantizedTensor) -> np.ndarray:
    """Convenience wrapper around :meth:`QuantizedTensor.dequantize`."""
    return quantized.dequantize()


def quantization_error(tensor: np.ndarray, precision: Precision) -> float:
    """Root-mean-square error introduced by quantizing ``tensor``."""
    tensor = np.asarray(tensor, dtype=np.float64)
    if tensor.size == 0:
        return 0.0
    reconstructed = quantize(tensor, precision).dequantize()
    return float(np.sqrt(np.mean((tensor - reconstructed) ** 2)))

"""Outlier-aware mixed-precision quantization.

Paper Fig. 20(a): plain INT4/INT8 quantization of Instant-NGP loses more than
3 dB of PSNR, but keeping a small set of outlier values in INT16 (similar to
outlier-aware accelerators [61, 86]) recovers most of the quality -- INT8
reaches near-FP32 PSNR and INT4 stays within ~1.4 dB.  The paper keeps the
3-sigma outliers for INT8 and the 1-sigma outliers for INT4 in INT16.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.quant.quantize import QuantizedTensor, quantize
from repro.sparse.formats import Precision

#: Sigma thresholds used in the paper for each low-precision mode.
DEFAULT_SIGMA_THRESHOLD = {
    Precision.INT8: 3.0,
    Precision.INT4: 1.0,
    Precision.INT16: 6.0,
}


@dataclass
class OutlierQuantizedTensor:
    """A tensor split into a low-precision body and INT16 outliers."""

    body: QuantizedTensor
    outlier_values: QuantizedTensor
    outlier_indices: np.ndarray
    shape: tuple[int, ...]

    @property
    def outlier_fraction(self) -> float:
        """Fraction of elements stored at INT16."""
        total = int(np.prod(self.shape))
        return self.outlier_indices.shape[0] / total if total else 0.0

    def dequantize(self) -> np.ndarray:
        """Reconstruct the floating-point tensor."""
        out = self.body.dequantize().reshape(-1)
        if self.outlier_indices.size:
            out[self.outlier_indices] = self.outlier_values.dequantize()
        return out.reshape(self.shape)


def outlier_quantize(
    tensor: np.ndarray,
    precision: Precision,
    sigma_threshold: float | None = None,
) -> OutlierQuantizedTensor:
    """Quantize ``tensor`` to ``precision`` keeping outliers at INT16.

    Elements whose magnitude exceeds ``sigma_threshold`` standard deviations
    are stored separately at INT16; the remaining body is quantized with a
    scale fitted to the non-outlier range, which is what recovers accuracy.
    """
    tensor = np.asarray(tensor, dtype=np.float64)
    if sigma_threshold is None:
        sigma_threshold = DEFAULT_SIGMA_THRESHOLD[precision]
    flat = tensor.reshape(-1)
    if flat.size == 0:
        body = quantize(flat, precision)
        outliers = quantize(flat, Precision.INT16)
        return OutlierQuantizedTensor(
            body=body,
            outlier_values=outliers,
            outlier_indices=np.empty(0, dtype=np.int64),
            shape=tensor.shape,
        )
    std = float(np.std(flat))
    mean = float(np.mean(flat))
    threshold = abs(mean) + sigma_threshold * std if std > 0 else np.inf
    outlier_mask = np.abs(flat) > threshold
    outlier_indices = np.nonzero(outlier_mask)[0]
    body_values = np.where(outlier_mask, 0.0, flat)
    body = quantize(body_values, precision)
    outliers = quantize(flat[outlier_indices], Precision.INT16)
    return OutlierQuantizedTensor(
        body=body,
        outlier_values=outliers,
        outlier_indices=outlier_indices,
        shape=tensor.shape,
    )


def outlier_dequantize(quantized: OutlierQuantizedTensor) -> np.ndarray:
    """Convenience wrapper around :meth:`OutlierQuantizedTensor.dequantize`."""
    return quantized.dequantize()

"""Tile-level performance simulation of GEMM/GEMV arrays.

This is the repo's stand-in for the modified STONNE cycle-level simulator the
paper uses: it models how a GEMM/GEMV operation is tiled onto a MAC array,
what utilisation the mapping achieves (dense baseline vs. FlexNeRFer's
sparsity-aware dense mapping), how many cycles the compute takes, and how much
on-chip / off-chip traffic it generates.  The same machinery is configured
differently for FlexNeRFer, NeuRex, SIGMA, Bit Fusion and the commercial
accelerators, so every latency/energy comparison in the evaluation goes
through one code path.
"""

from repro.sim.array_config import ArrayConfig
from repro.sim.tiling import TileGrid, tile_counts
from repro.sim.utilization import dense_mapping_utilization, sparse_mapping_utilization
from repro.sim.engine import GEMMCycleModel, GEMMExecution
from repro.sim.memory import MemoryTrafficModel, TrafficReport
from repro.sim.trace import ExecutionTrace, OpRecord
from repro.sim.sweep import (
    SweepCacheStats,
    SweepEngine,
    SweepResult,
    SweepSpec,
    aggregate,
    geomean,
    get_default_engine,
    index_rows,
    workload_fingerprint,
)

__all__ = [
    "SweepCacheStats",
    "SweepEngine",
    "SweepResult",
    "SweepSpec",
    "aggregate",
    "geomean",
    "get_default_engine",
    "index_rows",
    "workload_fingerprint",
    "ArrayConfig",
    "TileGrid",
    "tile_counts",
    "dense_mapping_utilization",
    "sparse_mapping_utilization",
    "GEMMCycleModel",
    "GEMMExecution",
    "MemoryTrafficModel",
    "TrafficReport",
    "ExecutionTrace",
    "OpRecord",
]

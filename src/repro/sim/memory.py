"""Off-chip / on-chip traffic model for GEMM execution.

For every GEMM the model computes the DRAM bytes moved for weights,
activations and outputs.  When the executing accelerator supports sparsity-
aware compression (FlexNeRFer), each operand is stored in the optimal format
for its sparsity ratio and precision, which is what cuts DRAM access time by
~72 % in paper Fig. 18(a).  Operands that do not fit in their on-chip buffer
are re-fetched once per reuse pass.
"""

from __future__ import annotations

import functools
import math
from dataclasses import dataclass

from repro.hw.dram import DRAMSpec, LPDDR3
from repro.hw.sram import SRAMMacro
from repro.nerf.workload import GEMMOp
from repro.sparse.footprint import FootprintModel
from repro.sparse.formats import Precision, SparsityFormat
from repro.sparse.selector import FormatSelector


@dataclass
class TrafficReport:
    """DRAM traffic of one GEMM, split by operand."""

    weight_bytes: float
    activation_bytes: float
    output_bytes: float
    weight_format: SparsityFormat
    activation_format: SparsityFormat

    @property
    def total_bytes(self) -> float:
        return self.weight_bytes + self.activation_bytes + self.output_bytes


@functools.lru_cache(maxsize=16384)
def stored_operand_bytes(
    rows: int,
    cols: int,
    sparsity: float,
    precision: Precision,
    compressed: bool,
) -> tuple[float, SparsityFormat]:
    """Stored size of one operand matrix and the sparsity format used.

    Pure function of its arguments (the format selector and footprint model
    are deterministic), memoised process-wide: every GEMM execution sizes
    two operands, and sweeps re-size the same MLP layer shapes across
    devices, precisions and pruning ratios.  ``repro bench`` quantifies the
    speedup; ``stored_operand_bytes.__wrapped__`` is the uncached original.
    """
    dense_bits = rows * cols * precision.bits
    if not compressed:
        return dense_bits / 8.0, SparsityFormat.NONE
    decision = FormatSelector().decide(sparsity, precision)
    model = FootprintModel(rows=rows, cols=cols, precision=precision)
    bits = model.bits(decision.fmt, sparsity)
    return bits / 8.0, decision.fmt


@dataclass
class MemoryTrafficModel:
    """Traffic model parameterised by buffers and compression support."""

    dram: DRAMSpec = LPDDR3
    weight_buffer: SRAMMacro | None = None
    activation_buffer: SRAMMacro | None = None
    compression_enabled: bool = True

    def __post_init__(self) -> None:
        if self.weight_buffer is None:
            self.weight_buffer = SRAMMacro("weight-buffer", capacity_bytes=512 << 10)
        if self.activation_buffer is None:
            self.activation_buffer = SRAMMacro("input-buffer", capacity_bytes=2 << 20)

    # -- operand sizes ---------------------------------------------------------

    def _operand_bytes(
        self,
        rows: int,
        cols: int,
        sparsity: float,
        precision: Precision,
    ) -> tuple[float, SparsityFormat]:
        """Stored size of an operand matrix and the format used (memoised)."""
        return stored_operand_bytes(
            rows, cols, sparsity, precision, self.compression_enabled
        )

    def _refetch_factor(self, operand_bytes: float, buffer: SRAMMacro, reuse_passes: int) -> int:
        """Number of times an operand streams from DRAM given its buffer."""
        if operand_bytes <= buffer.capacity_bytes:
            return 1
        return max(1, min(reuse_passes, math.ceil(operand_bytes / buffer.capacity_bytes)))

    # -- public API --------------------------------------------------------------

    def traffic(self, op: GEMMOp, tiles_m: int = 1, tiles_n: int = 1) -> TrafficReport:
        """DRAM traffic for one GEMM with the given tiling reuse structure.

        Weights always come from DRAM (re-streamed when they exceed the weight
        buffer).  Activations and outputs only touch DRAM when the workload
        descriptor marks them as off-chip; intermediate activations of a fused
        MLP pipeline stay in the input/output buffers.
        """
        weight_bytes, weight_fmt = self._operand_bytes(
            op.k, op.n, op.weight_sparsity, op.precision
        )
        weight_refetch = self._refetch_factor(weight_bytes, self.weight_buffer, tiles_m)

        act_bytes, act_fmt = 0.0, SparsityFormat.NONE
        if op.activations_from_dram:
            act_bytes, act_fmt = self._operand_bytes(
                op.m, op.k, op.activation_sparsity, op.precision
            )
            act_refetch = self._refetch_factor(
                act_bytes, self.activation_buffer, tiles_n
            )
            act_bytes *= act_refetch

        out_bytes = 0.0
        if op.outputs_to_dram:
            out_bytes = op.m * op.n * op.precision.bits / 8.0

        return TrafficReport(
            weight_bytes=weight_bytes * weight_refetch * op.count,
            activation_bytes=act_bytes * op.count,
            output_bytes=out_bytes * op.count,
            weight_format=weight_fmt,
            activation_format=act_fmt,
        )

    def transfer_time_s(self, report: TrafficReport) -> float:
        """Time to move the traffic at the DRAM's peak bandwidth."""
        return self.dram.transfer_time_s(report.total_bytes)

    def transfer_energy_j(self, report: TrafficReport) -> float:
        """Energy to move the traffic through the DRAM interface."""
        return self.dram.transfer_energy_j(report.total_bytes)

"""Cached, optionally parallel sweep harness over devices x workloads.

Every frame-simulating experiment in the evaluation is some cartesian sweep:
devices x NeRF models x precision modes x pruning ratios x batch sizes (and
sometimes scenes).  The :class:`SweepEngine` runs such sweeps through the
unified :class:`repro.core.device.Device` protocol with two layers of
memoisation:

* **workload cache** -- ``(model name, FrameConfig)`` -> built
  :class:`~repro.nerf.workload.Workload`, so sweeping ten devices over the
  same model builds its operation list once;
* **report cache** -- ``(device, workload fingerprint, effective precision,
  effective pruning)`` -> :class:`~repro.core.accelerator.FrameReport`.  The
  *effective* knobs come from the device's capability flags, so asking
  NeuRex for five pruning ratios performs one simulation and returns five
  rows -- the flat bars of Fig. 19 for free.

Sweeps can optionally fan out over a process pool (``max_workers``); unique
cache keys are simulated exactly once either way.  Experiments share one
process-wide engine via :func:`get_default_engine`, so e.g. Fig. 1 and
Fig. 3 reuse each other's GPU frame reports.

A third, *persistent* tier can be attached (:meth:`SweepEngine.attach_store`
/ the ``store`` constructor argument): in-memory report-cache misses then
consult a content-addressed on-disk :class:`repro.perf.store.ResultStore`
before simulating, and freshly simulated reports are written back.  The
``repro`` CLI attaches the default store unless ``--no-store`` is passed,
which is what makes warm ``repro run all`` invocations skip cycle-level
simulation across interpreter restarts; see ``docs/performance.md``.
"""

from __future__ import annotations

import itertools
import math
import threading
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Hashable, Iterable, Sequence

from repro.nerf.models import FrameConfig, get_model
from repro.sparse.formats import Precision

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.accelerator import FrameReport
    from repro.core.device import Device
    from repro.nerf.workload import Workload
    from repro.perf.store import ResultStore, StoreKey

WorkloadKey = tuple[str, FrameConfig]
ReportKey = tuple[str, Hashable, Precision | None, float]


def geomean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (the paper's aggregate of choice)."""
    values = list(values)
    if not values:
        raise ValueError("geomean of an empty sequence")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def workload_fingerprint(workload: "Workload") -> Hashable:
    """Stable, hashable identity of a workload's exact operation list."""
    return (
        workload.model_name,
        workload.image_width,
        workload.image_height,
        workload.batch_size,
        tuple(workload.ops),
    )


@dataclass(frozen=True)
class SweepSpec:
    """Declarative description of one cartesian sweep.

    ``None`` entries in the ``batch_sizes`` / ``scenes`` axes mean "use the
    base config's value"; precision ``None`` means the device's native mode.
    """

    devices: tuple[str, ...]
    models: tuple[str, ...]
    precisions: tuple[Precision | None, ...] = (None,)
    pruning_ratios: tuple[float, ...] = (0.0,)
    batch_sizes: tuple[int | None, ...] = (None,)
    scenes: tuple[str | None, ...] = (None,)
    base_config: FrameConfig = field(default_factory=FrameConfig)

    def resolve_config(self, scene: str | None, batch: int | None) -> FrameConfig:
        """The base config with one sweep point's scene / batch substituted."""
        return replace(
            self.base_config,
            scene_name=scene or self.base_config.scene_name,
            batch_size=batch or self.base_config.batch_size,
        )


@dataclass(frozen=True)
class SweepResult:
    """One row of a sweep: the requested point plus its frame report.

    ``precision`` / ``pruning_ratio`` / ``batch_size`` / ``scene`` identify
    the *requested* sweep point; ``effective_precision`` /
    ``effective_pruning`` are what the device actually ran (they differ when
    a capability flag collapsed the knob, in which case several rows share
    one cached report).
    """

    device: str
    model: str
    precision: Precision | None
    pruning_ratio: float
    batch_size: int
    scene: str
    effective_precision: Precision | None
    effective_pruning: float
    report: "FrameReport"

    @property
    def latency_s(self) -> float:
        """Frame latency of this sweep point's report, in seconds."""
        return self.report.latency_s

    @property
    def energy_j(self) -> float:
        """Frame energy of this sweep point's report, in joules."""
        return self.report.energy_j

    @property
    def fps(self) -> float:
        """Frames per second implied by this sweep point's latency."""
        return self.report.fps


@dataclass
class SweepCacheStats:
    """Counters exposing how much work the engine's caches saved.

    ``report_hits`` / ``report_misses`` track the in-memory report cache;
    ``store_hits`` / ``store_misses`` track the optional persistent tier
    consulted on in-memory misses (both stay zero without an attached
    store).
    """

    workload_hits: int = 0
    workload_misses: int = 0
    report_hits: int = 0
    report_misses: int = 0
    store_hits: int = 0
    store_misses: int = 0

    @property
    def render_calls(self) -> int:
        """Physical ``render_frame`` invocations performed so far.

        An in-memory miss satisfied from the persistent store loads a
        serialized report instead of simulating, so store hits subtract
        from the miss count.
        """
        return self.report_misses - self.store_hits


def _render_task(
    device_name: str,
    workload: "Workload",
    precision: Precision | None,
    pruning_ratio: float,
) -> "FrameReport":
    """Simulate one frame in a worker process (devices are built per call)."""
    from repro.core.device import get_device

    return get_device(device_name).render_frame(
        workload, precision=precision, pruning_ratio=pruning_ratio
    )


class SweepEngine:
    """Runs :class:`SweepSpec` sweeps with memoisation and optional parallelism."""

    def __init__(
        self,
        max_workers: int | None = None,
        store: "ResultStore | None" = None,
    ) -> None:
        #: Process-pool width for cache-miss simulation; ``None`` -> serial.
        self.max_workers = max_workers
        #: Optional persistent tier consulted on in-memory misses.
        self.store = store
        self.stats = SweepCacheStats()
        self._devices: dict[str, "Device"] = {}
        self._workloads: dict[WorkloadKey, "Workload"] = {}
        self._reports: dict[ReportKey, "FrameReport"] = {}
        self._device_fingerprints: dict[str, str] = {}
        self._workload_digests: dict[Hashable, str] = {}
        # Guards the caches when experiments run on a thread pool (the CLI's
        # --jobs); simulations stay serialized, cache reads stay consistent.
        self._lock = threading.RLock()

    def attach_store(self, store: "ResultStore | None") -> None:
        """Attach (or, with None, detach) the persistent result store."""
        with self._lock:
            self.store = store

    # -- cached building blocks ----------------------------------------------

    def device(self, name: str) -> "Device":
        """The engine's shared instance of a registered device."""
        from repro.core.device import get_device

        key = name.lower()
        with self._lock:
            if key not in self._devices:
                self._devices[key] = get_device(key)
            return self._devices[key]

    def workload(self, model: str, config: FrameConfig | None = None) -> "Workload":
        """Build (or reuse) the one-frame workload of ``model`` under ``config``."""
        config = config or FrameConfig()
        key = (model.lower(), config)
        with self._lock:
            if key in self._workloads:
                self.stats.workload_hits += 1
            else:
                self.stats.workload_misses += 1
                self._workloads[key] = get_model(model).build_workload(config)
            return self._workloads[key]

    def report_key(
        self,
        device_name: str,
        workload: "Workload",
        precision: Precision | None,
        pruning_ratio: float,
    ) -> ReportKey:
        """Cache key of one simulation: device + workload + effective knobs."""
        device = self.device(device_name)
        return (
            device_name.lower(),
            workload_fingerprint(workload),
            device.effective_precision(precision),
            device.effective_pruning(pruning_ratio),
        )

    def frame_report(
        self,
        device_name: str,
        model: str | None = None,
        *,
        workload: "Workload | None" = None,
        config: FrameConfig | None = None,
        precision: Precision | None = None,
        pruning_ratio: float = 0.0,
    ) -> "FrameReport":
        """One cached frame simulation (pass either ``model`` or ``workload``)."""
        if workload is None:
            if model is None:
                raise ValueError("provide either a model name or a workload")
            workload = self.workload(model, config)
        key = self.report_key(device_name, workload, precision, pruning_ratio)
        with self._lock:
            cached = self._reports.get(key)
            if cached is not None:
                self.stats.report_hits += 1
                return cached
            self.stats.report_misses += 1
            store_key = self._store_key(key, workload)
            if store_key is not None:
                stored = self.store.get(store_key)
                if stored is not None:
                    self.stats.store_hits += 1
                    self._reports[key] = stored
                    return stored
                self.stats.store_misses += 1
            device = self.device(device_name)
            report = device.render_frame(
                workload,
                precision=device.effective_precision(precision),
                pruning_ratio=device.effective_pruning(pruning_ratio),
            )
            self._reports[key] = report
            if store_key is not None:
                self.store.put(store_key, report)
            return report

    def _store_key(self, key: ReportKey, workload: "Workload") -> "StoreKey | None":
        """The persistent-store address of one report-cache key (lock held)."""
        if self.store is None:
            return None
        return self._content_key(key, workload)

    def _content_key(self, key: ReportKey, workload: "Workload") -> "StoreKey":
        """Build the content address of one report-cache key (lock held)."""
        from repro.perf.store import StoreKey

        device_name, workload_fp, precision, pruning = key
        if device_name not in self._device_fingerprints:
            self._device_fingerprints[device_name] = self.device(
                device_name
            ).fingerprint()
        if workload_fp not in self._workload_digests:
            from repro.perf.store import workload_digest

            self._workload_digests[workload_fp] = workload_digest(workload)
        return StoreKey(
            device_fingerprint=self._device_fingerprints[device_name],
            workload_digest=self._workload_digests[workload_fp],
            precision=precision.name if precision is not None else None,
            pruning_ratio=pruning,
        )

    def frame_store_key(
        self,
        device_name: str,
        workload: "Workload",
        precision: Precision | None = None,
        pruning_ratio: float = 0.0,
    ) -> "StoreKey":
        """Content address of one simulation, independent of any attached store.

        This is the digest distributed sharding partitions on
        (:mod:`repro.perf.distributed`): it hashes the device fingerprint,
        the workload digest and the *effective* knobs, so every machine
        computes the same address for the same simulated content.
        """
        key = self.report_key(device_name, workload, precision, pruning_ratio)
        with self._lock:
            return self._content_key(key, workload)

    # -- sweep execution ------------------------------------------------------

    def _combos(self, spec: SweepSpec):
        """The spec's cartesian sweep points, in declaration order."""
        return itertools.product(
            spec.devices,
            spec.models,
            spec.scenes,
            spec.batch_sizes,
            spec.precisions,
            spec.pruning_ratios,
        )

    def _in_shard(
        self,
        shard: tuple[int, int],
        device_name: str,
        workload: "Workload",
        precision: Precision | None,
        pruning: float,
    ) -> bool:
        """Whether one sweep point's store content address lands in ``shard``."""
        from repro.perf.distributed import shard_of

        index, count = shard
        key = self.frame_store_key(device_name, workload, precision, pruning)
        return shard_of(key, index, count)

    def run(
        self, spec: SweepSpec, shard: tuple[int, int] | None = None
    ) -> list[SweepResult]:
        """Execute the sweep and return one :class:`SweepResult` per point.

        ``shard`` (an ``(index, count)`` pair or a
        :class:`repro.perf.distributed.Shard`) restricts enumeration to the
        sweep points whose persistent-store content address lands in that
        shard: points that collapse to one cached simulation share one
        address, so the shards of a spec are disjoint and collectively
        reproduce the unsharded row list exactly.
        """
        if shard is not None:
            index, count = shard  # accepts Shard or a plain tuple
            if not 0 <= index < count:
                raise ValueError(f"shard index must be in [0, {count}), got {index}")
        if self.max_workers and self.max_workers > 1:
            self._prefill_parallel(spec, shard)
        rows: list[SweepResult] = []
        for device_name, model, scene, batch, precision, pruning in self._combos(spec):
            device = self.device(device_name)
            # The requested point identifies the row; a device that ignores
            # batching is still simulated at the base config's batch size.
            requested = spec.resolve_config(scene, batch)
            sim_config = (
                requested
                if device.supports_batching
                else spec.resolve_config(scene, None)
            )
            workload = self.workload(model, sim_config)
            if shard is not None and not self._in_shard(
                shard, device_name, workload, precision, pruning
            ):
                continue
            report = self.frame_report(
                device_name,
                workload=workload,
                precision=precision,
                pruning_ratio=pruning,
            )
            rows.append(
                SweepResult(
                    device=device.name,
                    model=workload.model_name,
                    precision=precision,
                    pruning_ratio=pruning,
                    batch_size=requested.batch_size,
                    scene=requested.scene_name,
                    effective_precision=device.effective_precision(precision),
                    effective_pruning=device.effective_pruning(pruning),
                    report=report,
                )
            )
        return rows

    def _prefill_parallel(
        self, spec: SweepSpec, shard: tuple[int, int] | None = None
    ) -> None:
        """Simulate the sweep's unique cache misses across a process pool."""
        pending: dict[ReportKey, tuple[str, "Workload"]] = {}
        for device_name, model, scene, batch, precision, pruning in self._combos(spec):
            device = self.device(device_name)
            config = spec.resolve_config(
                scene, batch if device.supports_batching else None
            )
            workload = self.workload(model, config)
            if shard is not None and not self._in_shard(
                shard, device_name, workload, precision, pruning
            ):
                continue
            key = self.report_key(device_name, workload, precision, pruning)
            with self._lock:
                if key not in self._reports and key not in pending:
                    pending[key] = (device_name.lower(), workload)
        if self.store is not None:
            # Satisfy what the persistent tier already holds before paying
            # for any worker process.  The stats mirror the serial path: a
            # store hit is an in-memory miss (re-counted as a hit by run())
            # that performed no render.
            for key in list(pending):
                with self._lock:
                    store_key = self._store_key(key, pending[key][1])
                    if store_key is None:  # store detached mid-sweep
                        break
                    stored = self.store.get(store_key)
                    if stored is not None:
                        self._reports[key] = stored
                        self.stats.store_hits += 1
                        self.stats.report_misses += 1
                        self.stats.report_hits -= 1
                        del pending[key]
                    else:
                        self.stats.store_misses += 1
        if not pending:
            return
        with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
            futures = {
                key: pool.submit(_render_task, device_name, workload, key[2], key[3])
                for key, (device_name, workload) in pending.items()
            }
            for key, future in futures.items():
                try:
                    report = future.result()
                except Exception:
                    # A worker may not be able to rebuild the device (e.g. a
                    # runtime-registered factory under the spawn start
                    # method); the run() pass simulates such keys serially.
                    continue
                with self._lock:
                    self._reports[key] = report
                    self.stats.report_misses += 1
                    self.stats.report_hits -= 1  # the run() pass re-counts these as hits
                    if self.store is not None:
                        self.store.put(
                            self._store_key(key, pending[key][1]), report
                        )

    def clear(self) -> None:
        """Drop every cached workload and report (devices are kept)."""
        with self._lock:
            self._workloads.clear()
            self._reports.clear()
            self.stats = SweepCacheStats()


# -- reducers over sweep rows -------------------------------------------------


def index_rows(
    rows: Sequence[SweepResult], *fields: str
) -> dict[tuple, SweepResult]:
    """Index rows by a tuple of attribute names (last write wins)."""
    return {tuple(getattr(row, f) for f in fields): row for row in rows}


def aggregate(
    rows: Sequence[SweepResult],
    value: Callable[[SweepResult], float],
    by: Sequence[str] = (),
    reducer: Callable[[Iterable[float]], float] = geomean,
) -> dict[tuple, float]:
    """Group rows by ``by`` attributes and reduce ``value`` over each group."""
    groups: dict[tuple, list[float]] = {}
    for row in rows:
        groups.setdefault(tuple(getattr(row, f) for f in by), []).append(value(row))
    return {key: reducer(values) for key, values in groups.items()}


#: Process-wide engine shared by the experiment modules, so repeated and
#: overlapping experiments reuse each other's simulations.
_DEFAULT_ENGINE: SweepEngine | None = None
_DEFAULT_ENGINE_LOCK = threading.Lock()


def get_default_engine() -> SweepEngine:
    """The shared process-wide :class:`SweepEngine`."""
    global _DEFAULT_ENGINE
    with _DEFAULT_ENGINE_LOCK:
        if _DEFAULT_ENGINE is None:
            _DEFAULT_ENGINE = SweepEngine()
        return _DEFAULT_ENGINE

"""Configuration of a GEMM/GEMV compute array.

A single configuration class describes FlexNeRFer's MAC array as well as the
baseline arrays (SIGMA, Bit Fusion, bit-scalable SIGMA, NeuRex's dense INT16
array, NVDLA- and TPU-like engines), so the cycle model can be shared.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.sparse.formats import Precision


class MappingFlexibility(enum.Enum):
    """How flexibly operands can be placed onto the array."""

    #: Rigid systolic mapping: operands occupy fixed rows/columns; irregular
    #: shapes and sparsity leave MACs idle (TPU-like weight-stationary array).
    RIGID = "rigid"
    #: Channel-parallel mapping (NVDLA-like): utilisation tracks channel depth.
    CHANNEL = "channel"
    #: Flexible distribution (SIGMA / FlexNeRFer): non-zero operands can be
    #: packed densely onto the array via unicast/multicast/broadcast.
    FLEXIBLE = "flexible"


@dataclass(frozen=True)
class ArrayConfig:
    """Static description of a compute array."""

    name: str
    rows: int = 64
    cols: int = 64
    frequency_hz: float = 800e6
    base_precision: Precision = Precision.INT16
    bit_scalable: bool = False
    supports_sparsity: bool = False
    mapping: MappingFlexibility = MappingFlexibility.FLEXIBLE
    #: Fraction of peak cycles lost to pipeline fill/drain and control.
    pipeline_overhead: float = 0.03
    #: Additional latency fraction spent on (de)compression / format handling.
    format_conversion_overhead: float = 0.0

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ValueError("array dimensions must be positive")
        if self.frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        if not 0.0 <= self.pipeline_overhead < 1.0:
            raise ValueError("pipeline overhead must be in [0, 1)")
        if self.format_conversion_overhead < 0.0:
            raise ValueError("format conversion overhead must be non-negative")

    # -- precision handling ---------------------------------------------------

    def supported_precisions(self) -> tuple[Precision, ...]:
        if self.bit_scalable:
            return (Precision.INT4, Precision.INT8, Precision.INT16)
        return (self.base_precision,)

    def supports_precision(self, precision: Precision) -> bool:
        return precision in self.supported_precisions()

    def effective_precision(self, precision: Precision) -> Precision:
        """Precision the array actually computes at for a requested precision.

        Non-bit-scalable arrays run every workload at their base precision.
        """
        if self.supports_precision(precision):
            return precision
        return self.base_precision

    def lane_scale(self, precision: Precision) -> int:
        """Multiplier-lane multiplication factor at ``precision``.

        A bit-scalable unit built from 4x4 sub-multipliers provides 1 / 4 / 16
        lanes per MAC unit at 16- / 8- / 4-bit precision (paper Fig. 6(a)).
        """
        effective = self.effective_precision(precision)
        scale = (self.base_precision.bits // effective.bits) ** 2
        return max(1, scale)

    def effective_grid(self, precision: Precision) -> tuple[int, int]:
        """Logical multiplier grid (rows, cols) at ``precision`` (Fig. 6(b))."""
        effective = self.effective_precision(precision)
        edge_scale = max(1, self.base_precision.bits // effective.bits)
        return (self.rows * edge_scale, self.cols * edge_scale)

    def macs_per_cycle(self, precision: Precision) -> int:
        """Peak MAC operations per cycle at ``precision``."""
        grid_rows, grid_cols = self.effective_grid(precision)
        return grid_rows * grid_cols

    def peak_ops_per_second(self, precision: Precision) -> float:
        """Peak operations (2 x MAC) per second at ``precision``."""
        return 2.0 * self.macs_per_cycle(precision) * self.frequency_hz

    def data_fetch_bytes(self, precision: Precision) -> int:
        """Bytes fetched per operand per tile at ``precision`` (Fig. 6(b)).

        Halving the precision quadruples the tile's element count but halves
        the bits per element, so the fetch size doubles per precision step:
        8 KiB at INT16, 16 KiB at INT8 and 32 KiB at INT4 for a 64x64 array.
        """
        grid_rows, grid_cols = self.effective_grid(precision)
        return grid_rows * grid_cols * self.effective_precision(precision).bits // 8

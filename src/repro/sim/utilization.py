"""MAC-utilisation models for dense and sparsity-aware dense mappings.

The paper's Fig. 4 shows why rigid commercial arrays lose utilisation on
irregular or sparse GEMMs, and Fig. 5 shows how FlexNeRFer recovers it by
packing only non-zero operands onto the array with flexible dataflows.  These
functions capture both behaviours analytically; the distribution-network unit
tests cross-check the flexible-mapping numbers against an explicit packing of
small matrices.
"""

from __future__ import annotations

from repro.nerf.workload import GEMMOp
from repro.sim.array_config import ArrayConfig, MappingFlexibility
from repro.sim.tiling import tile_counts
from repro.sparse.formats import Precision

#: Packing efficiency of a flexible distribution network per precision mode.
#: Lower precisions expose more independent multiplier lanes per MAC unit, and
#: keeping every lane fed with a non-zero operand pair becomes harder, which
#: is why the effective efficiency in paper Table 3 sits below peak by a
#: growing margin as the precision drops.
FLEXIBLE_PACKING_EFFICIENCY = {
    Precision.INT16: 0.97,
    Precision.INT8: 0.85,
    Precision.INT4: 0.78,
}


def flexible_packing_efficiency(precision: Precision) -> float:
    """Dense-packing efficiency of a flexible NoC at ``precision``."""
    return FLEXIBLE_PACKING_EFFICIENCY[precision]


def dense_mapping_utilization(op: GEMMOp, config: ArrayConfig) -> float:
    """Utilisation of a *dense* (no zero-skipping) mapping of ``op``.

    Rigid arrays suffer from edge effects on irregular shapes (partially
    filled tiles along N and K); channel-style arrays (NVDLA) need the
    reduction dimension to cover their MAC vector lanes; flexible arrays can
    re-pack operands and only pay a small packing overhead.
    """
    grid = tile_counts(op, config)
    grid_rows, grid_cols = config.effective_grid(op.precision)
    if config.mapping is MappingFlexibility.FLEXIBLE:
        effective = config.effective_precision(op.precision)
        return flexible_packing_efficiency(effective)
    if config.mapping is MappingFlexibility.CHANNEL:
        fill_k = min(op.k, grid_rows) / grid_rows
        return max(min(grid.edge_utilization, fill_k), 0.0)
    # RIGID: weight-stationary systolic array; boundary tiles along both the
    # reduction and output dimensions leave MAC columns idle.
    fill_n = (op.n / grid_cols) / -(-op.n // grid_cols)
    fill_k = (op.k / grid_rows) / -(-op.k // grid_rows)
    return max(min(fill_n * fill_k, 1.0), 0.0)


def sparse_mapping_utilization(op: GEMMOp, config: ArrayConfig) -> float:
    """Utilisation of FlexNeRFer's sparsity-aware dense mapping.

    Non-zero operands are packed densely onto the MAC array through the
    flexible NoC, so the achievable utilisation is bounded by the packing
    efficiency of the distribution network rather than by the sparsity
    pattern or the operand shapes.
    """
    if not (
        config.supports_sparsity
        and config.mapping is MappingFlexibility.FLEXIBLE
    ):
        return dense_mapping_utilization(op, config)
    effective = config.effective_precision(op.precision)
    return flexible_packing_efficiency(effective)


def effective_mac_utilization(op: GEMMOp, config: ArrayConfig) -> float:
    """Fraction of peak MAC throughput doing *useful* (non-zero) work."""
    density = (1.0 - op.weight_sparsity) * (1.0 - op.activation_sparsity)
    if config.supports_sparsity and config.mapping is MappingFlexibility.FLEXIBLE:
        return sparse_mapping_utilization(op, config)
    return dense_mapping_utilization(op, config) * density

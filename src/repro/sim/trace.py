"""Execution traces: per-op records and aggregated frame statistics."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.nerf.workload import OpCategory


@dataclass
class OpRecord:
    """Timing and energy of one operation in a frame."""

    name: str
    category: OpCategory
    time_s: float
    energy_j: float
    compute_time_s: float = 0.0
    dram_time_s: float = 0.0
    format_conversion_time_s: float = 0.0
    dram_bytes: float = 0.0
    utilization: float = 1.0


@dataclass
class ExecutionTrace:
    """A frame's worth of op records with aggregation helpers."""

    device: str
    model_name: str
    records: list[OpRecord] = field(default_factory=list)

    def add(self, record: OpRecord) -> None:
        self.records.append(record)

    @property
    def total_time_s(self) -> float:
        return sum(record.time_s for record in self.records)

    @property
    def total_energy_j(self) -> float:
        return sum(record.energy_j for record in self.records)

    @property
    def total_dram_bytes(self) -> float:
        return sum(record.dram_bytes for record in self.records)

    def time_by_category(self) -> dict[OpCategory, float]:
        out = {category: 0.0 for category in OpCategory}
        for record in self.records:
            out[record.category] += record.time_s
        return out

    def runtime_breakdown(self) -> dict[OpCategory, float]:
        """Fraction of frame time spent per category (paper Fig. 3)."""
        total = self.total_time_s
        if total <= 0:
            return {category: 0.0 for category in OpCategory}
        return {
            category: time / total for category, time in self.time_by_category().items()
        }

    def time_by_component(self) -> dict[str, float]:
        """Frame time split into compute / DRAM / format conversion (Fig. 18(a))."""
        compute = sum(r.compute_time_s for r in self.records)
        dram = sum(r.dram_time_s for r in self.records)
        conversion = sum(r.format_conversion_time_s for r in self.records)
        other = max(self.total_time_s - compute - dram - conversion, 0.0)
        return {
            "compute": compute,
            "dram": dram,
            "format_conversion": conversion,
            "other": other,
        }

    def average_utilization(self) -> float:
        """Time-weighted MAC utilisation across GEMM records."""
        gemm_records = [r for r in self.records if r.category is OpCategory.GEMM]
        total = sum(r.time_s for r in gemm_records)
        if total <= 0:
            return 0.0
        return sum(r.utilization * r.time_s for r in gemm_records) / total

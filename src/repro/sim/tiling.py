"""Tiling of GEMM operations onto a compute array."""

from __future__ import annotations

import functools
import math
from dataclasses import dataclass

from repro.nerf.workload import GEMMOp
from repro.sim.array_config import ArrayConfig


@dataclass(frozen=True)
class TileGrid:
    """How a GEMM of shape (M, N, K) tiles onto an array grid."""

    tile_m: int
    tile_n: int
    tile_k: int
    tiles_m: int
    tiles_n: int
    tiles_k: int
    edge_utilization: float

    @property
    def num_tiles(self) -> int:
        return self.tiles_m * self.tiles_n * self.tiles_k

    @property
    def num_output_tiles(self) -> int:
        return self.tiles_m * self.tiles_n


@functools.lru_cache(maxsize=16384)
def tile_counts(op: GEMMOp, config: ArrayConfig) -> TileGrid:
    """Tile ``op`` onto the array at the op's precision.

    The array maps the reduction dimension K across the rows of the
    multiplier grid and the output dimension N across its columns; the M
    dimension is streamed tile by tile.  Edge utilisation captures the waste
    from partially filled boundary tiles (the effect behind the low MAC
    utilisation of rigid arrays on irregular GEMMs, paper Fig. 4(c)).

    Both arguments are frozen dataclasses, and the enumeration is a pure
    function of them, so results are memoised process-wide: one frame
    re-queries the same (op, config) pair from the cycle model and both
    utilisation models, and sweeps re-tile identical MLP layers thousands
    of times.  ``repro bench`` quantifies the speedup (``hot_path``
    section); ``tile_counts.__wrapped__`` is the uncached original.
    """
    grid_rows, grid_cols = config.effective_grid(op.precision)
    tile_m = grid_rows
    tile_n = grid_cols
    tile_k = grid_rows
    tiles_m = math.ceil(op.m / tile_m)
    tiles_n = math.ceil(op.n / tile_n)
    tiles_k = math.ceil(op.k / tile_k)
    covered = (tiles_m * tile_m) * (tiles_n * tile_n) * (tiles_k * tile_k)
    useful = op.m * op.n * op.k
    edge_utilization = useful / covered if covered else 0.0
    return TileGrid(
        tile_m=tile_m,
        tile_n=tile_n,
        tile_k=tile_k,
        tiles_m=tiles_m,
        tiles_n=tiles_n,
        tiles_k=tiles_k,
        edge_utilization=edge_utilization,
    )

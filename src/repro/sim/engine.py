"""Cycle model for GEMM execution on a configurable MAC array."""

from __future__ import annotations

from dataclasses import dataclass

from repro.nerf.workload import GEMMOp
from repro.sim.array_config import ArrayConfig, MappingFlexibility
from repro.sim.memory import MemoryTrafficModel, TrafficReport
from repro.sim.tiling import tile_counts
from repro.sim.utilization import (
    dense_mapping_utilization,
    sparse_mapping_utilization,
)


@dataclass
class GEMMExecution:
    """Timing result of executing one GEMM on an array."""

    op_name: str
    compute_cycles: float
    format_conversion_cycles: float
    dram_time_s: float
    utilization: float
    effective_macs: float
    traffic: TrafficReport
    frequency_hz: float

    @property
    def compute_time_s(self) -> float:
        return self.compute_cycles / self.frequency_hz

    @property
    def format_conversion_time_s(self) -> float:
        return self.format_conversion_cycles / self.frequency_hz

    @property
    def total_time_s(self) -> float:
        """End-to-end time of the op.

        The accelerators modelled here stream operands from a narrow LPDDR3
        interface, so DRAM access is only partially hidden behind compute; the
        model follows the paper's latency-breakdown structure (Fig. 18(a)) and
        accounts compute, DRAM access and format conversion additively.
        """
        return self.compute_time_s + self.dram_time_s + self.format_conversion_time_s


class GEMMCycleModel:
    """Computes cycles / time / traffic of GEMM ops for one array config."""

    def __init__(
        self,
        config: ArrayConfig,
        memory: MemoryTrafficModel | None = None,
    ) -> None:
        self.config = config
        self.memory = memory or MemoryTrafficModel(
            compression_enabled=config.supports_sparsity
        )

    def execute(self, op: GEMMOp) -> GEMMExecution:
        """Model the execution of a single GEMM op."""
        config = self.config
        grid = tile_counts(op, config)
        macs_per_cycle = config.macs_per_cycle(op.precision)

        sparsity_aware = (
            config.supports_sparsity
            and config.mapping is MappingFlexibility.FLEXIBLE
        )
        if sparsity_aware:
            utilization = sparse_mapping_utilization(op, config)
            work_macs = op.effective_macs
        else:
            utilization = dense_mapping_utilization(op, config)
            work_macs = op.macs

        utilization = max(utilization, 1e-6)
        compute_cycles = work_macs / (macs_per_cycle * utilization)
        compute_cycles *= 1.0 + config.pipeline_overhead

        format_cycles = compute_cycles * config.format_conversion_overhead

        traffic = self.memory.traffic(op, tiles_m=grid.tiles_m, tiles_n=grid.tiles_n)
        dram_time = self.memory.transfer_time_s(traffic)

        return GEMMExecution(
            op_name=op.name,
            compute_cycles=compute_cycles,
            format_conversion_cycles=format_cycles,
            dram_time_s=dram_time,
            utilization=utilization,
            effective_macs=op.effective_macs,
            traffic=traffic,
            frequency_hz=config.frequency_hz,
        )

    def execute_all(self, ops: list[GEMMOp]) -> list[GEMMExecution]:
        """Model a list of GEMM ops."""
        return [self.execute(op) for op in ops]

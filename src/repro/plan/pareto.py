"""Pareto-frontier reduction and the feasibility constraint solver.

The planner minimizes three objectives jointly -- dollars per request,
p99 latency and energy per request (:data:`repro.plan.evaluate.OBJECTIVES`)
-- and reduces the evaluated candidates two ways:

* :func:`pareto_frontier` keeps every non-dominated point, ordered by a
  deterministic tie-break, so ``repro plan`` output is byte-stable;
* :func:`cheapest_feasible` answers the capacity question directly:
  the cheapest point whose p99 holds under the SLA at the required SLO
  attainment.

Both are brute-force over the evaluated set (plan spaces are small; the
expensive part is evaluation, which the store caches), which is exactly
what lets the property suite certify them against an independent
re-derivation.
"""

from typing import Sequence

from repro.plan.evaluate import EvaluatedPoint


def dominates(a: EvaluatedPoint, b: EvaluatedPoint) -> bool:
    """Whether ``a`` Pareto-dominates ``b`` (<= everywhere, < somewhere)."""
    ao, bo = a.objectives, b.objectives
    return all(x <= y for x, y in zip(ao, bo)) and any(
        x < y for x, y in zip(ao, bo)
    )


def pareto_frontier(
    points: Sequence[EvaluatedPoint],
) -> tuple[EvaluatedPoint, ...]:
    """Every evaluated point no other point dominates.

    Points with identical objective vectors do not dominate each other, so
    exact ties all stay on the frontier.  The result is sorted by
    ``EvaluatedPoint.sort_key`` (objectives, then fleet / scheduler /
    control labels) -- a deterministic order independent of input order.
    """
    frontier = [
        candidate
        for candidate in points
        if not any(dominates(other, candidate) for other in points)
    ]
    return tuple(sorted(frontier, key=lambda point: point.sort_key))


def cheapest_feasible(
    points: Sequence[EvaluatedPoint],
    max_p99_s: float | None = None,
    min_attainment: float | None = None,
) -> EvaluatedPoint | None:
    """The cheapest point meeting the latency / attainment constraints.

    ``max_p99_s`` bounds p99 latency (inclusive); ``min_attainment``
    bounds SLO attainment over offered load (inclusive).  Ties on cost
    break by the same deterministic ``sort_key`` order the frontier uses.
    Returns ``None`` when no evaluated point is feasible.
    """
    feasible = [
        point
        for point in points
        if (max_p99_s is None or point.p99_latency_s <= max_p99_s)
        and (min_attainment is None or point.slo_attainment >= min_attainment)
    ]
    if not feasible:
        return None
    return min(feasible, key=lambda point: point.sort_key)

"""Declarative capacity-plan spaces: candidate fleets and their traffic.

A :class:`PlanSpace` describes every fleet configuration the planner should
consider -- device mixes drawn from :data:`~repro.core.device.DEVICE_REGISTRY`,
worker counts, scheduling policies and overload-control variants -- together
with the :class:`TrafficSpec` every candidate is judged against.  Enumeration
is fully deterministic (declared tuple order, no set/dict iteration), and
each candidate maps to a content-addressed
:class:`~repro.perf.store.PlanPointKey`, so evaluated points are cached in
the result store and partition across machines through the same
``repro shard`` / ``repro assemble`` machinery as every other tier.

``docs/planning.md`` documents the model; ``repro plan`` is the CLI surface.
"""

import itertools
import json
from dataclasses import dataclass
from pathlib import Path

from repro.core.device import DEVICE_REGISTRY, canonical_digest
from repro.perf.store import PlanPointKey, environment_digest
from repro.serve.request import PoissonStream, Request, Scenario, ScenarioMix
from repro.sparse.formats import Precision

#: Scheduler policies a plan space may reference, in the registry order the
#: ``repro run`` serving experiments use.  Names resolve to constructors in
#: ``repro.plan.evaluate``.
SCHEDULER_NAMES = ("fifo", "sparsity-aware", "batch-deadline")

#: Overload-control variants a plan space may reference.  ``"none"`` runs
#: the bare fleet; the other variants attach a
#: :class:`~repro.serve.control.ControlConfig` with pinned constants
#: (see ``repro.plan.evaluate``), kept autoscaler-free so plain-FIFO
#: candidates stay on the fleet simulator's fast path.
CONTROL_NAMES = ("none", "queue-cap", "token-bucket")

#: The small three-scenario mix the built-in ``tiny`` spec serves: the
#: reference scenario blend at 96x96 so one candidate costs a handful of
#: cheap frame simulations.  Weighted 2:1:1 like the serving studies' mix.
TINY_MIX = ScenarioMix(
    scenarios=(
        Scenario(model="instant-ngp", scene="lego", width=96, height=96),
        Scenario(
            model="instant-ngp",
            scene="mic",
            width=96,
            height=96,
            precision=Precision.INT8,
            pruning_ratio=0.5,
        ),
        Scenario(model="tensorf", scene="lego", width=96, height=96),
    ),
    weights=(2.0, 1.0, 1.0),
)

#: The serving studies' reference blend at full 400x400 resolution.
REFERENCE_MIX = ScenarioMix(
    scenarios=(
        Scenario(model="instant-ngp", scene="lego", width=400, height=400),
        Scenario(
            model="instant-ngp",
            scene="mic",
            width=400,
            height=400,
            precision=Precision.INT8,
            pruning_ratio=0.5,
        ),
        Scenario(model="tensorf", scene="lego", width=400, height=400),
    ),
    weights=(2.0, 1.0, 1.0),
)

#: Scenario mixes a JSON plan spec may reference by name.
PLAN_MIXES = {"tiny": TINY_MIX, "reference": REFERENCE_MIX}

#: Traffic shapes a plan space may search over.  Every shape realizes the
#: same :class:`TrafficSpec` demand envelope (rate, duration, mix, SLA)
#: through a different arrival process from the scenario library:
#: ``"poisson"`` is the memoryless baseline, ``"flash-crowd"`` spends the
#: same mean rate with seeded 3x burst epochs, and ``"marked-burst"``
#: is the self-exciting process whose long-run mean matches ``rate_rps``.
TRAFFIC_SHAPES = ("poisson", "flash-crowd", "marked-burst")


@dataclass(frozen=True)
class TrafficSpec:
    """The target workload every candidate fleet is evaluated against.

    One seeded Poisson arrival process over a scenario mix, with a single
    SLA budget stamped on every request -- the planner's unit of demand.
    """

    mix: ScenarioMix
    rate_rps: float
    duration_s: float
    sla_ms: float
    seed: int = 0

    def __post_init__(self) -> None:
        """Validate rate, duration and SLA budget."""
        if self.rate_rps <= 0.0 or self.duration_s <= 0.0:
            raise ValueError("traffic rate_rps and duration_s must be positive")
        if self.sla_ms <= 0.0:
            raise ValueError("traffic sla_ms must be positive")

    @property
    def sla_s(self) -> float:
        """The SLA budget in seconds."""
        return self.sla_ms / 1000.0

    def requests(self, shape: str = "poisson") -> tuple[Request, ...]:
        """The deterministic request stream candidates under ``shape`` replay.

        Every shape in :data:`TRAFFIC_SHAPES` spends the same demand
        envelope -- ``rate_rps`` mean arrivals over ``duration_s`` with
        ``sla_ms`` deadlines on ``mix`` -- through a different arrival
        process, with pinned shape constants so the realization is a pure
        function of (spec, shape, seed).
        """
        from repro.serve.traffic import FlashCrowdStream, MarkedBurstStream

        if shape == "poisson":
            stream: "PoissonStream | FlashCrowdStream | MarkedBurstStream" = (
                PoissonStream(
                    rate_rps=self.rate_rps,
                    duration_s=self.duration_s,
                    mix=self.mix,
                    sla_s=self.sla_s,
                )
            )
        elif shape == "flash-crowd":
            stream = FlashCrowdStream(
                base_rps=self.rate_rps,
                burst_rps=3.0 * self.rate_rps,
                duration_s=self.duration_s,
                mix=self.mix,
                num_bursts=1,
                burst_s=self.duration_s / 5.0,
                sla_s=self.sla_s,
            )
        elif shape == "marked-burst":
            # Immigrants at 60% of the target rate with a 0.4 branching
            # ratio keep the long-run mean at rate_rps: mu / (1 - eta).
            stream = MarkedBurstStream(
                immigrant_rps=0.6 * self.rate_rps,
                duration_s=self.duration_s,
                mix=self.mix,
                offspring_mean=0.4,
                decay_s=self.duration_s / 10.0,
                sla_s=self.sla_s,
            )
        else:
            raise ValueError(
                f"unknown traffic shape '{shape}'; available: {list(TRAFFIC_SHAPES)}"
            )
        return stream.generate(seed=self.seed)


@dataclass(frozen=True)
class PlanPoint:
    """One candidate fleet configuration of a plan space.

    ``traffic`` names the :data:`TRAFFIC_SHAPES` arrival process this
    candidate is judged against (single-shape spaces leave the default).
    """

    fleet: tuple[str, ...]
    scheduler: str
    control: str
    traffic: str = "poisson"

    @property
    def label(self) -> str:
        """Compact fleet identity, e.g. ``flexnerfer+neurex``."""
        return "+".join(self.fleet)

    @property
    def digest(self) -> str:
        """SHA-1 content address of the candidate itself."""
        return canonical_digest(
            (self.fleet, self.scheduler, self.control, self.traffic)
        )


@dataclass(frozen=True)
class PlanSpace:
    """A declarative fleet design space plus the traffic it must hold.

    ``devices`` x ``worker_counts`` generate heterogeneous fleet mixes
    (order-insensitive combinations with replacement), crossed with the
    scheduler and control variants.  Validation happens at construction so
    the CLI can reject a bad spec with one early error.
    """

    name: str
    devices: tuple[str, ...]
    worker_counts: tuple[int, ...]
    traffic: TrafficSpec
    schedulers: tuple[str, ...] = ("fifo",)
    controls: tuple[str, ...] = ("none",)
    traffic_shapes: tuple[str, ...] = ("poisson",)

    def __post_init__(self) -> None:
        """Validate devices, worker counts and policy names."""
        if not self.devices:
            raise ValueError("a plan space needs at least one device")
        for device in self.devices:
            if device not in DEVICE_REGISTRY:
                raise ValueError(
                    f"unknown device '{device}'; "
                    f"available: {sorted(DEVICE_REGISTRY)}"
                )
        if len(set(self.devices)) != len(self.devices):
            raise ValueError(f"duplicate devices in plan space: {self.devices}")
        if not self.worker_counts:
            raise ValueError("a plan space needs at least one worker count")
        if any(count < 1 for count in self.worker_counts):
            raise ValueError(f"worker counts must be >= 1: {self.worker_counts}")
        if not self.schedulers:
            raise ValueError("a plan space needs at least one scheduler")
        for scheduler in self.schedulers:
            if scheduler not in SCHEDULER_NAMES:
                raise ValueError(
                    f"unknown scheduler '{scheduler}'; "
                    f"available: {list(SCHEDULER_NAMES)}"
                )
        if not self.controls:
            raise ValueError("a plan space needs at least one control variant")
        for control in self.controls:
            if control not in CONTROL_NAMES:
                raise ValueError(
                    f"unknown control variant '{control}'; "
                    f"available: {list(CONTROL_NAMES)}"
                )
        if not self.traffic_shapes:
            raise ValueError("a plan space needs at least one traffic shape")
        for shape in self.traffic_shapes:
            if shape not in TRAFFIC_SHAPES:
                raise ValueError(
                    f"unknown traffic shape '{shape}'; "
                    f"available: {list(TRAFFIC_SHAPES)}"
                )
        if len(set(self.traffic_shapes)) != len(self.traffic_shapes):
            raise ValueError(
                f"duplicate traffic shapes in plan space: {self.traffic_shapes}"
            )

    def enumerate_points(self) -> tuple[PlanPoint, ...]:
        """Every candidate, in a deterministic declared-order enumeration.

        Worker counts, fleets (``itertools.combinations_with_replacement``
        over the declared device order), schedulers and controls nest in
        that order, so repeat calls -- on any machine -- enumerate the
        identical sequence.  Sharding and the serial/shard differential
        tests rely on this.
        """
        points = []
        for count in self.worker_counts:
            for fleet in itertools.combinations_with_replacement(
                self.devices, count
            ):
                for scheduler in self.schedulers:
                    for control in self.controls:
                        for shape in self.traffic_shapes:
                            points.append(
                                PlanPoint(
                                    fleet=fleet,
                                    scheduler=scheduler,
                                    control=control,
                                    traffic=shape,
                                )
                            )
        return tuple(points)

    def canonical(self) -> dict:
        """JSON-safe description of the space (CLI/provenance output)."""
        return {
            "name": self.name,
            "devices": list(self.devices),
            "worker_counts": list(self.worker_counts),
            "schedulers": list(self.schedulers),
            "controls": list(self.controls),
            "traffic_shapes": list(self.traffic_shapes),
            "traffic": {
                "rate_rps": self.traffic.rate_rps,
                "duration_s": self.traffic.duration_s,
                "sla_ms": self.traffic.sla_ms,
                "seed": self.traffic.seed,
                "scenarios": [s.label for s in self.traffic.mix.scenarios],
                "weights": list(self.traffic.mix.weights or ()),
            },
        }


def space_digest(space: PlanSpace, cost_model: dict | None = None) -> str:
    """Content digest of everything a point's evaluation depends on.

    Hashes the space's search axes and traffic spec (the ``name`` is
    display-only and excluded, so renaming a spec keeps its cache warm),
    the cost-model constants, and the simulation environment digest --
    any device-model or NeRF-descriptor edit invalidates every cached
    plan point, exactly like the experiment-result tier.
    """
    from repro.plan.evaluate import COST_MODEL

    constants = cost_model if cost_model is not None else COST_MODEL
    return canonical_digest(
        (
            space.devices,
            space.worker_counts,
            space.schedulers,
            space.controls,
            space.traffic_shapes,
            space.traffic,
            tuple(sorted(constants.items())),
            environment_digest(),
        )
    )


def plan_point_key(space: PlanSpace, point: PlanPoint) -> PlanPointKey:
    """The content-addressed store key of ``point`` evaluated in ``space``."""
    return PlanPointKey(
        space_digest=space_digest(space),
        point_digest=point.digest,
    )


#: Built-in named plan spaces ``repro plan <spec>`` resolves first.
PLAN_SPECS = {
    "tiny": PlanSpace(
        name="tiny",
        devices=("flexnerfer", "neurex"),
        worker_counts=(1, 2),
        traffic=TrafficSpec(
            mix=TINY_MIX, rate_rps=60.0, duration_s=1.5, sla_ms=120.0, seed=0
        ),
    ),
    "reference": PlanSpace(
        name="reference",
        devices=("flexnerfer", "neurex", "rtx-4090"),
        worker_counts=(1, 2),
        traffic=TrafficSpec(
            mix=REFERENCE_MIX, rate_rps=80.0, duration_s=4.0, sla_ms=250.0, seed=0
        ),
        schedulers=("fifo", "sparsity-aware"),
        controls=("none", "queue-cap"),
    ),
}


def space_from_dict(data: dict, name: str = "custom") -> PlanSpace:
    """Build a validated :class:`PlanSpace` from a JSON-style mapping.

    Expected shape (see ``docs/planning.md``)::

        {"devices": [...], "worker_counts": [...],
         "schedulers": [...], "controls": [...],
         "traffic_shapes": ["poisson", "flash-crowd", "marked-burst"],
         "traffic": {"rate_rps": ..., "duration_s": ..., "sla_ms": ...,
                     "seed": ..., "mix": "tiny" | "reference"}}

    ``schedulers`` / ``controls`` / ``traffic_shapes`` / ``seed`` / ``mix``
    are optional (``traffic_shapes`` defaults to the Poisson baseline
    alone); anything malformed raises ``ValueError`` with a one-line
    reason.
    """
    if not isinstance(data, dict):
        raise ValueError(f"plan spec must be a JSON object, got {type(data).__name__}")
    unknown = set(data) - {
        "name", "devices", "worker_counts", "schedulers", "controls",
        "traffic", "traffic_shapes",
    }
    if unknown:
        raise ValueError(f"unknown plan spec keys: {sorted(unknown)}")
    traffic_data = data.get("traffic")
    if not isinstance(traffic_data, dict):
        raise ValueError("plan spec needs a 'traffic' object")
    unknown = set(traffic_data) - {"rate_rps", "duration_s", "sla_ms", "seed", "mix"}
    if unknown:
        raise ValueError(f"unknown traffic keys: {sorted(unknown)}")
    mix_name = traffic_data.get("mix", "tiny")
    if mix_name not in PLAN_MIXES:
        raise ValueError(
            f"unknown traffic mix '{mix_name}'; available: {sorted(PLAN_MIXES)}"
        )
    try:
        traffic = TrafficSpec(
            mix=PLAN_MIXES[mix_name],
            rate_rps=float(traffic_data["rate_rps"]),
            duration_s=float(traffic_data["duration_s"]),
            sla_ms=float(traffic_data["sla_ms"]),
            seed=int(traffic_data.get("seed", 0)),
        )
        return PlanSpace(
            name=str(data.get("name", name)),
            devices=tuple(str(d) for d in data.get("devices", ())),
            worker_counts=tuple(int(c) for c in data.get("worker_counts", ())),
            traffic=traffic,
            schedulers=tuple(str(s) for s in data.get("schedulers", ("fifo",))),
            controls=tuple(str(c) for c in data.get("controls", ("none",))),
            traffic_shapes=tuple(
                str(t) for t in data.get("traffic_shapes", ("poisson",))
            ),
        )
    except KeyError as exc:
        raise ValueError(f"plan spec is missing {exc.args[0]!r}") from exc
    except TypeError as exc:
        raise ValueError(f"malformed plan spec: {exc}") from exc


def load_space(source: str) -> PlanSpace:
    """Resolve ``source`` to a plan space: built-in name first, then JSON file.

    ``source`` is either a key of :data:`PLAN_SPECS` (``"tiny"``,
    ``"reference"``) or the path of a JSON spec file in the
    :func:`space_from_dict` shape.  Raises ``ValueError`` when it is
    neither.
    """
    if source in PLAN_SPECS:
        return PLAN_SPECS[source]
    path = Path(source)
    if path.is_file():
        try:
            data = json.loads(path.read_text())
        except ValueError as exc:
            raise ValueError(f"invalid JSON in plan spec {source}: {exc}") from exc
        return space_from_dict(data, name=path.stem)
    raise ValueError(
        f"unknown plan spec '{source}' "
        f"(not a built-in name {sorted(PLAN_SPECS)} or a JSON file)"
    )

"""Fleet capacity planning: Pareto search over the serving design space.

This package answers the ROADMAP's capacity question -- "what is the
cheapest fleet that holds p99 under the SLA at this traffic?" -- by
searching over (device mix, worker count, scheduler, overload-control
variant) one level above the accelerator design-space sweeps:

* :mod:`repro.plan.space` -- declarative :class:`PlanSpace` definitions
  with deterministic enumeration and content-addressed plan-point keys;
* :mod:`repro.plan.evaluate` -- run each candidate through the
  :class:`~repro.serve.fleet.FleetSimulator` and score it with the
  :mod:`repro.hw.cost` models (cost/request, energy/request, p99, SLO
  attainment), caching every evaluation in the result store's plan tier;
* :mod:`repro.plan.pareto` -- the Pareto-frontier reducer and the
  "cheapest feasible point" constraint solver.

``repro plan <spec>`` is the CLI surface; because plan points are store
keys, ``repro plan --shard I/N`` + ``repro assemble`` distribute a large
space across machines exactly like the experiment sweeps
(``docs/planning.md``).
"""

from repro.plan.evaluate import (
    COST_MODEL,
    OBJECTIVES,
    EvaluatedPoint,
    PlanEvaluation,
    evaluate_point,
    evaluate_space,
)
from repro.plan.pareto import cheapest_feasible, dominates, pareto_frontier
from repro.plan.space import (
    PLAN_MIXES,
    PLAN_SPECS,
    PlanPoint,
    PlanSpace,
    TrafficSpec,
    load_space,
    plan_point_key,
    space_digest,
    space_from_dict,
)

__all__ = [
    "COST_MODEL",
    "OBJECTIVES",
    "EvaluatedPoint",
    "PlanEvaluation",
    "PlanPoint",
    "PlanSpace",
    "PLAN_MIXES",
    "PLAN_SPECS",
    "TrafficSpec",
    "cheapest_feasible",
    "dominates",
    "evaluate_point",
    "evaluate_space",
    "load_space",
    "pareto_frontier",
    "plan_point_key",
    "space_digest",
    "space_from_dict",
]

"""Evaluate plan-space candidates: simulate, score, cache.

Each :class:`~repro.plan.space.PlanPoint` runs through the
:class:`~repro.serve.fleet.FleetSimulator` against the space's traffic spec
and is scored with the repository's hardware cost models
(:mod:`repro.hw.cost`): dollars per request (amortized silicon plus
electricity), energy per request, tail latency and SLO attainment.
Evaluations are pure functions of the space digest, so results are cached
in the store's plan tier (:class:`~repro.perf.store.PlanPointKey`) and a
warm re-run -- or a shard assembled from packs -- re-evaluates nothing.
"""

import math
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.hw.cost import AreaReport, PowerReport
from repro.perf.distributed import Shard
from repro.perf.store import PlanPointKey, ResultStore
from repro.plan.space import PlanPoint, PlanSpace, space_digest
from repro.serve.control import (
    ControlConfig,
    QueueCapAdmission,
    TokenBucketAdmission,
)
from repro.serve.fleet import FleetSimulator
from repro.serve.scheduler import (
    BatchDeadlineScheduler,
    FIFOScheduler,
    Scheduler,
    SparsityAwareScheduler,
)
from repro.sim.sweep import SweepEngine, get_default_engine

#: Pinned cost-model constants; part of the plan-point cache key, so any
#: change here invalidates every cached evaluation.  ``silicon_dollars_per_mm2``
#: amortizes die cost over ``amortization_s`` of service (three years);
#: ``area_proxy_mm2_per_w`` stands in for devices without an area model
#: (NVDLA / TPU expose power only); ``electricity_dollars_per_kwh`` prices
#: the energy the fleet actually spent.
COST_MODEL = {
    "silicon_dollars_per_mm2": 0.08,
    "area_proxy_mm2_per_w": 2.5,
    "amortization_s": 3.0 * 365.0 * 86400.0,
    "electricity_dollars_per_kwh": 0.12,
}

#: Ordered objective fields the Pareto reducer minimizes.
OBJECTIVES = ("cost_per_request", "p99_latency_s", "energy_per_request_j")

#: The exact metric keys an :class:`EvaluatedPoint` payload round-trips.
METRIC_FIELDS = (
    "cost_per_request",
    "p99_latency_s",
    "energy_per_request_j",
    "p50_latency_s",
    "slo_attainment",
    "goodput_rps",
    "completed_requests",
    "rejected_requests",
    "makespan_s",
    "fleet_area_mm2",
    "fleet_power_w",
)


def make_scheduler(name: str) -> Scheduler:
    """A fresh scheduler instance for a plan-space policy name."""
    if name == "fifo":
        return FIFOScheduler()
    if name == "sparsity-aware":
        return SparsityAwareScheduler()
    if name == "batch-deadline":
        return BatchDeadlineScheduler(max_batch=8, max_wait_s=0.05)
    raise ValueError(f"unknown scheduler '{name}'")


def make_control(name: str) -> ControlConfig | None:
    """A fresh control plane for a plan-space control variant name.

    Constants are pinned (and hashed into the space digest through the
    variant name): ``queue-cap`` admits at most 32 queued requests,
    ``token-bucket`` admits a sustained 60 rps with a 12-request burst.
    Both are autoscaler-free so FIFO candidates keep the fast path.
    """
    if name == "none":
        return None
    if name == "queue-cap":
        return ControlConfig(admission=QueueCapAdmission(max_queue=32))
    if name == "token-bucket":
        return ControlConfig(admission=TokenBucketAdmission(rate_rps=60.0, burst=12))
    raise ValueError(f"unknown control variant '{name}'")


def fleet_area_report(fleet: tuple[str, ...], engine: SweepEngine) -> AreaReport:
    """Per-worker silicon area of ``fleet``, with a power-derived fallback.

    Devices without an area model (the ``area_mm2`` protocol method raises
    ``NotImplementedError``) are charged ``area_proxy_mm2_per_w`` mm^2 per
    watt of typical power -- a crude but deterministic stand-in that keeps
    power-only baselines comparable in the cost objective.
    """
    report = AreaReport()
    for slot, name in enumerate(fleet):
        device = engine.device(name)
        try:
            area = device.area_mm2()
        except NotImplementedError:
            area = device.power_w() * COST_MODEL["area_proxy_mm2_per_w"]
        report.add(f"{name}#{slot}", area)
    return report


def fleet_power_report(fleet: tuple[str, ...], engine: SweepEngine) -> PowerReport:
    """Per-worker typical power draw of ``fleet``."""
    report = PowerReport()
    for slot, name in enumerate(fleet):
        device = engine.device(name)
        report.add(f"{name}#{slot}", device.power_w())
    return report


@dataclass(frozen=True)
class EvaluatedPoint:
    """One scored candidate: the plan point plus its serving metrics.

    A candidate that completed zero requests scores ``inf`` on every
    minimized objective, so any working fleet dominates it and it can
    never reach the frontier.
    """

    point: PlanPoint
    cost_per_request: float
    p99_latency_s: float
    energy_per_request_j: float
    p50_latency_s: float
    slo_attainment: float
    goodput_rps: float
    completed_requests: int
    rejected_requests: int
    makespan_s: float
    fleet_area_mm2: float
    fleet_power_w: float

    @property
    def objectives(self) -> tuple[float, float, float]:
        """The minimized objective vector (cost, p99, energy per request)."""
        return (
            self.cost_per_request,
            self.p99_latency_s,
            self.energy_per_request_j,
        )

    @property
    def sort_key(self) -> tuple:
        """Deterministic total order: objectives, then candidate identity."""
        return (
            *self.objectives,
            self.point.label,
            self.point.scheduler,
            self.point.control,
            self.point.traffic,
        )

    def to_payload(self) -> dict:
        """JSON-safe store payload (exact float round-trip via ``repr``)."""
        return {
            "point": {
                "fleet": list(self.point.fleet),
                "scheduler": self.point.scheduler,
                "control": self.point.control,
                "traffic": self.point.traffic,
            },
            "metrics": {field: getattr(self, field) for field in METRIC_FIELDS},
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "EvaluatedPoint":
        """Rebuild an evaluated point from :meth:`to_payload` output.

        Raises ``ValueError`` on any malformed payload, which cache readers
        treat as a miss (the slot heals on the next evaluation).
        """
        try:
            point = PlanPoint(
                fleet=tuple(str(d) for d in payload["point"]["fleet"]),
                scheduler=str(payload["point"]["scheduler"]),
                control=str(payload["point"]["control"]),
                # Pre-traffic-axis payloads carry no shape; they were all
                # evaluated against the Poisson baseline.
                traffic=str(payload["point"].get("traffic", "poisson")),
            )
            metrics = payload["metrics"]
            kwargs = {field: metrics[field] for field in METRIC_FIELDS}
        except (KeyError, TypeError) as exc:
            raise ValueError(f"malformed plan-point payload: {exc!r}") from exc
        kwargs["completed_requests"] = int(kwargs["completed_requests"])
        kwargs["rejected_requests"] = int(kwargs["rejected_requests"])
        for field in METRIC_FIELDS:
            if field not in ("completed_requests", "rejected_requests"):
                kwargs[field] = float(kwargs[field])
        return cls(point=point, **kwargs)


def evaluate_point(
    space: PlanSpace,
    point: PlanPoint,
    requests,
    engine: SweepEngine | None = None,
) -> EvaluatedPoint:
    """Simulate ``point`` against ``requests`` and score it.

    ``requests`` is the space's traffic under the point's shape
    (``space.traffic.requests(point.traffic)``), generated once per shape
    by the caller so candidates sharing a shape replay the identical
    arrival process.
    """
    engine = engine or get_default_engine()
    simulator = FleetSimulator(
        point.fleet,
        scheduler=make_scheduler(point.scheduler),
        engine=engine,
        default_sla_s=space.traffic.sla_s,
        control=make_control(point.control),
    )
    report = simulator.run(requests)
    area = fleet_area_report(point.fleet, engine).total_mm2
    power = fleet_power_report(point.fleet, engine).total_w
    completed = report.completed_requests
    energy_j = sum(worker.energy_j for worker in report.workers)
    if completed > 0:
        capex = (
            area
            * COST_MODEL["silicon_dollars_per_mm2"]
            * (report.makespan_s / COST_MODEL["amortization_s"])
        )
        opex = energy_j * COST_MODEL["electricity_dollars_per_kwh"] / 3.6e6
        cost_per_request = (capex + opex) / completed
        p99 = report.p99_latency_s
        energy_per_request = energy_j / completed
    else:
        cost_per_request = math.inf
        p99 = math.inf
        energy_per_request = math.inf
    return EvaluatedPoint(
        point=point,
        cost_per_request=cost_per_request,
        p99_latency_s=p99,
        energy_per_request_j=energy_per_request,
        p50_latency_s=report.p50_latency_s if completed else math.inf,
        slo_attainment=report.slo_attainment,
        goodput_rps=report.goodput_rps,
        completed_requests=completed,
        rejected_requests=report.rejected_requests,
        makespan_s=report.makespan_s,
        fleet_area_mm2=area,
        fleet_power_w=power,
    )


@dataclass(frozen=True)
class PlanEvaluation:
    """The outcome of evaluating (one shard of) a plan space.

    ``points`` is in enumeration order, restricted to the owned shard;
    ``fresh`` / ``cached`` count simulations run vs. store hits, so the
    warm-store differential test can assert zero re-evaluations.
    """

    points: tuple[EvaluatedPoint, ...]
    enumerated: int
    fresh: int
    cached: int


def evaluate_space(
    space: PlanSpace,
    engine: SweepEngine | None = None,
    store: ResultStore | None = None,
    shard: Shard | None = None,
    jobs: int = 1,
) -> PlanEvaluation:
    """Evaluate every candidate of ``space`` this runner owns.

    ``shard`` restricts work to the plan points whose content address the
    shard owns (the union over all shards is exactly the serial
    enumeration); ``store`` (defaulting to the engine's attached store)
    caches each evaluation under its
    :class:`~repro.perf.store.PlanPointKey`; ``jobs`` fans fresh
    evaluations over a thread pool with bit-identical results.
    """
    engine = engine or get_default_engine()
    if store is None:
        store = engine.store
    points = space.enumerate_points()
    digest = space_digest(space)
    owned = [
        point
        for point in points
        if shard is None
        or shard.contains(PlanPointKey(digest, point.digest))
    ]
    # One realized arrival process per traffic shape in use; candidates
    # sharing a shape replay the identical requests.
    requests_by_shape = {
        shape: space.traffic.requests(shape)
        for shape in sorted({point.traffic for point in owned})
    }
    fresh = 0
    cached = 0

    def evaluate_one(point: PlanPoint) -> tuple[EvaluatedPoint, bool]:
        key = PlanPointKey(space_digest=digest, point_digest=point.digest)
        if store is not None:
            payload = store.get_plan(key)
            if payload is not None:
                try:
                    return EvaluatedPoint.from_payload(payload), True
                except ValueError:
                    pass  # corrupt entry: fall through and re-evaluate
        evaluated = evaluate_point(
            space, point, requests_by_shape[point.traffic], engine=engine
        )
        if store is not None:
            store.put_plan(key, evaluated.to_payload())
        return evaluated, False

    if jobs > 1 and len(owned) > 1:
        with ThreadPoolExecutor(max_workers=jobs) as pool:
            outcomes = list(pool.map(evaluate_one, owned))
    else:
        outcomes = [evaluate_one(point) for point in owned]
    for _, was_cached in outcomes:
        if was_cached:
            cached += 1
        else:
            fresh += 1
    return PlanEvaluation(
        points=tuple(evaluated for evaluated, _ in outcomes),
        enumerated=len(points),
        fresh=fresh,
        cached=cached,
    )

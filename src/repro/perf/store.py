"""Content-addressed on-disk store of frame-simulation results.

The :class:`~repro.sim.sweep.SweepEngine`'s in-memory report cache dies
with the interpreter; this module gives it a persistent backing tier.  A
:class:`StoreKey` identifies one simulation by *content*, not by time or
code path:

* the **device fingerprint** (:meth:`repro.core.device.Device.fingerprint`)
  hashes every model parameter the device's estimates depend on, so editing
  an array geometry, a power figure or a batching marginal invalidates
  exactly that device's entries;
* the **workload digest** hashes the exact operation list of a frame
  (shapes, sparsities, precisions, counts), so model or resolution edits
  invalidate exactly the affected workloads;
* the **effective knobs** (precision / pruning after capability-flag
  collapse) mirror the in-memory cache key, so a store entry is shared by
  every requested sweep point that lands on the same simulation;
* the **schema version** (:data:`STORE_SCHEMA_VERSION`) partitions the
  store by serialization / semantics generation -- bump it whenever the
  simulation model changes in a way fingerprints cannot see, and every old
  entry silently becomes a miss.

Entries are single JSON files written atomically (temp file +
``os.replace``), so concurrent ``--jobs`` writers never corrupt the store:
the worst case under a write race is one simulation performed twice, with
bit-identical content winning either way.  Corrupt or truncated files are
treated as misses and cleaned up lazily.

A second tier rides on the same directory: whole **experiment results**
(:class:`ExperimentResultKey`), keyed by the experiment's parameter
fingerprint (which already hashes the repo version) plus a digest over
*every* registered device's fingerprint -- so editing any device model
invalidates every cached table, not just the frame reports it produced.
The CLI uses it to make a warm ``repro run all`` byte-identical to the
cold run while skipping the experiments' own compute (functional NeRF
renders included), which dwarfs the cycle-level simulation time.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator, Sequence

from repro.core.device import canonical_digest
from repro.nerf.workload import OpCategory
from repro.sparse.formats import Precision

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.accelerator import FrameReport
    from repro.nerf.workload import Workload

#: Generation of the store's serialization format *and* of the simulation
#: semantics fingerprints cannot observe.  Bump on either kind of change;
#: entries from other generations are never read (see ``docs/performance.md``).
STORE_SCHEMA_VERSION = 1

#: Environment variable overriding the default store location.
STORE_DIR_ENV = "REPRO_STORE_DIR"

#: Directory name of the default store inside the repository checkout.
DEFAULT_STORE_DIRNAME = ".repro-store"

#: The ``schema`` marker every exported pack file carries.
PACK_SCHEMA = "repro-store-pack"

#: Version of the pack file layout; bump on any structural change so
#: ``merge_from`` can refuse packs it does not understand.
PACK_SCHEMA_VERSION = 1


class PackConflictError(Exception):
    """A merge found the same cache key carrying *different* content.

    Identical content under one key is the expected write race (two shards
    simulated the same point) and merges silently; diverging content means
    the shards ran different code or state and must not be papered over.
    ``conflicts`` lists the offending entry paths (relative to the schema
    partition).
    """

    def __init__(self, conflicts: Sequence[str]) -> None:
        """Record the conflicting entry paths and build the message."""
        self.conflicts = tuple(conflicts)
        preview = ", ".join(self.conflicts[:3])
        if len(self.conflicts) > 3:
            preview += ", ..."
        super().__init__(
            f"{len(self.conflicts)} conflicting store entr"
            f"{'y' if len(self.conflicts) == 1 else 'ies'} "
            f"(same key, different content): {preview}"
        )


@dataclass(frozen=True)
class MergeStats:
    """Outcome of one (or, via ``combined``, several) store merges.

    ``added`` entries were new to the target, ``identical`` already present
    with the same content (last write wins), ``skipped`` belonged to a
    foreign schema generation or were unreadable, and ``conflicts`` names
    entries whose content diverged (kept from the target under
    ``strict=False``; fatal otherwise).
    """

    added: int = 0
    identical: int = 0
    skipped: int = 0
    conflicts: tuple[str, ...] = ()

    def combined(self, other: "MergeStats") -> "MergeStats":
        """This outcome accumulated with ``other``'s."""
        return MergeStats(
            added=self.added + other.added,
            identical=self.identical + other.identical,
            skipped=self.skipped + other.skipped,
            conflicts=self.conflicts + other.conflicts,
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe mapping of the outcome."""
        return {
            "added": self.added,
            "identical": self.identical,
            "skipped": self.skipped,
            "conflicts": list(self.conflicts),
        }


def workload_digest(workload: "Workload") -> str:
    """Content hash of a workload's exact operation list and frame shape."""
    return canonical_digest(
        {
            "model_name": workload.model_name,
            "image_width": workload.image_width,
            "image_height": workload.image_height,
            "batch_size": workload.batch_size,
            "ops": tuple(workload.ops),
        }
    )


@dataclass(frozen=True)
class StoreKey:
    """Content address of one frame simulation.

    ``precision`` is the *effective* precision's name (None when the device
    computes at its implicit native mode), ``pruning_ratio`` the *effective*
    ratio -- i.e. the knobs after capability-flag collapse, mirroring the
    sweep engine's in-memory cache key.
    """

    device_fingerprint: str
    workload_digest: str
    precision: str | None
    pruning_ratio: float
    schema_version: int = STORE_SCHEMA_VERSION

    #: Directory the entry kind lives under inside a schema partition.
    kind = "frame"

    @property
    def digest(self) -> str:
        """The key's SHA-1 content address (the stored file's basename)."""
        return canonical_digest(
            (
                self.device_fingerprint,
                self.workload_digest,
                self.precision,
                self.pruning_ratio,
                self.schema_version,
            )
        )


@dataclass(frozen=True)
class ExperimentResultKey:
    """Content address of one whole experiment result.

    ``params_fingerprint`` is the Experiment API's config fingerprint
    (experiment id + typed parameter values + repo version);
    ``environment_digest`` hashes every registered device's fingerprint
    (:func:`device_registry_digest`), so *any* device-model edit
    invalidates every cached result.  Simulation-code edits no fingerprint
    can see are covered by the shared :data:`STORE_SCHEMA_VERSION` bump
    rule, exactly as for frame entries.
    """

    experiment_id: str
    params_fingerprint: str
    environment_digest: str
    schema_version: int = STORE_SCHEMA_VERSION

    kind = "result"

    @property
    def digest(self) -> str:
        """The key's SHA-1 content address (the stored file's basename)."""
        return canonical_digest(
            (
                self.experiment_id,
                self.params_fingerprint,
                self.environment_digest,
                self.schema_version,
            )
        )


@dataclass(frozen=True)
class PlanPointKey:
    """Content address of one evaluated capacity-plan point (the plan tier).

    ``space_digest`` hashes everything a plan evaluation's outcome depends
    on besides the candidate itself: the traffic spec, the cost-model
    constants and the simulation environment digest (so any device-model
    or NeRF-descriptor edit invalidates every cached evaluation).
    ``point_digest`` hashes the candidate (fleet, scheduler, control
    variant).  Plan entries shard, pack and assemble through the same
    machinery as every other tier -- ``repro plan --shard I/N`` partitions
    these digests exactly as ``repro shard`` partitions result keys.
    """

    space_digest: str
    point_digest: str
    schema_version: int = STORE_SCHEMA_VERSION

    kind = "plan"

    @property
    def digest(self) -> str:
        """The key's SHA-1 content address (the stored file's basename)."""
        return canonical_digest(
            (
                self.space_digest,
                self.point_digest,
                self.schema_version,
            )
        )


@dataclass(frozen=True)
class GridAssetKey:
    """Content address of one fitted hash-grid table set (the asset tier).

    Fitting a hash grid to a procedural scene is deterministic: the tables
    are a pure function of the scene's field parameters
    (:meth:`repro.nerf.scenes.SyntheticScene.fingerprint`) and the grid
    configuration, so they can be reused across runs, experiments and
    renderers.  Fitting-algorithm changes fingerprints cannot see are
    covered by the shared :data:`STORE_SCHEMA_VERSION` bump rule, exactly
    as for the frame and result tiers.
    """

    scene_fingerprint: str
    grid_fingerprint: str
    schema_version: int = STORE_SCHEMA_VERSION

    kind = "asset"

    @property
    def digest(self) -> str:
        """The key's SHA-1 content address (the stored file's basename)."""
        return canonical_digest(
            (
                self.scene_fingerprint,
                self.grid_fingerprint,
                self.schema_version,
            )
        )


#: Memoised registry digests, keyed on the registry's identity so runtime
#: ``register_device`` calls are observed (device / workload construction is
#: cheap but not free, and every cached experiment lookup needs the digest).
_REGISTRY_DIGESTS: dict[tuple, str] = {}

#: Guards :data:`_REGISTRY_DIGESTS`: ``repro run --jobs`` computes result
#: keys on a thread pool, and an unguarded memo write is exactly the race
#: CONC001 (``repro lint``) exists to catch.
_REGISTRY_DIGESTS_LOCK = threading.Lock()


def device_registry_digest() -> str:
    """One digest over the fingerprints of every registered device."""
    from repro.core.device import DEVICE_REGISTRY, get_device

    identity = tuple(sorted((name, id(f)) for name, f in DEVICE_REGISTRY.items()))
    with _REGISTRY_DIGESTS_LOCK:
        if identity not in _REGISTRY_DIGESTS:
            _REGISTRY_DIGESTS[identity] = canonical_digest(
                {
                    name: get_device(name).fingerprint()
                    for name in sorted(DEVICE_REGISTRY)
                }
            )
        return _REGISTRY_DIGESTS[identity]


def model_registry_digest() -> str:
    """One digest over every registered NeRF model's default-config workload.

    Editing a model descriptor (layer widths, encoding tables, op counts)
    changes its default-config workload digest, which is how experiment
    results cached by :func:`environment_digest` get invalidated without a
    schema bump.
    """
    from repro.nerf.models import MODEL_REGISTRY, FrameConfig, get_model

    identity = ("models",) + tuple(
        sorted((name, id(cls)) for name, cls in MODEL_REGISTRY.items())
    )
    with _REGISTRY_DIGESTS_LOCK:
        if identity not in _REGISTRY_DIGESTS:
            config = FrameConfig()
            _REGISTRY_DIGESTS[identity] = canonical_digest(
                {
                    name: workload_digest(get_model(name).build_workload(config))
                    for name in sorted(MODEL_REGISTRY)
                }
            )
        return _REGISTRY_DIGESTS[identity]


def environment_digest() -> str:
    """The simulation environment's combined identity for result caching.

    Hashes every registered device's fingerprint *and* every registered
    model's default workload digest, so a cached experiment result is
    invalidated by any device-model or NeRF-descriptor edit -- the same
    edits that would invalidate the frame tier entry by entry.
    """
    return canonical_digest(
        {"devices": device_registry_digest(), "models": model_registry_digest()}
    )


# -- FrameReport (de)serialization --------------------------------------------


def report_to_dict(report: "FrameReport") -> dict[str, Any]:
    """JSON-safe representation of a report, bit-exact under round-trip.

    Python's ``json`` emits floats via ``repr``, which round-trips IEEE-754
    doubles exactly, so a stored report reloads with identical latency /
    energy / per-op numbers (pinned by ``tests/perf/test_store.py``).
    """
    return {
        "device": report.device,
        "model_name": report.model_name,
        "latency_s": report.latency_s,
        "energy_j": report.energy_j,
        "precision": report.precision.name if report.precision else None,
        "extra": dict(report.extra),
        "trace": {
            "device": report.trace.device,
            "model_name": report.trace.model_name,
            "records": [
                {
                    "name": r.name,
                    "category": r.category.name,
                    "time_s": r.time_s,
                    "energy_j": r.energy_j,
                    "compute_time_s": r.compute_time_s,
                    "dram_time_s": r.dram_time_s,
                    "format_conversion_time_s": r.format_conversion_time_s,
                    "dram_bytes": r.dram_bytes,
                    "utilization": r.utilization,
                }
                for r in report.trace.records
            ],
        },
    }


def report_from_dict(data: dict[str, Any]) -> "FrameReport":
    """Rebuild a :class:`FrameReport` from :func:`report_to_dict` output."""
    from repro.core.accelerator import FrameReport
    from repro.sim.trace import ExecutionTrace, OpRecord

    trace_data = data["trace"]
    trace = ExecutionTrace(
        device=trace_data["device"],
        model_name=trace_data["model_name"],
        records=[
            OpRecord(
                name=r["name"],
                category=OpCategory[r["category"]],
                time_s=r["time_s"],
                energy_j=r["energy_j"],
                compute_time_s=r["compute_time_s"],
                dram_time_s=r["dram_time_s"],
                format_conversion_time_s=r["format_conversion_time_s"],
                dram_bytes=r["dram_bytes"],
                utilization=r["utilization"],
            )
            for r in trace_data["records"]
        ],
    )
    return FrameReport(
        device=data["device"],
        model_name=data["model_name"],
        latency_s=data["latency_s"],
        energy_j=data["energy_j"],
        trace=trace,
        precision=Precision[data["precision"]] if data["precision"] else None,
        extra=dict(data["extra"]),
    )


# -- the store itself ----------------------------------------------------------


@dataclass(frozen=True)
class StoreStats:
    """Snapshot of a store's on-disk contents (``repro cache stats``)."""

    root: str
    schema_version: int
    entries: int
    total_bytes: int
    stale_entries: int

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe mapping of the snapshot."""
        return {
            "root": self.root,
            "schema_version": self.schema_version,
            "entries": self.entries,
            "total_bytes": self.total_bytes,
            "stale_entries": self.stale_entries,
        }


class ResultStore:
    """A directory of content-addressed frame simulations.

    Layout: ``root/v<schema>/<digest[:2]>/<digest>.json``; the two-level
    fan-out keeps directories small at fleet-sweep entry counts.  All
    operations tolerate concurrent readers and writers (atomic replace,
    corrupt-as-miss), making the store safe under ``repro run --jobs`` and
    parallel CI shards sharing one cache directory.
    """

    def __init__(self, root: Path | str) -> None:
        """Bind the store to ``root`` (created lazily on first write)."""
        self.root = Path(root)
        self.schema_version = STORE_SCHEMA_VERSION
        self._write_warned = False

    @classmethod
    def default(cls) -> "ResultStore":
        """The store CLI runs use: ``$REPRO_STORE_DIR`` or ``<checkout>/.repro-store``.

        Falls back to a CWD-relative ``.repro-store`` when the package does
        not run from a source checkout (plain site-packages install).
        """
        env = os.environ.get(STORE_DIR_ENV)
        if env:
            return cls(Path(env))
        checkout = Path(__file__).resolve().parents[3]
        if (checkout / "pyproject.toml").exists():
            return cls(checkout / DEFAULT_STORE_DIRNAME)
        return cls(Path(DEFAULT_STORE_DIRNAME))

    # -- pathing ---------------------------------------------------------------

    def _schema_dir(self, schema_version: int | None = None) -> Path:
        version = self.schema_version if schema_version is None else schema_version
        return self.root / f"v{version}"

    def path_for(self, key: "StoreKey | ExperimentResultKey | GridAssetKey | PlanPointKey") -> Path:
        """On-disk location of ``key``'s entry."""
        digest = key.digest
        return (
            self._schema_dir(key.schema_version)
            / key.kind
            / digest[:2]
            / f"{digest}.json"
        )

    def _entry_files(self, schema_only: bool = True) -> Iterator[Path]:
        base = self._schema_dir() if schema_only else self.root
        if not base.exists():
            return
        yield from sorted(base.rglob("*.json"))

    def _is_current_schema(self, path: Path) -> bool:
        return f"v{self.schema_version}" in path.parts

    # -- read / write ----------------------------------------------------------

    def _read_document(
        self, key: "StoreKey | ExperimentResultKey | GridAssetKey | PlanPointKey"
    ) -> dict[str, Any] | None:
        """The raw JSON document stored under ``key``, or None on any problem."""
        path = self.path_for(key)
        try:
            data = json.loads(path.read_text())
            if data.get("schema_version") != key.schema_version:
                return None
            return data
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            # Truncated / corrupt / foreign file: treat as a miss and drop it
            # so the slot heals on the next put.
            try:
                path.unlink(missing_ok=True)
            except OSError:  # pragma: no cover - unwritable store
                pass
            return None

    def _write_document(
        self,
        key: "StoreKey | ExperimentResultKey | GridAssetKey | PlanPointKey",
        document: dict[str, Any],
    ) -> Path:
        """Atomically persist one entry; readers never see partial files.

        An unwritable store (read-only CI cache, bogus ``$REPRO_STORE_DIR``)
        degrades to cold simulation instead of crashing the run: the first
        failure prints one warning to stderr, subsequent ones are silent,
        and the entry simply is not persisted.
        """
        path = self.path_for(key)
        try:
            self._atomic_write(path, document)
        except OSError as exc:
            if not self._write_warned:
                self._write_warned = True
                print(
                    f"warning: result store {self.root} is not writable "
                    f"({exc}); continuing without persistence",
                    file=sys.stderr,
                )
        return path

    @staticmethod
    def _atomic_write(path: Path, document: dict[str, Any]) -> None:
        """Write one JSON document via unique temp file + ``os.replace``."""
        path.parent.mkdir(parents=True, exist_ok=True)
        # Unique temp name per writer; os.replace is atomic on POSIX and
        # Windows, so readers only ever see complete entries.
        tmp = path.with_suffix(f".tmp-{os.getpid()}-{os.urandom(4).hex()}")
        tmp.write_text(json.dumps(document))
        os.replace(tmp, path)

    def get(self, key: StoreKey) -> "FrameReport | None":
        """The stored report for ``key``, or None (missing or unreadable)."""
        data = self._read_document(key)
        if data is None:
            return None
        try:
            return report_from_dict(data["report"])
        except (KeyError, TypeError, ValueError):
            return None

    def put(self, key: StoreKey, report: "FrameReport") -> Path:
        """Persist ``report`` under ``key`` atomically; returns the path."""
        return self._write_document(
            key,
            {
                "schema_version": key.schema_version,
                "created_s": time.time(),
                "key": {
                    "device_fingerprint": key.device_fingerprint,
                    "workload_digest": key.workload_digest,
                    "precision": key.precision,
                    "pruning_ratio": key.pruning_ratio,
                },
                "report": report_to_dict(report),
            },
        )

    def get_asset(self, key: GridAssetKey) -> dict[str, Any] | None:
        """The cached asset payload for ``key``, or None.

        The payload is whatever :meth:`put_asset` stored -- for fitted hash
        grids, a ``{"tables": [...]}`` mapping whose nested float lists
        round-trip IEEE-754 doubles exactly (JSON emits floats via
        ``repr``), so a reloaded grid renders bit-identically.
        """
        data = self._read_document(key)
        if data is None:
            return None
        payload = data.get("payload")
        return payload if isinstance(payload, dict) else None

    def put_asset(self, key: GridAssetKey, payload: dict[str, Any]) -> Path:
        """Persist one asset payload under ``key`` atomically."""
        return self._write_document(
            key,
            {
                "schema_version": key.schema_version,
                "created_s": time.time(),
                "key": {
                    "scene_fingerprint": key.scene_fingerprint,
                    "grid_fingerprint": key.grid_fingerprint,
                },
                "payload": payload,
            },
        )

    def get_result(self, key: ExperimentResultKey) -> dict[str, Any] | None:
        """The cached experiment-result payload for ``key``, or None.

        The payload is whatever :meth:`put_result` stored -- by convention
        the serialized :class:`~repro.experiments.api.ExperimentResult`
        mapping plus its rendered table (see ``repro.experiments.cli``).
        """
        data = self._read_document(key)
        if data is None:
            return None
        payload = data.get("payload")
        return payload if isinstance(payload, dict) else None

    def put_result(self, key: ExperimentResultKey, payload: dict[str, Any]) -> Path:
        """Persist one experiment-result payload under ``key`` atomically."""
        return self._write_document(
            key,
            {
                "schema_version": key.schema_version,
                "created_s": time.time(),
                "key": {
                    "experiment_id": key.experiment_id,
                    "params_fingerprint": key.params_fingerprint,
                    "environment_digest": key.environment_digest,
                },
                "payload": payload,
            },
        )

    def get_plan(self, key: PlanPointKey) -> dict[str, Any] | None:
        """The cached plan-point payload for ``key``, or None.

        The payload is whatever :meth:`put_plan` stored -- by convention the
        serialized ``repro.plan.evaluate.EvaluatedPoint`` mapping (candidate
        fleet plus its scored serving metrics).
        """
        data = self._read_document(key)
        if data is None:
            return None
        payload = data.get("payload")
        return payload if isinstance(payload, dict) else None

    def put_plan(self, key: PlanPointKey, payload: dict[str, Any]) -> Path:
        """Persist one evaluated plan point under ``key`` atomically."""
        return self._write_document(
            key,
            {
                "schema_version": key.schema_version,
                "created_s": time.time(),
                "key": {
                    "space_digest": key.space_digest,
                    "point_digest": key.point_digest,
                },
                "payload": payload,
            },
        )

    # -- pack export / merge ---------------------------------------------------

    def _pack_entries(self) -> Iterator[tuple[str, dict[str, Any]]]:
        """Yield ``(relative path, document)`` for every readable current entry."""
        base = self._schema_dir()
        for path in self._entry_files():
            try:
                document = json.loads(path.read_text())
            except (OSError, ValueError):
                continue  # corrupt / racing entry: not worth shipping
            if (
                isinstance(document, dict)
                and document.get("schema_version") == self.schema_version
            ):
                yield path.relative_to(base).as_posix(), document

    def export_pack(self, out: Path | str) -> Path:
        """Write every current-schema entry into one portable pack file.

        The pack is a single JSON document carrying the store's schema
        version and each entry's relative path plus full stored document,
        so :meth:`merge_from` can reconstruct the entries byte-equivalently
        in any other store.  Stale-schema generations are not exported.
        Returns the written path.
        """
        out = Path(out)
        pack = {
            "schema": PACK_SCHEMA,
            "pack_schema_version": PACK_SCHEMA_VERSION,
            "store_schema_version": self.schema_version,
            "entries": [
                {"path": rel, "document": document}
                for rel, document in self._pack_entries()
            ],
        }
        self._atomic_write(out, pack)
        return out

    @staticmethod
    def _load_pack(source: Path) -> dict[str, Any]:
        """Parse and shape-check one pack file; raises ValueError on problems."""
        try:
            pack = json.loads(source.read_text())
        except FileNotFoundError:
            raise ValueError(f"no such pack file: {source}") from None
        except (OSError, ValueError) as exc:
            raise ValueError(f"cannot read pack {source}: {exc}") from None
        if not isinstance(pack, dict) or pack.get("schema") != PACK_SCHEMA:
            raise ValueError(f"{source} is not a result-store pack")
        if pack.get("pack_schema_version") != PACK_SCHEMA_VERSION:
            raise ValueError(
                f"{source} uses pack schema "
                f"v{pack.get('pack_schema_version')}, "
                f"this build reads v{PACK_SCHEMA_VERSION}"
            )
        if not isinstance(pack.get("entries"), list):
            raise ValueError(f"{source} carries no entry list")
        return pack

    @staticmethod
    def _comparable(document: dict[str, Any]) -> dict[str, Any]:
        """A document stripped of its write timestamp, for identity checks."""
        return {k: v for k, v in document.items() if k != "created_s"}

    @staticmethod
    def _safe_relative_path(rel: Any, base: Path) -> bool:
        """Whether a pack entry path stays strictly inside ``base``.

        Beyond the obvious ``..`` components, this rejects anything the
        host's path semantics could carry outside the store -- absolute
        paths, Windows drive letters and backslash separators -- by
        resolving the joined path and requiring ``base`` as an ancestor.
        """
        if not isinstance(rel, str) or not rel or "\\" in rel or ":" in rel:
            return False
        if rel.startswith("/") or ".." in rel.split("/"):
            return False
        try:
            resolved_base = base.resolve()
            resolved = (base / rel).resolve()
            return resolved != resolved_base and resolved.is_relative_to(
                resolved_base
            )
        except (OSError, ValueError):  # pragma: no cover - exotic paths
            return False

    def merge_from(
        self, source: "ResultStore | Path | str", strict: bool = True
    ) -> MergeStats:
        """Merge entries from a pack file or another store into this store.

        ``source`` is a pack file written by :meth:`export_pack`, a store
        directory, or a :class:`ResultStore`.  Semantics per entry:

        * **new key** -- written atomically (``added``);
        * **same key, identical content** (write timestamps excluded) --
          the incoming entry wins the race exactly as a concurrent writer
          would (``identical``);
        * **same key, different content** -- a genuine conflict: recorded
          in ``conflicts`` and, under ``strict`` (the default), raised as
          :class:`PackConflictError` after the merge pass (the target's
          entries are kept either way);
        * **foreign schema generation / unreadable** -- ``skipped``.

        Only current-schema entries move; a pack whose
        ``store_schema_version`` differs from this build's raises
        ValueError, since its content would be unreadable anyway.
        """
        if isinstance(source, ResultStore):
            entries = list(source._pack_entries())
            if source.schema_version != self.schema_version:  # pragma: no cover
                raise ValueError("cannot merge across store schema versions")
        else:
            source_path = Path(source)
            if source_path.is_dir():
                return self.merge_from(ResultStore(source_path), strict=strict)
            pack = self._load_pack(source_path)
            if pack["store_schema_version"] != self.schema_version:
                raise ValueError(
                    f"{source_path} was exported from store schema "
                    f"v{pack['store_schema_version']}, this build uses "
                    f"v{self.schema_version}"
                )
            entries = [
                (entry.get("path"), entry.get("document"))
                for entry in pack["entries"]
                if isinstance(entry, dict)
            ]
        base = self._schema_dir()
        added = identical = skipped = 0
        conflicts: list[str] = []
        for rel, document in entries:
            if (
                not self._safe_relative_path(rel, base)
                or not isinstance(document, dict)
                or document.get("schema_version") != self.schema_version
            ):
                skipped += 1
                continue
            target = base / rel
            existing: dict[str, Any] | None = None
            try:
                loaded = json.loads(target.read_text())
                if isinstance(loaded, dict):
                    existing = loaded
            except (OSError, ValueError):
                existing = None  # absent or corrupt: incoming entry heals it
            try:
                if existing is None:
                    self._atomic_write(target, document)
                    added += 1
                elif self._comparable(existing) == self._comparable(document):
                    self._atomic_write(target, document)  # last write wins
                    identical += 1
                else:
                    conflicts.append(rel)
            except OSError:  # pragma: no cover - unwritable target
                skipped += 1
        if strict and conflicts:
            raise PackConflictError(conflicts)
        return MergeStats(
            added=added,
            identical=identical,
            skipped=skipped,
            conflicts=tuple(conflicts),
        )

    # -- maintenance -----------------------------------------------------------

    def stats(self) -> StoreStats:
        """Entry counts and on-disk footprint, split current vs. stale schema."""
        entries = 0
        total_bytes = 0
        stale = 0
        for path in self._entry_files(schema_only=False):
            try:
                size = path.stat().st_size
            except OSError:  # pragma: no cover - racing eviction
                continue
            total_bytes += size
            if self._is_current_schema(path):
                entries += 1
            else:
                stale += 1
        return StoreStats(
            root=str(self.root),
            schema_version=self.schema_version,
            entries=entries,
            total_bytes=total_bytes,
            stale_entries=stale,
        )

    def clear(self) -> int:
        """Delete every entry (all schema generations); returns the count."""
        removed = 0
        for path in self._entry_files(schema_only=False):
            try:
                path.unlink()
                removed += 1
            except OSError:  # pragma: no cover - racing writer
                continue
        return removed

    def evict(
        self,
        max_entries: int | None = None,
        max_age_s: float | None = None,
    ) -> int:
        """Drop stale-schema entries, then the oldest beyond the given bounds.

        ``max_entries`` keeps at most that many newest current-schema
        entries; ``max_age_s`` drops entries older than the horizon.  Either
        bound may be None; negative bounds are rejected (a negative slice
        would silently doom the whole store).  Stale-schema generations are
        always evicted.  Returns the number of files removed.
        """
        if max_entries is not None and max_entries < 0:
            raise ValueError(f"max_entries must be >= 0, got {max_entries}")
        if max_age_s is not None and max_age_s < 0:
            raise ValueError(f"max_age_s must be >= 0, got {max_age_s}")
        removed = 0
        for path in self._entry_files(schema_only=False):
            if not self._is_current_schema(path):
                try:
                    path.unlink()
                    removed += 1
                except OSError:  # pragma: no cover - racing writer
                    pass
        aged: list[tuple[float, Path]] = []
        for path in self._entry_files():
            try:
                aged.append((path.stat().st_mtime, path))
            except OSError:  # pragma: no cover - racing eviction
                continue
        aged.sort()  # oldest first
        now = time.time()
        doomed: list[Path] = []
        if max_age_s is not None:
            doomed.extend(p for mtime, p in aged if now - mtime > max_age_s)
        if max_entries is not None and len(aged) > max_entries:
            doomed.extend(p for _, p in aged[: len(aged) - max_entries])
        for path in dict.fromkeys(doomed):
            try:
                path.unlink()
                removed += 1
            except OSError:  # pragma: no cover - racing writer
                continue
        return removed

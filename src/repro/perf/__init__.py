"""Performance infrastructure: the persistent result store and the bench harness.

Two concerns live here, both documented in ``docs/performance.md``:

* :mod:`repro.perf.store` -- a content-addressed on-disk cache of frame
  simulations, keyed by (device fingerprint, workload digest, effective
  knobs, store schema version).  The :class:`~repro.sim.sweep.SweepEngine`
  reads through it transparently, so a warm ``repro run all`` (and every
  :class:`~repro.serve.fleet.FleetSimulator` study) skips cycle-level
  simulation entirely.
* :mod:`repro.perf.bench` -- the ``repro bench`` measurement harness: cold
  vs. warm sweep timing, per-experiment wall time, fleet-simulator
  throughput and hot-path microbenchmarks, emitted as a schema-versioned
  ``BENCH_<rev>.json`` trajectory point.
* :mod:`repro.perf.distributed` -- deterministic sharding of sweeps and
  experiment sets by store cache key, plus pack-and-merge assembly: the
  machinery behind ``repro shard`` / ``repro assemble`` and the CI shard
  matrix (``docs/distributed.md``).
"""

from repro.perf.store import (
    PACK_SCHEMA_VERSION,
    STORE_SCHEMA_VERSION,
    ExperimentResultKey,
    MergeStats,
    PackConflictError,
    PlanPointKey,
    ResultStore,
    StoreKey,
    device_registry_digest,
    environment_digest,
    model_registry_digest,
)
from repro.perf.bench import (
    BENCH_SCHEMA_VERSION,
    compare_bench,
    run_bench,
    validate_bench,
)
from repro.perf.distributed import (
    Shard,
    assemble_packs,
    shard_experiments,
    shard_index,
    shard_of,
)

__all__ = [
    "PACK_SCHEMA_VERSION",
    "STORE_SCHEMA_VERSION",
    "ExperimentResultKey",
    "MergeStats",
    "PackConflictError",
    "PlanPointKey",
    "ResultStore",
    "StoreKey",
    "device_registry_digest",
    "environment_digest",
    "model_registry_digest",
    "BENCH_SCHEMA_VERSION",
    "compare_bench",
    "run_bench",
    "validate_bench",
    "Shard",
    "assemble_packs",
    "shard_experiments",
    "shard_index",
    "shard_of",
]

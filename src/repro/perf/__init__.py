"""Performance infrastructure: the persistent result store and the bench harness.

Two concerns live here, both documented in ``docs/performance.md``:

* :mod:`repro.perf.store` -- a content-addressed on-disk cache of frame
  simulations, keyed by (device fingerprint, workload digest, effective
  knobs, store schema version).  The :class:`~repro.sim.sweep.SweepEngine`
  reads through it transparently, so a warm ``repro run all`` (and every
  :class:`~repro.serve.fleet.FleetSimulator` study) skips cycle-level
  simulation entirely.
* :mod:`repro.perf.bench` -- the ``repro bench`` measurement harness: cold
  vs. warm sweep timing, per-experiment wall time, fleet-simulator
  throughput and hot-path microbenchmarks, emitted as a schema-versioned
  ``BENCH_<rev>.json`` trajectory point.
"""

from repro.perf.store import (
    STORE_SCHEMA_VERSION,
    ExperimentResultKey,
    ResultStore,
    StoreKey,
    device_registry_digest,
    environment_digest,
    model_registry_digest,
)
from repro.perf.bench import BENCH_SCHEMA_VERSION, run_bench, validate_bench

__all__ = [
    "STORE_SCHEMA_VERSION",
    "ExperimentResultKey",
    "ResultStore",
    "StoreKey",
    "device_registry_digest",
    "environment_digest",
    "model_registry_digest",
    "BENCH_SCHEMA_VERSION",
    "run_bench",
    "validate_bench",
]

"""The ``repro bench`` harness: measured performance trajectory points.

Every invocation produces one schema-versioned JSON document
(``BENCH_<rev>.json``) with four measured sections:

* ``sweep`` -- one reference device x model x precision x pruning sweep
  timed three ways: **cold** (fresh engine, empty store, simulate + write
  back), **warm_memory** (same engine re-run, in-memory cache only) and
  **warm_store** (fresh engine reading a populated store, zero renders);
* ``experiments`` -- per-experiment wall time, in registry order on the
  shared engine, exactly like ``repro run all``;
* ``serving`` -- :class:`~repro.serve.fleet.FleetSimulator` throughput on
  the reference scenario mix (requests simulated per wall-clock second);
* ``hot_path`` -- microbenchmarks of the memoised cycle-model hot paths
  (:func:`repro.sim.tiling.tile_counts`,
  :func:`repro.sim.memory.stored_operand_bytes`) against their uncached
  originals, quantifying the optimization the store cannot see.

``--quick`` shrinks every section to a CI-smoke footprint.  The document
layout is guarded by :func:`validate_bench`, which ``repro bench
--validate`` (and CI) runs so schema drift fails loudly instead of
corrupting the trajectory; see ``docs/performance.md`` for how to read the
numbers.
"""

from __future__ import annotations

import json
import platform
import subprocess
import sys
import time
from datetime import datetime, timezone
from pathlib import Path
from typing import Any

#: Version of the BENCH document layout; bump on any structural change so
#: trajectory consumers can refuse documents they do not understand.
BENCH_SCHEMA_VERSION = 1

#: The ``schema`` marker every BENCH document carries.
BENCH_SCHEMA = "repro-bench"

#: Experiment ids the quick (CI smoke) experiment section is limited to:
#: one analytical, one hardware-cost, one frame-simulating study, and the
#: two historical wall-time whales (fig13 / fig20a), whose budget CI
#: enforces (see ``.github/workflows/ci.yml``).
QUICK_EXPERIMENT_IDS = ("fig04", "fig16", "fig01", "fig13", "fig20a")


def repo_revision() -> str:
    """Short git revision of the measured tree (``-dirty`` when modified).

    Falls back to ``unknown`` outside a git checkout so the harness stays
    usable from plain source archives.
    """
    root = Path(__file__).resolve().parents[3]
    try:
        rev = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=root,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=root,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
        return f"{rev}-dirty" if status else rev
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


# -- measured sections ---------------------------------------------------------


def _reference_spec(quick: bool):
    """The sweep the cold/warm comparison times (smaller under ``--quick``)."""
    from repro.nerf.models import FrameConfig
    from repro.sim.sweep import SweepSpec
    from repro.sparse.formats import Precision

    if quick:
        return SweepSpec(
            devices=("flexnerfer",),
            models=("instant-ngp",),
            precisions=(None, Precision.INT8),
            pruning_ratios=(0.0, 0.5),
            base_config=FrameConfig(image_width=200, image_height=200),
        )
    # Matches the experiments' default frame shape (800x800) and spans the
    # capability space (precision-scalable, fixed-precision, roofline and
    # utilisation-model devices) so cold_s is a representative, reliably
    # timeable simulation load rather than a microsecond blip.
    return SweepSpec(
        devices=("flexnerfer", "neurex", "rtx-2080-ti", "nvdla", "tpu"),
        models=("nerf", "instant-ngp", "tensorf", "kilonerf"),
        precisions=(None, Precision.INT8, Precision.INT4),
        pruning_ratios=(0.0, 0.5, 0.9),
        base_config=FrameConfig(),
    )


def bench_sweep(quick: bool, store_root: Path) -> dict[str, Any]:
    """Time the reference sweep cold, memory-warm and store-warm."""
    from repro.perf.store import ResultStore
    from repro.sim.sweep import SweepEngine

    spec = _reference_spec(quick)
    store = ResultStore(store_root)

    cold_engine = SweepEngine(store=store)
    start = time.perf_counter()
    cold_rows = cold_engine.run(spec)
    cold_s = time.perf_counter() - start
    render_calls = cold_engine.stats.render_calls

    start = time.perf_counter()
    cold_engine.run(spec)
    warm_memory_s = time.perf_counter() - start

    warm_engine = SweepEngine(store=store)
    start = time.perf_counter()
    warm_rows = warm_engine.run(spec)
    warm_store_s = time.perf_counter() - start

    identical = all(
        a.report.latency_s == b.report.latency_s
        and a.report.energy_j == b.report.energy_j
        for a, b in zip(cold_rows, warm_rows)
    )
    return {
        "sweep_points": len(cold_rows),
        "render_calls": render_calls,
        "warm_store_render_calls": warm_engine.stats.render_calls,
        "store_hits": warm_engine.stats.store_hits,
        "cold_s": cold_s,
        "warm_memory_s": warm_memory_s,
        "warm_store_s": warm_store_s,
        "warm_store_speedup": cold_s / warm_store_s if warm_store_s > 0 else 0.0,
        "warm_bit_exact": identical,
    }


def bench_experiments(quick: bool) -> list[dict[str, Any]]:
    """Wall time of each experiment, run in registry order on one engine."""
    from repro.experiments.registry import EXPERIMENTS
    from repro.sim.sweep import get_default_engine

    # Cold in-memory timings: experiments share the process-wide engine
    # (so the numbers reflect `repro run all` cache reuse between
    # experiments) but never a persistent store or earlier activity.  The
    # caller's store attachment is restored afterwards; the cleared
    # in-memory caches simply re-warm.
    engine = get_default_engine()
    previous_store = engine.store
    engine.clear()
    engine.attach_store(None)
    rows = []
    try:
        for exp_id, exp in EXPERIMENTS.items():
            if quick and exp_id not in QUICK_EXPERIMENT_IDS:
                continue
            result = exp.run()
            rows.append(
                {"id": exp_id, "wall_time_s": result.provenance.wall_time_s}
            )
    finally:
        engine.attach_store(previous_store)
    return rows


def bench_serving(quick: bool) -> dict[str, Any]:
    """Event-loop throughput of the fleet simulator on warmed estimates."""
    from repro.experiments._serving import REFERENCE_MIX
    from repro.serve.fleet import FleetSimulator
    from repro.serve.request import PoissonStream
    from repro.serve.scheduler import FIFOScheduler
    from repro.sim.sweep import SweepEngine

    duration_s = 10.0 if quick else 60.0
    rate_rps = 40.0
    stream = PoissonStream(
        rate_rps=rate_rps, duration_s=duration_s, mix=REFERENCE_MIX, sla_s=0.25
    )
    requests = stream.generate(seed=0)
    engine = SweepEngine()
    simulator = FleetSimulator(
        ("flexnerfer", "neurex"), scheduler=FIFOScheduler(), engine=engine
    )
    simulator.run(requests)  # warm the frame-report cache
    start = time.perf_counter()
    report = simulator.run(requests)
    wall_s = time.perf_counter() - start
    return {
        "num_requests": report.num_requests,
        "simulated_duration_s": duration_s,
        "offered_rate_rps": rate_rps,
        "wall_s": wall_s,
        "requests_per_wall_s": report.num_requests / wall_s if wall_s > 0 else 0.0,
        "time_compression": duration_s / wall_s if wall_s > 0 else 0.0,
    }


def _time_per_call(fn, arguments: list[tuple], repeats: int) -> float:
    """Mean seconds per call of ``fn`` over ``repeats`` passes of ``arguments``."""
    start = time.perf_counter()
    for _ in range(repeats):
        for args in arguments:
            fn(*args)
    elapsed = time.perf_counter() - start
    return elapsed / max(1, repeats * len(arguments))


def bench_hot_path(quick: bool) -> dict[str, Any]:
    """Microbenchmark the memoised hot paths against their uncached originals."""
    from repro.nerf.models import FrameConfig, get_model
    from repro.sim.array_config import ArrayConfig
    from repro.sim.memory import stored_operand_bytes
    from repro.sim.tiling import tile_counts

    repeats = 20 if quick else 200
    config = ArrayConfig(name="bench", supports_sparsity=True)
    workload = get_model("instant-ngp").build_workload(
        FrameConfig(image_width=200, image_height=200)
    )
    gemm_ops = workload.gemm_ops()

    tiling_args = [(op, config) for op in gemm_ops]
    tile_counts.cache_clear()
    cached_tiling_s = _time_per_call(tile_counts, tiling_args, repeats)
    uncached_tiling_s = _time_per_call(
        tile_counts.__wrapped__, tiling_args, repeats
    )

    operand_args = [
        (op.k, op.n, op.weight_sparsity, op.precision, True) for op in gemm_ops
    ]
    stored_operand_bytes.cache_clear()
    cached_operand_s = _time_per_call(stored_operand_bytes, operand_args, repeats)
    uncached_operand_s = _time_per_call(
        stored_operand_bytes.__wrapped__, operand_args, repeats
    )

    def section(cached_s: float, uncached_s: float) -> dict[str, float]:
        return {
            "cached_s_per_call": cached_s,
            "uncached_s_per_call": uncached_s,
            "speedup": uncached_s / cached_s if cached_s > 0 else 0.0,
        }

    return {
        "tiling": section(cached_tiling_s, uncached_tiling_s),
        "operand_bytes": section(cached_operand_s, uncached_operand_s),
        "scene_density": _bench_scene_density(quick),
        "fleet_dispatch": _bench_fleet_dispatch(quick),
    }


def _bench_scene_density(quick: bool) -> dict[str, float]:
    """Batched scene-field kernel vs the seed broadcast implementation.

    Times :meth:`~repro.nerf.scenes.SyntheticScene.density` (the chunked
    squared-distance GEMM) against
    :meth:`~repro.nerf.scenes.SyntheticScene.reference_density` (the
    ``(N, P, 3)`` broadcast) on one query batch of the renderers' scale.
    """
    import numpy as np

    from repro.nerf.scenes import get_scene

    scene = get_scene("lego")
    num_points = 8_000 if quick else 60_000
    points = np.random.default_rng(0).uniform(-1.0, 1.0, size=(num_points, 3))
    repeats = 2 if quick else 5
    batched_s = _time_per_call(scene.density, [(points,)], repeats)
    reference_s = _time_per_call(scene.reference_density, [(points,)], repeats)
    return {
        "num_points": num_points,
        "batched_s_per_call": batched_s,
        "reference_s_per_call": reference_s,
        "speedup": reference_s / batched_s if batched_s > 0 else 0.0,
    }


def _bench_fleet_dispatch(quick: bool) -> dict[str, float]:
    """FIFO fleet fast path vs the discrete-event loop on one short trace.

    Both paths produce bit-identical reports (asserted here as well as in
    the test suite); the measurement is pure dispatch overhead on warmed
    frame-report caches.
    """
    from repro.experiments._serving import REFERENCE_MIX
    from repro.serve.fleet import FleetSimulator
    from repro.serve.request import PoissonStream
    from repro.sim.sweep import SweepEngine

    duration_s = 5.0 if quick else 20.0
    stream = PoissonStream(
        rate_rps=40.0, duration_s=duration_s, mix=REFERENCE_MIX, sla_s=0.25
    )
    requests = stream.generate(seed=0)
    simulator = FleetSimulator(("flexnerfer", "neurex"), engine=SweepEngine())
    fast_report = simulator.run(requests)  # warms the frame-report cache
    repeats = 2 if quick else 5
    fast_s = _time_per_call(simulator.run, [(requests,)], repeats)
    event_loop_s = _time_per_call(
        simulator._run_event_loop, [(requests,)], repeats
    )
    if simulator._run_event_loop(requests) != fast_report:  # pragma: no cover
        raise RuntimeError("fleet fast path diverged from the event loop")
    return {
        "num_requests": len(requests),
        "fast_s_per_run": fast_s,
        "event_loop_s_per_run": event_loop_s,
        "requests_per_wall_s": len(requests) / fast_s if fast_s > 0 else 0.0,
        "speedup": event_loop_s / fast_s if fast_s > 0 else 0.0,
    }


# -- the document --------------------------------------------------------------


def run_bench(quick: bool = False, store_root: Path | None = None) -> dict[str, Any]:
    """Run every section and assemble one BENCH document.

    ``store_root`` overrides where the cold/warm comparison keeps its
    throwaway store (a sibling of the measured tree by default is *not*
    used -- the comparison always runs against its own directory so a
    pre-warmed user store cannot fake a cold time).
    """
    import tempfile

    from repro import __version__
    from repro.perf.store import STORE_SCHEMA_VERSION

    with tempfile.TemporaryDirectory(prefix="repro-bench-store-") as tmp:
        sweep = bench_sweep(quick, store_root or Path(tmp))
    return {
        "schema": BENCH_SCHEMA,
        "schema_version": BENCH_SCHEMA_VERSION,
        "store_schema_version": STORE_SCHEMA_VERSION,
        "revision": repo_revision(),
        "repo_version": __version__,
        "created_utc": datetime.now(timezone.utc).isoformat(),
        "quick": quick,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "sweep": sweep,
        "experiments": bench_experiments(quick),
        "serving": bench_serving(quick),
        "hot_path": bench_hot_path(quick),
    }


#: Required (key, type) pairs of the document root.
_ROOT_FIELDS: tuple[tuple[str, type | tuple[type, ...]], ...] = (
    ("schema", str),
    ("schema_version", int),
    ("store_schema_version", int),
    ("revision", str),
    ("repo_version", str),
    ("created_utc", str),
    ("quick", bool),
    ("python", str),
    ("platform", str),
    ("sweep", dict),
    ("experiments", list),
    ("serving", dict),
    ("hot_path", dict),
)

#: Required numeric keys per measured section.
_SECTION_FIELDS = {
    "sweep": (
        "sweep_points",
        "render_calls",
        "warm_store_render_calls",
        "store_hits",
        "cold_s",
        "warm_memory_s",
        "warm_store_s",
        "warm_store_speedup",
        # bool is an int subclass, so the numeric check accepts it while
        # still failing loudly when the bit-exactness flag goes missing.
        "warm_bit_exact",
    ),
    "serving": (
        "num_requests",
        "simulated_duration_s",
        "offered_rate_rps",
        "wall_s",
        "requests_per_wall_s",
        "time_compression",
    ),
}


def validate_bench(document: Any) -> list[str]:
    """Schema-check one BENCH document; returns the list of problems.

    An empty list means the document conforms to
    :data:`BENCH_SCHEMA_VERSION`; CI runs this after ``repro bench
    --quick`` so any drift between emitter and schema fails the build.
    """
    problems: list[str] = []
    if not isinstance(document, dict):
        return [f"document is {type(document).__name__}, expected object"]
    for key, expected in _ROOT_FIELDS:
        if key not in document:
            problems.append(f"missing key '{key}'")
        elif not isinstance(document[key], expected):
            problems.append(
                f"'{key}' is {type(document[key]).__name__}, "
                f"expected {getattr(expected, '__name__', expected)}"
            )
    if problems:
        return problems
    if document["schema"] != BENCH_SCHEMA:
        problems.append(
            f"schema is '{document['schema']}', expected '{BENCH_SCHEMA}'"
        )
    if document["schema_version"] != BENCH_SCHEMA_VERSION:
        problems.append(
            f"schema_version {document['schema_version']} does not match "
            f"this build's {BENCH_SCHEMA_VERSION} (schema drift)"
        )
    for section, keys in _SECTION_FIELDS.items():
        for key in keys:
            if key not in document[section]:
                problems.append(f"'{section}' section missing key '{key}'")
            elif not isinstance(document[section][key], (int, float)):
                problems.append(f"'{section}.{key}' is not numeric")
    for index, row in enumerate(document["experiments"]):
        if not isinstance(row, dict) or "id" not in row or "wall_time_s" not in row:
            problems.append(f"experiments[{index}] lacks id / wall_time_s")
    # Every hot_path microbenchmark section is optional: the emitted set
    # has grown over time (tiling / operand_bytes, then scene_density /
    # fleet_dispatch) and may grow again, and committed trajectory points
    # from older -- or newer -- revisions must keep validating so --trend
    # and --compare can span them.  Whatever sections are present must
    # each carry a speedup measurement.
    for name, section in document["hot_path"].items():
        if not isinstance(section, dict) or "speedup" not in section:
            problems.append(f"hot_path.{name} lacks a speedup measurement")
    return problems


#: Headline metrics ``compare_bench`` reports: (dotted path, higher-is-better).
_COMPARE_METRICS: tuple[tuple[str, bool], ...] = (
    ("sweep.cold_s", False),
    ("sweep.warm_memory_s", False),
    ("sweep.warm_store_s", False),
    ("sweep.warm_store_speedup", True),
    ("serving.requests_per_wall_s", True),
    ("serving.time_compression", True),
    # All hot_path sections are optional: compare_bench silently skips
    # metrics absent from either document.
    ("hot_path.tiling.speedup", True),
    ("hot_path.operand_bytes.speedup", True),
    ("hot_path.scene_density.speedup", True),
    ("hot_path.fleet_dispatch.speedup", True),
    ("hot_path.fleet_dispatch.requests_per_wall_s", True),
)


def _lookup(document: dict[str, Any], dotted: str) -> float | None:
    """Resolve a dotted metric path in ``document`` (None when absent)."""
    node: Any = document
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return float(node) if isinstance(node, (int, float)) else None


def _delta_pct(baseline: float, current: float) -> float | None:
    """Percentage change of ``current`` over ``baseline`` (None at zero)."""
    if baseline == 0:
        return None
    return (current - baseline) / baseline * 100.0


def compare_bench(
    baseline: dict[str, Any], current: dict[str, Any]
) -> dict[str, Any]:
    """Regression deltas of ``current`` relative to ``baseline``.

    Both documents must validate and carry matching ``quick`` flags
    (comparing a smoke point against a full trajectory point is
    meaningless); mismatches raise ValueError.  Differing ``platform`` /
    ``python`` fields do not block the comparison -- the numbers may still
    be wanted across machines -- but are surfaced as warnings, since
    absolute times only regress meaningfully on the same machine class.

    Returns a JSON-safe report: headline ``metrics`` (value in each
    document, percentage delta, and whether the movement is a regression
    for that metric's direction) plus per-experiment wall-time deltas
    matched by id.
    """
    for label, document in (("baseline", baseline), ("current", current)):
        problems = validate_bench(document)
        if problems:
            raise ValueError(f"{label} document is not a valid BENCH: {problems[0]}")
    if baseline["quick"] != current["quick"]:
        raise ValueError(
            "cannot compare across quick flags "
            f"(baseline quick={baseline['quick']}, current quick={current['quick']})"
        )
    warnings = [
        f"{field} differs ({baseline[field]} vs {current[field]}); "
        "absolute times are not comparable across machines"
        for field in ("platform", "python")
        if baseline[field] != current[field]
    ]
    metrics = []
    for dotted, higher_is_better in _COMPARE_METRICS:
        value_a = _lookup(baseline, dotted)
        value_b = _lookup(current, dotted)
        if value_a is None or value_b is None:
            continue  # optional hot_path section absent from one document
        delta = _delta_pct(value_a, value_b)
        metrics.append(
            {
                "metric": dotted,
                "baseline": value_a,
                "current": value_b,
                "delta_pct": delta,
                "regression": (
                    value_b < value_a if higher_is_better else value_b > value_a
                ),
            }
        )
    walls_a = {row["id"]: row["wall_time_s"] for row in baseline["experiments"]}
    walls_b = {row["id"]: row["wall_time_s"] for row in current["experiments"]}
    experiments = [
        {
            "id": exp_id,
            "baseline": walls_a[exp_id],
            "current": walls_b[exp_id],
            "delta_pct": _delta_pct(walls_a[exp_id], walls_b[exp_id]),
        }
        for exp_id in walls_a
        if exp_id in walls_b
    ]
    return {
        "baseline_revision": baseline["revision"],
        "current_revision": current["revision"],
        "quick": bool(baseline["quick"]),
        "warnings": warnings,
        "metrics": metrics,
        "experiments": experiments,
        "unmatched_experiments": sorted(set(walls_a) ^ set(walls_b)),
    }


def render_compare(comparison: dict[str, Any]) -> str:
    """Human-readable rendering of a :func:`compare_bench` report."""
    lines = [
        f"BENCH compare: {comparison['baseline_revision']} -> "
        f"{comparison['current_revision']}"
        + (" (quick smoke points)" if comparison["quick"] else "")
    ]
    lines += [f"warning: {warning}" for warning in comparison["warnings"]]
    lines += [
        "",
        f"{'metric':<34} {'baseline':>12} {'current':>12} {'delta':>9}",
    ]
    for row in comparison["metrics"]:
        delta = row["delta_pct"]
        delta_text = f"{delta:+8.1f}%" if delta is not None else "      n/a"
        marker = "  <-- regression" if row["regression"] else ""
        lines.append(
            f"{row['metric']:<34} {row['baseline']:>12.4g} "
            f"{row['current']:>12.4g} {delta_text}{marker}"
        )
    if comparison["experiments"]:
        lines += ["", "experiment wall times (s):"]
        for row in comparison["experiments"]:
            delta = row["delta_pct"]
            delta_text = f"{delta:+8.1f}%" if delta is not None else "      n/a"
            lines.append(
                f"  {row['id']:<32} {row['baseline']:>12.3f} "
                f"{row['current']:>12.3f} {delta_text}"
            )
    if comparison["unmatched_experiments"]:
        lines.append(
            "only in one document: "
            + ", ".join(comparison["unmatched_experiments"])
        )
    return "\n".join(lines)


# -- the trend scoreboard ------------------------------------------------------

#: Columns of the trend scoreboard: (header, extractor id, higher-is-better).
#: Extractor ids are dotted metric paths, or ``experiment:<id>`` for a row
#: of the per-experiment wall-time list.
_TREND_COLUMNS: tuple[tuple[str, str, bool], ...] = (
    ("sweep cold s", "sweep.cold_s", False),
    ("warm store s", "sweep.warm_store_s", False),
    ("fig13 s", "experiment:fig13", False),
    ("fig20a s", "experiment:fig20a", False),
    ("serving req/s", "serving.requests_per_wall_s", True),
)


def _trend_value(document: dict[str, Any], extractor: str) -> float | None:
    """Resolve one trend column in ``document`` (None when absent)."""
    if extractor.startswith("experiment:"):
        wanted = extractor.split(":", 1)[1]
        for row in document.get("experiments", ()):
            if isinstance(row, dict) and row.get("id") == wanted:
                value = row.get("wall_time_s")
                return float(value) if isinstance(value, (int, float)) else None
        return None
    return _lookup(document, extractor)


def load_bench_documents(directory: Path) -> list[tuple[Path, dict[str, Any]]]:
    """Every readable, valid ``BENCH_*.json`` under ``directory``.

    Returned in measurement order (by ``created_utc``); unreadable or
    schema-invalid files are skipped silently -- the trend is a scoreboard,
    not a validator (``repro bench --validate`` is).
    """
    documents: list[tuple[Path, dict[str, Any]]] = []
    for path in sorted(directory.glob("BENCH_*.json")):
        try:
            document = json.loads(path.read_text())
        except (OSError, ValueError):
            continue
        if not validate_bench(document):
            documents.append((path, document))
    documents.sort(key=lambda item: str(item[1].get("created_utc", "")))
    return documents


def trend_report(documents: list[dict[str, Any]]) -> dict[str, Any]:
    """The trajectory scoreboard over ``documents`` (measurement order).

    One point per document: revision, quick flag, every
    :data:`_TREND_COLUMNS` metric, and direction-aware percentage deltas
    against the *previous comparable* point (same ``quick`` flag --
    deltas between a smoke point and a full point are meaningless and are
    omitted).  A delta is a regression when it moves against the metric's
    direction.
    """
    points: list[dict[str, Any]] = []
    previous_by_quick: dict[bool, dict[str, Any]] = {}
    for document in documents:
        quick = bool(document.get("quick", False))
        values = {
            header: _trend_value(document, extractor)
            for header, extractor, _ in _TREND_COLUMNS
        }
        deltas: dict[str, dict[str, Any]] = {}
        previous = previous_by_quick.get(quick)
        if previous is not None:
            for header, _, higher_is_better in _TREND_COLUMNS:
                baseline = previous["values"].get(header)
                current = values.get(header)
                if baseline is None or current is None:
                    continue
                delta = _delta_pct(baseline, current)
                if delta is None:
                    continue
                deltas[header] = {
                    "delta_pct": delta,
                    "regression": (
                        current < baseline
                        if higher_is_better
                        else current > baseline
                    ),
                }
        point = {
            "revision": document.get("revision", "unknown"),
            "created_utc": document.get("created_utc", ""),
            "quick": quick,
            "values": values,
            "deltas": deltas,
        }
        points.append(point)
        previous_by_quick[quick] = point
    return {
        "columns": [
            {"header": header, "higher_is_better": higher}
            for header, _, higher in _TREND_COLUMNS
        ],
        "points": points,
    }


def _trend_cell(value: float | None) -> str:
    """One value cell of the trend table."""
    if value is None:
        return "-"
    if value >= 10_000:
        return f"{value:,.0f}"
    return f"{value:.4g}"


def render_trend(report: dict[str, Any]) -> str:
    """Human-readable rendering of a :func:`trend_report` scoreboard."""
    points = report["points"]
    headers = [column["header"] for column in report["columns"]]
    if not points:
        return "no valid BENCH_*.json documents found"
    lines = [f"BENCH trend: {len(points)} point(s), oldest -> newest", ""]
    lines.append(
        f"{'revision':<16} {'quick':<6}"
        + "".join(f" {header:>14}" for header in headers)
    )
    for point in points:
        lines.append(
            f"{point['revision']:<16} {'yes' if point['quick'] else 'no':<6}"
            + "".join(
                f" {_trend_cell(point['values'].get(header)):>14}"
                for header in headers
            )
        )
        if point["deltas"]:
            cells = []
            for header in headers:
                delta = point["deltas"].get(header)
                if delta is None:
                    cells.append(f" {'':>14}")
                    continue
                text = f"{delta['delta_pct']:+.1f}%"
                if delta["regression"]:
                    text += " !"
                cells.append(f" {text:>14}")
            lines.append(f"{'  vs previous':<16} {'':<6}" + "".join(cells))
    if any(point["deltas"].get(h, {}).get("regression") for point in points for h in headers):
        lines += ["", "! marks a direction-aware regression vs the previous comparable point"]
    return "\n".join(lines)


def bench_filename(revision: str) -> str:
    """Canonical trajectory filename for a document measured at ``revision``."""
    return f"BENCH_{revision}.json"


def default_bench_dir() -> Path:
    """Where ``repro bench`` writes by default: the repository checkout root."""
    root = Path(__file__).resolve().parents[3]
    if (root / "pyproject.toml").exists():
        return root
    return Path(".")


def write_bench(document: dict[str, Any], out: Path | None = None) -> Path:
    """Write ``document`` to ``out`` (a directory or file path); returns the path.

    ``out`` is taken as a directory (created if needed) unless it names a
    ``.json`` file, in which case the document is written there verbatim.
    """
    if out is None:
        out = default_bench_dir()
    if out.suffix == ".json" and not out.is_dir():
        path = out
    else:
        path = out / bench_filename(document["revision"])
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=2) + "\n")
    return path


def main(argv: list[str] | None = None) -> int:  # pragma: no cover - thin shim
    """Allow ``python -m repro.perf.bench`` as a CLI-free entry point."""
    from repro.experiments.cli import main as cli_main

    return cli_main(["bench", *(argv if argv is not None else sys.argv[1:])])


if __name__ == "__main__":  # pragma: no cover - exercised via the repro CLI
    sys.exit(main())

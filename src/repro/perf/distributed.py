"""Deterministic store-backed sharding of sweeps and experiment sets.

The persistent :class:`~repro.perf.store.ResultStore` is safe for
concurrent writers (atomic replace, content addressing), which makes one
more scaling step possible: fanning a single evaluation out across
*machines*.  This module supplies the three pieces of that step, all built
on the store's content addresses:

* **Sharding** -- :func:`shard_of` / :func:`shard_index` partition cache
  keys (frame :class:`~repro.perf.store.StoreKey` or whole-experiment
  :class:`~repro.perf.store.ExperimentResultKey` digests) into ``count``
  disjoint, collectively complete shards.  The assignment hashes the
  *content address*, so it is identical across runs, machines and
  platforms for the same simulated content -- no coordinator, no shared
  state, no ordering assumptions.
* **Shard selection** -- :func:`shard_experiments` picks the subset of an
  experiment list owned by one :class:`Shard`, and
  :meth:`repro.sim.sweep.SweepEngine.run` accepts a ``shard`` argument
  that enumerates only the sweep points whose frame store key lands in
  the shard.
* **Assembly** -- shard runs export their stores as portable pack files
  (:meth:`~repro.perf.store.ResultStore.export_pack`);
  :func:`assemble_packs` merges them into one store
  (:meth:`~repro.perf.store.ResultStore.merge_from`: last-write-wins on
  identical content, loud conflict detection otherwise), after which a
  store-warm replay reproduces the full evaluation's output --
  byte-identical to a serial cold run except for the provenance
  wall-clock field, which :func:`normalize_result_json` masks for
  comparisons.

The ``repro shard`` / ``repro assemble`` CLI commands
(:mod:`repro.experiments.cli`) wrap these into the two halves of a CI
matrix recipe; ``docs/distributed.md`` documents the full scaling ladder.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterator, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.api import Experiment
    from repro.perf.store import ExperimentResultKey, MergeStats, ResultStore

#: Hex digits of a content digest the shard assignment hashes.  16 digits
#: (64 bits) keep the modulo unbiased for any practical shard count while
#: accepting both full SHA-1 digests and the 16-digit params fingerprints.
_SHARD_DIGEST_DIGITS = 16


def _key_digest(key: Any) -> str:
    """The hex content digest of ``key`` (a digest string or a store key)."""
    digest = getattr(key, "digest", key)
    if not isinstance(digest, str) or not digest:
        raise TypeError(f"not a shardable cache key: {key!r}")
    return digest


def shard_index(key: Any, count: int) -> int:
    """The shard (in ``[0, count)``) owning ``key``.

    ``key`` is a store cache key (:class:`~repro.perf.store.StoreKey`,
    :class:`~repro.perf.store.ExperimentResultKey`) or its hex ``digest``
    string.  The assignment is a pure function of the digest's leading 64
    bits, so it is stable across processes, machines and platforms --
    every runner computing its own shard membership agrees without
    coordination.
    """
    if count < 1:
        raise ValueError(f"shard count must be >= 1, got {count}")
    return int(_key_digest(key)[:_SHARD_DIGEST_DIGITS], 16) % count


def shard_of(key: Any, index: int, count: int) -> bool:
    """Whether ``key`` belongs to shard ``index`` of ``count``.

    Exactly one index in ``[0, count)`` returns True for any key, which is
    what makes shards disjoint and collectively complete.
    """
    if not 0 <= index < count:
        raise ValueError(f"shard index must be in [0, {count}), got {index}")
    return shard_index(key, count) == index


@dataclass(frozen=True)
class Shard:
    """One member of an ``index``-of-``count`` partition of cache keys.

    Iterable as ``(index, count)`` so APIs accepting a plain tuple (e.g.
    ``SweepEngine.run(spec, shard=...)``) take a :class:`Shard` directly.
    """

    index: int
    count: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError(f"shard count must be >= 1, got {self.count}")
        if not 0 <= self.index < self.count:
            raise ValueError(
                f"shard index must be in [0, {self.count}), got {self.index}"
            )

    def __iter__(self) -> Iterator[int]:
        yield self.index
        yield self.count

    def contains(self, key: Any) -> bool:
        """Whether this shard owns ``key`` (a store key or digest string)."""
        return shard_index(key, self.count) == self.index


def experiment_result_key(
    exp: "Experiment", overrides: Mapping[str, Any] | None = None
) -> "ExperimentResultKey":
    """Content address of one experiment invocation under ``overrides``.

    This is the key the CLI's result tier caches whole experiments under;
    sharding an experiment set partitions these digests, so a parameter
    override (which changes the params fingerprint) may move an experiment
    to a different shard -- deterministically, as long as every shard and
    the assembling run pass the same overrides.
    """
    from repro.experiments.api import config_fingerprint
    from repro.perf.store import ExperimentResultKey, environment_digest

    values = exp.resolve_params(overrides or {})
    params_json = {p.name: p.to_json(values[p.name]) for p in exp.params}
    return ExperimentResultKey(
        experiment_id=exp.id,
        params_fingerprint=config_fingerprint(exp.id, params_json),
        environment_digest=environment_digest(),
    )


def shard_experiments(
    experiments: Sequence["Experiment"],
    shard: Shard,
    overrides: Mapping[str, Mapping[str, Any]] | None = None,
) -> list["Experiment"]:
    """The subset of ``experiments`` owned by ``shard``, in input order.

    Membership hashes each experiment's result-store cache key
    (:func:`experiment_result_key`), so the split is deterministic,
    disjoint across shards and complete over them -- N shard runs cover
    every experiment exactly once.
    """
    overrides = overrides or {}
    return [
        exp
        for exp in experiments
        if shard.contains(experiment_result_key(exp, overrides.get(exp.id, {})))
    ]


def assemble_packs(
    store: "ResultStore", packs: Sequence[Any], strict: bool = True
) -> "MergeStats":
    """Merge shard pack files (or store directories) into ``store``.

    Returns the accumulated :class:`~repro.perf.store.MergeStats`; under
    ``strict`` (the default) a genuine conflict -- the same cache key
    carrying different content, which means the shards simulated with
    diverging code or state -- raises
    :class:`~repro.perf.store.PackConflictError` instead of silently
    keeping either side.
    """
    from repro.perf.store import MergeStats

    total = MergeStats()
    for pack in packs:
        total = total.combined(store.merge_from(pack, strict=strict))
    return total


#: The one volatile field of a serialized experiment result: provenance
#: wall-clock, which records the *producing* run's measurement.
_WALL_TIME_RE = re.compile(r'("wall_time_s":\s*)[-+0-9.eE]+')


def normalize_result_json(text: str) -> str:
    """``text`` with the volatile provenance wall-clock field zeroed.

    A store-warm replay is byte-identical to the run that produced the
    entries -- but two independent *producing* runs (a serial cold run
    vs. N shard runs) measure different wall times.  Substituting only
    the ``wall_time_s`` number leaves every other byte intact, so
    comparing normalized documents still pins bit-exactness of all
    simulated content; ``repro assemble --check`` and the CI assemble
    job compare through this.
    """
    return _WALL_TIME_RE.sub(r"\g<1>0.0", text)

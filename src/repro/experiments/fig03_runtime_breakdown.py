"""Fig. 3: GPU runtime breakdown (GEMM/GEMV vs encoding vs other) per model.

The takeaway reproduced here: GEMM/GEMV dominates every model, and the
encoding share is substantial for the models with expensive neural feature
encoding (KiloNeRF, NSVF, Mip-NeRF, Instant-NGP).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.gpu import GPUModel, RTX_2080_TI
from repro.nerf.models import FrameConfig, all_models
from repro.nerf.workload import OpCategory


@dataclass(frozen=True)
class BreakdownRow:
    """Runtime fractions of one model on the GPU."""

    model: str
    gemm_fraction: float
    encoding_fraction: float
    other_fraction: float

    @property
    def total(self) -> float:
        return self.gemm_fraction + self.encoding_fraction + self.other_fraction


def run(config: FrameConfig | None = None) -> list[BreakdownRow]:
    """Compute the per-category runtime fractions for every model."""
    config = config or FrameConfig()
    gpu = GPUModel(RTX_2080_TI)
    rows = []
    for model in all_models():
        report = gpu.render_frame(model.build_workload(config))
        breakdown = report.trace.runtime_breakdown()
        rows.append(
            BreakdownRow(
                model=model.name,
                gemm_fraction=breakdown[OpCategory.GEMM],
                encoding_fraction=breakdown[OpCategory.ENCODING],
                other_fraction=breakdown[OpCategory.OTHER],
            )
        )
    return rows


def format_table(rows: list[BreakdownRow]) -> str:
    lines = [f"{'model':<14} {'GEMM %':>8} {'Encoding %':>12} {'Other %':>9}"]
    for row in rows:
        lines.append(
            f"{row.model:<14} {row.gemm_fraction * 100:>8.1f} "
            f"{row.encoding_fraction * 100:>12.1f} {row.other_fraction * 100:>9.1f}"
        )
    return "\n".join(lines)

"""Fig. 3: GPU runtime breakdown (GEMM/GEMV vs encoding vs other) per model.

The takeaway reproduced here: GEMM/GEMV dominates every model, and the
encoding share is substantial for the models with expensive neural feature
encoding (KiloNeRF, NSVF, Mip-NeRF, Instant-NGP).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.api import Column, Param, experiment
from repro.nerf.models import MODEL_REGISTRY, FrameConfig
from repro.nerf.workload import OpCategory
from repro.sim.sweep import SweepEngine, SweepSpec, get_default_engine


@dataclass(frozen=True)
class BreakdownRow:
    """Runtime fractions of one model on the GPU."""

    model: str
    gemm_fraction: float
    encoding_fraction: float
    other_fraction: float

    @property
    def total(self) -> float:
        return self.gemm_fraction + self.encoding_fraction + self.other_fraction


@experiment(
    "fig03",
    title="GPU runtime breakdown per model",
    tags=("frame-sim", "gpu"),
    params=(
        Param("device", str, "rtx-2080-ti", help="registry name of the GPU"),
    ),
    columns=(
        Column("model", "<14"),
        Column("GEMM %", ">8.1f", value=lambda r: r.gemm_fraction * 100),
        Column("Encoding %", ">12.1f", value=lambda r: r.encoding_fraction * 100),
        Column("Other %", ">9.1f", value=lambda r: r.other_fraction * 100),
    ),
)
def run(
    config: FrameConfig | None = None,
    device: str = "rtx-2080-ti",
    engine: SweepEngine | None = None,
) -> list[BreakdownRow]:
    """Compute the per-category runtime fractions for every model."""
    engine = engine or get_default_engine()
    spec = SweepSpec(
        devices=(device,),
        models=tuple(MODEL_REGISTRY),
        base_config=config or FrameConfig(),
    )
    rows = []
    for result in engine.run(spec):
        breakdown = result.report.trace.runtime_breakdown()
        rows.append(
            BreakdownRow(
                model=result.model,
                gemm_fraction=breakdown[OpCategory.GEMM],
                encoding_fraction=breakdown[OpCategory.ENCODING],
                other_fraction=breakdown[OpCategory.OTHER],
            )
        )
    return rows

"""Fig. 3: GPU runtime breakdown (GEMM/GEMV vs encoding vs other) per model.

The takeaway reproduced here: GEMM/GEMV dominates every model, and the
encoding share is substantial for the models with expensive neural feature
encoding (KiloNeRF, NSVF, Mip-NeRF, Instant-NGP).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nerf.models import MODEL_REGISTRY, FrameConfig
from repro.nerf.workload import OpCategory
from repro.sim.sweep import SweepEngine, SweepSpec, get_default_engine


@dataclass(frozen=True)
class BreakdownRow:
    """Runtime fractions of one model on the GPU."""

    model: str
    gemm_fraction: float
    encoding_fraction: float
    other_fraction: float

    @property
    def total(self) -> float:
        return self.gemm_fraction + self.encoding_fraction + self.other_fraction


def run(
    config: FrameConfig | None = None,
    device: str = "rtx-2080-ti",
    engine: SweepEngine | None = None,
) -> list[BreakdownRow]:
    """Compute the per-category runtime fractions for every model."""
    engine = engine or get_default_engine()
    spec = SweepSpec(
        devices=(device,),
        models=tuple(MODEL_REGISTRY),
        base_config=config or FrameConfig(),
    )
    rows = []
    for result in engine.run(spec):
        breakdown = result.report.trace.runtime_breakdown()
        rows.append(
            BreakdownRow(
                model=result.model,
                gemm_fraction=breakdown[OpCategory.GEMM],
                encoding_fraction=breakdown[OpCategory.ENCODING],
                other_fraction=breakdown[OpCategory.OTHER],
            )
        )
    return rows


def format_table(rows: list[BreakdownRow]) -> str:
    lines = [f"{'model':<14} {'GEMM %':>8} {'Encoding %':>12} {'Other %':>9}"]
    for row in rows:
        lines.append(
            f"{row.model:<14} {row.gemm_fraction * 100:>8.1f} "
            f"{row.encoding_fraction * 100:>12.1f} {row.other_fraction * 100:>9.1f}"
        )
    return "\n".join(lines)

"""Ablation: DRAM traffic with and without sparsity-aware compression.

Section 4.3 / Fig. 18(a): storing operands in their optimal sparsity format
cuts off-chip traffic and therefore DRAM access time.  This ablation runs the
same pruned workloads through FlexNeRFer's memory model with compression
enabled and disabled and reports the traffic reduction per model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import FlexNeRFerConfig
from repro.experiments.api import Column, Param, experiment
from repro.nerf.models import FrameConfig
from repro.sim.memory import MemoryTrafficModel
from repro.sim.sweep import SweepEngine, get_default_engine
from repro.sim.tiling import tile_counts
from repro.sim.array_config import ArrayConfig, MappingFlexibility
from repro.sparse.formats import Precision

DEFAULT_MODELS = ("nerf", "instant-ngp", "tensorf")


@dataclass(frozen=True)
class CompressionAblationRow:
    """DRAM traffic of one model with and without compression."""

    model: str
    pruning_ratio: float
    uncompressed_bytes: float
    compressed_bytes: float

    @property
    def traffic_reduction(self) -> float:
        if self.uncompressed_bytes == 0:
            return 0.0
        return 1.0 - self.compressed_bytes / self.uncompressed_bytes


@experiment(
    "ablation-compression",
    title="DRAM traffic with vs without sparsity-aware compression",
    tags=("ablation", "sparsity", "frame-sim"),
    params=(
        Param("models", str, DEFAULT_MODELS, help="models to measure", repeated=True),
        Param("pruning_ratio", float, 0.5, help="structured pruning ratio"),
        Param("precision", Precision, Precision.INT16, help="operand precision"),
    ),
    columns=(
        Column("model", "<14"),
        Column("pruning %", ">9.0f", value=lambda r: r.pruning_ratio * 100),
        Column("dense [MB]", ">11.2f", value=lambda r: r.uncompressed_bytes / 1e6),
        Column(
            "compressed [MB]", ">16.2f", value=lambda r: r.compressed_bytes / 1e6
        ),
        Column(
            "reduction",
            "",
            value=lambda r: f"{r.traffic_reduction * 100:>9.1f}%",
            header_spec=">10",
        ),
    ),
)
def run(
    models: tuple[str, ...] = DEFAULT_MODELS,
    pruning_ratio: float = 0.5,
    precision: Precision = Precision.INT16,
    config: FrameConfig | None = None,
    engine: SweepEngine | None = None,
) -> list[CompressionAblationRow]:
    """Measure per-model weight/activation DRAM traffic with both settings."""
    engine = engine or get_default_engine()
    config = config or FrameConfig()
    accel_config = FlexNeRFerConfig()
    array = ArrayConfig(
        name="traffic-probe",
        rows=accel_config.array_rows,
        cols=accel_config.array_cols,
        bit_scalable=True,
        supports_sparsity=True,
        mapping=MappingFlexibility.FLEXIBLE,
    )
    with_compression = MemoryTrafficModel(compression_enabled=True)
    without_compression = MemoryTrafficModel(compression_enabled=False)

    rows = []
    for name in models:
        workload = (
            engine.workload(name, config)
            .with_precision(precision)
            .pruned(pruning_ratio)
        )
        compressed = 0.0
        uncompressed = 0.0
        for op in workload.gemm_ops():
            grid = tile_counts(op, array)
            compressed += with_compression.traffic(
                op, tiles_m=grid.tiles_m, tiles_n=grid.tiles_n
            ).total_bytes
            uncompressed += without_compression.traffic(
                op, tiles_m=grid.tiles_m, tiles_n=grid.tiles_n
            ).total_bytes
        rows.append(
            CompressionAblationRow(
                model=name,
                pruning_ratio=pruning_ratio,
                uncompressed_bytes=uncompressed,
                compressed_bytes=compressed,
            )
        )
    return rows

"""Ablation: DRAM traffic with and without sparsity-aware compression.

Section 4.3 / Fig. 18(a): storing operands in their optimal sparsity format
cuts off-chip traffic and therefore DRAM access time.  This ablation runs the
same pruned workloads through FlexNeRFer's memory model with compression
enabled and disabled and reports the traffic reduction per model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import FlexNeRFerConfig
from repro.nerf.models import FrameConfig
from repro.sim.memory import MemoryTrafficModel
from repro.sim.sweep import SweepEngine, get_default_engine
from repro.sim.tiling import tile_counts
from repro.sim.array_config import ArrayConfig, MappingFlexibility
from repro.sparse.formats import Precision

DEFAULT_MODELS = ("nerf", "instant-ngp", "tensorf")


@dataclass(frozen=True)
class CompressionAblationRow:
    """DRAM traffic of one model with and without compression."""

    model: str
    pruning_ratio: float
    uncompressed_bytes: float
    compressed_bytes: float

    @property
    def traffic_reduction(self) -> float:
        if self.uncompressed_bytes == 0:
            return 0.0
        return 1.0 - self.compressed_bytes / self.uncompressed_bytes


def run(
    models: tuple[str, ...] = DEFAULT_MODELS,
    pruning_ratio: float = 0.5,
    precision: Precision = Precision.INT16,
    config: FrameConfig | None = None,
    engine: SweepEngine | None = None,
) -> list[CompressionAblationRow]:
    """Measure per-model weight/activation DRAM traffic with both settings."""
    engine = engine or get_default_engine()
    config = config or FrameConfig()
    accel_config = FlexNeRFerConfig()
    array = ArrayConfig(
        name="traffic-probe",
        rows=accel_config.array_rows,
        cols=accel_config.array_cols,
        bit_scalable=True,
        supports_sparsity=True,
        mapping=MappingFlexibility.FLEXIBLE,
    )
    with_compression = MemoryTrafficModel(compression_enabled=True)
    without_compression = MemoryTrafficModel(compression_enabled=False)

    rows = []
    for name in models:
        workload = (
            engine.workload(name, config)
            .with_precision(precision)
            .pruned(pruning_ratio)
        )
        compressed = 0.0
        uncompressed = 0.0
        for op in workload.gemm_ops():
            grid = tile_counts(op, array)
            compressed += with_compression.traffic(
                op, tiles_m=grid.tiles_m, tiles_n=grid.tiles_n
            ).total_bytes
            uncompressed += without_compression.traffic(
                op, tiles_m=grid.tiles_m, tiles_n=grid.tiles_n
            ).total_bytes
        rows.append(
            CompressionAblationRow(
                model=name,
                pruning_ratio=pruning_ratio,
                uncompressed_bytes=uncompressed,
                compressed_bytes=compressed,
            )
        )
    return rows


def format_table(rows: list[CompressionAblationRow]) -> str:
    lines = [
        f"{'model':<14} {'pruning %':>9} {'dense [MB]':>11} {'compressed [MB]':>16} {'reduction':>10}"
    ]
    for row in rows:
        lines.append(
            f"{row.model:<14} {row.pruning_ratio * 100:>9.0f} "
            f"{row.uncompressed_bytes / 1e6:>11.2f} {row.compressed_bytes / 1e6:>16.2f} "
            f"{row.traffic_reduction * 100:>9.1f}%"
        )
    return "\n".join(lines)

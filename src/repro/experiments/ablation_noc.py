"""Ablation: HMF-NoC vs HM-NoC energy and CLB bandwidth utilisation.

Two design choices called out in Section 4.1 are ablated here:

* replacing Eyeriss v2's HM-NoC with FlexNeRFer's HMF-NoC (3x3 switches with a
  feedback path) cuts on-chip-memory access energy -- the paper reports ~2.5x
  on its traffic traces;
* the column-level bypass links (CLBs) restore full MAC-unit input bandwidth
  in the 8- and 16-bit modes (25 % / 50 % utilisation without them).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.distribution import DistributionNetwork
from repro.experiments.api import Param, experiment
from repro.noc.energy import NoCEnergyModel
from repro.noc.hierarchical import HMFNoC, HMNoC
from repro.sparse.formats import Precision


@dataclass(frozen=True)
class NoCAblationResult:
    """Energy and bandwidth comparison of the NoC design choices."""

    memory_access_energy_ratio: float            # HM-NoC energy / HMF-NoC energy
    hm_buffer_reads: int
    hmf_buffer_reads: int
    clb_bandwidth_utilization: dict[Precision, float]
    no_clb_bandwidth_utilization: dict[Precision, float]


def _traffic_patterns(num_leaves: int, num_steps: int, reuse: float, rng: np.random.Generator):
    """Generate distribution steps where a fraction of operands is reused.

    NeRF GEMM tiles reuse weight elements across consecutive mapping steps
    (the same weight column serves many activation rows), which is exactly the
    reuse the HMF-NoC feedback path exploits.
    """
    patterns = []
    current = [f"w{i}" for i in range(num_leaves)]
    for step in range(num_steps):
        pattern = []
        for leaf in range(num_leaves):
            if rng.random() < reuse:
                pattern.append(current[leaf])
            else:
                pattern.append(f"w{step}_{leaf}")
        current = pattern
        patterns.append(pattern)
    return patterns


def _render(result: NoCAblationResult) -> str:
    """Buffer-read / energy preamble plus the per-mode CLB bandwidth grid."""
    lines = [
        f"HM-NoC buffer reads:  {result.hm_buffer_reads}",
        f"HMF-NoC buffer reads: {result.hmf_buffer_reads}",
        f"on-chip memory access energy ratio (HM / HMF): {result.memory_access_energy_ratio:.2f}x",
        "",
        f"{'mode':<8} {'BW util w/ CLB':>15} {'BW util w/o CLB':>16}",
    ]
    for precision in (Precision.INT16, Precision.INT8, Precision.INT4):
        lines.append(
            f"{precision.name:<8} {result.clb_bandwidth_utilization[precision] * 100:>14.0f}% "
            f"{result.no_clb_bandwidth_utilization[precision] * 100:>15.0f}%"
        )
    return "\n".join(lines)


@experiment(
    "ablation-noc",
    title="HMF-NoC vs HM-NoC energy, CLB bandwidth",
    tags=("ablation", "noc"),
    params=(
        Param("num_leaves", int, 64, help="distribution-tree leaf count"),
        Param("num_steps", int, 64, help="mapping steps to replay"),
        Param("reuse", float, 0.6, help="fraction of operands reused per step"),
        Param("seed", int, 0, help="traffic-pattern RNG seed"),
    ),
    render=_render,
)
def run(
    num_leaves: int = 64,
    num_steps: int = 64,
    reuse: float = 0.6,
    seed: int = 0,
) -> NoCAblationResult:
    """Replay the same distribution traffic through HM-NoC and HMF-NoC."""
    rng = np.random.default_rng(seed)
    patterns = _traffic_patterns(num_leaves, num_steps, reuse, rng)

    hm = HMNoC(num_leaves)
    hmf = HMFNoC(num_leaves)
    hm_results = [hm.route(p) for p in patterns]
    hmf_results = [hmf.route(p) for p in patterns]

    model = NoCEnergyModel()
    ratio = model.memory_access_energy_ratio(hm_results, hmf_results)

    return NoCAblationResult(
        memory_access_energy_ratio=ratio,
        hm_buffer_reads=sum(r.buffer_reads for r in hm_results),
        hmf_buffer_reads=sum(r.buffer_reads for r in hmf_results),
        clb_bandwidth_utilization={
            p: DistributionNetwork.clb_bandwidth_utilization(p, with_clb=True)
            for p in Precision
        },
        no_clb_bandwidth_utilization={
            p: DistributionNetwork.clb_bandwidth_utilization(p, with_clb=False)
            for p in Precision
        },
    )

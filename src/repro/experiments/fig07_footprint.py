"""Fig. 7: memory footprint of each compression format vs. sparsity ratio.

For the native tile of every precision mode (64x64 at INT16, 128x128 at INT8,
256x256 at INT4), the footprint of COO, CSC/CSR and Bitmap is normalised to
the uncompressed layout across sparsity ratios from 1 % to 99.9 %.  Lower
precision shifts the compressed formats' break-even points to the right.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.api import Column, Param, experiment
from repro.sparse.footprint import FootprintModel
from repro.sparse.formats import Precision, SparsityFormat

#: Sparsity ratios (percent) swept in the figure.
SPARSITY_PERCENTAGES = (
    1, 5, 10, 15, 20, 25, 30, 35, 40, 45, 50, 55, 60, 65, 70, 75, 80, 85, 90,
    95, 99, 99.9,
)

#: Formats plotted in the figure (CSR stands for the shared CSC/CSR scheme).
PLOTTED_FORMATS = (
    SparsityFormat.NONE,
    SparsityFormat.COO,
    SparsityFormat.CSR,
    SparsityFormat.BITMAP,
)


@dataclass(frozen=True)
class FootprintSeries:
    """Normalised footprint of one format across the sparsity sweep."""

    precision: Precision
    fmt: SparsityFormat
    sparsity_percent: tuple[float, ...]
    normalized_footprint: tuple[float, ...]


def _points_cell(entry: "FootprintSeries") -> str:
    return ", ".join(
        f"{pct:g}%:{val:.2f}"
        for pct, val in list(
            zip(entry.sparsity_percent, entry.normalized_footprint)
        )[::4]
    )


@experiment(
    "fig07",
    title="Memory footprint vs sparsity per format",
    tags=("sparsity", "formats"),
    params=(
        Param(
            "precisions",
            Precision,
            (Precision.INT16, Precision.INT8, Precision.INT4),
            help="precision modes to sweep",
            repeated=True,
        ),
    ),
    columns=(
        Column("precision", "<6", value=lambda e: e.precision.name),
        Column("fmt", "<7", value=lambda e: e.fmt.value),
        Column("points", "", value=_points_cell),
    ),
    header=False,
)
def run(
    precisions: tuple[Precision, ...] = (Precision.INT16, Precision.INT8, Precision.INT4),
) -> list[FootprintSeries]:
    """Sweep the footprint model for every precision / format combination."""
    series = []
    for precision in precisions:
        model = FootprintModel.for_precision(precision)
        for fmt in PLOTTED_FORMATS:
            values = tuple(
                model.ratio_over_none(fmt, pct / 100.0)
                for pct in SPARSITY_PERCENTAGES
            )
            series.append(
                FootprintSeries(
                    precision=precision,
                    fmt=fmt,
                    sparsity_percent=tuple(SPARSITY_PERCENTAGES),
                    normalized_footprint=values,
                )
            )
    return series


def crossover_sparsity(series: list[FootprintSeries], precision: Precision) -> dict[SparsityFormat, float]:
    """Lowest swept sparsity at which each format beats the dense layout."""
    out: dict[SparsityFormat, float] = {}
    for entry in series:
        if entry.precision is not precision or entry.fmt is SparsityFormat.NONE:
            continue
        for pct, value in zip(entry.sparsity_percent, entry.normalized_footprint):
            if value < 1.0:
                out[entry.fmt] = pct
                break
    return out

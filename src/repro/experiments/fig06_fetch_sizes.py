"""Fig. 6(b): multiplier counts and data-fetch sizes per precision mode.

A 64x64 array of bit-scalable MAC units exposes a 64x64 / 128x128 / 256x256
effective multiplier grid in 16- / 8- / 4-bit mode, and the per-tile operand
fetch size doubles every time the precision is halved.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.mac_array import MACArray
from repro.experiments.api import Column, Param, experiment
from repro.sim.array_config import ArrayConfig
from repro.sparse.formats import Precision


@dataclass(frozen=True)
class FetchRow:
    """One precision mode's row of Fig. 6(b)."""

    precision: Precision
    grid_rows: int
    grid_cols: int
    num_multipliers: int
    fetch_bytes: int


@experiment(
    "fig06",
    title="Multiplier grid and fetch size per precision",
    tags=("hw-cost", "precision"),
    params=(
        Param("rows", int, 64, help="physical MAC-array rows"),
        Param("cols", int, 64, help="physical MAC-array columns"),
    ),
    columns=(
        Column("mode", "<8", value=lambda r: r.precision.name),
        Column("grid", ">12", value=lambda r: f"{r.grid_rows}x{r.grid_cols}"),
        Column("# multipliers", ">14,", key="num_multipliers"),
        Column("fetch [B]", ">10,", key="fetch_bytes"),
    ),
)
def run(rows: int = 64, cols: int = 64) -> list[FetchRow]:
    """Compute the multiplier grid and fetch size for every precision mode."""
    array = MACArray(rows=rows, cols=cols)
    config = array.array_config()
    out = []
    for precision in (Precision.INT16, Precision.INT8, Precision.INT4):
        grid = config.effective_grid(precision)
        out.append(
            FetchRow(
                precision=precision,
                grid_rows=grid[0],
                grid_cols=grid[1],
                num_multipliers=array.num_multipliers(precision),
                fetch_bytes=config.data_fetch_bytes(precision),
            )
        )
    return out

"""Registry of every experiment, populated by importing the modules.

Each experiment module registers itself through the
:func:`repro.experiments.api.experiment` decorator at import time; this
module imports them all (in the paper's artifact order, which is also the
order ``repro run all`` executes) and re-exports the lookup helpers.
"""

from __future__ import annotations

# Imported for their registration side effect, in paper-artifact order.
from repro.experiments import (  # noqa: F401
    fig01_gpu_latency,
    fig03_runtime_breakdown,
    fig04_mac_utilization,
    fig06_fetch_sizes,
    fig07_footprint,
    fig08_optimal_format,
    fig12_reduction_tree,
    fig13_input_sparsity,
    table02_related_work,
    table03_mac_array,
    fig15_array_breakdown,
    fig16_cost,
    fig17_breakdown,
    fig18_latency_density,
    fig19_speedup_energy,
    fig20a_psnr,
    fig20b_batch,
    ablation_noc,
    ablation_compression,
    serve_latency_sla,
    serve_fleet_mix,
    serve_batch_policy,
    serve_overload_sla,
    serve_autoscale,
    serve_quality_shed,
    serve_flash_crowd,
    serve_multi_tenant,
    serve_interactive,
    plan_frontier,
)
from repro.experiments.api import (
    REGISTRY,
    Experiment,
    ExperimentResult,
    UnknownExperimentError,
    all_tags,
    experiments_by_tag,
    get_experiment,
    run_experiment,
)

#: Experiment id -> :class:`Experiment`, in paper-artifact order.
EXPERIMENTS: dict[str, Experiment] = REGISTRY

__all__ = [
    "EXPERIMENTS",
    "Experiment",
    "ExperimentResult",
    "UnknownExperimentError",
    "all_tags",
    "experiments_by_tag",
    "get_experiment",
    "run_experiment",
]

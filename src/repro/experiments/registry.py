"""Registry mapping experiment identifiers to their modules."""

from __future__ import annotations

from types import ModuleType

from repro.experiments import (
    ablation_compression,
    ablation_noc,
    fig01_gpu_latency,
    fig03_runtime_breakdown,
    fig04_mac_utilization,
    fig06_fetch_sizes,
    fig07_footprint,
    fig08_optimal_format,
    fig12_reduction_tree,
    fig13_input_sparsity,
    fig15_array_breakdown,
    fig16_cost,
    fig17_breakdown,
    fig18_latency_density,
    fig19_speedup_energy,
    fig20a_psnr,
    fig20b_batch,
    table02_related_work,
    table03_mac_array,
)

#: Experiment id -> (module, short description).
EXPERIMENTS: dict[str, tuple[ModuleType, str]] = {
    "fig01": (fig01_gpu_latency, "GPU rendering latency of seven NeRF models"),
    "fig03": (fig03_runtime_breakdown, "GPU runtime breakdown per model"),
    "fig04": (fig04_mac_utilization, "NVDLA / TPU MAC utilisation scenarios"),
    "fig06": (fig06_fetch_sizes, "Multiplier grid and fetch size per precision"),
    "fig07": (fig07_footprint, "Memory footprint vs sparsity per format"),
    "fig08": (fig08_optimal_format, "Optimal sparsity format per ratio / mode"),
    "fig12": (fig12_reduction_tree, "MAC unit area/power with optimised RT"),
    "fig13": (fig13_input_sparsity, "Input sparsity across rendering stages"),
    "table02": (table02_related_work, "Qualitative flexible-NoC comparison"),
    "table03": (table03_mac_array, "MAC-array spec comparison"),
    "fig15": (fig15_array_breakdown, "Compute-array area/power breakdowns"),
    "fig16": (fig16_cost, "Accelerator-level area/power vs GPUs and NeuRex"),
    "fig17": (fig17_breakdown, "FlexNeRFer / NeuRex cost breakdowns"),
    "fig18": (fig18_latency_density, "Normalised latency and compute density"),
    "fig19": (fig19_speedup_energy, "Speedup / energy gain over the GPU"),
    "fig20a": (fig20a_psnr, "PSNR vs energy efficiency per precision"),
    "fig20b": (fig20b_batch, "Speedup vs batch size and scene complexity"),
    "ablation-noc": (ablation_noc, "HMF-NoC vs HM-NoC energy, CLB bandwidth"),
    "ablation-compression": (
        ablation_compression,
        "DRAM traffic with vs without sparsity-aware compression",
    ),
}


def get_experiment(key: str) -> ModuleType:
    """Return the experiment module registered under ``key``."""
    try:
        return EXPERIMENTS[key.lower()][0]
    except KeyError as exc:
        raise KeyError(
            f"unknown experiment '{key}'; available: {sorted(EXPERIMENTS)}"
        ) from exc


def run_experiment(key: str, **kwargs):
    """Run an experiment by id and return its result object."""
    return get_experiment(key).run(**kwargs)

"""Fig. 18: normalised latency breakdown and compute density vs NeuRex.

FlexNeRFer's flexible NoC and sparsity support cut latency to a fraction of
NeuRex at INT16, and further at INT8 / INT4; despite its larger area this
yields a higher compute density (performance per mm^2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.api import Column, Param, experiment
from repro.nerf.models import FrameConfig
from repro.sim.sweep import SweepEngine, SweepSpec, get_default_engine
from repro.sparse.formats import Precision

#: FlexNeRFer precision modes shown in the figure.
PRECISIONS = (Precision.INT16, Precision.INT8, Precision.INT4)


@dataclass(frozen=True)
class LatencyDensityRow:
    """One device/precision point of Fig. 18."""

    device: str
    precision: Precision | None
    latency_s: float
    normalized_latency: float
    compute_time_s: float
    dram_time_s: float
    format_conversion_time_s: float
    area_mm2: float
    compute_density: float       # normalised perf / area relative to NeuRex

    @property
    def format_conversion_fraction(self) -> float:
        return self.format_conversion_time_s / self.latency_s if self.latency_s else 0.0


def _row(result, normalized: float, area_mm2: float, density: float) -> LatencyDensityRow:
    components = result.report.trace.time_by_component()
    return LatencyDensityRow(
        device=result.device,
        precision=result.effective_precision,
        latency_s=result.latency_s,
        normalized_latency=normalized,
        compute_time_s=components["compute"],
        dram_time_s=components["dram"],
        format_conversion_time_s=components["format_conversion"],
        area_mm2=area_mm2,
        compute_density=density,
    )


@experiment(
    "fig18",
    title="Normalised latency and compute density",
    tags=("frame-sim",),
    params=(
        Param("model_name", str, "instant-ngp", help="NeRF model to render"),
    ),
    columns=(
        Column("device", "<12"),
        Column("mode", "<6", value=lambda r: r.precision.name if r.precision else "-"),
        Column("norm latency", ">12.3f", key="normalized_latency"),
        Column("density", ">9.2f", key="compute_density"),
        Column(
            "fmt conv %",
            ">11.1f",
            value=lambda r: r.format_conversion_fraction * 100,
        ),
    ),
)
def run(
    model_name: str = "instant-ngp",
    config: FrameConfig | None = None,
    engine: SweepEngine | None = None,
) -> list[LatencyDensityRow]:
    """Render one model on NeuRex and FlexNeRFer at INT16/8/4."""
    engine = engine or get_default_engine()
    config = config or FrameConfig()
    results = engine.run(
        SweepSpec(
            devices=("neurex", "flexnerfer"),
            models=(model_name,),
            precisions=PRECISIONS,
            base_config=config,
        )
    )
    # NeuRex collapses every precision onto one cached INT16 simulation; one
    # row represents it in the figure.
    neurex = next(r for r in results if r.device == "NeuRex")
    neurex_area = engine.device("neurex").area_mm2()
    flex_area = engine.device("flexnerfer").area_mm2()

    rows = [_row(neurex, normalized=1.0, area_mm2=neurex_area, density=1.0)]
    for result in results:
        if result.device != "FlexNeRFer":
            continue
        normalized = result.latency_s / neurex.latency_s
        density = (1.0 / normalized) * (neurex_area / flex_area)
        rows.append(_row(result, normalized, flex_area, density))
    return rows

"""Fig. 18: normalised latency breakdown and compute density vs NeuRex.

FlexNeRFer's flexible NoC and sparsity support cut latency to a fraction of
NeuRex at INT16, and further at INT8 / INT4; despite its larger area this
yields a higher compute density (performance per mm^2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.neurex import NeuRex
from repro.core.accelerator import FlexNeRFer
from repro.nerf.models import FrameConfig, get_model
from repro.sparse.formats import Precision


@dataclass(frozen=True)
class LatencyDensityRow:
    """One device/precision point of Fig. 18."""

    device: str
    precision: Precision | None
    latency_s: float
    normalized_latency: float
    compute_time_s: float
    dram_time_s: float
    format_conversion_time_s: float
    area_mm2: float
    compute_density: float       # normalised perf / area relative to NeuRex

    @property
    def format_conversion_fraction(self) -> float:
        return self.format_conversion_time_s / self.latency_s if self.latency_s else 0.0


def run(
    model_name: str = "instant-ngp", config: FrameConfig | None = None
) -> list[LatencyDensityRow]:
    """Render one model on NeuRex and FlexNeRFer at INT16/8/4."""
    config = config or FrameConfig()
    workload = get_model(model_name).build_workload(config)

    neurex = NeuRex()
    neurex_report = neurex.render_frame(workload)
    neurex_area = neurex.area().total_mm2
    neurex_components = neurex_report.trace.time_by_component()

    rows = [
        LatencyDensityRow(
            device="NeuRex",
            precision=Precision.INT16,
            latency_s=neurex_report.latency_s,
            normalized_latency=1.0,
            compute_time_s=neurex_components["compute"],
            dram_time_s=neurex_components["dram"],
            format_conversion_time_s=neurex_components["format_conversion"],
            area_mm2=neurex_area,
            compute_density=1.0,
        )
    ]

    flex = FlexNeRFer()
    flex_area = flex.area().total_mm2
    for precision in (Precision.INT16, Precision.INT8, Precision.INT4):
        report = flex.render_frame(workload, precision=precision)
        components = report.trace.time_by_component()
        normalized = report.latency_s / neurex_report.latency_s
        density = (1.0 / normalized) * (neurex_area / flex_area)
        rows.append(
            LatencyDensityRow(
                device="FlexNeRFer",
                precision=precision,
                latency_s=report.latency_s,
                normalized_latency=normalized,
                compute_time_s=components["compute"],
                dram_time_s=components["dram"],
                format_conversion_time_s=components["format_conversion"],
                area_mm2=flex_area,
                compute_density=density,
            )
        )
    return rows


def format_table(rows: list[LatencyDensityRow]) -> str:
    lines = [
        f"{'device':<12} {'mode':<6} {'norm latency':>12} {'density':>9} {'fmt conv %':>11}"
    ]
    for row in rows:
        mode = row.precision.name if row.precision else "-"
        lines.append(
            f"{row.device:<12} {mode:<6} {row.normalized_latency:>12.3f} "
            f"{row.compute_density:>9.2f} {row.format_conversion_fraction * 100:>11.1f}"
        )
    return "\n".join(lines)

"""Shared statistics helpers for the experiment modules.

Every speedup / energy-gain figure in the paper aggregates per-model ratios
with a geometric mean; the one implementation lives in
:mod:`repro.sim.sweep` and is re-exported here together with the ratio
helpers the experiment modules share.
"""

from __future__ import annotations

from typing import Sequence

from repro.sim.sweep import SweepResult, aggregate, geomean, index_rows

__all__ = ["geomean", "aggregate", "index_rows", "gain_geomean"]


def gain_geomean(
    baseline: Sequence[SweepResult],
    rows: Sequence[SweepResult],
    value: str = "latency_s",
) -> float:
    """Geomean over models of ``baseline value / row value``.

    ``baseline`` and ``rows`` are matched by model name; every model in
    ``rows`` must have a baseline row.
    """
    base = {row.model: getattr(row, value) for row in baseline}
    return geomean(base[row.model] / getattr(row, value) for row in rows)

"""Fig. 15: area and power breakdowns of the Table 3 compute arrays."""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.arrays import (
    BitFusionArray,
    BitScalableSigmaArray,
    SigmaArray,
)
from repro.core.mac_array import MACArray
from repro.experiments.api import Param, experiment
from repro.sparse.formats import Precision


@dataclass(frozen=True)
class BreakdownRow:
    """Block-level area and power breakdown for one compute array."""

    name: str
    area_mm2: dict[str, float]
    power_w: dict[str, float]
    total_area_mm2: float
    total_power_w: float


def _render(rows: list[BreakdownRow]) -> str:
    """One line per array: totals plus the block-level area breakdown."""
    lines = []
    for row in rows:
        blocks = ", ".join(
            f"{name}={value:.1f}mm2" for name, value in row.area_mm2.items()
        )
        lines.append(
            f"{row.name:<22} total {row.total_area_mm2:5.1f} mm2 / "
            f"{row.total_power_w:4.1f} W  ({blocks})"
        )
    return "\n".join(lines)


@experiment(
    "fig15",
    title="Compute-array area/power breakdowns",
    tags=("hw-cost", "baseline"),
    params=(
        Param("precision", Precision, Precision.INT16, help="operating mode"),
    ),
    render=_render,
)
def run(precision: Precision = Precision.INT16) -> list[BreakdownRow]:
    """Collect area/power breakdowns for the four arrays at ``precision``."""
    rows = []
    for cls in (SigmaArray, BitFusionArray, BitScalableSigmaArray):
        baseline = cls()
        area = baseline.area()
        total_power = baseline.power_w(precision) if precision in baseline.published_power_w else baseline.power_w(Precision.INT16)
        # Scale the power breakdown proportionally to the area breakdown: the
        # baseline papers do not publish per-block power.
        power = {
            block: total_power * value / area.total_mm2
            for block, value in area.breakdown.items()
        }
        rows.append(
            BreakdownRow(
                name=baseline.name,
                area_mm2=dict(area.breakdown),
                power_w=power,
                total_area_mm2=area.total_mm2,
                total_power_w=total_power,
            )
        )
    array = MACArray()
    area = array.area()
    power = array.power(precision)
    rows.append(
        BreakdownRow(
            name="FlexNeRFer MAC Array",
            area_mm2=dict(area.breakdown),
            power_w=dict(power.breakdown),
            total_area_mm2=area.total_mm2,
            total_power_w=power.total_w,
        )
    )
    return rows

"""Fig. 20(a): PSNR vs energy-efficiency gain across precision modes.

A fitted Instant-NGP-style model renders a synthetic scene in FP32 (the
reference), then with its features quantized to INT16 / INT8 / INT4, both
plainly and with outlier-aware quantization (outliers kept at INT16).  INT16
is indistinguishable from FP32, plain INT8/INT4 lose PSNR, and the
outlier-aware variants recover most of the loss while keeping the lower
precision's energy-efficiency gain.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.api import Column, Param, experiment
from repro.nerf.hashgrid import HashGridConfig
from repro.nerf.models import FrameConfig
from repro.nerf.rays import Camera
from repro.nerf.renderer import InstantNGPRenderer, render_reference
from repro.nerf.scenes import get_scene
from repro.quant.metrics import psnr
from repro.sim.sweep import SweepEngine, get_default_engine
from repro.sparse.formats import Precision

#: Registry name of the reference GPU the energy gain is measured against.
BASELINE_DEVICE = "rtx-2080-ti"


@dataclass(frozen=True)
class PSNRPoint:
    """One point of the PSNR vs energy-efficiency scatter."""

    label: str
    precision: Precision | None
    outlier_aware: bool
    psnr_db: float
    energy_efficiency_gain: float


@experiment(
    "fig20a",
    title="PSNR vs energy efficiency per precision",
    tags=("frame-sim", "nerf", "quant"),
    params=(
        Param("scene_name", str, "lego", help="scene to render"),
        Param("image_size", int, 48, help="rendered image side length"),
        Param("num_samples", int, 32, help="samples per ray"),
    ),
    columns=(
        Column("setting", "<18", key="label"),
        Column(
            "PSNR [dB]",
            ">10",
            value=lambda p: "inf" if p.psnr_db == float("inf") else f"{p.psnr_db:.1f}",
        ),
        Column("energy gain", ">12.1f", key="energy_efficiency_gain"),
    ),
)
def run(
    scene_name: str = "lego",
    image_size: int = 48,
    num_samples: int = 32,
    config: FrameConfig | None = None,
    engine: SweepEngine | None = None,
) -> list[PSNRPoint]:
    """Measure PSNR (vs the FP32 render) and energy gain per precision mode."""
    engine = engine or get_default_engine()
    config = config or FrameConfig(scene_name=scene_name)
    camera = Camera(width=image_size, height=image_size, focal=image_size * 1.2)
    scene = get_scene(scene_name)
    renderer = InstantNGPRenderer(
        HashGridConfig(
            num_levels=6,
            features_per_level=4,
            log2_table_size=13,
            base_resolution=8,
            max_resolution=64,
        )
    )
    renderer.fit_to_scene(scene, store=engine.store)
    # The paper reports PSNR of the quantized Instant-NGP against the dataset
    # ground truth.  Our stand-in model's fitting error (vs the oracle render)
    # would swamp the quantization effect, so quantized renders are measured
    # against the FP32 render of the same model: this isolates exactly the
    # quantization-induced degradation the figure is about.  The FP32 point
    # itself is reported against the oracle render for context.
    oracle = render_reference(scene, camera, num_samples=num_samples)
    # The view and the FP32 feature matrix are shared by every precision
    # setting: prepare once, then re-quantize per setting instead of
    # re-running ray generation + occupancy + hash-grid encode six times.
    plan = renderer.prepare_render(camera, num_samples=num_samples)
    fp32_image = renderer.render_prepared(plan, record_stats=False)
    reference = fp32_image

    gpu_report = engine.frame_report(BASELINE_DEVICE, "instant-ngp", config=config)

    def energy_gain(precision: Precision) -> float:
        report = engine.frame_report(
            "flexnerfer", "instant-ngp", config=config, precision=precision
        )
        return gpu_report.energy_j / report.energy_j

    points = [
        PSNRPoint(
            label="FP32",
            precision=None,
            outlier_aware=False,
            psnr_db=psnr(oracle, fp32_image),
            energy_efficiency_gain=energy_gain(Precision.INT16),
        )
    ]
    settings = [
        ("INT16", Precision.INT16, False),
        ("INT8", Precision.INT8, False),
        ("INT4", Precision.INT4, False),
        ("INT8 + outliers", Precision.INT8, True),
        ("INT4 + outliers", Precision.INT4, True),
    ]
    for label, precision, outlier_aware in settings:
        image = renderer.render_prepared(
            plan,
            precision=precision,
            outlier_aware=outlier_aware,
            record_stats=False,
        )
        points.append(
            PSNRPoint(
                label=label,
                precision=precision,
                outlier_aware=outlier_aware,
                psnr_db=psnr(reference, image),
                energy_efficiency_gain=energy_gain(precision),
            )
        )
    return points

"""Fig. 4: MAC utilisation of NVIDIA NVDLA and Google TPU across scenarios.

Four scenarios from the paper's figure, evaluated on 4x4 (16-MAC) toy arrays:

  (a) early CNN layer (shallow channels)          -- both arrays under-used
  (b) late CNN layer  (deep channels, few pixels) -- NVDLA full, TPU limited
  (c) irregular dense GEMM                         -- TPU full, NVDLA collapses
  (d) irregular sparse GEMM                        -- TPU loses the zero slots
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.nvdla import NVDLAModel
from repro.baselines.tpu import TPUModel
from repro.experiments.api import Column, experiment


@dataclass(frozen=True)
class Scenario:
    """One workload scenario of Fig. 4."""

    key: str
    description: str
    kind: str                  # "conv" or "gemm"
    input_channels: int = 1
    output_channels: int = 1
    spatial_positions: int = 1
    m: int = 1
    n: int = 1
    k: int = 1
    density: float = 1.0


#: The four scenarios, parameterised after the figure's toy matrices.
SCENARIOS = (
    Scenario(
        key="early_cnn",
        description="Early CNN layer: 3 input channels, 2 kernels, 6x6 output",
        kind="conv",
        input_channels=3,
        output_channels=2,
        spatial_positions=36,
    ),
    Scenario(
        key="late_cnn",
        description="Late CNN layer: 64 input channels, 64 kernels, 2 output pixels",
        kind="conv",
        input_channels=64,
        output_channels=64,
        spatial_positions=2,
    ),
    Scenario(
        key="irregular_dense_gemm",
        description="Irregular dense GEMM: (4x4) @ (4x5)",
        kind="gemm",
        m=4,
        n=5,
        k=4,
    ),
    Scenario(
        key="irregular_sparse_gemm",
        description="Irregular sparse GEMM: (4x4) @ (4x5), ~31% zeros",
        kind="gemm",
        m=4,
        n=5,
        k=4,
        density=0.6875,
    ),
)


@dataclass(frozen=True)
class UtilizationRow:
    """MAC utilisation of both accelerators for one scenario."""

    scenario: str
    description: str
    nvdla_utilization: float
    tpu_utilization: float


@experiment(
    "fig04",
    title="NVDLA / TPU MAC utilisation scenarios",
    tags=("baseline", "utilization"),
    columns=(
        Column("scenario", "<24"),
        Column("NVDLA %", ">8.2f", value=lambda r: r.nvdla_utilization * 100),
        Column("TPU %", ">8.2f", value=lambda r: r.tpu_utilization * 100),
    ),
)
def run() -> list[UtilizationRow]:
    """Evaluate every scenario on the NVDLA and TPU utilisation models."""
    nvdla = NVDLAModel()
    tpu = TPUModel()
    rows = []
    for scenario in SCENARIOS:
        if scenario.kind == "conv":
            nvdla_util = nvdla.conv_utilization(
                scenario.input_channels, scenario.output_channels
            )
            tpu_util = tpu.conv_utilization(
                scenario.input_channels,
                scenario.output_channels,
                scenario.spatial_positions,
            )
        else:
            nvdla_util = nvdla.gemm_utilization(
                scenario.m, scenario.n, scenario.k, scenario.density
            )
            tpu_util = tpu.gemm_utilization(
                scenario.m, scenario.n, scenario.k, scenario.density
            )
        rows.append(
            UtilizationRow(
                scenario=scenario.key,
                description=scenario.description,
                nvdla_utilization=nvdla_util,
                tpu_utilization=tpu_util,
            )
        )
    return rows

"""Fig. 20(b): speedup over the GPU vs batch size and scene complexity.

A simple scene (Mic) renders faster than a complex one (Palace) because fewer
samples survive empty-space skipping, and the gains plateau once the batch
size exceeds ~8192 as the off-chip bandwidth and compute resources saturate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.gpu import GPUModel, RTX_2080_TI
from repro.core.accelerator import FlexNeRFer
from repro.nerf.models import FrameConfig, get_model
from repro.sparse.formats import Precision

#: Batch sizes swept in the figure.
BATCH_SIZES = (2048, 4096, 8192, 16384)

#: Batch size beyond which the accelerator's buffers / DRAM bandwidth saturate.
SATURATION_BATCH = 8192


@dataclass(frozen=True)
class BatchPoint:
    """Speedup over the GPU for one scene / batch-size combination."""

    scene: str
    batch_size: int
    flexnerfer_latency_s: float
    gpu_latency_s: float
    speedup: float


def _batch_efficiency(batch_size: int) -> float:
    """Fraction of peak the accelerator reaches at a given batch size.

    Small batches underfill the MAC array and amortise control overhead
    poorly; beyond the saturation batch the off-chip bandwidth caps further
    gains (paper Section 6.3.2).
    """
    ramp = min(batch_size, SATURATION_BATCH) / SATURATION_BATCH
    return 0.55 + 0.45 * ramp


def run(
    scenes: tuple[str, ...] = ("mic", "palace"),
    batch_sizes: tuple[int, ...] = BATCH_SIZES,
    model_name: str = "instant-ngp",
    precision: Precision = Precision.INT16,
) -> list[BatchPoint]:
    """Sweep batch sizes for a simple and a complex scene."""
    gpu = GPUModel(RTX_2080_TI)
    flex = FlexNeRFer()
    points = []
    for scene in scenes:
        for batch in batch_sizes:
            config = FrameConfig(scene_name=scene, batch_size=batch)
            workload = get_model(model_name).build_workload(config)
            gpu_report = gpu.render_frame(workload)
            flex_report = flex.render_frame(workload, precision=precision)
            efficiency = _batch_efficiency(batch)
            latency = flex_report.latency_s / efficiency
            points.append(
                BatchPoint(
                    scene=scene,
                    batch_size=batch,
                    flexnerfer_latency_s=latency,
                    gpu_latency_s=gpu_report.latency_s,
                    speedup=gpu_report.latency_s / latency,
                )
            )
    return points


def format_table(points: list[BatchPoint]) -> str:
    lines = [f"{'scene':<8} {'batch':>6} {'speedup':>9} {'latency [ms]':>13}"]
    for point in points:
        lines.append(
            f"{point.scene:<8} {point.batch_size:>6} {point.speedup:>9.1f} "
            f"{point.flexnerfer_latency_s * 1e3:>13.1f}"
        )
    return "\n".join(lines)

"""Fig. 20(b): speedup over the GPU vs batch size and scene complexity.

A simple scene (Mic) renders faster than a complex one (Palace) because fewer
samples survive empty-space skipping, and the gains plateau once the batch
size exceeds ~8192 as the off-chip bandwidth and compute resources saturate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.api import Column, Param, experiment
from repro.nerf.models import FrameConfig
from repro.sim.sweep import SweepEngine, SweepSpec, get_default_engine, index_rows
from repro.sparse.formats import Precision

#: Batch sizes swept in the figure.
BATCH_SIZES = (2048, 4096, 8192, 16384)

#: Batch size beyond which the accelerator's buffers / DRAM bandwidth saturate.
SATURATION_BATCH = 8192

#: Registry name of the reference GPU.
BASELINE_DEVICE = "rtx-2080-ti"


@dataclass(frozen=True)
class BatchPoint:
    """Speedup over the GPU for one scene / batch-size combination."""

    scene: str
    batch_size: int
    flexnerfer_latency_s: float
    gpu_latency_s: float
    speedup: float


def _batch_efficiency(batch_size: int) -> float:
    """Fraction of peak the accelerator reaches at a given batch size.

    Small batches underfill the MAC array and amortise control overhead
    poorly; beyond the saturation batch the off-chip bandwidth caps further
    gains (paper Section 6.3.2).
    """
    ramp = min(batch_size, SATURATION_BATCH) / SATURATION_BATCH
    return 0.55 + 0.45 * ramp


@experiment(
    "fig20b",
    title="Speedup vs batch size and scene complexity",
    tags=("frame-sim", "nerf"),
    params=(
        Param("scenes", str, ("mic", "palace"), help="scenes to sweep", repeated=True),
        Param(
            "batch_sizes",
            int,
            BATCH_SIZES,
            help="ray batch sizes to sweep",
            repeated=True,
        ),
        Param("model_name", str, "instant-ngp", help="NeRF model to render"),
        Param("precision", Precision, Precision.INT16, help="FlexNeRFer mode"),
    ),
    columns=(
        Column("scene", "<8"),
        Column("batch", ">6", key="batch_size"),
        Column("speedup", ">9.1f", key="speedup"),
        Column("latency [ms]", ">13.1f", value=lambda p: p.flexnerfer_latency_s * 1e3),
    ),
)
def run(
    scenes: tuple[str, ...] = ("mic", "palace"),
    batch_sizes: tuple[int, ...] = BATCH_SIZES,
    model_name: str = "instant-ngp",
    precision: Precision = Precision.INT16,
    engine: SweepEngine | None = None,
) -> list[BatchPoint]:
    """Sweep batch sizes for a simple and a complex scene."""
    engine = engine or get_default_engine()
    rows = engine.run(
        SweepSpec(
            devices=(BASELINE_DEVICE, "flexnerfer"),
            models=(model_name,),
            precisions=(precision,),
            scenes=scenes,
            batch_sizes=batch_sizes,
            base_config=FrameConfig(),
        )
    )
    by_point = index_rows(rows, "device", "scene", "batch_size")
    gpu_name = engine.device(BASELINE_DEVICE).name
    points = []
    for scene in scenes:
        for batch in batch_sizes:
            gpu_row = by_point[(gpu_name, scene, batch)]
            flex_row = by_point[("FlexNeRFer", scene, batch)]
            latency = flex_row.latency_s / _batch_efficiency(batch)
            points.append(
                BatchPoint(
                    scene=scene,
                    batch_size=batch,
                    flexnerfer_latency_s=latency,
                    gpu_latency_s=gpu_row.latency_s,
                    speedup=gpu_row.latency_s / latency,
                )
            )
    return points

"""`plan-frontier` / `plan-capacity`: the capacity planner's paper-style tables.

``plan-frontier`` evaluates every candidate of a built-in plan space
(:data:`repro.plan.PLAN_SPECS`) and tabulates its Pareto frontier over
(cost/request, p99 latency, energy/request) -- the fleet design points no
other candidate beats on every axis.  ``plan-capacity`` asks the planner's
constraint question across a ladder of SLA targets: for each target, the
cheapest evaluated fleet whose p99 holds under it at the required SLO
attainment.  Both ride the same evaluations (cached in the store's plan
tier), so the pair costs one space evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.api import Column, Param, experiment
from repro.plan.evaluate import EvaluatedPoint, evaluate_space
from repro.plan.pareto import cheapest_feasible, pareto_frontier
from repro.plan.space import PLAN_SPECS, load_space
from repro.sim.sweep import SweepEngine, get_default_engine

#: SLA targets (milliseconds) the capacity table sweeps by default.
DEFAULT_SLA_LADDER_MS = (15.0, 25.0, 50.0, 120.0)

#: Attainment floor the capacity table requires at every SLA target.
DEFAULT_MIN_ATTAINMENT = 0.95


def _evaluated_points(
    spec: str, engine: SweepEngine
) -> tuple[EvaluatedPoint, ...]:
    """Evaluate ``spec``'s full space on the shared engine (store-cached)."""
    space = load_space(spec)
    return evaluate_space(space, engine=engine).points


@dataclass(frozen=True)
class FrontierPoint:
    """One Pareto-optimal fleet candidate of the plan space."""

    fleet: str
    workers: int
    scheduler: str
    control: str
    cost_per_mreq: float
    p99_latency_ms: float
    energy_per_request_mj: float
    slo_attainment: float


@experiment(
    "plan-frontier",
    title="Fleet plan space: Pareto frontier (cost vs p99 vs energy)",
    tags=("planning",),
    params=(
        Param(
            "spec",
            str,
            "tiny",
            help=f"plan space to search: {', '.join(sorted(PLAN_SPECS))} or a JSON spec file",
        ),
    ),
    columns=(
        Column("fleet", "<24"),
        Column("n", ">2", key="workers"),
        Column("scheduler", "<15"),
        Column("control", "<12"),
        Column("$/Mreq", ">10.4f", key="cost_per_mreq"),
        Column("p99 [ms]", ">9.2f", key="p99_latency_ms"),
        Column("E/req [mJ]", ">11.2f", key="energy_per_request_mj"),
        Column("SLO %", ">6.1f", value=lambda p: p.slo_attainment * 100),
    ),
)
def run(
    spec: str = "tiny",
    engine: SweepEngine | None = None,
) -> list[FrontierPoint]:
    """Evaluate the plan space and tabulate its Pareto frontier."""
    engine = engine or get_default_engine()
    frontier = pareto_frontier(_evaluated_points(spec, engine))
    return [
        FrontierPoint(
            fleet=point.point.label,
            workers=len(point.point.fleet),
            scheduler=point.point.scheduler,
            control=point.point.control,
            cost_per_mreq=point.cost_per_request * 1e6,
            p99_latency_ms=point.p99_latency_s * 1e3,
            energy_per_request_mj=point.energy_per_request_j * 1e3,
            slo_attainment=point.slo_attainment,
        )
        for point in frontier
    ]


@dataclass(frozen=True)
class CapacityPoint:
    """The cheapest feasible fleet at one SLA target (or none)."""

    sla_ms: float
    fleet: str
    scheduler: str
    control: str
    cost_per_mreq: float
    p99_latency_ms: float
    slo_attainment: float


@experiment(
    "plan-capacity",
    title="Capacity ladder: cheapest feasible fleet per SLA target",
    tags=("planning",),
    params=(
        Param(
            "spec",
            str,
            "tiny",
            help=f"plan space to search: {', '.join(sorted(PLAN_SPECS))} or a JSON spec file",
        ),
        Param(
            "sla_ladder_ms",
            float,
            DEFAULT_SLA_LADDER_MS,
            help="SLA targets (ms) to solve the capacity question at",
            repeated=True,
        ),
        Param(
            "min_attainment",
            float,
            DEFAULT_MIN_ATTAINMENT,
            help="required SLO attainment over offered load, in [0, 1]",
        ),
    ),
    columns=(
        Column("SLA [ms]", ">8.1f", key="sla_ms"),
        Column("fleet", "<24"),
        Column("scheduler", "<15"),
        Column("control", "<12"),
        Column("$/Mreq", ">10.4f", key="cost_per_mreq"),
        Column("p99 [ms]", ">9.2f", key="p99_latency_ms"),
        Column("SLO %", ">6.1f", value=lambda p: p.slo_attainment * 100),
    ),
)
def run_capacity(
    spec: str = "tiny",
    sla_ladder_ms: tuple[float, ...] = DEFAULT_SLA_LADDER_MS,
    min_attainment: float = DEFAULT_MIN_ATTAINMENT,
    engine: SweepEngine | None = None,
) -> list[CapacityPoint]:
    """Solve the cheapest-feasible-fleet question at each SLA target."""
    if not 0.0 <= min_attainment <= 1.0:
        raise ValueError(f"min_attainment must be in [0, 1], got {min_attainment}")
    engine = engine or get_default_engine()
    points = _evaluated_points(spec, engine)
    rows = []
    for sla_ms in sla_ladder_ms:
        solution = cheapest_feasible(
            points, max_p99_s=sla_ms / 1000.0, min_attainment=min_attainment
        )
        if solution is None:
            rows.append(
                CapacityPoint(
                    sla_ms=sla_ms,
                    fleet="(infeasible)",
                    scheduler="-",
                    control="-",
                    cost_per_mreq=float("nan"),
                    p99_latency_ms=float("nan"),
                    slo_attainment=0.0,
                )
            )
            continue
        rows.append(
            CapacityPoint(
                sla_ms=sla_ms,
                fleet=solution.point.label,
                scheduler=solution.point.scheduler,
                control=solution.point.control,
                cost_per_mreq=solution.cost_per_request * 1e6,
                p99_latency_ms=solution.p99_latency_s * 1e3,
                slo_attainment=solution.slo_attainment,
            )
        )
    return rows

"""Fig. 8: the footprint-minimising sparsity format per sparsity ratio and mode.

Dense storage wins at low sparsity, Bitmap in the mid range, CSC/CSR at high
sparsity and COO only at extreme sparsity; the transition points move to
higher sparsity as the precision decreases.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.api import Column, Param, experiment
from repro.experiments.fig07_footprint import SPARSITY_PERCENTAGES
from repro.sparse.formats import Precision, SparsityFormat
from repro.sparse.selector import FormatSelector


@dataclass(frozen=True)
class OptimalFormatRow:
    """Optimal format at every swept sparsity ratio for one precision mode."""

    precision: Precision
    sparsity_percent: tuple[float, ...]
    optimal_format: tuple[SparsityFormat, ...]

    def format_at(self, sparsity_percent: float) -> SparsityFormat:
        """Optimal format at one of the swept sparsity points."""
        try:
            index = self.sparsity_percent.index(sparsity_percent)
        except ValueError as exc:
            raise ValueError(
                f"sparsity {sparsity_percent}% was not part of the sweep"
            ) from exc
        return self.optimal_format[index]

    def transition_points(self) -> list[tuple[float, SparsityFormat]]:
        """Sparsity ratios at which the optimal format changes."""
        points = []
        previous = None
        for pct, fmt in zip(self.sparsity_percent, self.optimal_format):
            if fmt is not previous:
                points.append((pct, fmt))
                previous = fmt
        return points


def _transitions_cell(row: "OptimalFormatRow") -> str:
    return " -> ".join(
        f"{fmt.value}@{pct:g}%" for pct, fmt in row.transition_points()
    )


@experiment(
    "fig08",
    title="Optimal sparsity format per ratio / mode",
    tags=("sparsity", "formats"),
    params=(
        Param(
            "precisions",
            Precision,
            (Precision.INT4, Precision.INT8, Precision.INT16),
            help="precision modes to sweep",
            repeated=True,
        ),
    ),
    columns=(
        Column("precision", "<6", value=lambda r: r.precision.name),
        Column("transitions", "", value=_transitions_cell),
    ),
    header=False,
)
def run(
    precisions: tuple[Precision, ...] = (Precision.INT4, Precision.INT8, Precision.INT16),
) -> list[OptimalFormatRow]:
    """Sweep the format selector across sparsity ratios for every mode."""
    selector = FormatSelector()
    rows = []
    for precision in precisions:
        decisions = selector.sweep(
            [pct / 100.0 for pct in SPARSITY_PERCENTAGES], precision
        )
        rows.append(
            OptimalFormatRow(
                precision=precision,
                sparsity_percent=tuple(SPARSITY_PERCENTAGES),
                optimal_format=tuple(decision.fmt for decision in decisions),
            )
        )
    return rows

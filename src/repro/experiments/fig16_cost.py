"""Fig. 16: accelerator-level area / power vs. GPUs and NeuRex.

Both NeuRex and FlexNeRFer fit the on-device constraints (< 100 mm^2 and
< 10 W); the GPUs do not.  Every device is pulled from the unified
:data:`repro.core.device.DEVICE_REGISTRY` and reports its cost through the
:class:`repro.core.device.Device` protocol.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.device import get_device
from repro.experiments.api import Column, Param, experiment

#: On-device integration constraints quoted in the paper.
AREA_CONSTRAINT_MM2 = 100.0
POWER_CONSTRAINT_W = 10.0

#: Registry names of the devices compared in the figure.
DEFAULT_DEVICES = ("rtx-2080-ti", "xavier-nx", "neurex", "flexnerfer")


@dataclass(frozen=True)
class DeviceCostRow:
    """Area / power of one device."""

    device: str
    area_mm2: float
    power_w: dict[str, float]
    meets_area_constraint: bool
    meets_power_constraint: bool


@experiment(
    "fig16",
    title="Accelerator-level area/power vs GPUs and NeuRex",
    tags=("hw-cost",),
    params=(
        Param(
            "devices",
            str,
            DEFAULT_DEVICES,
            help="registry names of the devices to compare",
            repeated=True,
        ),
    ),
    columns=(
        Column("device", "<14"),
        Column("area [mm2]", ">10.1f", key="area_mm2"),
        Column(
            "power [W]",
            ">28",
            value=lambda r: ", ".join(f"{k}:{v:.1f}" for k, v in r.power_w.items()),
        ),
        Column(
            "fits?",
            ">6",
            value=lambda r: str(r.meets_area_constraint and r.meets_power_constraint),
        ),
    ),
)
def run(devices: tuple[str, ...] = DEFAULT_DEVICES) -> list[DeviceCostRow]:
    """Collect area / power for every requested registry device."""
    rows = []
    for name in devices:
        device = get_device(name)
        area = device.area_mm2()
        power = device.power_profile()
        rows.append(
            DeviceCostRow(
                device=device.name,
                area_mm2=area,
                power_w=power,
                meets_area_constraint=area < AREA_CONSTRAINT_MM2,
                meets_power_constraint=max(power.values()) < POWER_CONSTRAINT_W,
            )
        )
    return rows

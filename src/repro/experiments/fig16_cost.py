"""Fig. 16: accelerator-level area / power vs. GPUs and NeuRex.

Both NeuRex and FlexNeRFer fit the on-device constraints (< 100 mm^2 and
< 10 W); the GPUs do not.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.gpu import RTX_2080_TI, XAVIER_NX, GPUSpec
from repro.baselines.neurex import NeuRex
from repro.core.accelerator import FlexNeRFer
from repro.sparse.formats import Precision

#: On-device integration constraints quoted in the paper.
AREA_CONSTRAINT_MM2 = 100.0
POWER_CONSTRAINT_W = 10.0


@dataclass(frozen=True)
class DeviceCostRow:
    """Area / power of one device."""

    device: str
    area_mm2: float
    power_w: dict[str, float]
    meets_area_constraint: bool
    meets_power_constraint: bool


def run(
    gpus: tuple[GPUSpec, ...] = (RTX_2080_TI, XAVIER_NX),
) -> list[DeviceCostRow]:
    """Collect area / power for the GPUs, NeuRex and FlexNeRFer."""
    rows = []
    for spec in gpus:
        rows.append(
            DeviceCostRow(
                device=spec.name,
                area_mm2=spec.area_mm2,
                power_w={"typical": spec.typical_power_w},
                meets_area_constraint=spec.area_mm2 < AREA_CONSTRAINT_MM2,
                meets_power_constraint=spec.typical_power_w < POWER_CONSTRAINT_W,
            )
        )
    neurex = NeuRex()
    rows.append(
        DeviceCostRow(
            device="NeuRex",
            area_mm2=neurex.area().total_mm2,
            power_w={"INT16": neurex.power().total_w},
            meets_area_constraint=neurex.area().total_mm2 < AREA_CONSTRAINT_MM2,
            meets_power_constraint=neurex.power().total_w < POWER_CONSTRAINT_W,
        )
    )
    flex = FlexNeRFer()
    flex_power = {
        precision.name: flex.power(precision).total_w
        for precision in (Precision.INT16, Precision.INT8, Precision.INT4)
    }
    rows.append(
        DeviceCostRow(
            device="FlexNeRFer",
            area_mm2=flex.area().total_mm2,
            power_w=flex_power,
            meets_area_constraint=flex.area().total_mm2 < AREA_CONSTRAINT_MM2,
            meets_power_constraint=max(flex_power.values()) < POWER_CONSTRAINT_W,
        )
    )
    return rows


def format_table(rows: list[DeviceCostRow]) -> str:
    lines = [f"{'device':<14} {'area [mm2]':>10} {'power [W]':>28} {'fits?':>6}"]
    for row in rows:
        power = ", ".join(f"{k}:{v:.1f}" for k, v in row.power_w.items())
        fits = row.meets_area_constraint and row.meets_power_constraint
        lines.append(f"{row.device:<14} {row.area_mm2:>10.1f} {power:>28} {str(fits):>6}")
    return "\n".join(lines)

"""The ``repro`` command line: list, run, benchmark and cache-manage.

Usage::

    repro list [--tags frame-sim,hw-cost] [--format table|json]
    repro run <ids|tag:TAG|all> [--format table|json|csv] [--out DIR]
              [--jobs N] [--no-store] [per-experiment param flags]
    repro shard <ids|tag:TAG|all> --index I --count N [--store DIR]
                [--pack PATH] [--jobs N] [per-experiment param flags]
    repro assemble <pack.json ...> [--store DIR] [--run SELECTORS]
                   [--format table|json|csv] [--out DIR] [--check DIR]
                   [--no-run] [per-experiment param flags]
    repro plan <spec> [--shard I/N] [--pack PATH] [--format table|json|csv]
               [--out PATH] [--check PATH] [--store DIR] [--no-store]
               [--jobs N] [--sla-ms X] [--min-attainment F]
    repro docs [--out PATH] [--check]
    repro lint [--format table|json] [--rules ID[,ID]] [--root PATH]
               [--baseline PATH] [--update-baseline]
    repro bench [--quick] [--out PATH] [--validate PATH]
                [--compare A.json B.json] [--trend [--dir PATH]]
    repro cache <stats|clear|evict> [--dir PATH] [--format table|json]
                [--max-entries N] [--max-age-days D]

Examples::

    repro list --tags frame-sim
    repro run fig19 --models all --pruning-ratios 0,0.5,0.9
    repro run tag:serving --format json
    repro run all --format json --out artifacts/ --jobs 4
    repro run all --no-store          # force cold, bypass the result store
    repro shard all --index 2 --count 4 --store .shard-store \\
        --pack packs/shard-2.json    # one machine's quarter of the evaluation
    repro assemble packs/*.json --out assembled/ --check artifacts/
    repro plan tiny                   # Pareto frontier of the built-in tiny space
    repro plan reference --sla-ms 250 --min-attainment 0.99
    repro plan reference --shard 0/2 --store .plan-store --pack packs/plan-0.json
    repro docs --check
    repro lint                        # determinism / cache-safety pass, exits 1 on findings
    repro lint --rules DET001,CONC001 --format json
    repro bench --quick --out bench/  # emit a BENCH_<rev>.json smoke point
    repro bench --compare BENCH_a.json BENCH_b.json
    repro cache stats --format json
    repro cache evict --max-entries 5000

``repro shard`` runs the deterministic ``--index``-of-``--count`` subset of
an experiment selection (partitioned by result-store cache key), persisting
every frame and result entry it produces; ``repro assemble`` merges the
shards' exported packs back into one store and replays the full selection
store-warm -- see ``docs/distributed.md`` for the scaling recipe.

``repro plan`` searches a fleet capacity-plan space (:mod:`repro.plan`):
every candidate (device mix, worker count, scheduler, control variant) is
simulated against the spec's traffic and scored, the Pareto frontier over
(cost/request, p99, energy/request) is reported, and ``--sla-ms`` /
``--min-attainment`` solve for the cheapest feasible point.  Evaluated
points are cached in the store's plan tier, so ``--shard I/N`` + ``repro
assemble --no-run`` distribute a large space across machines and a final
serial ``repro plan`` replays it warm -- see ``docs/planning.md``.

Every selected experiment's typed parameters are exposed as ``--flag value``
options (``repro list --format json`` shows them); a flag applies to every
selected experiment declaring that parameter.  Unknown experiment ids,
unknown tags and malformed parameter values exit with status 2 and a
one-line message -- never a traceback.

``repro run`` reads and writes the persistent result store
(:mod:`repro.perf.store`) by default, so re-runs with an unchanged
simulation model skip cycle-level simulation entirely; ``--no-store``
bypasses it.  The command surface below is described declaratively by
:data:`COMMANDS`, which both this usage text and the generated
``docs/experiments.md`` catalog render, so ``repro docs --check`` guards
the documented CLI against drift.
"""

from __future__ import annotations

import sys
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Sequence, TextIO

from repro.experiments.api import (
    BadParamError,
    Experiment,
    ExperimentResult,
    UnknownExperimentError,
)
from repro.experiments.registry import (
    EXPERIMENTS,
    all_tags,
    experiments_by_tag,
    get_experiment,
)

RUN_FORMATS = ("table", "json", "csv")
LIST_FORMATS = ("table", "json")


@dataclass(frozen=True)
class CommandOption:
    """One documented option of a CLI command (usage + generated catalog)."""

    flag: str
    value: str
    help: str

    @property
    def syntax(self) -> str:
        """The option as written on a command line, e.g. ``--jobs N``."""
        return f"{self.flag} {self.value}".strip()


@dataclass(frozen=True)
class CommandSpec:
    """One ``repro`` subcommand: name, operands, summary and options.

    The usage screen and the CLI section of the generated experiment
    catalog are both rendered from these specs, so the documented command
    surface cannot drift from the implemented one without failing
    ``repro docs --check``.
    """

    name: str
    summary: str
    operands: tuple[tuple[str, str], ...] = ()
    options: tuple[CommandOption, ...] = ()


#: The documented ``repro`` command surface, in help order.
COMMANDS: tuple[CommandSpec, ...] = (
    CommandSpec(
        "list",
        "list registered experiments",
        options=(
            CommandOption("--tags", "TAG[,TAG]", "only experiments carrying any given tag"),
            CommandOption("--format", "table|json", "json includes the typed parameter schemas"),
        ),
    ),
    CommandSpec(
        "run",
        "run experiments and render / write their results",
        operands=(("selectors", "experiment ids, tag:TAG groups, or 'all'"),),
        options=(
            CommandOption("--format", "table|json|csv", "output rendering"),
            CommandOption("--out", "DIR", "write one artifact file per experiment"),
            CommandOption("--jobs", "N", "run up to N experiments concurrently"),
            CommandOption("--no-store", "", "bypass the persistent result store (force cold simulation)"),
            CommandOption("--<param>", "VALUE", "any selected experiment's typed parameter"),
        ),
    ),
    CommandSpec(
        "shard",
        "run one deterministic shard of an experiment set into the store",
        operands=(("selectors", "experiment ids, tag:TAG groups, or 'all'"),),
        options=(
            CommandOption("--index", "I", "this shard's index, in [0, count)"),
            CommandOption("--count", "N", "total number of shards"),
            CommandOption("--store", "DIR", "result store to populate (default: $REPRO_STORE_DIR or .repro-store)"),
            CommandOption("--pack", "PATH", "export the populated store as a portable pack file (whole store: use a fresh --store for a minimal pack)"),
            CommandOption("--jobs", "N", "run up to N of the shard's experiments concurrently"),
            CommandOption("--<param>", "VALUE", "any selected experiment's typed parameter"),
        ),
    ),
    CommandSpec(
        "assemble",
        "merge shard packs into one store and replay the results store-warm",
        operands=(("packs", "pack files written by 'repro shard --pack'"),),
        options=(
            CommandOption("--store", "DIR", "store to merge into (default: $REPRO_STORE_DIR or .repro-store)"),
            CommandOption("--run", "SELECTORS", "experiments to replay after merging (default: all)"),
            CommandOption("--format", "table|json|csv", "output rendering (default: json)"),
            CommandOption("--out", "DIR", "write one artifact file per experiment"),
            CommandOption("--check", "DIR", "verify replayed artifacts match a reference directory (wall-clock field excluded)"),
            CommandOption("--no-run", "", "merge only; skip the replay"),
            CommandOption("--<param>", "VALUE", "typed parameter for the replay (pass the same values the shards used)"),
        ),
    ),
    CommandSpec(
        "plan",
        "search a fleet plan space and report its Pareto frontier",
        operands=(("spec", "built-in plan-space name (tiny, reference) or a JSON spec file"),),
        options=(
            CommandOption("--shard", "I/N", "evaluate only this shard of the space's plan points"),
            CommandOption("--pack", "PATH", "export the populated store as a portable pack file"),
            CommandOption("--format", "table|json|csv", "output rendering (default: table)"),
            CommandOption("--out", "PATH", "write the rendered plan to a file instead of stdout"),
            CommandOption("--check", "PATH", "verify output matches a reference file (wall-clock field excluded)"),
            CommandOption("--store", "DIR", "result store caching evaluated points (default: $REPRO_STORE_DIR or .repro-store)"),
            CommandOption("--no-store", "", "bypass the persistent result store (force re-evaluation)"),
            CommandOption("--jobs", "N", "evaluate up to N candidates concurrently"),
            CommandOption("--sla-ms", "X", "constraint: cheapest point with p99 <= X milliseconds"),
            CommandOption("--min-attainment", "F", "constraint: require SLO attainment >= F (in [0, 1])"),
        ),
    ),
    CommandSpec(
        "trace",
        "validate and summarize a serving-log trace (see docs/scenarios.md)",
        operands=(("path", "trace file: .csv or .jsonl serving log"),),
        options=(
            CommandOption("--summarize", "", "print per-scenario / per-tenant breakdown tables"),
            CommandOption("--to-json", "", "re-emit the validated trace as lossless JSON lines on stdout"),
        ),
    ),
    CommandSpec(
        "docs",
        "regenerate the experiment catalog (docs/experiments.md)",
        options=(
            CommandOption("--out", "PATH", "where to write the catalog"),
            CommandOption("--check", "", "exit 1 if the checked-in catalog is stale"),
        ),
    ),
    CommandSpec(
        "lint",
        "run the determinism / cache-safety static-analysis pass",
        options=(
            CommandOption("--format", "table|json", "diagnostic rendering (default: table)"),
            CommandOption("--rules", "ID[,ID]", "run only the given rule ids (default: all)"),
            CommandOption("--root", "PATH", "tree to lint (default: the installed repro package sources)"),
            CommandOption("--baseline", "PATH", "baseline file (default: lint-baseline.json at the checkout root)"),
            CommandOption("--update-baseline", "", "rewrite the baseline to grandfather every current finding"),
        ),
    ),
    CommandSpec(
        "bench",
        "measure a BENCH_<rev>.json performance trajectory point",
        options=(
            CommandOption("--quick", "", "CI-smoke footprint (small sweep, 5 experiments)"),
            CommandOption("--out", "PATH", "output file or directory (default: checkout root)"),
            CommandOption("--validate", "PATH", "schema-check an existing BENCH file instead of measuring"),
            CommandOption("--compare", "A.json B.json", "print regression deltas between two BENCH documents (matched quick flags)"),
            CommandOption("--trend", "", "render the committed BENCH_*.json trajectory as one scoreboard row per point"),
            CommandOption("--dir", "PATH", "trend: directory holding the BENCH_*.json points (default: checkout root)"),
        ),
    ),
    CommandSpec(
        "cache",
        "inspect or prune the persistent result store",
        operands=(("action", "stats | clear | evict"),),
        options=(
            CommandOption("--dir", "PATH", "store directory (default: $REPRO_STORE_DIR or .repro-store)"),
            CommandOption("--format", "table|json", "stats output rendering"),
            CommandOption("--max-entries", "N", "evict: keep at most N newest entries"),
            CommandOption("--max-age-days", "D", "evict: drop entries older than D days"),
        ),
    ),
)


def _usage() -> str:
    """The usage screen, rendered from :data:`COMMANDS`."""
    lines = ["usage: repro <command> [options]", "", "commands:"]
    for spec in COMMANDS:
        lines.append(f"  {spec.name:<6} {spec.summary}")
        for name, help_text in spec.operands:
            lines.append(f"           {name:<21} {help_text}")
        for option in spec.options:
            lines.append(f"           {option.syntax:<21} {option.help}".rstrip())
    lines += ["", "run 'repro list' for the experiment ids and tags."]
    return "\n".join(lines)


class CLIError(Exception):
    """A user-facing CLI error: printed as one line, exits with status 2."""


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point of the ``repro`` console script and ``python -m``."""
    args = list(sys.argv[1:] if argv is None else argv)
    try:
        if not args or args[0] in ("-h", "--help", "help"):
            print(_usage())
            return 0
        command, rest = args[0], args[1:]
        if command == "list":
            return _cmd_list(rest)
        if command == "run":
            return _cmd_run(rest)
        if command == "shard":
            return _cmd_shard(rest)
        if command == "assemble":
            return _cmd_assemble(rest)
        if command == "plan":
            return _cmd_plan(rest)
        if command == "trace":
            return _cmd_trace(rest)
        if command == "docs":
            return _cmd_docs(rest)
        if command == "lint":
            return _cmd_lint(rest)
        if command == "bench":
            return _cmd_bench(rest)
        if command == "cache":
            return _cmd_cache(rest)
        # Historical invocation styles keep working: ``repro fig19``,
        # ``repro all`` behave like ``repro run ...``.
        if command == "all" or command.lower() in EXPERIMENTS:
            return _cmd_run(args)
        known = ", ".join(f"'{spec.name}'" for spec in COMMANDS)
        raise CLIError(
            f"unknown command '{command}' (expected one of {known}); "
            f"run 'repro --help' for usage"
        )
    except CLIError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


# -- repro list ---------------------------------------------------------------


def _parse_options(args: list[str], flags: tuple[str, ...]) -> dict[str, str]:
    """Parse a flat ``--flag value`` option list against ``flags``."""
    options: dict[str, str] = {}
    i = 0
    while i < len(args):
        token = args[i]
        if not token.startswith("--"):
            raise CLIError(f"unexpected argument '{token}'")
        flag, value, consumed = _flag_value(args, i)
        if flag not in flags:
            raise CLIError(f"unknown option '{flag}'; valid: {', '.join(flags)}")
        options[flag] = value
        i += consumed
    return options


def _cmd_list(args: list[str]) -> int:
    options = _parse_options(args, flags=("--tags", "--format"))
    fmt = options.get("--format", "table")
    if fmt not in LIST_FORMATS:
        raise CLIError(f"invalid list format '{fmt}'; valid: {', '.join(LIST_FORMATS)}")
    experiments = list(EXPERIMENTS.values())
    if "--tags" in options:
        wanted = {t for t in options["--tags"].split(",") if t}
        unknown = wanted - set(all_tags())
        if unknown:
            raise CLIError(
                f"unknown tag(s) {', '.join(sorted(unknown))}; "
                f"valid: {', '.join(all_tags())}"
            )
        experiments = [e for e in experiments if wanted & set(e.tags)]
    if fmt == "json":
        import json

        print(json.dumps([_describe(e) for e in experiments], indent=2))
        return 0
    print("Available experiments:")
    for exp in experiments:
        tags = ",".join(exp.tags)
        print(f"  {exp.id:<22} {tags:<28} {exp.title}")
    return 0


def _describe(exp: Experiment) -> dict[str, Any]:
    return {
        "id": exp.id,
        "title": exp.title,
        "tags": list(exp.tags),
        "params": [
            {
                "name": param.name,
                "flag": param.flag,
                "type": param.type_label,
                "default": param.to_json(param.default),
                "help": param.help,
            }
            for param in exp.params
        ],
    }


# -- repro docs ---------------------------------------------------------------


def _cmd_docs(args: list[str]) -> int:
    """Regenerate (or, with ``--check``, verify) the experiment catalog."""
    from repro.experiments.catalog import catalog_markdown, default_catalog_path

    check = "--check" in args
    args = [a for a in args if a != "--check"]
    options = _parse_options(args, flags=("--out",))
    path = Path(options["--out"]) if "--out" in options else default_catalog_path()
    generated = catalog_markdown()
    if check:
        current = path.read_text() if path.exists() else None
        if current != generated:
            command = (
                "repro docs" if "--out" not in options else f"repro docs --out {path}"
            )
            print(
                f"error: {path} is stale; regenerate it with '{command}'",
                file=sys.stderr,
            )
            return 1
        print(f"{path} is up to date")
        return 0
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(generated)
    print(f"wrote {path}")
    return 0


# -- repro lint ---------------------------------------------------------------


def _cmd_lint(args: list[str]) -> int:
    """Run the determinism / cache-safety static-analysis pass.

    Exits 0 on a clean pass, 1 when non-baselined findings remain, 2 on
    usage errors -- the same contract the CI lint gate relies on.
    """
    from repro.analysis import (
        default_baseline_path,
        default_lint_root,
        load_baseline,
        render_json,
        render_table,
        run_lint,
        update_baseline,
    )

    update = "--update-baseline" in args
    args = [a for a in args if a != "--update-baseline"]
    options = _parse_options(
        args, flags=("--format", "--rules", "--root", "--baseline")
    )
    fmt = options.get("--format", "table")
    if fmt not in LIST_FORMATS:
        raise CLIError(
            f"invalid lint format '{fmt}'; valid: {', '.join(LIST_FORMATS)}"
        )
    rule_ids = None
    if "--rules" in options:
        rule_ids = [r for r in options["--rules"].split(",") if r]
        if not rule_ids:
            raise CLIError("--rules needs at least one rule id")
        if update:
            # A partial run would rewrite the baseline without the other
            # rules' findings, silently un-grandfathering them.
            raise CLIError("--update-baseline requires the full rule set; drop --rules")
    root = Path(options["--root"]) if "--root" in options else default_lint_root()
    if not root.is_dir():
        raise CLIError(f"no such lint root: {root}")
    baseline_path = (
        Path(options["--baseline"])
        if "--baseline" in options
        else default_baseline_path()
    )
    try:
        baseline = load_baseline(baseline_path)
        report = run_lint(root, rule_ids=rule_ids, baseline=baseline)
    except ValueError as exc:
        raise CLIError(str(exc)) from None
    if update:
        # Grandfather every current non-suppressed finding: new ones get a
        # TODO justification, already-baselined ones keep theirs.
        update_baseline(
            baseline_path, report.findings + report.baselined, baseline
        )
        report = run_lint(root, rule_ids=rule_ids, baseline=load_baseline(baseline_path))
        print(f"wrote {baseline_path} ({len(report.baselined)} entries matched)")
    print(render_json(report) if fmt == "json" else render_table(report))
    return 0 if report.clean else 1


# -- repro bench --------------------------------------------------------------


def _read_json_file(path: Path, what: str) -> Any:
    """Load one JSON file, surfacing any problem as a one-line CLI error."""
    import json

    try:
        return json.loads(path.read_text())
    except FileNotFoundError:
        raise CLIError(f"no such {what}: {path}") from None
    except OSError as exc:
        raise CLIError(f"cannot read {what} {path}: {exc}") from None
    except ValueError as exc:
        raise CLIError(f"{path} is not valid JSON: {exc}") from None


def _extract_compare(args: list[str]) -> tuple[list[str], tuple[str, str] | None]:
    """Split the two-path ``--compare A B`` option out of a bench arg list."""
    if "--compare" not in args:
        return args, None
    at = args.index("--compare")
    values = args[at + 1 : at + 3]
    if len(values) < 2 or any(v.startswith("--") for v in values):
        raise CLIError("--compare needs two BENCH file paths")
    return args[:at] + args[at + 3 :], (values[0], values[1])


def _cmd_bench(args: list[str]) -> int:
    """Measure, schema-check (``--validate``), diff (``--compare``) or
    scoreboard (``--trend``) BENCH documents."""
    from repro.perf.bench import run_bench, validate_bench, write_bench

    quick = "--quick" in args
    args = [a for a in args if a != "--quick"]
    trend = "--trend" in args
    args = [a for a in args if a != "--trend"]
    args, compare_paths = _extract_compare(args)
    options = _parse_options(args, flags=("--out", "--validate", "--dir"))
    if trend:
        from repro.perf.bench import (
            default_bench_dir,
            load_bench_documents,
            render_trend,
            trend_report,
        )

        directory = (
            Path(options["--dir"]) if "--dir" in options else default_bench_dir()
        )
        if not directory.is_dir():
            raise CLIError(f"no such trend directory: {directory}")
        documents = [doc for _, doc in load_bench_documents(directory)]
        print(render_trend(trend_report(documents)))
        return 0 if documents else 1
    if compare_paths is not None:
        from repro.perf.bench import compare_bench, render_compare

        baseline, current = (
            _read_json_file(Path(p), "BENCH file") for p in compare_paths
        )
        try:
            comparison = compare_bench(baseline, current)
        except ValueError as exc:
            raise CLIError(str(exc)) from None
        print(render_compare(comparison))
        return 0
    if "--validate" in options:
        path = Path(options["--validate"])
        document = _read_json_file(path, "BENCH file")
        problems = validate_bench(document)
        if problems:
            for problem in problems:
                print(f"error: {path}: {problem}", file=sys.stderr)
            return 1
        print(f"{path} conforms to bench schema v{document['schema_version']}")
        return 0
    document = run_bench(quick=quick)
    problems = validate_bench(document)
    if problems:  # pragma: no cover - emitter/schema drift is a bug
        raise CLIError(f"emitted document fails its own schema: {problems[0]}")
    path = write_bench(
        document, Path(options["--out"]) if "--out" in options else None
    )
    sweep = document["sweep"]
    print(f"wrote {path}")
    print(
        f"sweep: cold {sweep['cold_s']:.2f}s -> warm-store "
        f"{sweep['warm_store_s']:.2f}s ({sweep['warm_store_speedup']:.1f}x, "
        f"{sweep['warm_store_render_calls']} renders)"
    )
    serving = document["serving"]
    print(
        f"serving: {serving['requests_per_wall_s']:.0f} requests/s simulated "
        f"({serving['time_compression']:.0f}x time compression)"
    )
    return 0


# -- repro cache --------------------------------------------------------------


def _cmd_cache(args: list[str]) -> int:
    """Inspect or prune the persistent result store."""
    from repro.perf.store import ResultStore

    # Each action accepts exactly its own flags, so e.g. a `clear` carrying
    # an ignored eviction bound is rejected instead of wiping the store.
    action_flags = {
        "stats": ("--dir", "--format"),
        "clear": ("--dir",),
        "evict": ("--dir", "--max-entries", "--max-age-days"),
    }
    if not args or args[0].startswith("--"):
        raise CLIError(f"cache needs an action: {' | '.join(action_flags)}")
    action, rest = args[0], args[1:]
    if action not in action_flags:
        raise CLIError(
            f"unknown cache action '{action}'; valid: {', '.join(action_flags)}"
        )
    options = _parse_options(rest, flags=action_flags[action])
    store = (
        ResultStore(Path(options["--dir"]))
        if "--dir" in options
        else ResultStore.default()
    )
    fmt = options.get("--format", "table")
    if fmt not in LIST_FORMATS:
        raise CLIError(
            f"invalid cache format '{fmt}'; valid: {', '.join(LIST_FORMATS)}"
        )
    if action == "stats":
        stats = store.stats()
        if fmt == "json":
            import json

            print(json.dumps(stats.to_dict(), indent=2))
        else:
            print(f"store:          {stats.root}")
            print(f"schema version: v{stats.schema_version}")
            print(f"entries:        {stats.entries}")
            print(f"stale entries:  {stats.stale_entries} (other schema versions)")
            print(f"size:           {stats.total_bytes / 1e6:.2f} MB")
        return 0
    if action == "clear":
        removed = store.clear()
        print(f"removed {removed} entries from {store.root}")
        return 0
    max_entries = None
    if "--max-entries" in options:
        try:
            max_entries = int(options["--max-entries"])
        except ValueError:
            raise CLIError(
                f"--max-entries: invalid int '{options['--max-entries']}'"
            ) from None
        if max_entries < 0:
            raise CLIError("--max-entries must be >= 0")
    max_age_s = None
    if "--max-age-days" in options:
        try:
            max_age_s = float(options["--max-age-days"]) * 86400.0
        except ValueError:
            raise CLIError(
                f"--max-age-days: invalid number '{options['--max-age-days']}'"
            ) from None
        if max_age_s < 0:
            raise CLIError("--max-age-days must be >= 0")
    removed = store.evict(max_entries=max_entries, max_age_s=max_age_s)
    print(f"evicted {removed} entries from {store.root}")
    return 0


# -- repro run ----------------------------------------------------------------


def _attach_store(store_dir: str | None = None):
    """Attach the persistent store (default, or rooted at ``store_dir``).

    The store rides on the shared process-wide engine, so serving
    experiments and figure sweeps read through the same cache the previous
    ``repro run`` populated.  Returns the attached
    :class:`~repro.perf.store.ResultStore`.
    """
    from repro.perf.store import ResultStore
    from repro.sim.sweep import get_default_engine

    store = ResultStore(Path(store_dir)) if store_dir else ResultStore.default()
    get_default_engine().attach_store(store)
    return store


def _configure_store(no_store: bool) -> None:
    """Attach (or detach, with ``--no-store``) the default persistent store."""
    if no_store:
        from repro.sim.sweep import get_default_engine

        get_default_engine().attach_store(None)
    else:
        _attach_store(None)


def _cmd_run(args: list[str]) -> int:
    no_store = "--no-store" in args
    args = [a for a in args if a != "--no-store"]
    selectors, options, param_tokens = _split_args(
        args, ("--format", "--out", "--jobs"), collect_params=True
    )
    if not selectors:
        raise CLIError("no experiments selected; pass ids, tag:TAG or 'all'")

    fmt = options.get("--format", "table")
    if fmt not in RUN_FORMATS:
        raise CLIError(f"invalid format '{fmt}'; valid: {', '.join(RUN_FORMATS)}")
    jobs = _parse_jobs(options.get("--jobs", "1"))
    out_dir = Path(options["--out"]) if "--out" in options else None
    _configure_store(no_store)

    experiments = _select(selectors)
    overrides = _resolve_param_flags(param_tokens, experiments)
    results = run_many(experiments, overrides, jobs=jobs)

    if out_dir is not None:
        _write_artifacts(results, fmt, out_dir)
    else:
        _print_results(results, fmt, sys.stdout)
    return 0


# -- repro shard / repro assemble ---------------------------------------------


def _parse_int_option(options: dict[str, str], flag: str) -> int:
    """The required integer value of ``flag``, as a one-line error otherwise."""
    if flag not in options:
        raise CLIError(f"missing required option {flag}")
    try:
        return int(options[flag])
    except ValueError:
        raise CLIError(f"{flag}: invalid int '{options[flag]}'") from None


def _cmd_shard(args: list[str]) -> int:
    """Run one deterministic shard of an experiment selection into the store."""
    from repro.perf.distributed import Shard, shard_experiments

    selectors, options, param_tokens = _split_args(
        args,
        ("--index", "--count", "--store", "--pack", "--jobs"),
        collect_params=True,
    )
    if not selectors:
        raise CLIError("no experiments selected; pass ids, tag:TAG or 'all'")
    try:
        shard = Shard(
            _parse_int_option(options, "--index"),
            _parse_int_option(options, "--count"),
        )
    except ValueError as exc:
        raise CLIError(str(exc)) from None
    jobs = _parse_jobs(options.get("--jobs", "1"))
    store = _attach_store(options.get("--store"))

    experiments = _select(selectors)
    overrides = _resolve_param_flags(param_tokens, experiments)
    mine = shard_experiments(experiments, shard, overrides)
    print(
        f"shard {shard.index}/{shard.count}: {len(mine)} of "
        f"{len(experiments)} selected experiments -> {store.root}"
    )
    results = run_many(mine, overrides, jobs=jobs)
    for result in results:
        print(f"  {result.experiment_id} ({result.provenance.wall_time_s:.1f}s)")
    if "--pack" in options:
        path = store.export_pack(Path(options["--pack"]))
        print(f"wrote pack {path} ({store.stats().entries} store entries)")
    return 0


def _cmd_assemble(args: list[str]) -> int:
    """Merge shard packs into one store and replay the results store-warm."""
    from repro.perf.distributed import assemble_packs, normalize_result_json
    from repro.perf.store import PackConflictError

    no_run = "--no-run" in args
    args = [a for a in args if a != "--no-run"]
    packs, options, param_tokens = _split_args(
        args,
        ("--store", "--run", "--format", "--out", "--check"),
        collect_params=True,
    )
    if not packs:
        raise CLIError(
            "no shard packs given; pass pack files written by 'repro shard --pack'"
        )
    if no_run and param_tokens:
        raise CLIError(
            "--<param> flags apply to the replay; drop --no-run to use them"
        )
    fmt = options.get("--format", "json")
    if fmt not in RUN_FORMATS:
        raise CLIError(f"invalid format '{fmt}'; valid: {', '.join(RUN_FORMATS)}")

    store = _attach_store(options.get("--store"))
    try:
        stats = assemble_packs(store, [Path(p) for p in packs])
    except (PackConflictError, ValueError) as exc:
        raise CLIError(str(exc)) from None
    print(
        f"merged {len(packs)} pack(s) into {store.root}: {stats.added} added, "
        f"{stats.identical} identical, {stats.skipped} skipped"
    )
    if no_run:
        return 0

    selectors = [s for s in options.get("--run", "all").split(",") if s]
    experiments = _select(selectors)
    # The result-tier keys hash parameter values, so the replay must carry
    # the same overrides the shard runs were given.
    overrides = _resolve_param_flags(param_tokens, experiments)
    results = run_many(experiments, overrides)
    if "--out" in options:
        _write_artifacts(results, fmt, Path(options["--out"]))
    if "--check" in options:
        reference = Path(options["--check"])
        mismatches = []
        for result in results:
            path = reference / f"{result.experiment_id}.{_EXTENSIONS[fmt]}"
            text = _render(result, fmt)
            text = text if text.endswith("\n") else text + "\n"
            if not path.exists():
                mismatches.append(f"{path}: missing from reference")
            elif normalize_result_json(path.read_text()) != normalize_result_json(
                text
            ):
                mismatches.append(f"{path}: assembled output differs")
        if mismatches:
            for mismatch in mismatches:
                print(f"error: {mismatch}", file=sys.stderr)
            return 1
        print(
            f"assembled output matches {reference} for "
            f"{len(results)} experiment(s)"
        )
    if "--out" not in options and "--check" not in options:
        _print_results(results, fmt, sys.stdout)
    return 0


# -- repro plan ---------------------------------------------------------------


def _parse_shard_option(text: str):
    """Parse an ``I/N`` shard designator into a ``Shard`` (one-line errors)."""
    from repro.perf.distributed import Shard

    parts = text.split("/")
    if len(parts) != 2:
        raise CLIError(f"--shard: invalid shard '{text}' (expected I/N)")
    try:
        index, count = int(parts[0]), int(parts[1])
    except ValueError:
        raise CLIError(f"--shard: invalid shard '{text}' (expected I/N)") from None
    try:
        return Shard(index, count)
    except ValueError as exc:
        raise CLIError(f"--shard: {exc}") from None


def _parse_float_option(options: dict[str, str], flag: str) -> float:
    """The float value of ``flag`` (present in ``options``), or a CLI error."""
    try:
        return float(options[flag])
    except ValueError:
        raise CLIError(f"{flag}: invalid number '{options[flag]}'") from None


def _plan_point_dict(evaluated) -> dict[str, Any]:
    """One evaluated plan point as a flat JSON-safe mapping."""
    payload = evaluated.to_payload()
    return {**payload["point"], **payload["metrics"]}


def _plan_table(document: dict[str, Any]) -> str:
    """Fixed-width frontier table of a plan document."""
    header = (
        f"{'fleet':<24} {'n':>2} {'scheduler':<15} {'control':<12} "
        f"{'traffic':<12} "
        f"{'$/Mreq':>10} {'p99 [ms]':>9} {'mJ/req':>8} {'SLO %':>6}"
    )
    lines = [header]
    for row in document["frontier"]:
        fleet = "+".join(row["fleet"])
        lines.append(
            f"{fleet:<24} {len(row['fleet']):>2} {row['scheduler']:<15} "
            f"{row['control']:<12} {row.get('traffic', 'poisson'):<12} "
            f"{row['cost_per_request'] * 1e6:>10.4f} "
            f"{row['p99_latency_s'] * 1e3:>9.2f} "
            f"{row['energy_per_request_j'] * 1e3:>8.2f} "
            f"{row['slo_attainment'] * 100:>6.1f}"
        )
    if not document["frontier"]:
        lines.append("(empty frontier: no plan points evaluated)")
    constraint = document.get("constraint")
    if constraint is not None:
        solution = constraint["solution"]
        fleet = "+".join(solution["fleet"])
        lines.append(
            f"cheapest feasible: {fleet} ({solution['scheduler']}, "
            f"{solution['control']}) at {solution['cost_per_request'] * 1e6:.4f} "
            f"$/Mreq, p99 {solution['p99_latency_s'] * 1e3:.2f} ms, "
            f"attainment {solution['slo_attainment'] * 100:.1f}%"
        )
    return "\n".join(lines)


_PLAN_CSV_FIELDS = (
    "scheduler",
    "control",
    "traffic",
    "cost_per_request",
    "p99_latency_s",
    "energy_per_request_j",
    "slo_attainment",
    "goodput_rps",
    "completed_requests",
)


def _plan_csv(document: dict[str, Any]) -> str:
    """CSV rendering of a plan document's frontier rows."""
    lines = ["fleet," + ",".join(_PLAN_CSV_FIELDS)]
    for row in document["frontier"]:
        cells = ["+".join(row["fleet"])]
        cells += [repr(row[field]) if isinstance(row[field], float) else str(row[field])
                  for field in _PLAN_CSV_FIELDS]
        lines.append(",".join(cells))
    return "\n".join(lines)


def _render_plan(document: dict[str, Any], fmt: str) -> str:
    """Render a plan document as table, JSON or CSV text."""
    if fmt == "json":
        import json

        return json.dumps(document, indent=2)
    if fmt == "csv":
        return _plan_csv(document)
    summary = (
        f"plan {document['spec']}: frontier {len(document['frontier'])} of "
        f"{document['evaluated']} evaluated points "
        f"({document['enumerated']} enumerated)"
    )
    return summary + "\n" + _plan_table(document)


def _cmd_plan(args: list[str]) -> int:
    """Search a fleet plan space: evaluate, reduce to the Pareto frontier."""
    import time

    from repro.experiments.api import _repo_version
    from repro.perf.distributed import normalize_result_json
    from repro.plan import (
        OBJECTIVES,
        cheapest_feasible,
        evaluate_space,
        load_space,
        pareto_frontier,
        space_digest,
    )

    no_store = "--no-store" in args
    args = [a for a in args if a != "--no-store"]
    positionals, options, _ = _split_args(
        args,
        (
            "--shard",
            "--pack",
            "--format",
            "--out",
            "--check",
            "--store",
            "--jobs",
            "--sla-ms",
            "--min-attainment",
        ),
    )
    if len(positionals) != 1:
        raise CLIError(
            "pass exactly one plan spec (a built-in name or a JSON spec file)"
        )
    fmt = options.get("--format", "table")
    if fmt not in RUN_FORMATS:
        raise CLIError(f"invalid format '{fmt}'; valid: {', '.join(RUN_FORMATS)}")
    shard = _parse_shard_option(options["--shard"]) if "--shard" in options else None
    jobs = _parse_jobs(options.get("--jobs", "1"))
    sla_ms = _parse_float_option(options, "--sla-ms") if "--sla-ms" in options else None
    min_attainment = (
        _parse_float_option(options, "--min-attainment")
        if "--min-attainment" in options
        else None
    )
    if min_attainment is not None and not 0.0 <= min_attainment <= 1.0:
        raise CLIError(f"--min-attainment must be in [0, 1], got {min_attainment}")
    if no_store and "--store" in options:
        raise CLIError("--no-store and --store are mutually exclusive")
    if no_store and "--pack" in options:
        raise CLIError("--pack exports the store; drop --no-store to use it")

    try:
        space = load_space(positionals[0])
    except ValueError as exc:
        raise CLIError(str(exc)) from exc

    if no_store:
        _configure_store(True)
        store = None
    else:
        store = _attach_store(options.get("--store"))

    start = time.perf_counter()  # repro: lint-ignore[DET002]
    evaluation = evaluate_space(space, store=store, shard=shard, jobs=jobs)
    wall_time_s = time.perf_counter() - start  # repro: lint-ignore[DET002]
    frontier = pareto_frontier(evaluation.points)

    constraint: dict[str, Any] | None = None
    if sla_ms is not None or min_attainment is not None:
        solution = cheapest_feasible(
            evaluation.points,
            max_p99_s=None if sla_ms is None else sla_ms / 1000.0,
            min_attainment=min_attainment,
        )
        if solution is None:
            bounds = []
            if sla_ms is not None:
                bounds.append(f"p99 <= {sla_ms:g} ms")
            if min_attainment is not None:
                bounds.append(f"attainment >= {min_attainment:g}")
            raise CLIError(
                f"infeasible constraint: no evaluated point has "
                f"{' and '.join(bounds)} "
                f"({len(evaluation.points)} points evaluated)"
            )
        constraint = {
            "sla_ms": sla_ms,
            "min_attainment": min_attainment,
            "solution": _plan_point_dict(solution),
        }

    document: dict[str, Any] = {
        "spec": space.name,
        "space": space.canonical(),
        "space_digest": space_digest(space),
        "shard": None if shard is None else {"index": shard.index, "count": shard.count},
        "enumerated": evaluation.enumerated,
        "evaluated": len(evaluation.points),
        "objectives": list(OBJECTIVES),
        "frontier": [_plan_point_dict(point) for point in frontier],
        "constraint": constraint,
        "provenance": {
            "repo_version": _repo_version(),
            "wall_time_s": wall_time_s,
        },
    }

    print(
        f"plan {space.name}: {len(evaluation.points)} of "
        f"{evaluation.enumerated} points evaluated "
        f"({evaluation.fresh} fresh, {evaluation.cached} cached)"
    )
    text = _render_plan(document, fmt)
    text = text if text.endswith("\n") else text + "\n"
    if "--out" in options:
        path = Path(options["--out"])
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
        print(f"wrote {path}")
    else:
        sys.stdout.write(text)
    if "--pack" in options and store is not None:
        path = store.export_pack(Path(options["--pack"]))
        print(f"wrote pack {path} ({store.stats().entries} store entries)")
    if "--check" in options:
        reference = Path(options["--check"])
        if not reference.exists():
            print(f"error: {reference}: missing reference file", file=sys.stderr)
            return 1
        if normalize_result_json(reference.read_text()) != normalize_result_json(text):
            print(f"error: {reference}: plan output differs", file=sys.stderr)
            return 1
        print(f"plan output matches {reference}")
    return 0


def _cmd_trace(args: list[str]) -> int:
    """Validate a serving-log trace; summarize or re-emit it."""
    from repro.serve.traffic import TraceFormatError, load_trace, trace_to_jsonl

    summarize = "--summarize" in args
    to_json = "--to-json" in args
    args = [a for a in args if a not in ("--summarize", "--to-json")]
    positionals, _, _ = _split_args(args, ())
    if len(positionals) != 1:
        raise CLIError("pass exactly one trace file (.csv or .jsonl)")
    if summarize and to_json:
        raise CLIError("--summarize and --to-json are mutually exclusive")
    try:
        trace = load_trace(positionals[0])
    except TraceFormatError as exc:
        raise CLIError(str(exc)) from None
    except OSError as exc:
        raise CLIError(f"{positionals[0]}: {exc.strerror or exc}") from None
    if to_json:
        sys.stdout.write(trace_to_jsonl(trace.requests))
        return 0
    summary = trace.summary()
    print(
        f"trace {summary['path']}: {summary['requests']} requests over "
        f"{summary['duration_s']:.3f}s ({summary['offered_rps']:.2f} rps, "
        f"format {summary['format']})"
    )
    print(
        f"  deadlines: {summary['with_deadline']}/{summary['requests']}"
        f"  pinned: {summary['pinned']}"
        f"  tenants: {len(summary['tenants'])}"
        f"  sessions: {summary['sessions']}"
    )
    if summarize:
        print(f"\n  {'scenario':<40} {'count':>7} {'share':>7}")
        for row in summary["scenarios"]:
            print(f"  {row['label']:<40} {row['count']:>7} {row['share']:>6.1%}")
        if summary["tenants"]:
            print(f"\n  {'tenant':<16} {'count':>7}")
            for tenant, count in summary["tenants"].items():
                print(f"  {tenant:<16} {count:>7}")
    return 0


def _flag_value(args: list[str], i: int) -> tuple[str, str, int]:
    token = args[i]
    if "=" in token:
        flag, value = token.split("=", 1)
        return flag, value, 1
    if i + 1 >= len(args) or args[i + 1].startswith("--"):
        raise CLIError(f"missing value for {token}")
    return token, args[i + 1], 2


def _split_args(
    args: list[str],
    known_flags: tuple[str, ...],
    collect_params: bool = False,
) -> tuple[list[str], dict[str, str], list[tuple[str, str]]]:
    """Split raw args into positionals, known options and param flags.

    Flags outside ``known_flags`` are collected as per-experiment parameter
    tokens when ``collect_params`` is set and rejected with a one-line
    error otherwise.
    """
    positionals: list[str] = []
    options: dict[str, str] = {}
    param_tokens: list[tuple[str, str]] = []
    i = 0
    while i < len(args):
        token = args[i]
        if token.startswith("--"):
            flag, value, consumed = _flag_value(args, i)
            if flag in known_flags:
                options[flag] = value
            elif collect_params:
                param_tokens.append((flag, value))
            else:
                raise CLIError(
                    f"unknown option '{flag}'; valid: {', '.join(known_flags)}"
                )
            i += consumed
        else:
            positionals.append(token)
            i += 1
    return positionals, options, param_tokens


def _parse_jobs(text: str) -> int:
    try:
        jobs = int(text)
    except ValueError:
        raise CLIError(f"--jobs: invalid int '{text}'") from None
    if jobs < 1:
        raise CLIError("--jobs must be >= 1")
    return jobs


def _select(selectors: list[str]) -> list[Experiment]:
    """Resolve ids / ``tag:`` groups / ``all`` into a deduped run list."""
    chosen: dict[str, Experiment] = {}
    for selector in selectors:
        if selector == "all":
            chosen.update(EXPERIMENTS)
        elif selector.startswith("tag:"):
            tag = selector[len("tag:"):]
            matches = experiments_by_tag(tag)
            if not matches:
                raise CLIError(
                    f"no experiments tagged '{tag}'; valid tags: {', '.join(all_tags())}"
                )
            chosen.update({exp.id: exp for exp in matches})
        else:
            try:
                exp = get_experiment(selector)
            except UnknownExperimentError as exc:
                raise CLIError(str(exc)) from None
            chosen[exp.id] = exp
    return list(chosen.values())


def _resolve_param_flags(
    param_tokens: list[tuple[str, str]], experiments: list[Experiment]
) -> dict[str, dict[str, Any]]:
    """Map ``--flag value`` pairs onto each selected experiment's params."""
    by_flag: dict[str, list[tuple[Experiment, Any]]] = {}
    for exp in experiments:
        for param in exp.params:
            by_flag.setdefault(param.flag, []).append((exp, param))
    overrides: dict[str, dict[str, Any]] = {exp.id: {} for exp in experiments}
    for flag, text in param_tokens:
        if flag not in by_flag:
            valid = ", ".join(sorted(by_flag)) or "(none for this selection)"
            raise CLIError(f"unknown parameter '{flag}'; valid: {valid}")
        for exp, param in by_flag[flag]:
            try:
                overrides[exp.id][param.name] = param.parse(text)
            except BadParamError as exc:
                raise CLIError(str(exc)) from None
    return overrides


def _result_store():
    """The persistent store attached to the shared engine (None when off)."""
    from repro.sim.sweep import get_default_engine

    return get_default_engine().store


def _experiment_key(exp: Experiment, overrides: dict[str, Any]):
    """Content address of one experiment invocation (the result-tier key)."""
    from repro.perf.distributed import experiment_result_key

    return experiment_result_key(exp, overrides)


def _cached_result(exp: Experiment, payload: dict[str, Any]) -> ExperimentResult:
    """Rebuild a byte-identical :class:`ExperimentResult` from a store payload.

    The rendered table was persisted verbatim, so ``to_table`` (including
    custom renderers over ``raw``, which is not serializable) reproduces
    the cold run's bytes; provenance keeps the *producing* run's wall time.
    """
    import dataclasses
    import json

    table = payload["table"]
    result = ExperimentResult.from_json(json.dumps(payload["result"]))
    return dataclasses.replace(result, _renderer=lambda _result: table)


def run_many(
    experiments: list[Experiment],
    overrides: dict[str, dict[str, Any]] | None = None,
    jobs: int = 1,
) -> list[ExperimentResult]:
    """Run experiments (optionally concurrently), preserving selection order.

    Results are deterministic regardless of ``jobs``: experiments share the
    process-wide cached sweep engine, whose caches are thread-safe, and every
    experiment's output depends only on its own parameters.

    When the shared engine carries a persistent store, whole results are
    cached through it (:class:`repro.perf.store.ExperimentResultKey`): a
    warm invocation replays the serialized result -- rendered table
    included, so output is byte-identical -- without re-running the
    experiment at all.  Any device-model or NeRF-descriptor edit,
    parameter change, version bump or store-schema bump invalidates the
    entry.
    """
    overrides = overrides or {}
    store = _result_store()

    def one(exp: Experiment) -> ExperimentResult:
        try:
            key = (
                _experiment_key(exp, overrides.get(exp.id, {}))
                if store is not None
                else None
            )
            if key is not None:
                payload = store.get_result(key)
                if payload is not None:
                    try:
                        return _cached_result(exp, payload)
                    except (KeyError, TypeError, ValueError):
                        pass  # malformed payload: fall through and re-run
            result = exp.run(**overrides.get(exp.id, {}))
            if key is not None:
                store.put_result(
                    key,
                    {"result": result.to_dict(), "table": result.to_table()},
                )
            return result
        except (ValueError, KeyError) as exc:
            # Domain errors on user-supplied values (e.g. an unknown scene or
            # a non-positive array dimension) surface as one-line CLI errors,
            # not tracebacks; genuine bugs still raise.
            message = exc.args[0] if exc.args else str(exc)
            raise CLIError(f"{exp.id}: {message}") from exc

    if jobs <= 1 or len(experiments) <= 1:
        return [one(exp) for exp in experiments]
    with ThreadPoolExecutor(max_workers=jobs) as pool:
        return list(pool.map(one, experiments))


# -- output -------------------------------------------------------------------


def _render(result: ExperimentResult, fmt: str) -> str:
    if fmt == "json":
        return result.to_json()
    if fmt == "csv":
        return result.to_csv()
    return result.to_table()


def _print_results(results: list[ExperimentResult], fmt: str, out: TextIO) -> None:
    if fmt == "json":
        import json

        print(json.dumps([r.to_dict() for r in results], indent=2), file=out)
        return
    for result in results:
        if fmt == "table":
            print(
                f"===== {result.experiment_id}: {result.title} "
                f"({result.provenance.wall_time_s:.1f}s) =====",
                file=out,
            )
            print(result.to_table(), file=out)
        else:
            print(f"# {result.experiment_id}: {result.title}", file=out)
            print(result.to_csv(), file=out, end="")
        print(file=out)


_EXTENSIONS = {"table": "txt", "json": "json", "csv": "csv"}


def _write_artifacts(
    results: list[ExperimentResult], fmt: str, out_dir: Path
) -> None:
    out_dir.mkdir(parents=True, exist_ok=True)
    for result in results:
        path = out_dir / f"{result.experiment_id}.{_EXTENSIONS[fmt]}"
        text = _render(result, fmt)
        path.write_text(text if text.endswith("\n") else text + "\n")
        print(f"wrote {path}")


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())

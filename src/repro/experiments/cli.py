"""The ``repro`` command line: list and run experiments uniformly.

Usage::

    repro list [--tags frame-sim,hw-cost] [--format table|json]
    repro run <ids|tag:TAG|all> [--format table|json|csv] [--out DIR]
              [--jobs N] [per-experiment param flags]
    repro docs [--out PATH] [--check]

Examples::

    repro list --tags frame-sim
    repro run fig19 --models all --pruning-ratios 0,0.5,0.9
    repro run tag:serving --format json
    repro run tag:hw-cost --format csv
    repro run all --format json --out artifacts/ --jobs 4
    repro docs --check

Every selected experiment's typed parameters are exposed as ``--flag value``
options (``repro list --format json`` shows them); a flag applies to every
selected experiment declaring that parameter.  Unknown experiment ids,
unknown tags and malformed parameter values exit with status 2 and a
one-line message -- never a traceback.
"""

from __future__ import annotations

import sys
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Any, Sequence, TextIO

from repro.experiments.api import (
    BadParamError,
    Experiment,
    ExperimentResult,
    UnknownExperimentError,
)
from repro.experiments.registry import (
    EXPERIMENTS,
    all_tags,
    experiments_by_tag,
    get_experiment,
)

RUN_FORMATS = ("table", "json", "csv")
LIST_FORMATS = ("table", "json")

_USAGE = """\
usage: repro <command> [options]

commands:
  list   list registered experiments
           --tags TAG[,TAG]      only experiments carrying any given tag
           --format table|json   json includes the typed parameter schemas
  run    run experiments and render / write their results
           selectors             experiment ids, tag:TAG groups, or 'all'
           --format table|json|csv
           --out DIR             write one artifact file per experiment
           --jobs N              run up to N experiments concurrently
           --<param> VALUE       any selected experiment's typed parameter
  docs   regenerate the experiment catalog (docs/experiments.md)
           --out PATH            where to write the catalog
           --check               exit 1 if the checked-in catalog is stale

run 'repro list' for the experiment ids and tags."""


class CLIError(Exception):
    """A user-facing CLI error: printed as one line, exits with status 2."""


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point of the ``repro`` console script and ``python -m``."""
    args = list(sys.argv[1:] if argv is None else argv)
    try:
        if not args or args[0] in ("-h", "--help", "help"):
            print(_USAGE)
            return 0
        command, rest = args[0], args[1:]
        if command == "list":
            return _cmd_list(rest)
        if command == "run":
            return _cmd_run(rest)
        if command == "docs":
            return _cmd_docs(rest)
        # Historical invocation styles keep working: ``repro fig19``,
        # ``repro all`` behave like ``repro run ...``.
        if command == "all" or command.lower() in EXPERIMENTS:
            return _cmd_run(args)
        raise CLIError(
            f"unknown command '{command}' (expected 'list', 'run' or 'docs'); "
            f"run 'repro --help' for usage"
        )
    except CLIError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


# -- repro list ---------------------------------------------------------------


def _parse_options(args: list[str], flags: tuple[str, ...]) -> dict[str, str]:
    """Parse a flat ``--flag value`` option list against ``flags``."""
    options: dict[str, str] = {}
    i = 0
    while i < len(args):
        token = args[i]
        if not token.startswith("--"):
            raise CLIError(f"unexpected argument '{token}'")
        flag, value, consumed = _flag_value(args, i)
        if flag not in flags:
            raise CLIError(f"unknown option '{flag}'; valid: {', '.join(flags)}")
        options[flag] = value
        i += consumed
    return options


def _cmd_list(args: list[str]) -> int:
    options = _parse_options(args, flags=("--tags", "--format"))
    fmt = options.get("--format", "table")
    if fmt not in LIST_FORMATS:
        raise CLIError(f"invalid list format '{fmt}'; valid: {', '.join(LIST_FORMATS)}")
    experiments = list(EXPERIMENTS.values())
    if "--tags" in options:
        wanted = {t for t in options["--tags"].split(",") if t}
        unknown = wanted - set(all_tags())
        if unknown:
            raise CLIError(
                f"unknown tag(s) {', '.join(sorted(unknown))}; "
                f"valid: {', '.join(all_tags())}"
            )
        experiments = [e for e in experiments if wanted & set(e.tags)]
    if fmt == "json":
        import json

        print(json.dumps([_describe(e) for e in experiments], indent=2))
        return 0
    print("Available experiments:")
    for exp in experiments:
        tags = ",".join(exp.tags)
        print(f"  {exp.id:<22} {tags:<28} {exp.title}")
    return 0


def _describe(exp: Experiment) -> dict[str, Any]:
    return {
        "id": exp.id,
        "title": exp.title,
        "tags": list(exp.tags),
        "params": [
            {
                "name": param.name,
                "flag": param.flag,
                "type": param.type_label,
                "default": param.to_json(param.default),
                "help": param.help,
            }
            for param in exp.params
        ],
    }


# -- repro docs ---------------------------------------------------------------


def _cmd_docs(args: list[str]) -> int:
    """Regenerate (or, with ``--check``, verify) the experiment catalog."""
    from repro.experiments.catalog import catalog_markdown, default_catalog_path

    check = "--check" in args
    args = [a for a in args if a != "--check"]
    options = _parse_options(args, flags=("--out",))
    path = Path(options["--out"]) if "--out" in options else default_catalog_path()
    generated = catalog_markdown()
    if check:
        current = path.read_text() if path.exists() else None
        if current != generated:
            command = (
                "repro docs" if "--out" not in options else f"repro docs --out {path}"
            )
            print(
                f"error: {path} is stale; regenerate it with '{command}'",
                file=sys.stderr,
            )
            return 1
        print(f"{path} is up to date")
        return 0
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(generated)
    print(f"wrote {path}")
    return 0


# -- repro run ----------------------------------------------------------------


def _cmd_run(args: list[str]) -> int:
    selectors: list[str] = []
    options: dict[str, str] = {}
    param_tokens: list[tuple[str, str]] = []
    i = 0
    while i < len(args):
        token = args[i]
        if token.startswith("--"):
            flag, value, consumed = _flag_value(args, i)
            if flag in ("--format", "--out", "--jobs"):
                options[flag] = value
            else:
                param_tokens.append((flag, value))
            i += consumed
        else:
            selectors.append(token)
            i += 1
    if not selectors:
        raise CLIError("no experiments selected; pass ids, tag:TAG or 'all'")

    fmt = options.get("--format", "table")
    if fmt not in RUN_FORMATS:
        raise CLIError(f"invalid format '{fmt}'; valid: {', '.join(RUN_FORMATS)}")
    jobs = _parse_jobs(options.get("--jobs", "1"))
    out_dir = Path(options["--out"]) if "--out" in options else None

    experiments = _select(selectors)
    overrides = _resolve_param_flags(param_tokens, experiments)
    results = run_many(experiments, overrides, jobs=jobs)

    if out_dir is not None:
        _write_artifacts(results, fmt, out_dir)
    else:
        _print_results(results, fmt, sys.stdout)
    return 0


def _flag_value(args: list[str], i: int) -> tuple[str, str, int]:
    token = args[i]
    if "=" in token:
        flag, value = token.split("=", 1)
        return flag, value, 1
    if i + 1 >= len(args) or args[i + 1].startswith("--"):
        raise CLIError(f"missing value for {token}")
    return token, args[i + 1], 2


def _parse_jobs(text: str) -> int:
    try:
        jobs = int(text)
    except ValueError:
        raise CLIError(f"--jobs: invalid int '{text}'") from None
    if jobs < 1:
        raise CLIError("--jobs must be >= 1")
    return jobs


def _select(selectors: list[str]) -> list[Experiment]:
    """Resolve ids / ``tag:`` groups / ``all`` into a deduped run list."""
    chosen: dict[str, Experiment] = {}
    for selector in selectors:
        if selector == "all":
            chosen.update(EXPERIMENTS)
        elif selector.startswith("tag:"):
            tag = selector[len("tag:"):]
            matches = experiments_by_tag(tag)
            if not matches:
                raise CLIError(
                    f"no experiments tagged '{tag}'; valid tags: {', '.join(all_tags())}"
                )
            chosen.update({exp.id: exp for exp in matches})
        else:
            try:
                exp = get_experiment(selector)
            except UnknownExperimentError as exc:
                raise CLIError(str(exc)) from None
            chosen[exp.id] = exp
    return list(chosen.values())


def _resolve_param_flags(
    param_tokens: list[tuple[str, str]], experiments: list[Experiment]
) -> dict[str, dict[str, Any]]:
    """Map ``--flag value`` pairs onto each selected experiment's params."""
    by_flag: dict[str, list[tuple[Experiment, Any]]] = {}
    for exp in experiments:
        for param in exp.params:
            by_flag.setdefault(param.flag, []).append((exp, param))
    overrides: dict[str, dict[str, Any]] = {exp.id: {} for exp in experiments}
    for flag, text in param_tokens:
        if flag not in by_flag:
            valid = ", ".join(sorted(by_flag)) or "(none for this selection)"
            raise CLIError(f"unknown parameter '{flag}'; valid: {valid}")
        for exp, param in by_flag[flag]:
            try:
                overrides[exp.id][param.name] = param.parse(text)
            except BadParamError as exc:
                raise CLIError(str(exc)) from None
    return overrides


def run_many(
    experiments: list[Experiment],
    overrides: dict[str, dict[str, Any]] | None = None,
    jobs: int = 1,
) -> list[ExperimentResult]:
    """Run experiments (optionally concurrently), preserving selection order.

    Results are deterministic regardless of ``jobs``: experiments share the
    process-wide cached sweep engine, whose caches are thread-safe, and every
    experiment's output depends only on its own parameters.
    """
    overrides = overrides or {}

    def one(exp: Experiment) -> ExperimentResult:
        try:
            return exp.run(**overrides.get(exp.id, {}))
        except (ValueError, KeyError) as exc:
            # Domain errors on user-supplied values (e.g. an unknown scene or
            # a non-positive array dimension) surface as one-line CLI errors,
            # not tracebacks; genuine bugs still raise.
            message = exc.args[0] if exc.args else str(exc)
            raise CLIError(f"{exp.id}: {message}") from exc

    if jobs <= 1 or len(experiments) <= 1:
        return [one(exp) for exp in experiments]
    with ThreadPoolExecutor(max_workers=jobs) as pool:
        return list(pool.map(one, experiments))


# -- output -------------------------------------------------------------------


def _render(result: ExperimentResult, fmt: str) -> str:
    if fmt == "json":
        return result.to_json()
    if fmt == "csv":
        return result.to_csv()
    return result.to_table()


def _print_results(results: list[ExperimentResult], fmt: str, out: TextIO) -> None:
    if fmt == "json":
        import json

        print(json.dumps([r.to_dict() for r in results], indent=2), file=out)
        return
    for result in results:
        if fmt == "table":
            print(
                f"===== {result.experiment_id}: {result.title} "
                f"({result.provenance.wall_time_s:.1f}s) =====",
                file=out,
            )
            print(result.to_table(), file=out)
        else:
            print(f"# {result.experiment_id}: {result.title}", file=out)
            print(result.to_csv(), file=out, end="")
        print(file=out)


_EXTENSIONS = {"table": "txt", "json": "json", "csv": "csv"}


def _write_artifacts(
    results: list[ExperimentResult], fmt: str, out_dir: Path
) -> None:
    out_dir.mkdir(parents=True, exist_ok=True)
    for result in results:
        path = out_dir / f"{result.experiment_id}.{_EXTENSIONS[fmt]}"
        text = _render(result, fmt)
        path.write_text(text if text.endswith("\n") else text + "\n")
        print(f"wrote {path}")


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())

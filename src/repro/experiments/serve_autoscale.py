"""`serve-autoscale`: autoscaler policies vs static pools under diurnal load.

A six-device pool serves a diurnal wave whose peak needs ~3 devices and
whose trough needs less than one.  Static provisioning must choose between
drowning at the peak (one device) and idling at the trough (all six); an
autoscaler (:mod:`repro.serve.control`) grows the active subset into the
wave and drains it back out, paying a provisioning delay on every
scale-out.  The mean-active-workers column is the provisioned capacity the
policy actually consumed -- the cost the SLA was bought at.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments._serving import REFERENCE_MIX
from repro.experiments.api import Column, Param, experiment
from repro.serve.control import (
    AutoscalePolicy,
    ControlConfig,
    LatencyTargetAutoscaler,
    QueueDepthAutoscaler,
)
from repro.serve.fleet import FleetSimulator
from repro.serve.request import DiurnalStream
from repro.serve.scheduler import FIFOScheduler
from repro.sim.sweep import SweepEngine, get_default_engine


@dataclass(frozen=True)
class AutoscalePoint:
    """One provisioning policy's outcome on the diurnal wave."""

    policy: str
    num_requests: int
    sla_attainment: float
    p50_latency_ms: float
    p95_latency_ms: float
    peak_workers: int
    mean_workers: float
    goodput_rps: float


@experiment(
    "serve-autoscale",
    title="Autoscaling policies vs static pools under diurnal load",
    tags=("serving",),
    params=(
        Param("device", str, "flexnerfer", help="device registry name of the pool"),
        Param("pool", int, 6, help="provisioned pool size (devices)"),
        Param("base_rps", float, 10.0, help="diurnal trough arrival rate"),
        Param("peak_rps", float, 60.0, help="diurnal peak arrival rate"),
        Param("period_s", float, 20.0, help="diurnal period"),
        Param("duration_s", float, 40.0, help="stream duration in seconds"),
        Param("sla_ms", float, 400.0, help="per-request latency SLA"),
        Param("provision_delay_ms", float, 500.0, help="scale-out provisioning delay"),
        Param("target_p95_ms", float, 200.0, help="latency-target policy's p95 goal"),
        Param("seed", int, 0, help="request stream seed"),
    ),
    columns=(
        Column("policy", "<15", key="policy"),
        Column("reqs", ">6", key="num_requests"),
        Column("SLA %", ">6.1f", value=lambda p: p.sla_attainment * 100),
        Column("p50 [ms]", ">9.1f", key="p50_latency_ms"),
        Column("p95 [ms]", ">9.1f", key="p95_latency_ms"),
        Column("peak W", ">7", key="peak_workers"),
        Column("mean W", ">7.2f", key="mean_workers"),
        Column("goodput", ">8.1f", key="goodput_rps"),
    ),
)
def run(
    device: str = "flexnerfer",
    pool: int = 6,
    base_rps: float = 10.0,
    peak_rps: float = 60.0,
    period_s: float = 20.0,
    duration_s: float = 40.0,
    sla_ms: float = 400.0,
    provision_delay_ms: float = 500.0,
    target_p95_ms: float = 200.0,
    seed: int = 0,
    engine: SweepEngine | None = None,
) -> list[AutoscalePoint]:
    """Serve one diurnal stream under each provisioning policy."""
    engine = engine or get_default_engine()
    stream = DiurnalStream(
        base_rps=base_rps,
        peak_rps=peak_rps,
        period_s=period_s,
        duration_s=duration_s,
        mix=REFERENCE_MIX,
        sla_s=sla_ms / 1e3,
    )
    requests = stream.generate(seed=seed)
    autoscalers: tuple[tuple[str, AutoscalePolicy], ...] = (
        (
            "queue-depth",
            QueueDepthAutoscaler(
                scale_out_depth=4, min_workers=1, max_workers=pool
            ),
        ),
        (
            "latency-target",
            LatencyTargetAutoscaler(
                target_p95_s=target_p95_ms / 1e3, min_workers=1, max_workers=pool
            ),
        ),
    )
    points: list[AutoscalePoint] = []
    for size in (1, pool):
        simulator = FleetSimulator(
            (device,) * size, scheduler=FIFOScheduler(), engine=engine
        )
        points.append(_point(f"static-{size}", simulator.run(requests)))
    for name, policy in autoscalers:
        control = ControlConfig(
            autoscaler=policy, provision_delay_s=provision_delay_ms / 1e3
        )
        simulator = FleetSimulator(
            (device,) * pool,
            scheduler=FIFOScheduler(),
            engine=engine,
            control=control,
        )
        points.append(_point(name, simulator.run(requests)))
    return points


def _point(policy: str, report) -> AutoscalePoint:
    """Collapse one :class:`~repro.serve.report.ServingReport` into a row."""
    return AutoscalePoint(
        policy=policy,
        num_requests=report.num_requests,
        sla_attainment=report.sla_attainment,
        p50_latency_ms=report.p50_latency_s * 1e3,
        p95_latency_ms=report.p95_latency_s * 1e3,
        peak_workers=report.peak_active_workers,
        mean_workers=report.mean_active_workers,
        goodput_rps=report.goodput_rps,
    )

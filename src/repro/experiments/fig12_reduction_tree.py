"""Fig. 12(c): area/power of the MAC unit with and without the optimised RT.

FlexNeRFer shares shifters performing identical shift amounts (24 -> 16
shifters) and pipelines the CLB datapath, reducing the MAC unit's area by
~28 % and its power by ~46 % relative to the unoptimised bit-scalable unit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.mac_unit import BitScalableMACUnit
from repro.core.reduction import MACUnitReductionTree
from repro.experiments.api import experiment


@dataclass(frozen=True)
class MACUnitComparison:
    """Cost comparison between the unoptimised and optimised MAC units."""

    unoptimized_area_um2: float
    optimized_area_um2: float
    unoptimized_power_mw: float
    optimized_power_mw: float
    unoptimized_shifters: int
    optimized_shifters: int

    @property
    def area_reduction(self) -> float:
        return 1.0 - self.optimized_area_um2 / self.unoptimized_area_um2

    @property
    def power_reduction(self) -> float:
        return 1.0 - self.optimized_power_mw / self.unoptimized_power_mw

    @property
    def shifter_reduction(self) -> float:
        return 1.0 - self.optimized_shifters / self.unoptimized_shifters


def _render(result: MACUnitComparison) -> str:
    """Transposed cost table plus the paper's headline reductions."""
    return "\n".join(
        [
            f"{'':<12} {'unoptimized':>12} {'FlexNeRFer':>12}",
            f"{'area [um2]':<12} {result.unoptimized_area_um2:>12.1f} {result.optimized_area_um2:>12.1f}",
            f"{'power [mW]':<12} {result.unoptimized_power_mw:>12.2f} {result.optimized_power_mw:>12.2f}",
            f"{'# shifters':<12} {result.unoptimized_shifters:>12} {result.optimized_shifters:>12}",
            f"area reduction  {result.area_reduction * 100:.1f}%",
            f"power reduction {result.power_reduction * 100:.1f}%",
        ]
    )


@experiment(
    "fig12",
    title="MAC unit area/power with optimised RT",
    tags=("hw-cost",),
    render=_render,
)
def run() -> MACUnitComparison:
    """Compose both MAC-unit variants from the component library."""
    optimized = BitScalableMACUnit(optimized_shifters=True)
    unoptimized = BitScalableMACUnit(optimized_shifters=False)
    return MACUnitComparison(
        unoptimized_area_um2=unoptimized.cost().area_um2,
        optimized_area_um2=optimized.cost().area_um2,
        unoptimized_power_mw=unoptimized.cost().power_mw,
        optimized_power_mw=optimized.cost().power_mw,
        unoptimized_shifters=MACUnitReductionTree(optimized=False).num_shifters,
        optimized_shifters=MACUnitReductionTree(optimized=True).num_shifters,
    )


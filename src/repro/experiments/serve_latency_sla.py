"""`serve-latency-sla`: tail latency and goodput vs offered load.

Sweeps a Poisson arrival rate against one device and reports the latency
distribution users would see (p50/p95/p99), the goodput (requests per second
finishing inside the SLA) and energy per request.  Below saturation the
tail tracks the service time; past it, queueing blows the tail up and
goodput collapses -- the standard serving "knee" the fleet / batching
studies then attack.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments._serving import REFERENCE_MIX
from repro.experiments.api import Column, Param, experiment
from repro.serve.fleet import FleetSimulator
from repro.serve.request import PoissonStream
from repro.serve.scheduler import FIFOScheduler
from repro.sim.sweep import SweepEngine, get_default_engine

#: Arrival rates swept by default (requests per second); the single
#: FlexNeRFer's capacity on the reference mix is ~25 rps.
DEFAULT_RATES = (10.0, 20.0, 30.0)


@dataclass(frozen=True)
class SLAPoint:
    """One offered-load point of the latency / goodput curve."""

    rate_rps: float
    num_requests: int
    p50_latency_ms: float
    p95_latency_ms: float
    p99_latency_ms: float
    goodput_rps: float
    sla_attainment: float
    energy_per_request_mj: float
    utilization: float


@experiment(
    "serve-latency-sla",
    title="Serving tail latency / goodput vs offered load",
    tags=("serving",),
    params=(
        Param("device", str, "flexnerfer", help="device registry name to serve on"),
        Param(
            "rates",
            float,
            DEFAULT_RATES,
            help="Poisson arrival rates to sweep (requests/s)",
            repeated=True,
        ),
        Param("duration_s", float, 30.0, help="stream duration in seconds"),
        Param("sla_ms", float, 250.0, help="per-request latency SLA"),
        Param("seed", int, 0, help="request stream seed"),
    ),
    columns=(
        Column("rate", ">6.0f", key="rate_rps"),
        Column("reqs", ">6", key="num_requests"),
        Column("p50 [ms]", ">9.1f", key="p50_latency_ms"),
        Column("p95 [ms]", ">9.1f", key="p95_latency_ms"),
        Column("p99 [ms]", ">9.1f", key="p99_latency_ms"),
        Column("goodput", ">8.1f", key="goodput_rps"),
        Column("SLA %", ">6.1f", value=lambda p: p.sla_attainment * 100),
        Column("E/req [mJ]", ">11.1f", key="energy_per_request_mj"),
        Column("util %", ">7.1f", value=lambda p: p.utilization * 100),
    ),
)
def run(
    device: str = "flexnerfer",
    rates: tuple[float, ...] = DEFAULT_RATES,
    duration_s: float = 30.0,
    sla_ms: float = 250.0,
    seed: int = 0,
    engine: SweepEngine | None = None,
) -> list[SLAPoint]:
    """Serve seeded Poisson streams at each rate and summarize the tails."""
    engine = engine or get_default_engine()
    points: list[SLAPoint] = []
    for rate in rates:
        stream = PoissonStream(
            rate_rps=rate,
            duration_s=duration_s,
            mix=REFERENCE_MIX,
            sla_s=sla_ms / 1e3,
        )
        simulator = FleetSimulator(
            (device,), scheduler=FIFOScheduler(), engine=engine
        )
        report = simulator.run(stream.generate(seed=seed))
        points.append(
            SLAPoint(
                rate_rps=rate,
                num_requests=report.num_requests,
                p50_latency_ms=report.p50_latency_s * 1e3,
                p95_latency_ms=report.p95_latency_s * 1e3,
                p99_latency_ms=report.p99_latency_s * 1e3,
                goodput_rps=report.goodput_rps,
                sla_attainment=report.sla_attainment,
                energy_per_request_mj=report.energy_per_request_j * 1e3,
                utilization=report.mean_utilization,
            )
        )
    return points

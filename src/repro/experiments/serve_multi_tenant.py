"""`serve-multi-tenant`: per-tenant SLO attainment on shared fleets.

Three tenants with very different contracts share one fleet: an
*interactive* tenant rendering the full-quality hero scenario under a
tight SLA, a *batch* tenant rendering dense TensoRF frames with a relaxed
SLA, and a *free* tier on the pruned low-precision scenario in between.
The question a capacity planner actually faces is not "what is the
fleet-wide attainment" but "which tenant's contract breaks first when the
fleet is undersized" -- so this study serves the merged
:class:`~repro.serve.traffic.MultiTenantStream` on each candidate fleet
and reports one row per (fleet, tenant) via
:meth:`~repro.serve.report.ServingReport.by_tenant`, the per-tenant
attainment breakdown this PR adds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments._serving import REFERENCE_MIX, parse_fleet
from repro.experiments.api import Column, Param, experiment
from repro.serve.fleet import FleetSimulator
from repro.serve.request import ScenarioMix
from repro.serve.scheduler import FIFOScheduler
from repro.serve.traffic import MultiTenantStream, TenantSpec
from repro.sim.sweep import SweepEngine, get_default_engine

#: Candidate fleets compared by default: one FlexNeRFer (undersized for
#: the ~24 rps merged load) vs. a FlexNeRFer + NeuRex pair.
DEFAULT_FLEETS = ("flexnerfer", "flexnerfer+neurex")


def tenant_roster(scale: float) -> tuple[TenantSpec, ...]:
    """The study's three tenants, with every rate scaled by ``scale``."""
    hero, pruned, dense = REFERENCE_MIX.scenarios
    return (
        TenantSpec(
            "interactive", 10.0 * scale, ScenarioMix((hero,)), sla_s=0.15
        ),
        TenantSpec("batch", 8.0 * scale, ScenarioMix((dense,)), sla_s=1.0),
        TenantSpec("free", 6.0 * scale, ScenarioMix((pruned,)), sla_s=0.4),
    )


@dataclass(frozen=True)
class TenantPoint:
    """One (fleet, tenant) row of the multi-tenant study."""

    fleet: str
    tenant: str
    offered: int
    completed: int
    rejected: int
    slo_attainment: float
    p95_latency_ms: float
    mean_latency_ms: float


@experiment(
    "serve-multi-tenant",
    title="Per-tenant SLO attainment on shared candidate fleets",
    tags=("serving",),
    params=(
        Param(
            "fleets",
            str,
            DEFAULT_FLEETS,
            help="candidate fleets, each a +-separated device list",
            repeated=True,
        ),
        Param("duration_s", float, 20.0, help="stream duration in seconds"),
        Param("scale", float, 1.0, help="multiplier on every tenant's rate"),
        Param("seed", int, 0, help="request stream seed"),
    ),
    columns=(
        Column("fleet", "<18", key="fleet"),
        Column("tenant", "<12", key="tenant"),
        Column("offered", ">7", key="offered"),
        Column("done", ">6", key="completed"),
        Column("rej", ">5", key="rejected"),
        Column("SLO %", ">6.1f", value=lambda p: p.slo_attainment * 100),
        Column("p95 [ms]", ">9.1f", key="p95_latency_ms"),
        Column("mean [ms]", ">10.1f", key="mean_latency_ms"),
    ),
)
def run(
    fleets: tuple[str, ...] = DEFAULT_FLEETS,
    duration_s: float = 20.0,
    scale: float = 1.0,
    seed: int = 0,
    engine: SweepEngine | None = None,
) -> list[TenantPoint]:
    """Serve the merged tenant stream on each fleet; one row per tenant."""
    engine = engine or get_default_engine()
    tenants = tenant_roster(scale)
    stream = MultiTenantStream(tenants, duration_s=duration_s)
    requests = stream.generate(seed=seed)
    declared = tuple(t.name for t in tenants)
    points: list[TenantPoint] = []
    for fleet_spec in fleets:
        simulator = FleetSimulator(
            parse_fleet(fleet_spec),
            scheduler=FIFOScheduler(),
            engine=engine,
        )
        report = simulator.run(requests)
        for stats in report.by_tenant(declared):
            points.append(
                TenantPoint(
                    fleet=fleet_spec,
                    tenant=stats.tenant,
                    offered=stats.offered,
                    completed=stats.completed,
                    rejected=stats.rejected,
                    slo_attainment=stats.slo_attainment,
                    p95_latency_ms=stats.p95_latency_s * 1e3,
                    mean_latency_ms=stats.mean_latency_s * 1e3,
                )
            )
    return points

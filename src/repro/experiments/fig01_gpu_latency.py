"""Fig. 1: rendering latency of seven NeRF models on the RTX 2080 Ti.

The paper shows that every model exceeds the 16.8 ms VR frame threshold and
the 8.3 ms game frame threshold on a desktop GPU, motivating a dedicated
accelerator.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.gpu import GPUModel, GPUSpec, RTX_2080_TI
from repro.nerf.models import FrameConfig, all_models

#: Frame-time thresholds from the paper (Section 1).
VR_FRAME_THRESHOLD_MS = 16.8
GAME_FRAME_THRESHOLD_MS = 8.3


@dataclass(frozen=True)
class LatencyRow:
    """GPU rendering latency of one NeRF model."""

    model: str
    latency_ms: float
    exceeds_vr_threshold: bool
    exceeds_game_threshold: bool


def run(
    spec: GPUSpec = RTX_2080_TI, config: FrameConfig | None = None
) -> list[LatencyRow]:
    """Render one frame of every model on the GPU model and report latency."""
    config = config or FrameConfig()
    gpu = GPUModel(spec)
    rows = []
    for model in all_models():
        report = gpu.render_frame(model.build_workload(config))
        rows.append(
            LatencyRow(
                model=model.name,
                latency_ms=report.frame_time_ms,
                exceeds_vr_threshold=report.frame_time_ms > VR_FRAME_THRESHOLD_MS,
                exceeds_game_threshold=report.frame_time_ms > GAME_FRAME_THRESHOLD_MS,
            )
        )
    return rows


def format_table(rows: list[LatencyRow]) -> str:
    """Human-readable table mirroring the figure's bar values."""
    lines = [f"{'model':<14} {'latency [ms]':>14} {'>16.8ms':>8} {'>8.3ms':>8}"]
    for row in rows:
        lines.append(
            f"{row.model:<14} {row.latency_ms:>14.1f} "
            f"{str(row.exceeds_vr_threshold):>8} {str(row.exceeds_game_threshold):>8}"
        )
    return "\n".join(lines)

"""Fig. 1: rendering latency of seven NeRF models on the RTX 2080 Ti.

The paper shows that every model exceeds the 16.8 ms VR frame threshold and
the 8.3 ms game frame threshold on a desktop GPU, motivating a dedicated
accelerator.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.api import Column, Param, experiment
from repro.nerf.models import MODEL_REGISTRY, FrameConfig
from repro.sim.sweep import SweepEngine, SweepSpec, get_default_engine

#: Frame-time thresholds from the paper (Section 1).
VR_FRAME_THRESHOLD_MS = 16.8
GAME_FRAME_THRESHOLD_MS = 8.3


@dataclass(frozen=True)
class LatencyRow:
    """GPU rendering latency of one NeRF model."""

    model: str
    latency_ms: float
    exceeds_vr_threshold: bool
    exceeds_game_threshold: bool


@experiment(
    "fig01",
    title="GPU rendering latency of seven NeRF models",
    tags=("frame-sim", "gpu"),
    params=(
        Param("device", str, "rtx-2080-ti", help="registry name of the GPU"),
    ),
    columns=(
        Column("model", "<14"),
        Column("latency [ms]", ">14.1f", key="latency_ms"),
        Column(">16.8ms", ">8", value=lambda r: str(r.exceeds_vr_threshold)),
        Column(">8.3ms", ">8", value=lambda r: str(r.exceeds_game_threshold)),
    ),
)
def run(
    device: str = "rtx-2080-ti",
    config: FrameConfig | None = None,
    engine: SweepEngine | None = None,
) -> list[LatencyRow]:
    """Render one frame of every model on the GPU device and report latency."""
    engine = engine or get_default_engine()
    spec = SweepSpec(
        devices=(device,),
        models=tuple(MODEL_REGISTRY),
        base_config=config or FrameConfig(),
    )
    rows = []
    for result in engine.run(spec):
        latency_ms = result.report.frame_time_ms
        rows.append(
            LatencyRow(
                model=result.model,
                latency_ms=latency_ms,
                exceeds_vr_threshold=latency_ms > VR_FRAME_THRESHOLD_MS,
                exceeds_game_threshold=latency_ms > GAME_FRAME_THRESHOLD_MS,
            )
        )
    return rows

"""Table 2: qualitative comparison of flexible-NoC related work.

FlexNeRFer is the only design combining dataflow flexibility (unicast /
multicast / broadcast), multi-sparsity-format support and bit-level
flexibility.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RelatedWorkRow:
    """One row of the qualitative comparison table."""

    name: str
    dataflow_flexibility: bool
    dataflow_modes: str
    multi_sparsity_format: bool
    supported_formats: str
    bit_level_flexibility: bool
    bit_widths: str


ROWS = (
    RelatedWorkRow("Microswitch", True, "U, M, B", False, "N/A", False, "-"),
    RelatedWorkRow("Eyeriss v2", True, "U, M, B", False, "N/A", False, "8"),
    RelatedWorkRow("SIGMA", True, "U, M, B", False, "Bitmap", False, "16"),
    RelatedWorkRow("Flexagon", True, "IP, OP, RP", False, "CSC/CSR", False, "-"),
    RelatedWorkRow("Trapezoid", True, "IP, RP", False, "CSC/CSR", False, "32"),
    RelatedWorkRow("FEATHER", True, "U, M, B", False, "N/A", False, "8"),
    RelatedWorkRow(
        "FlexNeRFer",
        True,
        "U, M, B",
        True,
        "CSC/CSR, COO, Bitmap",
        True,
        "4, 8, 16",
    ),
)


def run() -> tuple[RelatedWorkRow, ...]:
    """Return the comparison table rows (FlexNeRFer last, as in the paper)."""
    return ROWS


def format_table(rows: tuple[RelatedWorkRow, ...]) -> str:
    lines = [
        f"{'design':<14} {'dataflows':<12} {'multi-format':<22} {'bit-widths':<10}"
    ]
    for row in rows:
        lines.append(
            f"{row.name:<14} {row.dataflow_modes:<12} "
            f"{(row.supported_formats if row.multi_sparsity_format else row.supported_formats):<22} "
            f"{row.bit_widths:<10}"
        )
    return "\n".join(lines)

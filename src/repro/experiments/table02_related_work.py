"""Table 2: qualitative comparison of flexible-NoC related work.

FlexNeRFer is the only design combining dataflow flexibility (unicast /
multicast / broadcast), multi-sparsity-format support and bit-level
flexibility.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.api import Column, experiment


@dataclass(frozen=True)
class RelatedWorkRow:
    """One row of the qualitative comparison table."""

    name: str
    dataflow_flexibility: bool
    dataflow_modes: str
    multi_sparsity_format: bool
    supported_formats: str
    bit_level_flexibility: bool
    bit_widths: str


ROWS = (
    RelatedWorkRow("Microswitch", True, "U, M, B", False, "N/A", False, "-"),
    RelatedWorkRow("Eyeriss v2", True, "U, M, B", False, "N/A", False, "8"),
    RelatedWorkRow("SIGMA", True, "U, M, B", False, "Bitmap", False, "16"),
    RelatedWorkRow("Flexagon", True, "IP, OP, RP", False, "CSC/CSR", False, "-"),
    RelatedWorkRow("Trapezoid", True, "IP, RP", False, "CSC/CSR", False, "32"),
    RelatedWorkRow("FEATHER", True, "U, M, B", False, "N/A", False, "8"),
    RelatedWorkRow(
        "FlexNeRFer",
        True,
        "U, M, B",
        True,
        "CSC/CSR, COO, Bitmap",
        True,
        "4, 8, 16",
    ),
)


@experiment(
    "table02",
    title="Qualitative flexible-NoC comparison",
    tags=("related-work", "noc"),
    columns=(
        Column("design", "<14", key="name"),
        Column("dataflows", "<12", key="dataflow_modes"),
        Column("multi-format", "<22", key="supported_formats"),
        Column("bit-widths", "<10", key="bit_widths"),
    ),
)
def run() -> tuple[RelatedWorkRow, ...]:
    """Return the comparison table rows (FlexNeRFer last, as in the paper)."""
    return ROWS

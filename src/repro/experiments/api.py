"""First-class Experiment API: typed params, uniform results, one registry.

Every paper artifact (figure / table / ablation) is an :class:`Experiment`:
an id, a title, a set of tags, a typed parameter schema and a ``run``
function.  Running an experiment always produces one uniform shape, the
:class:`ExperimentResult` -- named columns, JSON-safe row dicts and
provenance metadata (parameter values, config fingerprint, wall time, repo
version) -- regardless of which dataclasses the experiment uses internally.

Modules register through the :func:`experiment` decorator::

    @experiment(
        "fig99",
        title="My new study",
        tags=("frame-sim",),
        params=(Param("device", str, "rtx-2080-ti"),),
        columns=(
            Column("model", "<14"),
            Column("latency [ms]", ">14.1f", key="latency_ms"),
        ),
    )
    def run(device: str = "rtx-2080-ti") -> list[MyRow]:
        ...

and instantly get CLI flags (``repro run fig99 --device rtx-4090``), the
shared table renderer, JSON / CSV artifacts and parallel execution.  The
decorated function itself is returned unchanged, so ``module.run(...)``
still hands back the raw dataclasses for tests and notebooks.

The module also hosts the process-wide registry the decorator populates;
:mod:`repro.experiments.registry` imports every experiment module (which
triggers registration) and re-exports the lookup helpers.
"""

from __future__ import annotations

import csv
import enum
import hashlib
import io
import json
import re
import time
from dataclasses import dataclass, field, fields, is_dataclass
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.sparse.formats import Precision

#: Version stamped into every result's provenance (kept in sync with
#: ``repro.__version__`` by a test; imported lazily to avoid cycles).
def _repo_version() -> str:
    """The package version stamped into result provenance."""
    from repro import __version__

    return __version__


class ExperimentError(Exception):
    """Base class for experiment API errors."""


class UnknownExperimentError(ExperimentError, KeyError):
    """An experiment id was not found in the registry."""

    def __init__(self, key: str, valid: Sequence[str]):
        """Remember the unknown key and the valid ids for the message."""
        self.key = key
        self.valid = tuple(valid)
        super().__init__(f"unknown experiment '{key}'; valid ids: {', '.join(valid)}")

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.args[0]


class BadParamError(ExperimentError, ValueError):
    """A parameter value could not be parsed / validated."""


# -- typed parameters ---------------------------------------------------------


def _parse_precision(text: str) -> Precision:
    """Parse a precision mode from flag text ('int8', 'INT8', '8', ...)."""
    try:
        return Precision[text.upper().replace("-", "_")]
    except KeyError:
        try:
            return Precision(int(text.removeprefix("int").removeprefix("INT")))
        except (KeyError, ValueError) as exc:
            valid = ", ".join(p.name for p in Precision)
            raise BadParamError(
                f"invalid precision '{text}'; valid: {valid}"
            ) from exc


def _parse_bool(text: str) -> bool:
    """Parse a boolean flag value ('1/true/yes/on' or '0/false/no/off')."""
    lowered = text.lower()
    if lowered in ("1", "true", "yes", "on"):
        return True
    if lowered in ("0", "false", "no", "off"):
        return False
    raise BadParamError(f"invalid boolean '{text}'")


@dataclass(frozen=True)
class Param:
    """One typed experiment parameter, auto-exposed as a CLI flag.

    ``type`` is the *element* type (``str`` / ``int`` / ``float`` / ``bool``
    / :class:`Precision`); ``repeated`` parameters are tuples of elements and
    parse from comma-separated flag values (``--pruning-ratios 0,0.5,0.9``).
    """

    name: str
    type: type = str
    default: Any = None
    help: str = ""
    repeated: bool = False
    choices: tuple[Any, ...] | None = None

    @property
    def flag(self) -> str:
        """The CLI flag exposing this parameter."""
        return "--" + self.name.replace("_", "-")

    @property
    def type_label(self) -> str:
        """Human-readable type, e.g. ``float,...`` for a repeated float."""
        label = self.type.__name__
        return f"{label},..." if self.repeated else label

    def parse(self, text: str) -> Any:
        """Parse a CLI flag value into this parameter's type."""
        if self.repeated:
            parts = [p for p in text.split(",") if p != ""]
            if not parts:
                raise BadParamError(f"{self.flag}: expected comma-separated values")
            return tuple(self._element_from_text(part) for part in parts)
        return self._element_from_text(text)

    def coerce(self, value: Any) -> Any:
        """Validate / convert a programmatic value (strings are parsed)."""
        if isinstance(value, str):
            return self.parse(value)
        if self.repeated:
            try:
                return tuple(self._coerce_element(v) for v in value)
            except TypeError as exc:
                raise BadParamError(
                    f"{self.name}: expected a sequence of {self.type.__name__}"
                ) from exc
        return self._coerce_element(value)

    def to_json(self, value: Any) -> Any:
        """JSON-safe representation of a coerced value (for provenance)."""
        if self.repeated:
            return [_jsonify(v) for v in value]
        return _jsonify(value)

    # -- element conversion ---------------------------------------------------

    def _element_from_text(self, text: str) -> Any:
        try:
            if self.type is Precision:
                value = _parse_precision(text)
            elif self.type is bool:
                value = _parse_bool(text)
            else:
                value = self.type(text)
        except (ValueError, TypeError) as exc:
            raise BadParamError(
                f"{self.flag}: invalid {self.type.__name__} '{text}'"
            ) from exc
        return self._check_choice(value)

    def _coerce_element(self, value: Any) -> Any:
        if isinstance(value, str):
            return self._element_from_text(value)
        if self.type is float and isinstance(value, (int, float)):
            return self._check_choice(float(value))
        if not isinstance(value, self.type):
            raise BadParamError(
                f"{self.name}: expected {self.type.__name__}, got {value!r}"
            )
        return self._check_choice(value)

    def _check_choice(self, value: Any) -> Any:
        if self.choices is not None and value not in self.choices:
            raise BadParamError(
                f"{self.name}: {value!r} not in {list(self.choices)}"
            )
        return value


# -- the shared table renderer ------------------------------------------------

_PAD_RE = re.compile(r"^([<>^]?\d+)")


@dataclass(frozen=True)
class Column:
    """One column of the shared fixed-width table renderer.

    ``spec`` is the format spec applied to each cell (``"<14"``,
    ``">14.1f"``, ``">14,"`` or ``""`` for free-form last columns); the
    header is padded with the spec's alignment + width.  Cells come from
    ``value(item)`` when given, otherwise ``getattr(item, key or header)``.
    """

    header: str
    spec: str = ""
    key: str | None = None
    value: Callable[[Any], Any] | None = None
    header_spec: str | None = None

    def cell(self, item: Any) -> Any:
        """The raw cell value this column extracts from one row object."""
        if self.value is not None:
            return self.value(item)
        return getattr(item, self.key or self.header)

    @property
    def header_pad(self) -> str:
        """Alignment + width spec applied to the header cell."""
        if self.header_spec is not None:
            return self.header_spec
        match = _PAD_RE.match(self.spec)
        return match.group(1) if match else ""


def render_grid(
    columns: Sequence[Column], items: Iterable[Any], header: bool = True
) -> str:
    """The one fixed-width table formatter every experiment shares."""
    lines = []
    if header:
        lines.append(" ".join(format(c.header, c.header_pad) for c in columns))
    for item in items:
        lines.append(" ".join(format(c.cell(item), c.spec) for c in columns))
    return "\n".join(lines)


# -- uniform results ----------------------------------------------------------


def _jsonify(value: Any) -> Any:
    """Flatten dataclasses / enums / mappings into JSON-safe values."""
    if is_dataclass(value) and not isinstance(value, type):
        return {f.name: _jsonify(getattr(value, f.name)) for f in fields(value)}
    if isinstance(value, enum.Enum):
        return value.name
    if isinstance(value, Mapping):
        return {
            (k.name if isinstance(k, enum.Enum) else str(k)): _jsonify(v)
            for k, v in value.items()
        }
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    return value


def default_items(raw: Any) -> Sequence[Any]:
    """Interpret a run() return value as a sequence of row objects."""
    if isinstance(raw, (list, tuple)):
        return raw
    return [raw]


@dataclass(frozen=True)
class Provenance:
    """Where a result came from: enough to reproduce or cache-key it."""

    experiment_id: str
    params: dict[str, Any]
    config_fingerprint: str
    wall_time_s: float
    repo_version: str

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe provenance mapping."""
        return {
            "experiment_id": self.experiment_id,
            "params": self.params,
            "config_fingerprint": self.config_fingerprint,
            "wall_time_s": self.wall_time_s,
            "repo_version": self.repo_version,
        }


def config_fingerprint(experiment_id: str, params: Mapping[str, Any]) -> str:
    """Stable hash of (experiment, param values, repo version)."""
    canonical = json.dumps(
        {"id": experiment_id, "params": params, "version": _repo_version()},
        sort_keys=True,
        default=str,
    )
    return hashlib.sha1(canonical.encode()).hexdigest()[:16]


@dataclass(frozen=True)
class ExperimentResult:
    """The one uniform result shape: columns + row dicts + provenance.

    ``raw`` keeps the experiment's internal dataclasses for programmatic
    consumers (tests, notebooks); it is excluded from serialization and
    equality, as is the table renderer bound at run time.
    """

    experiment_id: str
    title: str
    columns: tuple[str, ...]
    rows: tuple[dict[str, Any], ...]
    provenance: Provenance
    raw: Any = field(default=None, compare=False, repr=False)
    _renderer: Callable[["ExperimentResult"], str] | None = field(
        default=None, compare=False, repr=False
    )

    # -- renderers ------------------------------------------------------------

    def to_table(self) -> str:
        """Fixed-width text table (byte-identical to the historical output)."""
        if self._renderer is not None:
            return self._renderer(self)
        generic = tuple(
            Column(name, "", value=lambda row, n=name: str(row.get(n, "")))
            for name in self.columns
        )
        return render_grid(generic, self.rows)

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe mapping of the result (without ``raw``)."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "columns": list(self.columns),
            "rows": [dict(row) for row in self.rows],
            "provenance": self.provenance.to_dict(),
        }

    def to_json(self, indent: int = 2) -> str:
        """The result as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent)

    def to_csv(self) -> str:
        """Rows as CSV (nested values rendered as compact JSON)."""
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(self.columns)
        for row in self.rows:
            writer.writerow(
                [
                    value
                    if isinstance(value, (str, int, float, bool)) or value is None
                    else json.dumps(value)
                    for value in (row.get(name) for name in self.columns)
                ]
            )
        return buffer.getvalue()

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        """Rebuild a result (minus ``raw``) from its JSON serialization."""
        data = json.loads(text)
        return cls(
            experiment_id=data["experiment_id"],
            title=data["title"],
            columns=tuple(data["columns"]),
            rows=tuple(data["rows"]),
            provenance=Provenance(**data["provenance"]),
        )


# -- the experiment itself ----------------------------------------------------


@dataclass(frozen=True)
class Experiment:
    """A registered, parameterizable, serializable paper artifact."""

    id: str
    title: str
    fn: Callable[..., Any]
    tags: tuple[str, ...] = ()
    params: tuple[Param, ...] = ()
    #: Column specs for the shared grid renderer (None -> ``render`` is used).
    columns: tuple[Column, ...] | None = None
    #: Whether the grid renderer emits a header line.
    header: bool = True
    #: Custom table renderer over the raw result, for irregular layouts.
    render: Callable[[Any], str] | None = None
    #: Raw result -> sequence of row objects (default: the result itself).
    items: Callable[[Any], Sequence[Any]] = default_items
    #: Raw result -> JSON-safe row dicts (default: flatten ``items``).
    to_rows: Callable[[Any], list[dict[str, Any]]] | None = None

    def param(self, name: str) -> Param:
        """Look up one of the experiment's typed parameters by name."""
        for param in self.params:
            if param.name == name:
                return param
        raise BadParamError(
            f"{self.id}: unknown parameter '{name}'; "
            f"valid: {', '.join(p.name for p in self.params) or '(none)'}"
        )

    def resolve_params(self, overrides: Mapping[str, Any]) -> dict[str, Any]:
        """Defaults merged with validated/coerced overrides."""
        for name in overrides:
            self.param(name)  # raises BadParamError on unknown names
        return {
            p.name: (
                p.coerce(overrides[p.name]) if p.name in overrides else p.default
            )
            for p in self.params
        }

    def run(self, **overrides: Any) -> ExperimentResult:
        """Execute with typed params and wrap into an :class:`ExperimentResult`."""
        values = self.resolve_params(overrides)
        # Provenance wall-time is wall-clock by design; it is stripped by
        # normalize_result_json before any determinism comparison.
        start = time.perf_counter()  # repro: lint-ignore[DET002]
        raw = self.fn(**values)
        wall_time_s = time.perf_counter() - start  # repro: lint-ignore[DET002]
        rows = tuple(
            self.to_rows(raw)
            if self.to_rows is not None
            else [_jsonify(item) for item in self.items(raw)]
        )
        columns = tuple(rows[0].keys()) if rows else ()
        params_json = {p.name: p.to_json(values[p.name]) for p in self.params}
        provenance = Provenance(
            experiment_id=self.id,
            params=params_json,
            config_fingerprint=config_fingerprint(self.id, params_json),
            wall_time_s=wall_time_s,
            repo_version=_repo_version(),
        )
        return ExperimentResult(
            experiment_id=self.id,
            title=self.title,
            columns=columns,
            rows=rows,
            provenance=provenance,
            raw=raw,
            _renderer=self._bind_renderer(),
        )

    def _bind_renderer(self) -> Callable[[ExperimentResult], str] | None:
        """The table renderer a result of this experiment should carry."""
        if self.render is not None:
            return lambda result: self.render(result.raw)
        if self.columns is not None:
            return lambda result: render_grid(
                self.columns, self.items(result.raw), header=self.header
            )
        return None


# -- the registry -------------------------------------------------------------

#: Experiment id -> :class:`Experiment`, in registration order.
REGISTRY: dict[str, Experiment] = {}


def register(exp: Experiment) -> Experiment:
    """Add an experiment to the registry (ids are unique)."""
    if exp.id in REGISTRY:
        raise ExperimentError(f"duplicate experiment id '{exp.id}'")
    REGISTRY[exp.id] = exp
    return exp


def experiment(
    id: str,
    *,
    title: str,
    tags: Sequence[str] = (),
    params: Sequence[Param] = (),
    columns: Sequence[Column] | None = None,
    header: bool = True,
    render: Callable[[Any], str] | None = None,
    items: Callable[[Any], Sequence[Any]] = default_items,
    to_rows: Callable[[Any], list[dict[str, Any]]] | None = None,
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Register a run() function as an :class:`Experiment`.

    Returns the function unchanged (so direct module-level calls keep their
    raw return types) and attaches the registered experiment as
    ``fn.experiment``.
    """

    def decorate(fn: Callable[..., Any]) -> Callable[..., Any]:
        exp = register(
            Experiment(
                id=id,
                title=title,
                fn=fn,
                tags=tuple(tags),
                params=tuple(params),
                columns=tuple(columns) if columns is not None else None,
                header=header,
                render=render,
                items=items,
                to_rows=to_rows,
            )
        )
        fn.experiment = exp
        return fn

    return decorate


def get_experiment(key: str) -> Experiment:
    """Look up an experiment by id (case-insensitive)."""
    try:
        return REGISTRY[key.lower()]
    except KeyError:
        raise UnknownExperimentError(key, sorted(REGISTRY)) from None


def run_experiment(key: str, **params: Any) -> ExperimentResult:
    """Run an experiment by id with typed parameter overrides."""
    return get_experiment(key).run(**params)


def experiments_by_tag(tag: str) -> list[Experiment]:
    """All experiments carrying ``tag``, in registration order."""
    return [exp for exp in REGISTRY.values() if tag in exp.tags]


def all_tags() -> list[str]:
    """Every tag in use, sorted."""
    return sorted({tag for exp in REGISTRY.values() for tag in exp.tags})

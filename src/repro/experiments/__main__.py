"""Command-line entry point: run one or all experiments.

Usage::

    python -m repro.experiments list
    python -m repro.experiments fig19
    python -m repro.experiments all
"""

from __future__ import annotations

import sys
import time

from repro.experiments.registry import EXPERIMENTS, get_experiment


def _run_one(key: str) -> None:
    module = get_experiment(key)
    start = time.time()
    result = module.run()
    elapsed = time.time() - start
    print(f"===== {key}: {EXPERIMENTS[key][1]} ({elapsed:.1f}s) =====")
    print(module.format_table(result))
    print()


def main(argv: list[str]) -> int:
    if not argv or argv[0] in ("-h", "--help", "list"):
        print("Available experiments:")
        for key, (_, description) in EXPERIMENTS.items():
            print(f"  {key:<22} {description}")
        return 0
    keys = list(EXPERIMENTS) if argv[0] == "all" else argv
    for key in keys:
        _run_one(key)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

"""``python -m repro.experiments`` -- delegates to the ``repro`` CLI.

Usage::

    python -m repro.experiments list
    python -m repro.experiments run fig19 --pruning-ratios 0,0.5,0.9
    python -m repro.experiments run all --format json --out artifacts/
"""

from __future__ import annotations

import sys

from repro.experiments.cli import main

if __name__ == "__main__":
    sys.exit(main())

"""`serve-interactive`: per-frame deadlines for interactive orbit sessions.

The paper's accelerator targets *interactive* neural rendering, where the
workload is not independent requests but sessions: users orbiting a scene
at a fixed frame rate, every frame due one period after it arrives.  This
study drives one device with a :class:`~repro.serve.traffic.SessionStream`
at growing concurrency and compares three regimes: uncontrolled, quality
shedding on the modelled degradation ladder (interactive frames trade
resolution for deadlines), and the same shedder against a *pinned*
(``degradable=False``) stream -- which demonstrates the degradable flag:
the ladder is active but may not touch any frame, so the pinned column
collapses exactly like the uncontrolled one.  ``sess-ok`` counts sessions
whose users saw every frame on time
(:meth:`~repro.serve.report.ServingReport.by_session`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments._serving import MODELED_LADDER
from repro.experiments.api import Column, Param, experiment
from repro.serve.control import ControlConfig, QueueDepthShedder
from repro.serve.fleet import FleetSimulator
from repro.serve.request import Scenario, ScenarioMix
from repro.serve.scheduler import FIFOScheduler
from repro.serve.traffic import SessionStream
from repro.sim.sweep import SweepEngine, get_default_engine

#: The interactive viewport: small enough that one FlexNeRFer sustains
#: ~8 concurrent 20 fps sessions at full quality.
INTERACTIVE_MIX = ScenarioMix(
    (Scenario("instant-ngp", scene="lego", width=160, height=160),)
)

#: Session concurrencies swept by default: under, near and ~2x past the
#: single device's capacity.
DEFAULT_SESSIONS = (4, 8, 16)


@dataclass(frozen=True)
class InteractivePoint:
    """One (session count, mode) cell of the interactive study."""

    sessions: int
    mode: str
    frames: int
    completed: int
    missed: int
    slo_attainment: float
    p95_latency_ms: float
    mean_quality: float
    sessions_ok: int


@experiment(
    "serve-interactive",
    title="Interactive session frames: deadlines, shedding, pinned quality",
    tags=("serving",),
    params=(
        Param("device", str, "flexnerfer", help="device registry name to serve on"),
        Param(
            "sessions",
            int,
            DEFAULT_SESSIONS,
            help="concurrent-session counts to sweep",
            repeated=True,
        ),
        Param("frames", int, 40, help="frames per session"),
        Param("fps", float, 20.0, help="frame rate of each session"),
        Param("spread_s", float, 1.0, help="session start-time spread"),
        Param("jitter_ms", float, 5.0, help="per-frame arrival jitter"),
        Param(
            "depth_per_step",
            int,
            2,
            help="queued frames per worker per degradation-ladder rung",
        ),
        Param("seed", int, 0, help="session stream seed"),
    ),
    columns=(
        Column("sessions", ">8", key="sessions"),
        Column("mode", "<12", key="mode"),
        Column("frames", ">6", key="frames"),
        Column("done", ">6", key="completed"),
        Column("missed", ">6", key="missed"),
        Column("SLO %", ">6.1f", value=lambda p: p.slo_attainment * 100),
        Column("p95 [ms]", ">9.1f", key="p95_latency_ms"),
        Column("quality", ">8.3f", key="mean_quality"),
        Column("sess-ok", ">7", key="sessions_ok"),
    ),
)
def run(
    device: str = "flexnerfer",
    sessions: tuple[int, ...] = DEFAULT_SESSIONS,
    frames: int = 40,
    fps: float = 20.0,
    spread_s: float = 1.0,
    jitter_ms: float = 5.0,
    depth_per_step: int = 2,
    seed: int = 0,
    engine: SweepEngine | None = None,
) -> list[InteractivePoint]:
    """Serve each session concurrency uncontrolled, shed, and pinned."""
    engine = engine or get_default_engine()
    shed = ControlConfig(
        shedder=QueueDepthShedder(MODELED_LADDER, depth_per_step=depth_per_step)
    )
    modes: tuple[tuple[str, ControlConfig | None, bool], ...] = (
        ("none", None, True),
        ("shed", shed, True),
        ("shed+pinned", shed, False),
    )
    points: list[InteractivePoint] = []
    for num_sessions in sessions:
        for mode, control, degradable in modes:
            stream = SessionStream(
                INTERACTIVE_MIX,
                num_sessions=num_sessions,
                frames_per_session=frames,
                fps=fps,
                start_spread_s=spread_s,
                jitter_s=jitter_ms / 1e3,
                degradable=degradable,
            )
            requests = stream.generate(seed=seed)
            simulator = FleetSimulator(
                (device,),
                scheduler=FIFOScheduler(),
                engine=engine,
                control=control,
            )
            report = simulator.run(requests)
            sessions_ok = sum(1 for s in report.by_session() if s.fully_met)
            points.append(
                InteractivePoint(
                    sessions=num_sessions,
                    mode=mode,
                    frames=report.num_requests,
                    completed=report.completed_requests,
                    missed=report.num_requests - report.met_deadline_requests,
                    slo_attainment=report.slo_attainment,
                    p95_latency_ms=report.p95_latency_s * 1e3,
                    mean_quality=report.mean_quality,
                    sessions_ok=sessions_ok,
                )
            )
    return points

"""Fig. 13(a): input-matrix sparsity at different rendering stages (Instant-NGP).

The sparsity of the matrix entering the network varies across rendering
stages and scenes: after ray-marching / empty-space skipping the input rows of
skipped samples are all-zero (high, scene-dependent sparsity), the first
ReLU's output is nearly dense, and the network's output activations sit around
50 % sparsity.  This dynamic range is what motivates the *online* sparsity
measurement of Section 4.3.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.api import Column, Param, experiment
from repro.nerf.hashgrid import HashGridConfig
from repro.nerf.rays import Camera
from repro.nerf.renderer import InstantNGPRenderer
from repro.nerf.scenes import get_scene
from repro.sim.sweep import get_default_engine


@dataclass(frozen=True)
class SparsityRow:
    """Measured stage sparsities for one scene."""

    scene: str
    input_ray_marching: float
    output_relu1: float
    output: float


@experiment(
    "fig13",
    title="Input sparsity across rendering stages",
    tags=("sparsity", "nerf"),
    params=(
        Param("scenes", str, ("lego", "mic"), help="scenes to render", repeated=True),
        Param("image_size", int, 48, help="rendered image side length"),
        Param("num_samples", int, 32, help="samples per ray"),
    ),
    columns=(
        Column("scene", "<8"),
        Column(
            "input (ray-marching) %",
            ">24.1f",
            value=lambda r: r.input_ray_marching * 100,
        ),
        Column("ReLU1 output %", ">16.4f", value=lambda r: r.output_relu1 * 100),
        Column("output %", ">10.1f", value=lambda r: r.output * 100),
    ),
)
def run(
    scenes: tuple[str, ...] = ("lego", "mic"),
    image_size: int = 48,
    num_samples: int = 32,
) -> list[SparsityRow]:
    """Render each scene with the fitted Instant-NGP model and record sparsity."""
    rows = []
    camera = Camera(width=image_size, height=image_size, focal=image_size * 1.2)
    # Fitted grids are cached in the result store's asset tier (when the
    # process-wide engine carries one), so warm runs skip fitting entirely.
    store = get_default_engine().store
    for scene_name in scenes:
        scene = get_scene(scene_name)
        renderer = InstantNGPRenderer(
            HashGridConfig(
                num_levels=6,
                features_per_level=4,
                log2_table_size=13,
                base_resolution=8,
                max_resolution=64,
            )
        )
        renderer.fit_to_scene(scene, store=store)
        renderer.render(camera, num_samples=num_samples)
        stage = renderer.stats.stage_sparsity
        rows.append(
            SparsityRow(
                scene=scene_name,
                input_ray_marching=stage["input_ray_marching"],
                output_relu1=stage["output_relu1"],
                output=stage["output"],
            )
        )
    return rows

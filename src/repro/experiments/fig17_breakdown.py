"""Fig. 17: area / power breakdowns of FlexNeRFer and NeuRex.

FlexNeRFer's bit-scalable array and flexible NoC cost extra area/power over
NeuRex, and the format encoder/decoder adds a few percent more -- overheads
that buy the latency reductions of Fig. 18.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.device import get_device
from repro.experiments.api import Param, experiment
from repro.sparse.formats import Precision


@dataclass(frozen=True)
class AcceleratorBreakdown:
    """Block-level breakdown of one accelerator."""

    device: str
    area_mm2: dict[str, float]
    power_w: dict[str, float]
    total_area_mm2: float
    total_power_w: float

    def area_fraction(self, block: str) -> float:
        return self.area_mm2.get(block, 0.0) / self.total_area_mm2

    def power_fraction(self, block: str) -> float:
        return self.power_w.get(block, 0.0) / self.total_power_w


@dataclass(frozen=True)
class Fig17Result:
    """Both accelerators' breakdowns plus the paper's headline overheads."""

    flexnerfer: AcceleratorBreakdown
    neurex: AcceleratorBreakdown

    @property
    def area_overhead(self) -> float:
        """FlexNeRFer's area overhead relative to NeuRex."""
        return self.flexnerfer.total_area_mm2 / self.neurex.total_area_mm2 - 1.0

    @property
    def power_overhead(self) -> float:
        return self.flexnerfer.total_power_w / self.neurex.total_power_w - 1.0

    @property
    def format_codec_area_fraction(self) -> float:
        """Area share of the format encoder/decoder (paper: ~3.2 %)."""
        return self.flexnerfer.area_fraction("gemm_unit/format_codec")

    @property
    def format_codec_power_fraction(self) -> float:
        """Power share of the format encoder/decoder (paper: ~3.4 %)."""
        return self.flexnerfer.power_fraction("gemm_unit/format_codec")


def _render(result: Fig17Result) -> str:
    """Nested block-level listing per accelerator plus the headline overheads."""
    lines = []
    for device in (result.neurex, result.flexnerfer):
        lines.append(
            f"{device.device}: {device.total_area_mm2:.1f} mm2, {device.total_power_w:.1f} W"
        )
        for block, value in device.area_mm2.items():
            lines.append(
                f"  {block:<32} {value:6.2f} mm2  {device.power_w.get(block, 0.0):5.2f} W"
            )
    lines.append(
        f"area overhead vs NeuRex: {result.area_overhead * 100:.1f}%  "
        f"power overhead: {result.power_overhead * 100:.1f}%"
    )
    return "\n".join(lines)


@experiment(
    "fig17",
    title="FlexNeRFer / NeuRex cost breakdowns",
    tags=("hw-cost",),
    params=(
        Param("precision", Precision, Precision.INT16, help="operating mode"),
    ),
    render=_render,
    items=lambda result: (result.neurex, result.flexnerfer),
)
def run(precision: Precision = Precision.INT16) -> Fig17Result:
    """Compute both breakdowns at ``precision`` (the paper reports INT16)."""
    flex = get_device("flexnerfer")
    neurex = get_device("neurex")
    flex_area = flex.area_report()
    flex_power = flex.power_report(precision)
    neurex_area = neurex.area_report()
    neurex_power = neurex.power_report()
    return Fig17Result(
        flexnerfer=AcceleratorBreakdown(
            device="FlexNeRFer",
            area_mm2=dict(flex_area.breakdown),
            power_w=dict(flex_power.breakdown),
            total_area_mm2=flex_area.total_mm2,
            total_power_w=flex_power.total_w,
        ),
        neurex=AcceleratorBreakdown(
            device="NeuRex",
            area_mm2=dict(neurex_area.breakdown),
            power_w=dict(neurex_power.breakdown),
            total_area_mm2=neurex_area.total_mm2,
            total_power_w=neurex_power.total_w,
        ),
    )

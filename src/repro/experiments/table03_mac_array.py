"""Table 3: MAC-array comparison -- SIGMA, Bit Fusion, bit-scalable SIGMA and
FlexNeRFer's array (area, power, multiplier counts, peak / effective
efficiency)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.arrays import ArraySpecRow, TABLE3_BASELINES
from repro.core.mac_array import MACArray
from repro.sparse.formats import Precision


@dataclass(frozen=True)
class Table3:
    """All rows of the Table 3 comparison."""

    rows: tuple[ArraySpecRow, ...]

    def row(self, name: str) -> ArraySpecRow:
        for entry in self.rows:
            if entry.name.lower() == name.lower():
                return entry
        raise KeyError(f"no Table 3 row named '{name}'")


def _flexnerfer_row() -> ArraySpecRow:
    array = MACArray()
    precisions = (Precision.INT4, Precision.INT8, Precision.INT16)
    return ArraySpecRow(
        name="FlexNeRFer MAC Array",
        bit_flexible=True,
        supports_sparsity=True,
        precisions=precisions,
        area_mm2=array.area().total_mm2,
        power_w={p: array.power(p).total_w for p in precisions},
        peak_tops={p: array.peak_tops(p) for p in precisions},
        peak_efficiency={p: array.peak_efficiency_tops_per_w(p) for p in precisions},
        effective_efficiency={
            p: array.effective_efficiency_tops_per_w(p) for p in precisions
        },
        num_multipliers={p: array.num_multipliers(p) for p in precisions},
    )


def run() -> Table3:
    """Build the full comparison table."""
    rows = [cls().spec_row() for cls in TABLE3_BASELINES]
    rows.append(_flexnerfer_row())
    return Table3(rows=tuple(rows))


def format_table(table: Table3) -> str:
    lines = [
        f"{'array':<22} {'area [mm2]':>10} {'power [W]':>22} "
        f"{'peak [TOPS/W]':>22} {'effective [TOPS/W]':>22}"
    ]
    for row in table.rows:
        power = "/".join(f"{row.power_w[p]:.1f}" for p in row.precisions)
        peak = "/".join(f"{row.peak_efficiency[p]:.1f}" for p in row.precisions)
        eff = "/".join(f"{row.effective_efficiency[p]:.1f}" for p in row.precisions)
        lines.append(
            f"{row.name:<22} {row.area_mm2:>10.1f} {power:>22} {peak:>22} {eff:>22}"
        )
    return "\n".join(lines)

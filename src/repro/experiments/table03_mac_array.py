"""Table 3: MAC-array comparison -- SIGMA, Bit Fusion, bit-scalable SIGMA and
FlexNeRFer's array (area, power, multiplier counts, peak / effective
efficiency)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.arrays import ArraySpecRow, TABLE3_BASELINES
from repro.core.mac_array import MACArray
from repro.experiments.api import Column, experiment
from repro.sparse.formats import Precision


@dataclass(frozen=True)
class Table3:
    """All rows of the Table 3 comparison."""

    rows: tuple[ArraySpecRow, ...]

    def row(self, name: str) -> ArraySpecRow:
        for entry in self.rows:
            if entry.name.lower() == name.lower():
                return entry
        raise KeyError(f"no Table 3 row named '{name}'")


def _flexnerfer_row() -> ArraySpecRow:
    array = MACArray()
    precisions = (Precision.INT4, Precision.INT8, Precision.INT16)
    return ArraySpecRow(
        name="FlexNeRFer MAC Array",
        bit_flexible=True,
        supports_sparsity=True,
        precisions=precisions,
        area_mm2=array.area().total_mm2,
        power_w={p: array.power(p).total_w for p in precisions},
        peak_tops={p: array.peak_tops(p) for p in precisions},
        peak_efficiency={p: array.peak_efficiency_tops_per_w(p) for p in precisions},
        effective_efficiency={
            p: array.effective_efficiency_tops_per_w(p) for p in precisions
        },
        num_multipliers={p: array.num_multipliers(p) for p in precisions},
    )


def _per_mode(mapping_field: str):
    """Cell joining one value per supported precision with '/'."""

    def cell(row: ArraySpecRow) -> str:
        mapping = getattr(row, mapping_field)
        return "/".join(f"{mapping[p]:.1f}" for p in row.precisions)

    return cell


@experiment(
    "table03",
    title="MAC-array spec comparison",
    tags=("hw-cost", "baseline"),
    columns=(
        Column("array", "<22", key="name"),
        Column("area [mm2]", ">10.1f", key="area_mm2"),
        Column("power [W]", ">22", value=_per_mode("power_w")),
        Column("peak [TOPS/W]", ">22", value=_per_mode("peak_efficiency")),
        Column("effective [TOPS/W]", ">22", value=_per_mode("effective_efficiency")),
    ),
    items=lambda table: table.rows,
)
def run() -> Table3:
    """Build the full comparison table."""
    rows = [cls().spec_row() for cls in TABLE3_BASELINES]
    rows.append(_flexnerfer_row())
    return Table3(rows=tuple(rows))

"""Fig. 19: speedup and energy-efficiency gain over the RTX 2080 Ti.

NeuRex's gains are flat because it supports neither sparsity nor precision
flexibility; FlexNeRFer's gains grow with structured pruning and with lower
precision modes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.gpu import GPUModel, RTX_2080_TI
from repro.baselines.neurex import NeuRex
from repro.core.accelerator import FlexNeRFer
from repro.nerf.models import FrameConfig, all_models, get_model
from repro.sparse.formats import Precision

#: Pruning ratios swept in the figure.
PRUNING_RATIOS = (0.0, 0.3, 0.5, 0.7, 0.9)

#: Default model subset for quick runs (the full figure averages all seven).
DEFAULT_MODELS = ("nerf", "instant-ngp", "tensorf")


@dataclass(frozen=True)
class GainPoint:
    """One bar of Fig. 19: a device/precision/pruning combination."""

    device: str
    precision: Precision | None
    pruning_ratio: float
    speedup: float
    energy_efficiency_gain: float


def _geomean(values: list[float]) -> float:
    return float(np.exp(np.mean(np.log(np.asarray(values)))))


def run(
    models: tuple[str, ...] = DEFAULT_MODELS,
    pruning_ratios: tuple[float, ...] = PRUNING_RATIOS,
    config: FrameConfig | None = None,
) -> list[GainPoint]:
    """Sweep device x precision x pruning over ``models`` and average the gains."""
    config = config or FrameConfig()
    if models == ("all",):
        workloads = [m.build_workload(config) for m in all_models()]
    else:
        workloads = [get_model(name).build_workload(config) for name in models]

    gpu = GPUModel(RTX_2080_TI)
    gpu_reports = [gpu.render_frame(w) for w in workloads]

    neurex = NeuRex()
    flex = FlexNeRFer()
    points: list[GainPoint] = []

    for pruning in pruning_ratios:
        speedups, energy_gains = [], []
        for workload, gpu_report in zip(workloads, gpu_reports):
            report = neurex.render_frame(workload, pruning_ratio=pruning)
            speedups.append(gpu_report.latency_s / report.latency_s)
            energy_gains.append(gpu_report.energy_j / report.energy_j)
        points.append(
            GainPoint(
                device="NeuRex",
                precision=Precision.INT16,
                pruning_ratio=pruning,
                speedup=_geomean(speedups),
                energy_efficiency_gain=_geomean(energy_gains),
            )
        )

    for precision in (Precision.INT16, Precision.INT8, Precision.INT4):
        for pruning in pruning_ratios:
            speedups, energy_gains = [], []
            for workload, gpu_report in zip(workloads, gpu_reports):
                report = flex.render_frame(
                    workload, precision=precision, pruning_ratio=pruning
                )
                speedups.append(gpu_report.latency_s / report.latency_s)
                energy_gains.append(gpu_report.energy_j / report.energy_j)
            points.append(
                GainPoint(
                    device="FlexNeRFer",
                    precision=precision,
                    pruning_ratio=pruning,
                    speedup=_geomean(speedups),
                    energy_efficiency_gain=_geomean(energy_gains),
                )
            )
    return points


def format_table(points: list[GainPoint]) -> str:
    lines = [f"{'device':<12} {'mode':<6} {'pruning %':>9} {'speedup':>9} {'energy gain':>12}"]
    for point in points:
        mode = point.precision.name if point.precision else "-"
        lines.append(
            f"{point.device:<12} {mode:<6} {point.pruning_ratio * 100:>9.0f} "
            f"{point.speedup:>9.1f} {point.energy_efficiency_gain:>12.1f}"
        )
    return "\n".join(lines)

"""Fig. 19: speedup and energy-efficiency gain over the RTX 2080 Ti.

NeuRex's gains are flat because it supports neither sparsity nor precision
flexibility; FlexNeRFer's gains grow with structured pruning and with lower
precision modes.  The whole figure is one declared sweep: the engine's
capability-aware cache simulates NeuRex once per model no matter how many
precision / pruning points are requested.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments._stats import gain_geomean
from repro.experiments.api import Column, Param, experiment
from repro.nerf.models import MODEL_REGISTRY, FrameConfig
from repro.sim.sweep import SweepEngine, SweepSpec, get_default_engine
from repro.sparse.formats import Precision

#: Pruning ratios swept in the figure.
PRUNING_RATIOS = (0.0, 0.3, 0.5, 0.7, 0.9)

#: FlexNeRFer precision modes swept in the figure.
PRECISIONS = (Precision.INT16, Precision.INT8, Precision.INT4)

#: Default model subset for quick runs (the full figure averages all seven).
DEFAULT_MODELS = ("nerf", "instant-ngp", "tensorf")

#: Registry name of the reference GPU every gain is measured against.
BASELINE_DEVICE = "rtx-2080-ti"


@dataclass(frozen=True)
class GainPoint:
    """One bar of Fig. 19: a device/precision/pruning combination."""

    device: str
    precision: Precision | None
    pruning_ratio: float
    speedup: float
    energy_efficiency_gain: float


@experiment(
    "fig19",
    title="Speedup / energy gain over the GPU",
    tags=("frame-sim", "sparsity", "precision"),
    params=(
        Param(
            "models",
            str,
            DEFAULT_MODELS,
            help="models to average over ('all' for every registered model)",
            repeated=True,
        ),
        Param(
            "pruning_ratios",
            float,
            PRUNING_RATIOS,
            help="structured pruning ratios to sweep",
            repeated=True,
        ),
    ),
    columns=(
        Column("device", "<12"),
        Column("mode", "<6", value=lambda p: p.precision.name if p.precision else "-"),
        Column("pruning %", ">9.0f", value=lambda p: p.pruning_ratio * 100),
        Column("speedup", ">9.1f", key="speedup"),
        Column("energy gain", ">12.1f", key="energy_efficiency_gain"),
    ),
)
def run(
    models: tuple[str, ...] = DEFAULT_MODELS,
    pruning_ratios: tuple[float, ...] = PRUNING_RATIOS,
    config: FrameConfig | None = None,
    engine: SweepEngine | None = None,
) -> list[GainPoint]:
    """Sweep device x precision x pruning over ``models`` and average the gains."""
    engine = engine or get_default_engine()
    config = config or FrameConfig()
    if models == ("all",):
        models = tuple(MODEL_REGISTRY)

    baseline = engine.run(
        SweepSpec(devices=(BASELINE_DEVICE,), models=models, base_config=config)
    )
    accel_rows = engine.run(
        SweepSpec(
            devices=("neurex", "flexnerfer"),
            models=models,
            precisions=PRECISIONS,
            pruning_ratios=pruning_ratios,
            base_config=config,
        )
    )

    def group(device: str, precision: Precision, pruning: float):
        return [
            r for r in accel_rows
            if r.device == device
            and r.precision is precision
            and r.pruning_ratio == pruning
        ]

    points: list[GainPoint] = []
    for pruning in pruning_ratios:
        rows = group("NeuRex", Precision.INT16, pruning)
        points.append(
            GainPoint(
                device="NeuRex",
                precision=Precision.INT16,
                pruning_ratio=pruning,
                speedup=gain_geomean(baseline, rows, "latency_s"),
                energy_efficiency_gain=gain_geomean(baseline, rows, "energy_j"),
            )
        )
    for precision in PRECISIONS:
        for pruning in pruning_ratios:
            rows = group("FlexNeRFer", precision, pruning)
            points.append(
                GainPoint(
                    device="FlexNeRFer",
                    precision=precision,
                    pruning_ratio=pruning,
                    speedup=gain_geomean(baseline, rows, "latency_s"),
                    energy_efficiency_gain=gain_geomean(baseline, rows, "energy_j"),
                )
            )
    return points

"""`serve-quality-shed`: the quality / attainment trade at fixed overload.

Holds the offered load at ~2x a single device's capacity and sweeps how
aggressively the fleet sheds quality: ``depth_per_step`` is how many queued
requests per worker it takes to climb one rung of the PSNR-priced
degradation ladder, so smaller values shed earlier and deeper.  The
uncontrolled baseline collapses; timid shedding recovers some attainment
at nearly full quality; aggressive shedding buys near-perfect attainment
at visibly lower delivered-quality percentiles (p05 is the quality an
unlucky user sees).  The ladder itself -- and its measured per-step
latency / PSNR pricing -- is documented in ``docs/serving-control.md``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments._serving import REFERENCE_MIX
from repro.experiments.api import Column, Param, experiment
from repro.serve.control import ControlConfig, QueueDepthShedder, price_ladder
from repro.serve.fleet import FleetSimulator
from repro.serve.request import PoissonStream
from repro.serve.scheduler import FIFOScheduler
from repro.sim.sweep import SweepEngine, get_default_engine

#: Shedding aggressiveness swept by default (queued requests per rung);
#: larger is timider.  The uncontrolled baseline rides along as row one.
DEFAULT_DEPTHS = (16, 8, 4, 2)


@dataclass(frozen=True)
class ShedPoint:
    """One shedding-aggressiveness setting at the fixed overload."""

    config: str
    completed: int
    shed_fraction: float
    slo_attainment: float
    sla_attainment: float
    p95_latency_ms: float
    mean_quality: float
    p05_quality: float
    goodput_rps: float


@experiment(
    "serve-quality-shed",
    title="Quality shedding: attainment vs delivered quality",
    tags=("serving",),
    params=(
        Param("device", str, "flexnerfer", help="device registry name to serve on"),
        Param("rate_rps", float, 50.0, help="offered load (~2x capacity)"),
        Param("duration_s", float, 20.0, help="stream duration in seconds"),
        Param("sla_ms", float, 250.0, help="per-request latency SLA"),
        Param(
            "depths",
            int,
            DEFAULT_DEPTHS,
            help="depth_per_step values to sweep (smaller sheds harder)",
            repeated=True,
        ),
        Param("seed", int, 0, help="request stream seed"),
    ),
    columns=(
        Column("config", "<10", key="config"),
        Column("done", ">6", key="completed"),
        Column("shed %", ">7.1f", value=lambda p: p.shed_fraction * 100),
        Column("SLO %", ">6.1f", value=lambda p: p.slo_attainment * 100),
        Column("SLA %", ">6.1f", value=lambda p: p.sla_attainment * 100),
        Column("p95 [ms]", ">9.1f", key="p95_latency_ms"),
        Column("quality", ">8.3f", key="mean_quality"),
        Column("q p05", ">7.3f", key="p05_quality"),
        Column("goodput", ">8.1f", key="goodput_rps"),
    ),
)
def run(
    device: str = "flexnerfer",
    rate_rps: float = 50.0,
    duration_s: float = 20.0,
    sla_ms: float = 250.0,
    depths: tuple[int, ...] = DEFAULT_DEPTHS,
    seed: int = 0,
    engine: SweepEngine | None = None,
) -> list[ShedPoint]:
    """Sweep shedding aggressiveness against one overloaded stream."""
    engine = engine or get_default_engine()
    ladder = price_ladder(REFERENCE_MIX.scenarios[0], device, engine=engine).ladder()
    stream = PoissonStream(
        rate_rps=rate_rps,
        duration_s=duration_s,
        mix=REFERENCE_MIX,
        sla_s=sla_ms / 1e3,
    )
    requests = stream.generate(seed=seed)
    settings: list[tuple[str, ControlConfig | None]] = [("none", None)]
    settings.extend(
        (
            f"shed/{depth}",
            ControlConfig(shedder=QueueDepthShedder(ladder, depth_per_step=depth)),
        )
        for depth in depths
    )
    points: list[ShedPoint] = []
    for config, control in settings:
        simulator = FleetSimulator(
            (device,), scheduler=FIFOScheduler(), engine=engine, control=control
        )
        report = simulator.run(requests)
        points.append(
            ShedPoint(
                config=config,
                completed=report.completed_requests,
                shed_fraction=(
                    report.shed_requests / report.completed_requests
                    if report.completed_requests
                    else 0.0
                ),
                slo_attainment=report.slo_attainment,
                sla_attainment=report.sla_attainment,
                p95_latency_ms=report.p95_latency_s * 1e3,
                mean_quality=report.mean_quality,
                p05_quality=report.p05_quality,
                goodput_rps=report.goodput_rps,
            )
        )
    return points

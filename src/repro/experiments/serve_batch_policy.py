"""`serve-batch-policy`: FIFO vs batch-up-to-deadline scheduling.

At an offered load past a single device's one-at-a-time capacity, plain
FIFO queueing diverges.  The batch-up-to-deadline policy groups
same-scenario requests and dispatches them together, so each additional
frame of a batch only pays the device's marginal cost
(:attr:`~repro.core.device.Device.batch_marginal_latency`); modest batch
bounds pull the p95/p99 tail back by an order of magnitude and cut energy
per request.  ``max_batch=1`` degenerates to FIFO-with-routing, which pins
the baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments._serving import REFERENCE_MIX
from repro.experiments.api import Column, Param, experiment
from repro.serve.fleet import FleetSimulator
from repro.serve.request import PoissonStream
from repro.serve.scheduler import BatchDeadlineScheduler, FIFOScheduler, Scheduler
from repro.sim.sweep import SweepEngine, get_default_engine

#: Batch-size bounds swept by default (on top of the plain FIFO baseline).
DEFAULT_MAX_BATCHES = (1, 2, 4, 8, 16)


@dataclass(frozen=True)
class PolicyPoint:
    """One scheduling policy's serving summary at the reference load."""

    policy: str
    mean_batch: float
    p50_latency_ms: float
    p95_latency_ms: float
    p99_latency_ms: float
    goodput_rps: float
    sla_attainment: float
    energy_per_request_mj: float


@experiment(
    "serve-batch-policy",
    title="Scheduling policy: FIFO vs batch-up-to-deadline",
    tags=("serving",),
    params=(
        Param("device", str, "flexnerfer", help="device registry name to serve on"),
        Param("rate_rps", float, 40.0, help="Poisson arrival rate (requests/s)"),
        Param("duration_s", float, 30.0, help="stream duration in seconds"),
        Param(
            "max_batches",
            int,
            DEFAULT_MAX_BATCHES,
            help="batch-size bounds to sweep for the batching policy",
            repeated=True,
        ),
        Param("max_wait_ms", float, 50.0, help="longest a request may be held"),
        Param("sla_ms", float, 1000.0, help="per-request latency SLA"),
        Param("seed", int, 0, help="request stream seed"),
    ),
    columns=(
        Column("policy", "<12"),
        Column("batch", ">6.2f", key="mean_batch"),
        Column("p50 [ms]", ">9.1f", key="p50_latency_ms"),
        Column("p95 [ms]", ">9.1f", key="p95_latency_ms"),
        Column("p99 [ms]", ">9.1f", key="p99_latency_ms"),
        Column("goodput", ">8.1f", key="goodput_rps"),
        Column("SLA %", ">6.1f", value=lambda p: p.sla_attainment * 100),
        Column("E/req [mJ]", ">11.1f", key="energy_per_request_mj"),
    ),
)
def run(
    device: str = "flexnerfer",
    rate_rps: float = 40.0,
    duration_s: float = 30.0,
    max_batches: tuple[int, ...] = DEFAULT_MAX_BATCHES,
    max_wait_ms: float = 50.0,
    sla_ms: float = 1000.0,
    seed: int = 0,
    engine: SweepEngine | None = None,
) -> list[PolicyPoint]:
    """Replay one overloaded stream under each policy and summarize."""
    engine = engine or get_default_engine()
    stream = PoissonStream(
        rate_rps=rate_rps,
        duration_s=duration_s,
        mix=REFERENCE_MIX,
        sla_s=sla_ms / 1e3,
    )
    requests = stream.generate(seed=seed)

    policies: list[tuple[str, Scheduler]] = [("fifo", FIFOScheduler())]
    policies += [
        (
            f"batch-{bound}",
            BatchDeadlineScheduler(max_batch=bound, max_wait_s=max_wait_ms / 1e3),
        )
        for bound in max_batches
    ]

    points: list[PolicyPoint] = []
    for label, scheduler in policies:
        simulator = FleetSimulator((device,), scheduler=scheduler, engine=engine)
        report = simulator.run(requests)
        points.append(
            PolicyPoint(
                policy=label,
                mean_batch=report.mean_batch_size,
                p50_latency_ms=report.p50_latency_s * 1e3,
                p95_latency_ms=report.p95_latency_s * 1e3,
                p99_latency_ms=report.p99_latency_s * 1e3,
                goodput_rps=report.goodput_rps,
                sla_attainment=report.sla_attainment,
                energy_per_request_mj=report.energy_per_request_j * 1e3,
            )
        )
    return points

"""Experiment modules regenerating every table and figure of the evaluation.

Each module's ``run()`` returns its internal dataclasses and is registered
as a first-class :class:`repro.experiments.api.Experiment` (id, title, tags,
typed params).  ``Experiment.run`` wraps the same function into the uniform
:class:`repro.experiments.api.ExperimentResult` -- named columns, JSON-safe
rows, provenance -- consumed by the ``repro`` CLI, the benchmarks and the
artifact-publishing CI job.
"""

from repro.experiments.api import (
    BadParamError,
    Column,
    Experiment,
    ExperimentResult,
    Param,
    Provenance,
    UnknownExperimentError,
    experiment,
)
from repro.experiments.registry import (
    EXPERIMENTS,
    all_tags,
    experiments_by_tag,
    get_experiment,
    run_experiment,
)

__all__ = [
    "BadParamError",
    "Column",
    "EXPERIMENTS",
    "Experiment",
    "ExperimentResult",
    "Param",
    "Provenance",
    "UnknownExperimentError",
    "all_tags",
    "experiment",
    "experiments_by_tag",
    "get_experiment",
    "run_experiment",
]

"""Experiment modules regenerating every table and figure of the evaluation.

Each module exposes a ``run()`` function returning plain dataclasses (rows /
series) plus a ``format_table()`` helper used by the examples and benchmark
harnesses.  The registry maps experiment identifiers (``fig01`` ... ``fig20b``,
``table02``, ``table03``) to their modules.
"""

from repro.experiments.registry import EXPERIMENTS, get_experiment, run_experiment

__all__ = ["EXPERIMENTS", "get_experiment", "run_experiment"]

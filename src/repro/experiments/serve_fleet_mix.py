"""`serve-fleet-mix`: heterogeneous fleet compositions under diurnal load.

Serves one bursty (sinusoidally modulated) request stream against several
fleet compositions with the sparsity-aware router, which sends each request
to the idle device that serves its scenario fastest.  Two FlexNeRFers ride
the burst comfortably; fleets that substitute dense INT16 NeuRex chips lose
tail latency and goodput at the peak, but the mixed fleet recovers most of
the gap because the router steers pruned / low-precision scenarios onto the
FlexNeRFer where they are disproportionately cheap.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments._serving import REFERENCE_MIX, parse_fleet
from repro.experiments.api import Column, Param, experiment
from repro.serve.fleet import FleetSimulator
from repro.serve.request import DiurnalStream
from repro.serve.scheduler import SparsityAwareScheduler
from repro.sim.sweep import SweepEngine, get_default_engine

#: Fleet compositions compared by default (``+`` separates fleet members).
DEFAULT_FLEETS = (
    "flexnerfer+flexnerfer",
    "flexnerfer+neurex",
    "neurex+neurex",
)


@dataclass(frozen=True)
class FleetPoint:
    """One fleet composition's serving summary under the diurnal stream."""

    fleet: str
    num_requests: int
    p50_latency_ms: float
    p95_latency_ms: float
    goodput_rps: float
    sla_attainment: float
    energy_per_request_mj: float
    utilization: float


@experiment(
    "serve-fleet-mix",
    title="Fleet compositions under diurnal load (sparsity-aware routing)",
    tags=("serving",),
    params=(
        Param(
            "fleets",
            str,
            DEFAULT_FLEETS,
            help="fleet compositions to compare, e.g. flexnerfer+neurex",
            repeated=True,
        ),
        Param("base_rps", float, 5.0, help="trough arrival rate (requests/s)"),
        Param("peak_rps", float, 30.0, help="peak arrival rate (requests/s)"),
        Param("period_s", float, 20.0, help="burst cycle period"),
        Param("duration_s", float, 40.0, help="stream duration in seconds"),
        Param("sla_ms", float, 300.0, help="per-request latency SLA"),
        Param("seed", int, 0, help="request stream seed"),
    ),
    columns=(
        Column("fleet", "<24"),
        Column("p50 [ms]", ">9.1f", key="p50_latency_ms"),
        Column("p95 [ms]", ">9.1f", key="p95_latency_ms"),
        Column("goodput", ">8.1f", key="goodput_rps"),
        Column("SLA %", ">6.1f", value=lambda p: p.sla_attainment * 100),
        Column("E/req [mJ]", ">11.1f", key="energy_per_request_mj"),
        Column("util %", ">7.1f", value=lambda p: p.utilization * 100),
    ),
)
def run(
    fleets: tuple[str, ...] = DEFAULT_FLEETS,
    base_rps: float = 5.0,
    peak_rps: float = 30.0,
    period_s: float = 20.0,
    duration_s: float = 40.0,
    sla_ms: float = 300.0,
    seed: int = 0,
    engine: SweepEngine | None = None,
) -> list[FleetPoint]:
    """Replay one diurnal stream against each fleet and summarize."""
    engine = engine or get_default_engine()
    stream = DiurnalStream(
        base_rps=base_rps,
        peak_rps=peak_rps,
        period_s=period_s,
        duration_s=duration_s,
        mix=REFERENCE_MIX,
        sla_s=sla_ms / 1e3,
    )
    points: list[FleetPoint] = []
    for fleet_spec in fleets:
        simulator = FleetSimulator(
            parse_fleet(fleet_spec),
            scheduler=SparsityAwareScheduler(),
            engine=engine,
        )
        report = simulator.run(stream.generate(seed=seed))
        points.append(
            FleetPoint(
                fleet=fleet_spec,
                num_requests=report.num_requests,
                p50_latency_ms=report.p50_latency_s * 1e3,
                p95_latency_ms=report.p95_latency_s * 1e3,
                goodput_rps=report.goodput_rps,
                sla_attainment=report.sla_attainment,
                energy_per_request_mj=report.energy_per_request_j * 1e3,
                utilization=report.mean_utilization,
            )
        )
    return points

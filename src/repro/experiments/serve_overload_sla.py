"""`serve-overload-sla`: SLO attainment vs offered load per control mechanism.

The headline overload-control study: a single device is driven from just
below saturation to ~3x past it, once per control mode -- uncontrolled,
queue-cap admission, token-bucket admission, quality shedding, and
admission + shedding combined.  Attainment is measured against the
*offered* load (rejected requests count as misses), which is the number an
end user experiences.  Uncontrolled, SLO attainment collapses past the
knee because every request queues behind an unbounded backlog; admission
keeps the queue finite by turning the excess away; shedding instead serves
the excess from cheaper rungs of a PSNR-priced degradation ladder
(:func:`repro.serve.control.price_ladder`), trading delivered quality for
attainment without rejecting anyone.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments._serving import REFERENCE_MIX
from repro.experiments.api import Column, Param, experiment
from repro.serve.control import (
    ControlConfig,
    QueueCapAdmission,
    QueueDepthShedder,
    TokenBucketAdmission,
    price_ladder,
)
from repro.serve.fleet import FleetSimulator
from repro.serve.request import PoissonStream
from repro.serve.scheduler import FIFOScheduler
from repro.sim.sweep import SweepEngine, get_default_engine

#: Offered loads swept by default: ~0.8x, 2x and 3x the single
#: FlexNeRFer's ~25 rps capacity on the reference mix.
DEFAULT_RATES = (20.0, 50.0, 75.0)


@dataclass(frozen=True)
class OverloadPoint:
    """One (offered load, control mode) cell of the overload study."""

    rate_rps: float
    mode: str
    num_requests: int
    completed: int
    rejected: int
    shed: int
    slo_attainment: float
    sla_attainment: float
    p95_latency_ms: float
    mean_quality: float
    goodput_rps: float


@experiment(
    "serve-overload-sla",
    title="SLO attainment under overload per control mechanism",
    tags=("serving",),
    params=(
        Param("device", str, "flexnerfer", help="device registry name to serve on"),
        Param(
            "rates",
            float,
            DEFAULT_RATES,
            help="Poisson arrival rates to sweep (requests/s)",
            repeated=True,
        ),
        Param("duration_s", float, 20.0, help="stream duration in seconds"),
        Param("sla_ms", float, 250.0, help="per-request latency SLA"),
        Param("max_queue", int, 5, help="queue-cap admission bound"),
        Param("admit_rps", float, 24.0, help="token-bucket sustained admit rate"),
        Param("admit_burst", float, 5.0, help="token-bucket burst headroom"),
        Param(
            "depth_per_step",
            int,
            4,
            help="queued requests per worker per degradation-ladder rung",
        ),
        Param("seed", int, 0, help="request stream seed"),
    ),
    columns=(
        Column("rate", ">6.0f", key="rate_rps"),
        Column("mode", "<13", key="mode"),
        Column("reqs", ">6", key="num_requests"),
        Column("done", ">6", key="completed"),
        Column("rej", ">5", key="rejected"),
        Column("shed", ">5", key="shed"),
        Column("SLO %", ">6.1f", value=lambda p: p.slo_attainment * 100),
        Column("SLA %", ">6.1f", value=lambda p: p.sla_attainment * 100),
        Column("p95 [ms]", ">9.1f", key="p95_latency_ms"),
        Column("quality", ">8.3f", key="mean_quality"),
        Column("goodput", ">8.1f", key="goodput_rps"),
    ),
)
def run(
    device: str = "flexnerfer",
    rates: tuple[float, ...] = DEFAULT_RATES,
    duration_s: float = 20.0,
    sla_ms: float = 250.0,
    max_queue: int = 5,
    admit_rps: float = 24.0,
    admit_burst: float = 5.0,
    depth_per_step: int = 4,
    seed: int = 0,
    engine: SweepEngine | None = None,
) -> list[OverloadPoint]:
    """Serve each offered load once per control mode and compare attainment."""
    engine = engine or get_default_engine()
    # Price the ladder once on the mix's dominant scenario; its measured
    # PSNR-derived qualities are what the shed modes deliver.
    ladder = price_ladder(REFERENCE_MIX.scenarios[0], device, engine=engine).ladder()
    modes: tuple[tuple[str, ControlConfig | None], ...] = (
        ("none", None),
        ("queue-cap", ControlConfig(admission=QueueCapAdmission(max_queue))),
        (
            "token-bucket",
            ControlConfig(
                admission=TokenBucketAdmission(rate_rps=admit_rps, burst=admit_burst)
            ),
        ),
        (
            "shed",
            ControlConfig(
                shedder=QueueDepthShedder(ladder, depth_per_step=depth_per_step)
            ),
        ),
        (
            "cap+shed",
            ControlConfig(
                admission=QueueCapAdmission(max_queue),
                shedder=QueueDepthShedder(ladder, depth_per_step=depth_per_step),
            ),
        ),
    )
    points: list[OverloadPoint] = []
    for rate in rates:
        stream = PoissonStream(
            rate_rps=rate,
            duration_s=duration_s,
            mix=REFERENCE_MIX,
            sla_s=sla_ms / 1e3,
        )
        requests = stream.generate(seed=seed)
        for mode, control in modes:
            simulator = FleetSimulator(
                (device,),
                scheduler=FIFOScheduler(),
                engine=engine,
                control=control,
            )
            report = simulator.run(requests)
            points.append(
                OverloadPoint(
                    rate_rps=rate,
                    mode=mode,
                    num_requests=report.num_requests,
                    completed=report.completed_requests,
                    rejected=report.rejected_requests,
                    shed=report.shed_requests,
                    slo_attainment=report.slo_attainment,
                    sla_attainment=report.sla_attainment,
                    p95_latency_ms=report.p95_latency_s * 1e3,
                    mean_quality=report.mean_quality,
                    goodput_rps=report.goodput_rps,
                )
            )
    return points

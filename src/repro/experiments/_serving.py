"""Shared fixtures for the serving experiments (`serve-*`).

The three serving studies share one reference scenario mix so their numbers
are comparable: a mostly-Instant-NGP request population at 400x400 with a
dense TensoRF tail and one pruned low-precision scenario -- the kind of
request FlexNeRFer's sparsity-aware datapath serves disproportionately
faster, which is what makes heterogeneous routing interesting.
"""

from __future__ import annotations

from repro.serve.control import DEFAULT_LADDER_STEPS, DegradationLadder
from repro.serve.request import Scenario, ScenarioMix
from repro.sparse.formats import Precision

#: The reference request population every serving experiment defaults to.
REFERENCE_MIX = ScenarioMix(
    scenarios=(
        Scenario("instant-ngp", scene="lego", width=400, height=400),
        Scenario(
            "instant-ngp",
            scene="mic",
            width=400,
            height=400,
            precision=Precision.INT8,
            pruning_ratio=0.5,
        ),
        Scenario("tensorf", scene="lego", width=400, height=400),
    ),
    weights=(2.0, 1.0, 1.0),
)


#: Default-step ladder with *modelled* (fixed) qualities rather than
#: PSNR-measured ones.  The traffic experiments use it so their goldens
#: depend only on the serving simulation, not on the probe renderer;
#: `serve-overload-sla` keeps the measured :func:`price_ladder` variant.
MODELED_LADDER = DegradationLadder(
    steps=DEFAULT_LADDER_STEPS,
    qualities=(0.95, 0.88, 0.75, 0.60),
)


def parse_fleet(spec: str) -> tuple[str, ...]:
    """Split a ``+``-separated fleet spec into device registry names.

    ``"flexnerfer+neurex"`` -> ``("flexnerfer", "neurex")``.  The ``+``
    separator (rather than a comma) lets fleet specs live inside repeated
    comma-separated CLI parameters.
    """
    names = tuple(name.strip().lower() for name in spec.split("+") if name.strip())
    if not names:
        raise ValueError(f"empty fleet spec '{spec}'")
    return names

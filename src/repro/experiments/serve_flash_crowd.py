"""`serve-flash-crowd`: burst absorption per overload-control mechanism.

Flash crowds are the traffic shape memoryless streams cannot express: a
quiet baseline punctuated by seeded burst epochs during which the arrival
rate jumps an order of magnitude (a scene going viral).  This study drives
one device with a :class:`~repro.serve.traffic.FlashCrowdStream` at
increasing crowd intensities, once per control mode, and asks which
mechanism absorbs the burst best: uncontrolled queueing lets the backlog
poison every post-burst request, queue-cap admission sacrifices burst
requests to protect the baseline, and quality shedding serves the crowd
from cheaper degradation-ladder rungs (modelled qualities --
:data:`repro.experiments._serving.MODELED_LADDER` -- so the golden table
pins the serving simulation alone).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments._serving import MODELED_LADDER, REFERENCE_MIX
from repro.experiments.api import Column, Param, experiment
from repro.serve.control import (
    ControlConfig,
    QueueCapAdmission,
    QueueDepthShedder,
)
from repro.serve.fleet import FleetSimulator
from repro.serve.scheduler import FIFOScheduler
from repro.serve.traffic import FlashCrowdStream
from repro.sim.sweep import SweepEngine, get_default_engine

#: Crowd rates swept by default: ~1.6x and ~3.2x the single FlexNeRFer's
#: ~25 rps capacity on the reference mix, against a 12 rps baseline.
DEFAULT_BURST_RATES = (40.0, 80.0)


@dataclass(frozen=True)
class FlashCrowdPoint:
    """One (crowd rate, control mode) cell of the flash-crowd study."""

    burst_rps: float
    mode: str
    num_requests: int
    completed: int
    rejected: int
    shed: int
    slo_attainment: float
    p95_latency_ms: float
    mean_quality: float
    goodput_rps: float


@experiment(
    "serve-flash-crowd",
    title="Flash-crowd burst absorption per control mechanism",
    tags=("serving",),
    params=(
        Param("device", str, "flexnerfer", help="device registry name to serve on"),
        Param("base_rps", float, 12.0, help="baseline arrival rate between bursts"),
        Param(
            "burst_rates",
            float,
            DEFAULT_BURST_RATES,
            help="crowd arrival rates to sweep (requests/s during a burst)",
            repeated=True,
        ),
        Param("num_bursts", int, 2, help="seeded burst epochs per run"),
        Param("burst_s", float, 2.5, help="duration of each burst window"),
        Param("duration_s", float, 20.0, help="stream duration in seconds"),
        Param("sla_ms", float, 250.0, help="per-request latency SLA"),
        Param("max_queue", int, 6, help="queue-cap admission bound"),
        Param(
            "depth_per_step",
            int,
            4,
            help="queued requests per worker per degradation-ladder rung",
        ),
        Param("seed", int, 0, help="request stream seed"),
    ),
    columns=(
        Column("burst", ">6.0f", key="burst_rps"),
        Column("mode", "<10", key="mode"),
        Column("reqs", ">6", key="num_requests"),
        Column("done", ">6", key="completed"),
        Column("rej", ">5", key="rejected"),
        Column("shed", ">5", key="shed"),
        Column("SLO %", ">6.1f", value=lambda p: p.slo_attainment * 100),
        Column("p95 [ms]", ">9.1f", key="p95_latency_ms"),
        Column("quality", ">8.3f", key="mean_quality"),
        Column("goodput", ">8.1f", key="goodput_rps"),
    ),
)
def run(
    device: str = "flexnerfer",
    base_rps: float = 12.0,
    burst_rates: tuple[float, ...] = DEFAULT_BURST_RATES,
    num_bursts: int = 2,
    burst_s: float = 2.5,
    duration_s: float = 20.0,
    sla_ms: float = 250.0,
    max_queue: int = 6,
    depth_per_step: int = 4,
    seed: int = 0,
    engine: SweepEngine | None = None,
) -> list[FlashCrowdPoint]:
    """Serve each crowd intensity once per control mode and compare."""
    engine = engine or get_default_engine()
    modes: tuple[tuple[str, ControlConfig | None], ...] = (
        ("none", None),
        ("queue-cap", ControlConfig(admission=QueueCapAdmission(max_queue))),
        (
            "shed",
            ControlConfig(
                shedder=QueueDepthShedder(MODELED_LADDER, depth_per_step=depth_per_step)
            ),
        ),
        (
            "cap+shed",
            ControlConfig(
                admission=QueueCapAdmission(max_queue),
                shedder=QueueDepthShedder(MODELED_LADDER, depth_per_step=depth_per_step),
            ),
        ),
    )
    points: list[FlashCrowdPoint] = []
    for burst_rps in burst_rates:
        stream = FlashCrowdStream(
            base_rps=base_rps,
            burst_rps=burst_rps,
            duration_s=duration_s,
            mix=REFERENCE_MIX,
            num_bursts=num_bursts,
            burst_s=burst_s,
            sla_s=sla_ms / 1e3,
        )
        requests = stream.generate(seed=seed)
        for mode, control in modes:
            simulator = FleetSimulator(
                (device,),
                scheduler=FIFOScheduler(),
                engine=engine,
                control=control,
            )
            report = simulator.run(requests)
            points.append(
                FlashCrowdPoint(
                    burst_rps=burst_rps,
                    mode=mode,
                    num_requests=report.num_requests,
                    completed=report.completed_requests,
                    rejected=report.rejected_requests,
                    shed=report.shed_requests,
                    slo_attainment=report.slo_attainment,
                    p95_latency_ms=report.p95_latency_s * 1e3,
                    mean_quality=report.mean_quality,
                    goodput_rps=report.goodput_rps,
                )
            )
    return points

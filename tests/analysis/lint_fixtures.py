"""Fixture sources for the repro.analysis test suite.

``VIOLATIONS`` is a miniature package tree containing exactly one
violation of each shipped rule, laid out under the dotted module paths the
rules' scopes expect (``repro.sim``, ``repro.perf``, ...).  Both the
framework tests and the CLI exit-code tests lint it.
"""

#: path-in-tree -> source, one deliberate violation per shipped rule.
VIOLATIONS = {
    # DET001: global-state RNG call in a deterministic subsystem.
    "repro/sim/unseeded.py": (
        "import random\n"
        "\n"
        "\n"
        "def sample():\n"
        "    return random.random()\n"
    ),
    # DET002: wall-clock read outside repro.perf.
    "repro/nerf/clock.py": (
        "import time\n"
        "\n"
        "\n"
        "def stamp():\n"
        "    return time.time()\n"
    ),
    # DET003: set iteration feeding rendered output.
    "repro/perf/tables.py": (
        "def render(items):\n"
        "    return ', '.join({str(item) for item in items})\n"
    ),
    # STORE001: device attribute invisible to the fingerprint.
    "repro/core/device.py": (
        "class Device:\n"
        "    def _fingerprint_state(self):\n"
        "        return {}\n"
        "\n"
        "\n"
        "class BadDevice(Device):\n"
        "    def __init__(self, rows):\n"
        "        self.rows = rows\n"
        "\n"
        "    def _fingerprint_state(self):\n"
        "        return {}\n"
    ),
    # PURE001: filesystem access inside an experiment run().
    "repro/experiments/impure.py": (
        "def run():\n"
        "    return open('data.txt').read()\n"
    ),
    # CONC001: unlocked mutation of module-level shared state.
    "repro/serve/state.py": (
        "_CACHE = {}\n"
        "\n"
        "\n"
        "def remember(key, value):\n"
        "    _CACHE[key] = value\n"
    ),
}

#: The rule each fixture file above violates, in file order.
VIOLATED_RULES = ("DET001", "DET002", "DET003", "STORE001", "PURE001", "CONC001")


def write_tree(root, files):
    """Materialize a {relative path: source} mapping under ``root``."""
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    return root

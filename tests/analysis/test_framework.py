"""The analysis framework itself: discovery, suppression, baseline, schema.

Pins the contracts every rule and every CI run relies on: rules are
discovered (with unique ids), inline pragmas suppress exactly their rule,
the baseline round-trips through ``--update-baseline`` preserving
justifications, and the JSON document's schema stays stable.
"""

import json

import pytest

from repro.analysis import (
    Baseline,
    BaselineEntry,
    ModuleRule,
    Rule,
    Severity,
    discover_rules,
    load_baseline,
    run_lint,
    select_rules,
    update_baseline,
)
from repro.analysis.driver import SYNTAX_RULE_ID, suppressed_ids

from lint_fixtures import VIOLATED_RULES, VIOLATIONS, write_tree

ALL_RULE_IDS = sorted(VIOLATED_RULES)


class TestDiscovery:
    def test_every_shipped_rule_is_discovered(self):
        assert [rule.id for rule in discover_rules()] == ALL_RULE_IDS

    def test_rules_carry_complete_metadata(self):
        for rule in discover_rules():
            assert issubclass(rule, Rule)
            assert rule.id and rule.title and rule.rationale
            assert isinstance(rule.severity, Severity)

    def test_select_rules_filters_and_rejects_unknown(self):
        (only,) = select_rules(["DET001"])
        assert only.id == "DET001"
        with pytest.raises(ValueError, match="unknown rule id.*NOPE"):
            select_rules(["NOPE"])

    def test_module_rule_scoping(self):
        class Scoped(ModuleRule):
            id = "TEST001"
            title = "test"
            rationale = "test"
            scope = ("repro.sim",)
            exempt = ("repro.sim.vendored",)

            def check_module(self, module):
                return iter(())

        class FakeModule:
            def __init__(self, name):
                self.name = name

        rule = Scoped()
        assert rule.applies_to(FakeModule("repro.sim"))
        assert rule.applies_to(FakeModule("repro.sim.sweep"))
        assert not rule.applies_to(FakeModule("repro.simulator"))  # not a prefix
        assert not rule.applies_to(FakeModule("repro.serve.fleet"))
        assert not rule.applies_to(FakeModule("repro.sim.vendored.noise"))


class TestRulesOnFixtures:
    def test_each_rule_fires_exactly_once_on_the_violation_tree(self, violation_tree):
        report = run_lint(violation_tree)
        assert sorted(f.rule_id for f in report.findings) == ALL_RULE_IDS

    def test_findings_point_into_the_offending_files(self, violation_tree):
        report = run_lint(violation_tree)
        by_rule = {f.rule_id: f for f in report.findings}
        assert by_rule["DET001"].path == "repro/sim/unseeded.py"
        assert by_rule["DET002"].path == "repro/nerf/clock.py"
        assert by_rule["DET003"].path == "repro/perf/tables.py"
        assert by_rule["STORE001"].path == "repro/core/device.py"
        assert by_rule["PURE001"].path == "repro/experiments/impure.py"
        assert by_rule["CONC001"].path == "repro/serve/state.py"
        for finding in report.findings:
            assert finding.line >= 1
            assert finding.severity is Severity.ERROR

    def test_scopes_unflag_the_same_code_elsewhere(self, tmp_path):
        # The identical sources outside the rules' scoped subsystems are
        # legitimate (e.g. clocks in repro.perf, RNG in docs tooling).
        files = {
            "repro/perf/clock.py": VIOLATIONS["repro/nerf/clock.py"],
            "tools/unseeded.py": VIOLATIONS["repro/sim/unseeded.py"],
        }
        report = run_lint(write_tree(tmp_path / "tree", files))
        assert report.clean

    def test_rule_subset_runs_only_those_rules(self, violation_tree):
        report = run_lint(violation_tree, rule_ids=["DET001", "CONC001"])
        assert sorted(f.rule_id for f in report.findings) == ["CONC001", "DET001"]

    def test_unparseable_file_is_a_syntax_finding(self, tmp_path):
        root = write_tree(tmp_path / "tree", {"repro/sim/broken.py": "def oops(:\n"})
        report = run_lint(root)
        (finding,) = report.findings
        assert finding.rule_id == SYNTAX_RULE_ID
        assert "could not be parsed" in finding.message


class TestInlineSuppression:
    def test_pragma_on_the_flagged_line(self, tmp_path):
        source = (
            "import random\n"
            "\n"
            "\n"
            "def sample():\n"
            "    return random.random()  # repro: lint-ignore[DET001]\n"
        )
        report = run_lint(write_tree(tmp_path / "t", {"repro/sim/x.py": source}))
        assert report.clean
        assert [f.rule_id for f in report.suppressed] == ["DET001"]

    def test_pragma_on_a_comment_line_above(self, tmp_path):
        source = (
            "import random\n"
            "\n"
            "\n"
            "def sample():\n"
            "    # repro: lint-ignore[DET001]\n"
            "    return random.random()\n"
        )
        report = run_lint(write_tree(tmp_path / "t", {"repro/sim/x.py": source}))
        assert report.clean

    def test_trailing_pragma_covers_its_own_line_only(self, tmp_path):
        source = (
            "import random\n"
            "\n"
            "\n"
            "def sample():\n"
            "    a = 1  # repro: lint-ignore[DET001]\n"
            "    return random.random()\n"
        )
        report = run_lint(write_tree(tmp_path / "t", {"repro/sim/x.py": source}))
        assert [f.rule_id for f in report.findings] == ["DET001"]

    def test_wrong_rule_id_does_not_suppress(self, tmp_path):
        source = (
            "import random\n"
            "\n"
            "\n"
            "def sample():\n"
            "    return random.random()  # repro: lint-ignore[DET002]\n"
        )
        report = run_lint(write_tree(tmp_path / "t", {"repro/sim/x.py": source}))
        assert [f.rule_id for f in report.findings] == ["DET001"]

    def test_wildcard_and_multi_id_pragmas(self):
        lines = [
            "x = 1  # repro: lint-ignore[*]",
            "y = 2  # repro: lint-ignore[DET001, CONC001]",
        ]
        assert suppressed_ids(lines, 1) == frozenset({"*"})
        assert suppressed_ids(lines, 2) == frozenset({"DET001", "CONC001"})


class TestBaseline:
    def test_round_trip_grandfathers_and_then_passes(self, violation_tree, tmp_path):
        path = tmp_path / "baseline.json"
        dirty = run_lint(violation_tree, baseline=load_baseline(path))
        assert len(dirty.findings) == len(ALL_RULE_IDS)

        update_baseline(path, dirty.findings, load_baseline(path))
        clean = run_lint(violation_tree, baseline=load_baseline(path))
        assert clean.clean
        assert len(clean.baselined) == len(ALL_RULE_IDS)
        assert not clean.stale_baseline

    def test_update_preserves_surviving_justifications(self, violation_tree, tmp_path):
        path = tmp_path / "baseline.json"
        report = run_lint(violation_tree)
        update_baseline(path, report.findings, load_baseline(path))

        entries = [
            BaselineEntry(e.rule, e.path, e.message, f"because {e.rule}")
            for e in load_baseline(path).entries
        ]
        justified = Baseline(path=path, entries=tuple(entries))
        updated = update_baseline(path, report.findings, justified)
        assert {e.justification for e in updated.entries} == {
            f"because {rule}" for rule in ALL_RULE_IDS
        }

    def test_matching_ignores_line_numbers(self, violation_tree, tmp_path):
        path = tmp_path / "baseline.json"
        report = run_lint(violation_tree)
        update_baseline(path, report.findings, load_baseline(path))
        # Prepend comments: every finding moves, the baseline still holds.
        target = violation_tree / "repro/sim/unseeded.py"
        target.write_text("# moved\n# moved\n" + target.read_text())
        again = run_lint(violation_tree, baseline=load_baseline(path))
        assert again.clean

    def test_stale_entries_are_reported(self, tmp_path):
        root = write_tree(tmp_path / "t", {"repro/sim/ok.py": "X = 1\n"})
        stale = Baseline(
            path=None,
            entries=(BaselineEntry("DET001", "repro/sim/gone.py", "old"),),
        )
        report = run_lint(root, baseline=stale)
        assert report.clean
        assert [e.rule for e in report.stale_baseline] == ["DET001"]

    def test_missing_file_is_empty_and_malformed_raises(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json").entries == ()
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "something-else"}))
        with pytest.raises(ValueError, match="repro-lint-baseline"):
            load_baseline(bad)
        bad.write_text("not json")
        with pytest.raises(ValueError, match="cannot read baseline"):
            load_baseline(bad)


class TestJsonSchema:
    def test_report_document_schema_is_stable(self, violation_tree):
        document = run_lint(violation_tree).to_dict()
        assert sorted(document) == [
            "baselined",
            "clean",
            "findings",
            "root",
            "rules",
            "schema",
            "schema_version",
            "stale_baseline",
            "suppressed",
        ]
        assert document["schema"] == "repro-lint"
        assert document["schema_version"] == 1
        assert document["clean"] is False
        for row in document["findings"]:
            assert sorted(row) == ["line", "message", "path", "rule", "severity"]
        assert sorted(r["id"] for r in document["rules"]) == ALL_RULE_IDS

    def test_document_is_json_serializable(self, violation_tree):
        text = json.dumps(run_lint(violation_tree).to_dict())
        assert json.loads(text)["schema"] == "repro-lint"

"""Shared fixtures for the repro.analysis test suite."""

import pytest
from lint_fixtures import VIOLATIONS, write_tree


@pytest.fixture()
def violation_tree(tmp_path):
    """A package tree with exactly one violation of every shipped rule."""
    return write_tree(tmp_path / "tree", VIOLATIONS)

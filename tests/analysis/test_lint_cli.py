"""The ``repro lint`` command: exit codes, formats, baseline workflow.

Exit-code contract (what the CI gate keys on): 0 for a clean pass, 1 when
non-baselined findings remain, 2 for usage errors.  The shipped tree must
lint clean with the committed baseline -- the same invocation CI runs.
"""

import json

import pytest
from lint_fixtures import VIOLATED_RULES, VIOLATIONS, write_tree

from repro.analysis import load_baseline
from repro.analysis.baseline import TODO_JUSTIFICATION
from repro.experiments.cli import main


@pytest.fixture()
def clean_tree(tmp_path):
    return write_tree(tmp_path / "clean", {"repro/sim/ok.py": "X = 1\n"})


def lint(*args):
    return main(["lint", *args])


class TestExitCodes:
    def test_clean_tree_exits_zero(self, clean_tree, tmp_path, capsys):
        code = lint("--root", str(clean_tree), "--baseline", str(tmp_path / "b.json"))
        assert code == 0
        assert "clean: 0 finding(s)" in capsys.readouterr().out

    def test_violations_exit_one_with_all_six_rules(
        self, violation_tree, tmp_path, capsys
    ):
        code = lint(
            "--root", str(violation_tree), "--baseline", str(tmp_path / "b.json")
        )
        assert code == 1
        out = capsys.readouterr().out
        for rule_id in VIOLATED_RULES:
            assert rule_id in out

    def test_usage_errors_exit_two(self, violation_tree, tmp_path, capsys):
        root = ("--root", str(violation_tree))
        cases = (
            ("--rules", "NOPE", *root),
            ("--format", "xml", *root),
            ("--root", str(tmp_path / "missing")),
            ("--rules", "DET001", "--update-baseline", *root),
        )
        for args in cases:
            assert lint(*args) == 2
            assert capsys.readouterr().err.startswith("error: ")

    def test_shipped_tree_is_clean_with_committed_baseline(self, capsys):
        assert lint() == 0  # exactly what the CI lint job runs
        assert "clean:" in capsys.readouterr().out


class TestFormats:
    def test_json_document_round_trips(self, violation_tree, tmp_path, capsys):
        code = lint(
            "--root", str(violation_tree),
            "--baseline", str(tmp_path / "b.json"),
            "--format", "json",
        )
        assert code == 1
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == "repro-lint"
        assert document["clean"] is False
        assert sorted(f["rule"] for f in document["findings"]) == sorted(
            VIOLATED_RULES
        )

    def test_table_lines_carry_location_and_severity(
        self, violation_tree, tmp_path, capsys
    ):
        lint("--root", str(violation_tree), "--baseline", str(tmp_path / "b.json"))
        out = capsys.readouterr().out
        assert "repro/sim/unseeded.py:5: DET001 [error]" in out

    def test_rules_subset(self, violation_tree, tmp_path, capsys):
        code = lint(
            "--root", str(violation_tree),
            "--baseline", str(tmp_path / "b.json"),
            "--rules", "DET001",
            "--format", "json",
        )
        assert code == 1
        document = json.loads(capsys.readouterr().out)
        assert [f["rule"] for f in document["findings"]] == ["DET001"]


class TestBaselineWorkflow:
    def test_update_then_rerun_is_clean(self, violation_tree, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert (
            lint(
                "--root", str(violation_tree),
                "--baseline", str(baseline),
                "--update-baseline",
            )
            == 0
        )
        assert f"wrote {baseline}" in capsys.readouterr().out
        entries = load_baseline(baseline).entries
        assert sorted(e.rule for e in entries) == sorted(VIOLATED_RULES)
        assert all(e.justification == TODO_JUSTIFICATION for e in entries)

        assert lint("--root", str(violation_tree), "--baseline", str(baseline)) == 0
        out = capsys.readouterr().out
        assert "clean: 0 finding(s), 0 suppressed inline, 6 baselined" in out

    def test_fixing_a_violation_surfaces_a_stale_entry(
        self, violation_tree, tmp_path, capsys
    ):
        baseline = tmp_path / "baseline.json"
        lint(
            "--root", str(violation_tree),
            "--baseline", str(baseline),
            "--update-baseline",
        )
        fixed = violation_tree / "repro/sim/unseeded.py"
        fixed.write_text("X = 1\n")
        assert lint("--root", str(violation_tree), "--baseline", str(baseline)) == 0
        capsys.readouterr()  # drop the update run's output

        # --update-baseline prunes the now-stale DET001 entry.
        lint(
            "--root", str(violation_tree),
            "--baseline", str(baseline),
            "--update-baseline",
        )
        assert sorted(e.rule for e in load_baseline(baseline).entries) == sorted(
            set(VIOLATED_RULES) - {"DET001"}
        )

    def test_malformed_baseline_is_a_usage_error(self, clean_tree, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        assert lint("--root", str(clean_tree), "--baseline", str(bad)) == 2
        assert "error: " in capsys.readouterr().err

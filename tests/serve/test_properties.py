"""Property-based and differential fuzz tests for the serving simulator.

Rather than pinning hand-picked configurations, these tests draw hundreds
of randomized serving setups (fleet shape, arrival process, scenario mix,
admission policy, shedding ladder, autoscaler) from a *fixed-seed* stdlib
``random.Random`` stream and assert structural invariants that must hold
for every one of them:

* **conservation** -- every offered request is accounted for exactly once:
  ``num_requests == completed + rejected`` (the simulator drains its queue,
  so nothing is in flight when ``run`` returns), and the completed /
  rejected id sets partition the offered ids;
* **causality** -- starts follow arrivals, finishes follow starts, queue
  waits are non-negative;
* **aggregate consistency** -- the report's percentiles / means equal the
  same statistics recomputed from the raw completion log;
* **determinism** -- re-running the identical configuration (fresh
  admission-session state and all) reproduces the report bit for bit;
* **differential equivalence** -- for exact-FIFO fleets, the closed-form
  batched fast path and the discrete-event loop produce *identical*
  reports, completion logs, rejection logs and worker stats.

The iteration budget defaults to 200 combined configurations and is
tunable via the ``REPRO_FUZZ_ITERATIONS`` environment variable (CI sets it
explicitly so the budget is visible in the workflow file).
"""

import os
import random

import pytest

from repro.serve.control import (
    ControlConfig,
    DegradationLadder,
    DegradationStep,
    QueueCapAdmission,
    QueueDepthAutoscaler,
    QueueDepthShedder,
    TokenBucketAdmission,
)
from repro.serve.fleet import FleetSimulator
from repro.serve.report import percentile
from repro.serve.request import PoissonStream, Scenario, ScenarioMix
from repro.serve.scheduler import FIFOScheduler
from repro.sim.sweep import SweepEngine

from tests._differential import assert_fast_path_matches_event_loop

#: Fixed fuzz seed: the whole suite is one reproducible random stream.
SEED = 20260808

#: Combined config budget; override with REPRO_FUZZ_ITERATIONS=<n>.
ITERATIONS = int(os.environ.get("REPRO_FUZZ_ITERATIONS", "200"))

#: Deliberately tiny frames: the shared engine simulates each unique
#: (device, scenario) pair once, so the whole fuzz run costs a handful of
#: frame simulations regardless of how many requests flow through.
SCENARIOS = (
    Scenario("instant-ngp", scene="lego", width=96, height=96),
    Scenario("instant-ngp", scene="mic", width=64, height=64),
    Scenario("tensorf", scene="lego", width=80, height=80),
)

#: A modelled ladder (qualities asserted, not measured): the fuzz suite
#: exercises the shedding *mechanics*, not the PSNR pricing.
LADDER = DegradationLadder(
    steps=(
        DegradationStep("half-samples", sample_scale=0.5),
        DegradationStep("half-res", resolution_scale=0.5),
        DegradationStep("quarter-res", resolution_scale=0.25),
    ),
    qualities=(0.9, 0.7, 0.5),
)

DEVICES = ("flexnerfer", "neurex")


@pytest.fixture(scope="module")
def engine():
    """One engine for the whole module so frame simulations are cached."""
    return SweepEngine()


def random_fifo_config(rng):
    """Draw one randomized fast-path-compatible serving configuration."""
    fleet = tuple(rng.choice(DEVICES) for _ in range(rng.randint(1, 3)))
    count = rng.randint(1, len(SCENARIOS))
    mix = ScenarioMix(
        scenarios=tuple(rng.sample(SCENARIOS, count)),
        weights=tuple(rng.uniform(0.5, 3.0) for _ in range(count)),
    )
    sla = rng.uniform(0.05, 0.5) if rng.random() < 0.7 else None
    stream = PoissonStream(
        rate_rps=rng.uniform(20.0, 150.0),
        duration_s=rng.uniform(0.5, 2.0),
        mix=mix,
        sla_s=sla,
    )
    requests = stream.generate(seed=rng.randint(0, 2**31))
    admission = rng.choice(
        (
            None,
            QueueCapAdmission(max_queue=rng.randint(1, 12)),
            TokenBucketAdmission(
                rate_rps=rng.uniform(5.0, 60.0), burst=rng.uniform(1.0, 8.0)
            ),
        )
    )
    shedder = (
        QueueDepthShedder(LADDER, depth_per_step=rng.randint(1, 6))
        if rng.random() < 0.5
        else None
    )
    control = (
        ControlConfig(admission=admission, shedder=shedder)
        if admission is not None or shedder is not None
        else None
    )
    return fleet, requests, control


def assert_invariants(report, requests):
    """The structural properties every serving report must satisfy."""
    # Conservation: offered == completed + rejected, as a partition of ids.
    assert report.num_requests == len(requests)
    assert report.completed_requests + report.rejected_requests == len(requests)
    completed_ids = [c.request.request_id for c in report.completed]
    rejected_ids = [r.request.request_id for r in report.rejected]
    assert completed_ids == sorted(completed_ids)
    assert rejected_ids == sorted(rejected_ids)
    assert sorted(completed_ids + rejected_ids) == [
        r.request_id for r in sorted(requests, key=lambda r: r.request_id)
    ]
    # Causality: start after arrival, finish after start.
    for completion in report.completed:
        assert completion.start_s >= completion.request.arrival_s
        assert completion.finish_s >= completion.start_s
        assert completion.wait_s >= 0.0
        assert completion.latency_s >= completion.wait_s
        assert 0 <= completion.shed_level <= LADDER.depth
        assert completion.quality == LADDER.quality_of(completion.shed_level)
    for rejection in report.rejected:
        assert rejection.time_s == rejection.request.arrival_s
        assert rejection.reason
    # Aggregates match the raw completion log exactly.
    if report.completed:
        latencies = [c.latency_s for c in report.completed]
        qualities = [c.quality for c in report.completed]
        assert report.p50_latency_s == percentile(latencies, 50.0)
        assert report.p95_latency_s == percentile(latencies, 95.0)
        assert report.p99_latency_s == percentile(latencies, 99.0)
        assert report.p50_quality == percentile(sorted(qualities), 50.0)
        assert report.p05_quality == percentile(sorted(qualities), 5.0)
        assert report.shed_requests == sum(1 for c in report.completed if c.shed_level)
        assert report.met_deadline_requests == sum(
            1 for c in report.completed if c.met_deadline
        )
    else:
        assert report.p95_latency_s == 0.0
        assert report.mean_quality == 1.0
    assert 0.0 <= report.slo_attainment <= 1.0
    assert report.slo_attainment <= report.sla_attainment


class TestDifferentialFuzz:
    """Fast path vs event loop, over the full randomized config budget."""

    def test_fast_path_matches_event_loop_on_random_configs(self, engine):
        rng = random.Random(SEED)
        for index in range(ITERATIONS):
            fleet, requests, control = random_fifo_config(rng)
            simulator = FleetSimulator(
                fleet, scheduler=FIFOScheduler(), engine=engine, control=control
            )
            context = f"config #{index}: fleet={fleet} control={control}"
            fast = assert_fast_path_matches_event_loop(
                simulator, requests, context
            )
            assert_invariants(fast, requests)
            if index % 10 == 0:
                # Repeat-run determinism: fresh simulator, fresh admission
                # session state, bit-identical report.
                again = FleetSimulator(
                    fleet, scheduler=FIFOScheduler(), engine=engine, control=control
                ).run(requests)
                assert again == fast, context
                assert again.completed == fast.completed, context


class TestAutoscalerProperties:
    """Event-loop-only invariants for autoscaled fleets."""

    def test_autoscaled_runs_conserve_and_reproduce(self, engine):
        rng = random.Random(SEED + 1)
        for index in range(max(20, ITERATIONS // 10)):
            fleet, requests, base = random_fifo_config(rng)
            pool = tuple(rng.choice(DEVICES) for _ in range(rng.randint(2, 4)))
            control = ControlConfig(
                admission=base.admission if base else None,
                shedder=base.shedder if base else None,
                autoscaler=QueueDepthAutoscaler(
                    scale_out_depth=rng.randint(1, 6),
                    min_workers=1,
                    max_workers=len(pool),
                ),
                tick_s=rng.uniform(0.01, 0.1),
                provision_delay_s=rng.uniform(0.0, 0.5),
            )
            simulator = FleetSimulator(
                pool, scheduler=FIFOScheduler(), engine=engine, control=control
            )
            report = simulator.run(requests)
            context = f"config #{index}: pool={pool}"
            assert_invariants(report, requests)
            assert 1 <= report.peak_active_workers <= len(pool), context
            assert 0.0 < report.mean_active_workers <= len(pool), context
            again = FleetSimulator(
                pool, scheduler=FIFOScheduler(), engine=engine, control=control
            ).run(requests)
            assert again == report, context
            assert again.completed == report.completed, context
            assert again.rejected == report.rejected, context

"""The batched FIFO fast path is bit-identical to the event loop.

``FleetSimulator.run`` routes plain-FIFO fleets through
``_run_fifo_batched``; every other scheduler keeps the discrete-event
loop.  These tests pin the equivalence contract: for every fleet shape,
load level and SLA configuration, the fast path's ``ServingReport`` --
including the per-completion log and per-worker stats -- equals the event
loop's report exactly (frozen-dataclass equality, which compares IEEE-754
doubles bit for bit).
"""

import pytest

from repro.serve.fleet import FleetSimulator
from repro.serve.request import PoissonStream, Scenario, ScenarioMix, TraceStream
from repro.serve.scheduler import BatchDeadlineScheduler, FIFOScheduler
from repro.sim.sweep import SweepEngine

MIX = ScenarioMix(
    scenarios=(
        Scenario("instant-ngp", scene="lego", width=200, height=200),
        Scenario("tensorf", scene="lego", width=200, height=200),
    ),
    weights=(3.0, 1.0),
)


def assert_reports_identical(simulator, requests):
    fast = simulator.run(requests)
    slow = simulator._run_event_loop(requests)
    assert fast == slow
    assert fast.completed == slow.completed
    assert fast.workers == slow.workers
    return fast


class TestFastPathEquivalence:
    def test_single_worker(self):
        stream = PoissonStream(rate_rps=60.0, duration_s=5.0, mix=MIX, sla_s=0.2)
        simulator = FleetSimulator(("flexnerfer",), engine=SweepEngine())
        assert_reports_identical(simulator, stream.generate(seed=0))

    def test_heterogeneous_duo(self):
        stream = PoissonStream(rate_rps=80.0, duration_s=5.0, mix=MIX, sla_s=0.25)
        simulator = FleetSimulator(("flexnerfer", "neurex"), engine=SweepEngine())
        assert_reports_identical(simulator, stream.generate(seed=3))

    def test_repeated_device_trio(self):
        stream = PoissonStream(rate_rps=120.0, duration_s=4.0, mix=MIX, sla_s=0.3)
        simulator = FleetSimulator(
            ("flexnerfer", "flexnerfer", "neurex"), engine=SweepEngine()
        )
        assert_reports_identical(simulator, stream.generate(seed=7))

    def test_overload_queue_drain(self):
        # Far more offered load than the fleet can serve: queues build and
        # drain long after the last arrival, exercising the argmin branch.
        stream = PoissonStream(rate_rps=400.0, duration_s=2.0, mix=MIX, sla_s=0.1)
        simulator = FleetSimulator(("flexnerfer",), engine=SweepEngine())
        report = assert_reports_identical(simulator, stream.generate(seed=1))
        assert report.sla_attainment < 1.0

    def test_default_sla_stamping(self):
        stream = PoissonStream(rate_rps=60.0, duration_s=4.0, mix=MIX, sla_s=None)
        simulator = FleetSimulator(
            ("flexnerfer", "neurex"), engine=SweepEngine(), default_sla_s=0.2
        )
        assert_reports_identical(simulator, stream.generate(seed=2))

    def test_nonzero_time_origin(self):
        stream = TraceStream(
            arrival_times_s=(10.0, 10.0, 10.5, 12.0, 12.0, 12.0),
            mix=MIX,
            sla_s=0.3,
        )
        simulator = FleetSimulator(("flexnerfer", "neurex"), engine=SweepEngine())
        assert_reports_identical(simulator, stream.generate(seed=0))

    def test_empty_stream(self):
        simulator = FleetSimulator(("flexnerfer",), engine=SweepEngine())
        assert_reports_identical(simulator, ())

    def test_fast_path_actually_selected_for_fifo(self, monkeypatch):
        stream = PoissonStream(rate_rps=40.0, duration_s=2.0, mix=MIX, sla_s=0.2)
        simulator = FleetSimulator(("flexnerfer",), engine=SweepEngine())

        def bomb(requests):  # pragma: no cover - must not run
            raise AssertionError("FIFO fleet fell back to the event loop")

        monkeypatch.setattr(simulator, "_run_event_loop", bomb)
        report = simulator.run(stream.generate(seed=0))
        assert report.scheduler == "fifo"

    def test_non_fifo_scheduler_uses_event_loop(self, monkeypatch):
        stream = PoissonStream(rate_rps=40.0, duration_s=2.0, mix=MIX, sla_s=0.2)
        simulator = FleetSimulator(
            ("flexnerfer",),
            scheduler=BatchDeadlineScheduler(max_batch=4),
            engine=SweepEngine(),
        )

        def bomb(requests):  # pragma: no cover - must not run
            raise AssertionError("non-FIFO fleet took the FIFO fast path")

        monkeypatch.setattr(simulator, "_run_fifo_batched", bomb)
        simulator.run(stream.generate(seed=0))

    def test_fifo_subclass_uses_event_loop(self, monkeypatch):
        # The fast path replicates FIFOScheduler.assign exactly; a subclass
        # may override policy, so only the exact class is fast-pathed.
        class TweakedFIFO(FIFOScheduler):
            pass

        stream = PoissonStream(rate_rps=40.0, duration_s=2.0, mix=MIX, sla_s=0.2)
        simulator = FleetSimulator(
            ("flexnerfer",), scheduler=TweakedFIFO(), engine=SweepEngine()
        )

        def bomb(requests):  # pragma: no cover - must not run
            raise AssertionError("FIFO subclass took the FIFO fast path")

        monkeypatch.setattr(simulator, "_run_fifo_batched", bomb)
        simulator.run(stream.generate(seed=0))

"""Unit tests for the overload-control policies and their report edges.

Covers the pure policy math of :mod:`repro.serve.control` (token-bucket
refill, queue caps, shedding levels, autoscaler hysteresis and clamping,
degradation-step pricing arithmetic) plus the report-shape regressions the
control plane exposed: an admission policy can reject *every* request, so
``ServingReport`` must produce a well-defined report with zero completions
-- the empty-percentile / div-by-zero edge pinned here on both simulator
paths.
"""

import math

import pytest

from repro.serve.control import (
    AdmissionPolicy,
    AdmissionSession,
    ControlConfig,
    DegradationLadder,
    DegradationStep,
    FleetSnapshot,
    LatencyTargetAutoscaler,
    QueueCapAdmission,
    QueueDepthAutoscaler,
    QueueDepthShedder,
    TokenBucketAdmission,
    quality_from_psnr,
)
from repro.serve.fleet import FleetSimulator
from repro.serve.request import PoissonStream, Scenario, ScenarioMix
from repro.serve.scheduler import FIFOScheduler
from repro.sim.sweep import SweepEngine
from repro.sparse.formats import Precision

MIX = ScenarioMix(scenarios=(Scenario("instant-ngp", width=96, height=96),))

LADDER = DegradationLadder(
    steps=(
        DegradationStep("half-res", resolution_scale=0.5),
        DegradationStep("quarter-res", resolution_scale=0.25),
    ),
    qualities=(0.8, 0.5),
)


def snapshot(queue_depth=0, active=2, busy=2, pool=4, p95=None, now=1.0):
    return FleetSnapshot(
        now=now,
        queue_depth=queue_depth,
        active_workers=active,
        busy_workers=busy,
        pool_size=pool,
        recent_p95_s=p95,
    )


class TestTokenBucket:
    def test_burst_then_refill(self):
        session = TokenBucketAdmission(rate_rps=2.0, burst=2.0).session()
        # Bucket starts full: two immediate admits, the third is rejected.
        assert session.admit(0.0, queue_depth=0)
        assert session.admit(0.0, queue_depth=0)
        assert not session.admit(0.0, queue_depth=0)
        # 0.5 s at 2 tokens/s refills exactly one token.
        assert session.admit(0.5, queue_depth=0)
        assert not session.admit(0.5, queue_depth=0)

    def test_refill_caps_at_burst(self):
        session = TokenBucketAdmission(rate_rps=10.0, burst=1.0).session()
        assert session.admit(0.0, queue_depth=0)
        # A long gap refills to the burst cap, not beyond it.
        assert session.admit(100.0, queue_depth=0)
        assert not session.admit(100.0, queue_depth=0)

    def test_sessions_are_independent(self):
        policy = TokenBucketAdmission(rate_rps=1.0, burst=1.0)
        first = policy.session()
        assert first.admit(0.0, queue_depth=0)
        assert not first.admit(0.0, queue_depth=0)
        # A fresh session starts with a full bucket again.
        assert policy.session().admit(0.0, queue_depth=0)

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucketAdmission(rate_rps=0.0)
        with pytest.raises(ValueError):
            TokenBucketAdmission(rate_rps=1.0, burst=0.5)


class TestQueueCap:
    def test_caps_on_observed_depth(self):
        session = QueueCapAdmission(max_queue=2).session()
        assert session.admit(0.0, queue_depth=0)
        assert session.admit(0.0, queue_depth=1)
        assert not session.admit(0.0, queue_depth=2)
        # Stateless: a drained queue admits again.
        assert session.admit(1.0, queue_depth=1)

    def test_validation(self):
        with pytest.raises(ValueError):
            QueueCapAdmission(max_queue=0)


class TestShedder:
    def test_level_quantizes_backlog_per_worker(self):
        shedder = QueueDepthShedder(LADDER, depth_per_step=4)
        assert shedder.level(queue_depth=0, active_workers=1) == 0
        assert shedder.level(queue_depth=3, active_workers=1) == 0
        assert shedder.level(queue_depth=4, active_workers=1) == 1
        assert shedder.level(queue_depth=8, active_workers=1) == 2
        # Saturates at the ladder depth.
        assert shedder.level(queue_depth=400, active_workers=1) == LADDER.depth
        # Backlog is per active worker.
        assert shedder.level(queue_depth=8, active_workers=2) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            QueueDepthShedder(LADDER, depth_per_step=0)


class TestLadder:
    def test_quality_of_levels(self):
        assert LADDER.depth == 2
        assert LADDER.quality_of(0) == 1.0
        assert LADDER.quality_of(1) == 0.8
        assert LADDER.quality_of(2) == 0.5

    def test_step_apply_scales_resolution_and_overrides_knobs(self):
        scenario = Scenario("instant-ngp", width=400, height=300)
        step = DegradationStep(
            "int8-half", resolution_scale=0.5, precision=Precision.INT8
        )
        degraded = step.apply(scenario)
        assert (degraded.width, degraded.height) == (200, 150)
        assert degraded.precision is Precision.INT8
        # Unset knobs pass through.
        assert degraded.model == scenario.model
        assert degraded.pruning_ratio == scenario.pruning_ratio

    def test_sample_scale_prices_as_equivalent_resolution(self):
        step = DegradationStep("half-samples", sample_scale=0.5)
        assert step.work_scale == pytest.approx(math.sqrt(0.5))
        degraded = step.apply(Scenario("instant-ngp", width=100, height=100))
        assert degraded.width == round(100 * math.sqrt(0.5))

    def test_validation(self):
        with pytest.raises(ValueError):
            DegradationLadder(steps=(), qualities=())
        with pytest.raises(ValueError):
            DegradationLadder(steps=LADDER.steps, qualities=(0.8,))
        with pytest.raises(ValueError):
            DegradationLadder(steps=LADDER.steps, qualities=(0.8, 1.5))
        with pytest.raises(ValueError):
            DegradationStep("bad", resolution_scale=0.0)
        with pytest.raises(ValueError):
            DegradationStep("bad", sample_scale=1.5)

    def test_quality_from_psnr(self):
        assert quality_from_psnr(40.0) == 1.0
        assert quality_from_psnr(math.inf) == 1.0
        assert quality_from_psnr(20.0) == 0.5


class TestAutoscalers:
    def test_queue_depth_hysteresis(self):
        policy = QueueDepthAutoscaler(scale_out_depth=4, scale_in_depth=0)
        # Deep backlog (>= 4 per active worker) scales out by one.
        assert policy.desired_workers(snapshot(queue_depth=8, active=2)) == 3
        # Drained queue with an idle worker scales in by one.
        assert policy.desired_workers(snapshot(queue_depth=0, active=2, busy=1)) == 1
        # Drained queue but everyone busy: hold.
        assert policy.desired_workers(snapshot(queue_depth=0, active=2, busy=2)) == 2
        # Moderate backlog: hold.
        assert policy.desired_workers(snapshot(queue_depth=5, active=2)) == 2

    def test_latency_target_hysteresis(self):
        policy = LatencyTargetAutoscaler(target_p95_s=0.2, low_fraction=0.5)
        # No completions observed yet: hold.
        assert policy.desired_workers(snapshot(active=2, p95=None)) == 2
        assert policy.desired_workers(snapshot(active=2, p95=0.3)) == 3
        assert policy.desired_workers(snapshot(active=2, busy=1, p95=0.05)) == 1
        # Inside the hysteresis band: hold.
        assert policy.desired_workers(snapshot(active=2, busy=1, p95=0.15)) == 2

    def test_clamp_respects_pool_and_bounds(self):
        policy = QueueDepthAutoscaler(min_workers=2, max_workers=5)
        assert policy.clamp(0, pool_size=8) == 2
        assert policy.clamp(7, pool_size=8) == 5
        assert policy.clamp(7, pool_size=4) == 4
        assert policy.clamp(3, pool_size=8) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            QueueDepthAutoscaler(min_workers=0)
        with pytest.raises(ValueError):
            QueueDepthAutoscaler(min_workers=3, max_workers=2)
        with pytest.raises(ValueError):
            QueueDepthAutoscaler(scale_out_depth=0)
        with pytest.raises(ValueError):
            LatencyTargetAutoscaler(target_p95_s=0.0)
        with pytest.raises(ValueError):
            LatencyTargetAutoscaler(low_fraction=1.0)


class TestControlConfig:
    def test_fast_path_compatibility(self):
        assert ControlConfig(admission=QueueCapAdmission(3)).fast_path_compatible
        assert not ControlConfig(
            autoscaler=QueueDepthAutoscaler()
        ).fast_path_compatible

    def test_active(self):
        assert not ControlConfig().active
        assert ControlConfig(shedder=QueueDepthShedder(LADDER)).active


class _RejectAllSession(AdmissionSession):
    reason = "closed"

    def admit(self, now, queue_depth):
        return False


class _RejectAll(AdmissionPolicy):
    """Degenerate policy: the service is closed, everyone is turned away."""

    def session(self):
        return _RejectAllSession()


class TestEmptyReportRegression:
    """Zero completions must still produce a well-defined report.

    An admission policy can reject *every* offered request; historically
    ``ServingReport`` assumed at least one completion (percentiles over an
    empty log, offered load over an empty arrival span).  Pin the exact
    empty-report shape, identically on both simulator paths.
    """

    def test_all_rejected_report_shape(self):
        stream = PoissonStream(rate_rps=40.0, duration_s=2.0, mix=MIX, sla_s=0.2)
        requests = stream.generate(seed=0)
        control = ControlConfig(admission=_RejectAll())
        simulator = FleetSimulator(
            ("flexnerfer",),
            scheduler=FIFOScheduler(),
            engine=SweepEngine(),
            control=control,
        )
        fast = simulator.run(requests)
        slow = simulator._run_event_loop(requests)
        assert fast == slow
        assert fast.rejected == slow.rejected
        assert fast.num_requests == len(requests)
        assert fast.completed_requests == 0
        assert fast.rejected_requests == len(requests)
        assert {r.reason for r in fast.rejected} == {"closed"}
        # The percentile / mean edge: all-zero latencies, full quality.
        assert fast.p50_latency_s == 0.0
        assert fast.p95_latency_s == 0.0
        assert fast.p99_latency_s == 0.0
        assert fast.mean_latency_s == 0.0
        assert fast.mean_quality == 1.0
        assert fast.p05_quality == 1.0
        # Offered load is measured over the *offered* arrival span, so it
        # stays honest even though nothing completed.
        assert fast.offered_rps > 0.0
        assert fast.goodput_rps == 0.0
        assert fast.sla_attainment == 1.0  # conditions on completions
        assert fast.slo_attainment == 0.0  # conditions on offered load
        assert fast.makespan_s == 0.0

    def test_empty_stream_report(self):
        simulator = FleetSimulator(
            ("flexnerfer",), scheduler=FIFOScheduler(), engine=SweepEngine()
        )
        report = simulator.run(())
        assert report == simulator._run_event_loop(())
        assert report.num_requests == 0
        assert report.slo_attainment == 1.0
        assert report.mean_quality == 1.0

"""Trace importer: strict validation, fixtures, CLI exit codes.

:func:`~repro.serve.traffic.load_trace` is the front door for real serving
logs, so every malformed input must fail loudly with a located
``path:line:`` message -- and surface as an exit-2 one-liner through
``repro trace``.  This suite pins the rule book on both formats, checks
the committed example fixtures parse to the documented summaries, and
exercises the CLI surface (default summary, ``--summarize``,
``--to-json``, flag mutual exclusion).
"""

from pathlib import Path

import pytest

from repro.experiments.cli import main
from repro.serve.request import Request, Scenario
from repro.serve.traffic import (
    CSV_COLUMNS,
    TraceFormatError,
    dump_trace,
    load_trace,
    trace_to_jsonl,
)
from repro.sparse.formats import Precision

FIXTURES = Path(__file__).resolve().parents[2] / "examples" / "traces"
CSV_FIXTURE = FIXTURES / "sample-serving-log.csv"
JSONL_FIXTURE = FIXTURES / "sample-serving-log.jsonl"


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def write(tmp_path, name, text):
    path = tmp_path / name
    path.write_text(text)
    return path


class TestFixtures:
    """The committed example traces parse to their documented shape."""

    def test_csv_fixture_summary(self):
        trace = load_trace(CSV_FIXTURE)
        summary = trace.summary()
        assert trace.format == "csv"
        assert summary["requests"] == 12
        assert summary["with_deadline"] == 12
        assert summary["pinned"] == 0
        assert summary["sessions"] == 0
        assert summary["tenants"] == {"batch": 3, "free": 3, "studio": 6}
        assert summary["first_arrival_s"] == 0.0
        assert summary["last_arrival_s"] == 0.614
        assert sum(s["count"] for s in summary["scenarios"]) == 12

    def test_jsonl_fixture_summary(self):
        trace = load_trace(JSONL_FIXTURE)
        summary = trace.summary()
        assert trace.format == "jsonl"
        assert summary["requests"] == 10
        assert summary["pinned"] == 4
        assert summary["sessions"] == 2
        assert summary["with_deadline"] == 9
        assert summary["tenants"] == {"batch": 1, "free": 1}
        # Session frames carry full pose tuples.
        posed = [r for r in trace.requests if r.pose is not None]
        assert len(posed) == 8
        assert posed[0].pose == (0.0, 30.0, 4.0)

    def test_fixture_roundtrips_losslessly(self, tmp_path):
        """Acceptance pin: `repro trace` round-trips the sample fixture."""
        for fixture, suffix in ((CSV_FIXTURE, ".csv"), (JSONL_FIXTURE, ".jsonl")):
            trace = load_trace(fixture)
            copy = tmp_path / f"copy{suffix}"
            dump_trace(trace.requests, copy)
            assert load_trace(copy).requests == trace.requests, fixture.name

    def test_fixture_stream_replays_verbatim(self):
        trace = load_trace(JSONL_FIXTURE)
        stream = trace.stream()
        assert stream.generate(seed=0) == trace.requests
        assert stream.generate(seed=123) == trace.requests


class TestCSVValidation:
    def load_error(self, tmp_path, text, name="t.csv"):
        with pytest.raises(TraceFormatError) as exc:
            load_trace(write(tmp_path, name, text))
        return str(exc.value)

    def test_unknown_column(self, tmp_path):
        message = self.load_error(tmp_path, "timestamp,model,latency\n")
        assert ":1: unknown column(s) ['latency']" in message

    def test_missing_required_column(self, tmp_path):
        message = self.load_error(tmp_path, "timestamp,scene\n0.0,lego\n")
        assert "missing required column(s) ['model']" in message

    def test_duplicate_column(self, tmp_path):
        message = self.load_error(tmp_path, "timestamp,model,model\n")
        assert "duplicate column in header" in message

    def test_cell_count_mismatch(self, tmp_path):
        message = self.load_error(tmp_path, "timestamp,model\n0.0,instant-ngp,extra\n")
        assert ":2: expected 2 cells, got 3" in message

    def test_bad_timestamp(self, tmp_path):
        message = self.load_error(tmp_path, "timestamp,model\nsoon,instant-ngp\n")
        assert ":2: timestamp is not a number: 'soon'" in message

    def test_negative_timestamp(self, tmp_path):
        message = self.load_error(tmp_path, "timestamp,model\n-1.0,instant-ngp\n")
        assert "timestamp must be non-negative" in message

    def test_missing_required_value(self, tmp_path):
        message = self.load_error(tmp_path, "timestamp,model\n0.5,\n")
        assert "missing required field 'model'" in message

    def test_unknown_precision(self, tmp_path):
        message = self.load_error(
            tmp_path, "timestamp,model,precision\n0.0,instant-ngp,fp97\n"
        )
        assert "unknown precision 'fp97'" in message
        assert "expected one of" in message

    def test_deadline_before_timestamp(self, tmp_path):
        message = self.load_error(
            tmp_path, "timestamp,model,deadline_s\n2.0,instant-ngp,1.5\n"
        )
        assert "deadline_s (1.5) precedes timestamp (2)" in message

    def test_negative_session(self, tmp_path):
        message = self.load_error(
            tmp_path, "timestamp,model,session\n0.0,instant-ngp,-2\n"
        )
        assert "session must be non-negative" in message

    def test_invalid_resolution(self, tmp_path):
        message = self.load_error(
            tmp_path, "timestamp,model,width\n0.0,instant-ngp,0\n"
        )
        assert "resolution must be positive" in message

    def test_out_of_order_timestamps(self, tmp_path):
        message = self.load_error(
            tmp_path, "timestamp,model\n1.0,instant-ngp\n0.5,instant-ngp\n"
        )
        assert "timestamps must be non-decreasing" in message

    def test_empty_file(self, tmp_path):
        message = self.load_error(tmp_path, "")
        assert "empty trace file" in message

    def test_header_only(self, tmp_path):
        message = self.load_error(tmp_path, "timestamp,model\n")
        assert "trace contains no records" in message

    def test_blank_rows_are_skipped(self, tmp_path):
        trace = load_trace(
            write(tmp_path, "t.csv", "timestamp,model\n0.0,instant-ngp\n\n  ,\n")
        )
        assert len(trace.requests) == 1


class TestJSONLValidation:
    def load_error(self, tmp_path, text, name="t.jsonl"):
        with pytest.raises(TraceFormatError) as exc:
            load_trace(write(tmp_path, name, text))
        return str(exc.value)

    def test_invalid_json(self, tmp_path):
        message = self.load_error(tmp_path, "{not json}\n")
        assert ":1: invalid JSON" in message

    def test_non_object_line(self, tmp_path):
        message = self.load_error(tmp_path, "[1, 2]\n")
        assert "each line must be a JSON object" in message

    def test_unknown_key(self, tmp_path):
        message = self.load_error(
            tmp_path, '{"timestamp": 0.0, "model": "x", "latency": 1}\n'
        )
        assert "unknown key(s) ['latency']" in message

    def test_degradable_must_be_boolean(self, tmp_path):
        message = self.load_error(
            tmp_path, '{"timestamp": 0.0, "model": "x", "degradable": "no"}\n'
        )
        assert "degradable must be a JSON boolean" in message

    def test_malformed_pose(self, tmp_path):
        for pose in ("[1, 2]", "[1, 2, true]", '"north"'):
            message = self.load_error(
                tmp_path, '{"timestamp": 0.0, "model": "x", "pose": %s}\n' % pose
            )
            assert "pose must be a 3-element number array" in message

    def test_boolean_timestamp_rejected(self, tmp_path):
        message = self.load_error(
            tmp_path, '{"timestamp": true, "model": "x"}\n'
        )
        assert "timestamp is not a number" in message

    def test_fractional_session_rejected(self, tmp_path):
        message = self.load_error(
            tmp_path, '{"timestamp": 0.0, "model": "x", "session": 1.5}\n'
        )
        assert "session is not an integer" in message

    def test_blank_lines_are_skipped(self, tmp_path):
        trace = load_trace(
            write(tmp_path, "t.jsonl", '\n{"timestamp": 0.0, "model": "x"}\n\n')
        )
        assert len(trace.requests) == 1


class TestLoadDump:
    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceFormatError, match="no such trace file"):
            load_trace(tmp_path / "absent.csv")

    def test_unsupported_suffix(self, tmp_path):
        path = write(tmp_path, "t.parquet", "x")
        with pytest.raises(TraceFormatError, match="unsupported trace format"):
            load_trace(path)
        with pytest.raises(TraceFormatError, match="unsupported trace format"):
            dump_trace((), tmp_path / "out.parquet")

    def test_csv_refuses_jsonl_only_fields(self, tmp_path):
        pinned = Request(
            request_id=0,
            arrival_s=0.0,
            scenario=Scenario("instant-ngp"),
            degradable=False,
        )
        with pytest.raises(TraceFormatError, match="write a .jsonl trace instead"):
            dump_trace((pinned,), tmp_path / "out.csv")

    def test_defaults_are_elided_and_restored(self, tmp_path):
        """A minimal request writes a minimal record and loads identically."""
        request = Request(
            request_id=0, arrival_s=1.5, scenario=Scenario("instant-ngp")
        )
        text = trace_to_jsonl((request,))
        assert "precision" not in text
        assert "degradable" not in text
        path = write(tmp_path, "t.jsonl", text)
        assert load_trace(path).requests == (request,)

    def test_precision_roundtrips_by_name(self, tmp_path):
        request = Request(
            request_id=0,
            arrival_s=0.0,
            scenario=Scenario("instant-ngp", precision=Precision.INT8),
        )
        for suffix in (".csv", ".jsonl"):
            path = tmp_path / f"t{suffix}"
            dump_trace((request,), path)
            assert load_trace(path).requests == (request,)

    def test_csv_columns_constant_matches_writer(self, tmp_path):
        request = Request(
            request_id=0, arrival_s=0.0, scenario=Scenario("instant-ngp")
        )
        path = tmp_path / "t.csv"
        dump_trace((request,), path)
        header = path.read_text().splitlines()[0]
        assert header == ",".join(CSV_COLUMNS)


class TestCLI:
    """`repro trace`: summaries, JSON re-export, exit-2 one-liners."""

    def assert_one_liner(self, code, err, fragment):
        assert code == 2
        assert err.startswith("error:")
        assert err.count("\n") == 1
        assert fragment in err

    def test_default_summary(self, capsys):
        code, out, err = run_cli(capsys, "trace", str(CSV_FIXTURE))
        assert code == 0 and err == ""
        assert "12 requests" in out
        assert "csv" in out

    def test_summarize_tables(self, capsys):
        code, out, _ = run_cli(capsys, "trace", str(CSV_FIXTURE), "--summarize")
        assert code == 0
        assert "scenario" in out and "share" in out
        assert "tenant" in out and "studio" in out

    def test_to_json_roundtrips(self, capsys, tmp_path):
        code, out, _ = run_cli(capsys, "trace", str(CSV_FIXTURE), "--to-json")
        assert code == 0
        path = tmp_path / "reexport.jsonl"
        path.write_text(out)
        assert load_trace(path).requests == load_trace(CSV_FIXTURE).requests

    def test_missing_file_exits_2(self, capsys, tmp_path):
        code, _, err = run_cli(capsys, "trace", str(tmp_path / "nope.csv"))
        self.assert_one_liner(code, err, "no such trace file")

    def test_malformed_trace_exits_2(self, capsys, tmp_path):
        path = write(tmp_path, "bad.csv", "timestamp,model\nxyz,instant-ngp\n")
        code, _, err = run_cli(capsys, "trace", str(path))
        self.assert_one_liner(code, err, "timestamp is not a number")

    def test_missing_operand_exits_2(self, capsys):
        code, _, err = run_cli(capsys, "trace")
        self.assert_one_liner(code, err, "exactly one trace file")

    def test_mutually_exclusive_flags_exit_2(self, capsys):
        code, _, err = run_cli(
            capsys, "trace", str(CSV_FIXTURE), "--summarize", "--to-json"
        )
        self.assert_one_liner(code, err, "mutually exclusive")

    def test_listed_in_help(self, capsys):
        code, out, _ = run_cli(capsys, "help")
        assert code == 0
        assert "trace" in out

"""End-to-end tests for the serve-* experiments and their determinism.

The acceptance bar for the serving layer: `repro run tag:serving` executes
every serving experiment, and the reference Poisson mix's p50/p95/p99 are
reproducible across repeated runs and across `--jobs` settings.
"""

import json

import pytest

from repro.experiments import (
    EXPERIMENTS,
    experiments_by_tag,
    get_experiment,
    run_experiment,
)
from repro.experiments.cli import main, run_many

SERVING_IDS = (
    "serve-latency-sla",
    "serve-fleet-mix",
    "serve-batch-policy",
    "serve-overload-sla",
    "serve-autoscale",
    "serve-quality-shed",
    "serve-flash-crowd",
    "serve-multi-tenant",
    "serve-interactive",
)

#: Quick-turnaround overrides so the determinism tests stay snappy.
QUICK = {
    "serve-latency-sla": {"rates": (10.0, 25.0), "duration_s": 10.0},
    "serve-fleet-mix": {"duration_s": 10.0},
    "serve-batch-policy": {"max_batches": (1, 8), "duration_s": 10.0},
    "serve-overload-sla": {"rates": (20.0, 50.0), "duration_s": 8.0},
    "serve-autoscale": {"duration_s": 20.0},
    "serve-quality-shed": {"depths": (8, 2), "duration_s": 8.0},
    "serve-flash-crowd": {"burst_rates": (60.0,), "duration_s": 8.0},
    "serve-multi-tenant": {"duration_s": 8.0},
    "serve-interactive": {"sessions": (4, 10), "frames": 25},
}


def _tail_metrics(result):
    """The latency/goodput numbers a regression would disturb."""
    return [
        {
            key: row[key]
            for key in row
            if key.endswith("_ms") or key in ("goodput_rps", "sla_attainment")
        }
        for row in result.rows
    ]


class TestRegistration:
    def test_serving_tag_selects_all_nine(self):
        assert [e.id for e in experiments_by_tag("serving")] == list(SERVING_IDS)

    @pytest.mark.parametrize("exp_id", SERVING_IDS)
    def test_registered_with_typed_params(self, exp_id):
        exp = EXPERIMENTS[exp_id]
        assert exp.params, f"{exp_id} should expose typed parameters"
        assert {"seed"} <= {p.name for p in exp.params}


class TestDeterminism:
    @pytest.mark.parametrize("exp_id", SERVING_IDS)
    def test_repeated_runs_are_identical(self, exp_id):
        first = run_experiment(exp_id, **QUICK[exp_id])
        second = run_experiment(exp_id, **QUICK[exp_id])
        assert first.rows == second.rows  # bit-identical percentiles et al.

    def test_results_identical_across_jobs_settings(self):
        experiments = [get_experiment(exp_id) for exp_id in SERVING_IDS]
        overrides = {exp_id: dict(QUICK[exp_id]) for exp_id in SERVING_IDS}
        serial = run_many(experiments, overrides, jobs=1)
        threaded = run_many(experiments, overrides, jobs=3)
        for a, b in zip(serial, threaded):
            assert a.rows == b.rows

    def test_reference_poisson_mix_percentiles_are_pinned(self):
        """Reference run: exact reproducibility contract for the paper mix.

        The values themselves are asserted self-consistent (monotone in
        load) rather than hard-coded; exact reproducibility is covered by
        comparing two independent executions, including fresh engines.
        """
        result = run_experiment("serve-latency-sla", rates=(10.0, 20.0, 30.0))
        rows = result.raw
        assert [p.rate_rps for p in rows] == [10.0, 20.0, 30.0]
        for lo, hi in zip(rows, rows[1:]):
            assert hi.p95_latency_ms >= lo.p95_latency_ms
        # Saturation: past the knee goodput collapses below the offered rate.
        assert rows[-1].goodput_rps < rows[-1].rate_rps * 0.5
        again = run_experiment("serve-latency-sla", rates=(10.0, 20.0, 30.0))
        assert result.rows == again.rows


class TestOverloadControl:
    """Acceptance bar for the overload-control PR.

    At >=2x a single device's capacity, admission control and quality
    shedding must each *strictly* improve SLO attainment over the
    uncontrolled baseline -- the headline claim of ``serve-overload-sla``.
    """

    def test_each_mechanism_strictly_improves_slo_at_2x_overload(self):
        result = run_experiment("serve-overload-sla", rates=(50.0,))
        by_mode = {point.mode: point for point in result.raw}
        baseline = by_mode["none"].slo_attainment
        for mode in ("queue-cap", "token-bucket", "shed", "cap+shed"):
            assert by_mode[mode].slo_attainment > baseline, mode
        # Shedding keeps everyone: it buys attainment with quality, not
        # rejections, so quality drops below the baseline's 1.0 instead.
        assert by_mode["shed"].rejected == 0
        assert by_mode["shed"].shed > 0
        assert by_mode["shed"].mean_quality < by_mode["none"].mean_quality
        # Admission keeps full quality and turns the excess away instead.
        assert by_mode["queue-cap"].rejected > 0
        assert by_mode["queue-cap"].mean_quality == 1.0
        # Offered requests are conserved in every mode.
        for point in result.raw:
            assert point.completed + point.rejected == point.num_requests


class TestScenarioLibrary:
    """Acceptance bar for the scenario-library experiments (this PR).

    Each new stream must *matter*: the study built on it has to show the
    effect the stream was designed to expose, not just run to completion.
    """

    def test_flash_crowd_control_rescues_burst_slo(self):
        result = run_experiment("serve-flash-crowd")
        by_cell = {(p.burst_rps, p.mode): p for p in result.raw}
        for burst in {p.burst_rps for p in result.raw}:
            none = by_cell[(burst, "none")]
            shed = by_cell[(burst, "shed")]
            assert shed.slo_attainment > none.slo_attainment, burst
            assert shed.mean_quality < 1.0  # attainment was bought with quality

    def test_multi_tenant_breaks_per_tenant_not_fleet_wide(self):
        result = run_experiment("serve-multi-tenant")
        by_cell = {(p.fleet, p.tenant): p for p in result.raw}
        small, big = "flexnerfer", "flexnerfer+neurex"
        # The undersized fleet fails the tight-SLA tenant specifically...
        assert by_cell[(small, "interactive")].slo_attainment < 0.5
        # ...while the relaxed-SLA batch tenant still looks healthy.
        assert by_cell[(small, "batch")].slo_attainment > 0.8
        # Adding the second device repairs every tenant's attainment.
        assert by_cell[(big, "interactive")].slo_attainment > 0.8
        for tenant in ("batch", "free"):
            assert by_cell[(big, tenant)].slo_attainment > 0.95, tenant

    def test_interactive_shedding_needs_the_degradable_flag(self):
        result = run_experiment("serve-interactive", sessions=(8,))
        by_mode = {p.mode: p for p in result.raw}
        # Shedding rescues overloaded sessions...
        assert by_mode["shed"].slo_attainment > by_mode["none"].slo_attainment
        assert by_mode["shed"].sessions_ok > by_mode["none"].sessions_ok
        # ...but only because the frames are degradable: pinning them
        # disarms the ladder and the collapse matches the uncontrolled run.
        assert by_mode["shed+pinned"].slo_attainment == pytest.approx(
            by_mode["none"].slo_attainment
        )
        assert by_mode["shed+pinned"].mean_quality == 1.0


class TestCLI:
    def test_run_tag_serving_json(self, capsys):
        code = main(
            [
                "run",
                "tag:serving",
                "--format",
                "json",
                "--duration-s",
                "8",
                "--rates",
                "10,25",
                "--max-batches",
                "1,8",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        payload = json.loads(out)
        assert [entry["experiment_id"] for entry in payload] == list(SERVING_IDS)
        for entry in payload:
            assert entry["rows"], f"{entry['experiment_id']} produced no rows"

    def test_seed_flag_changes_the_stream(self):
        base = run_experiment("serve-latency-sla", **QUICK["serve-latency-sla"])
        moved = run_experiment(
            "serve-latency-sla", seed=7, **QUICK["serve-latency-sla"]
        )
        assert base.rows != moved.rows

    def test_unknown_device_is_a_one_line_cli_error(self, capsys):
        code = main(["run", "serve-latency-sla", "--device", "nope"])
        err = capsys.readouterr().err
        assert code == 2
        assert err.startswith("error:") and "unknown device" in err

    def test_fleet_specs_validate(self, capsys):
        code = main(["run", "serve-fleet-mix", "--fleets", "flexnerfer+bogus"])
        err = capsys.readouterr().err
        assert code == 2
        assert "unknown device" in err


def test_tail_metrics_probe_covers_every_experiment():
    for exp_id in SERVING_IDS:
        result = run_experiment(exp_id, **QUICK[exp_id])
        metrics = _tail_metrics(result)
        assert metrics and all(metrics[0].keys())

"""Tests for scenario mixes and the seeded request-stream generators."""

import random

import pytest

from repro.serve.request import (
    DiurnalStream,
    PoissonStream,
    Request,
    Scenario,
    ScenarioMix,
    TraceStream,
)
from repro.sparse.formats import Precision

MIX = ScenarioMix(
    scenarios=(
        Scenario("instant-ngp", scene="lego", width=200, height=200),
        Scenario("tensorf", scene="mic", width=200, height=200),
    ),
    weights=(3.0, 1.0),
)


class TestScenario:
    def test_frame_config_round_trip(self):
        scenario = Scenario("instant-ngp", scene="mic", width=320, height=240)
        config = scenario.frame_config(batch_size=2048)
        assert (config.image_width, config.image_height) == (320, 240)
        assert config.scene_name == "mic"
        assert config.batch_size == 2048

    def test_label_encodes_knobs(self):
        scenario = Scenario(
            "instant-ngp", precision=Precision.INT8, pruning_ratio=0.5
        )
        assert scenario.label == "instant-ngp/lego@400x400/INT8/p0.5"

    def test_validation(self):
        with pytest.raises(ValueError):
            Scenario("nerf", width=0)
        with pytest.raises(ValueError):
            Scenario("nerf", pruning_ratio=1.0)


class TestScenarioMix:
    def test_weights_must_match(self):
        with pytest.raises(ValueError):
            ScenarioMix(scenarios=MIX.scenarios, weights=(1.0,))
        with pytest.raises(ValueError):
            ScenarioMix(scenarios=(), weights=None)
        with pytest.raises(ValueError):
            ScenarioMix(scenarios=MIX.scenarios, weights=(1.0, 0.0))

    def test_sampling_is_seed_deterministic(self):
        draws_a = [MIX.sample(random.Random(7)) for _ in range(5)]
        draws_b = [MIX.sample(random.Random(7)) for _ in range(5)]
        assert draws_a == draws_b


class TestPoissonStream:
    def test_same_seed_same_stream(self):
        stream = PoissonStream(50.0, 5.0, MIX, sla_s=0.1)
        assert stream.generate(seed=3) == stream.generate(seed=3)
        assert stream.generate(seed=3) != stream.generate(seed=4)

    def test_arrival_times_ordered_and_bounded(self):
        requests = PoissonStream(50.0, 5.0, MIX).generate(seed=0)
        times = [r.arrival_s for r in requests]
        assert times == sorted(times)
        assert all(0.0 <= t < 5.0 for t in times)
        # ~250 expected arrivals; allow generous slack.
        assert 150 < len(requests) < 400

    def test_sla_stamps_absolute_deadlines(self):
        requests = PoissonStream(20.0, 2.0, MIX, sla_s=0.25).generate(seed=0)
        assert all(r.deadline_s == r.arrival_s + 0.25 for r in requests)
        no_sla = PoissonStream(20.0, 2.0, MIX).generate(seed=0)
        assert all(r.deadline_s is None for r in no_sla)

    def test_request_ids_are_sequential(self):
        requests = PoissonStream(30.0, 2.0, MIX).generate(seed=1)
        assert [r.request_id for r in requests] == list(range(len(requests)))

    def test_validation(self):
        with pytest.raises(ValueError):
            PoissonStream(0.0, 5.0, MIX)
        with pytest.raises(ValueError):
            PoissonStream(10.0, 5.0, MIX, sla_s=0.0)


class TestDiurnalStream:
    def test_rate_envelope(self):
        stream = DiurnalStream(5.0, 30.0, period_s=20.0, duration_s=40.0, mix=MIX)
        assert stream.rate_at(0.0) == pytest.approx(5.0)
        assert stream.rate_at(10.0) == pytest.approx(30.0)  # mid-period peak
        assert stream.rate_at(20.0) == pytest.approx(5.0)

    def test_peak_half_sees_more_arrivals_than_trough_half(self):
        stream = DiurnalStream(2.0, 40.0, period_s=40.0, duration_s=40.0, mix=MIX)
        requests = stream.generate(seed=0)
        mid = [r for r in requests if 10.0 <= r.arrival_s < 30.0]
        edges = [r for r in requests if r.arrival_s < 10.0 or r.arrival_s >= 30.0]
        assert len(mid) > 2 * len(edges)

    def test_validation(self):
        with pytest.raises(ValueError):
            DiurnalStream(10.0, 5.0, period_s=20.0, duration_s=40.0, mix=MIX)


class TestTraceStream:
    def test_replays_times_and_scenarios(self):
        scenarios = (MIX.scenarios[1], MIX.scenarios[0], MIX.scenarios[1])
        stream = TraceStream((0.0, 0.5, 0.5), MIX, scenarios=scenarios)
        requests = stream.generate(seed=9)
        assert [r.arrival_s for r in requests] == [0.0, 0.5, 0.5]
        assert tuple(r.scenario for r in requests) == scenarios

    def test_mix_sampling_when_no_scenarios_given(self):
        requests = TraceStream((0.0, 0.1, 0.2), MIX).generate(seed=2)
        assert all(r.scenario in MIX.scenarios for r in requests)

    def test_validation(self):
        with pytest.raises(ValueError):
            TraceStream((1.0, 0.5), MIX)
        with pytest.raises(ValueError):
            TraceStream((-0.1,), MIX)
        with pytest.raises(ValueError):
            TraceStream((0.0, 0.1), MIX, scenarios=(MIX.scenarios[0],))


def test_requests_are_immutable_records():
    request = Request(0, 0.0, MIX.scenarios[0])
    with pytest.raises(AttributeError):
        request.arrival_s = 1.0

"""Tests for the scheduling policies and the device serving hooks."""

import pytest

from repro.core.device import get_device
from repro.serve.request import Request, Scenario
from repro.serve.scheduler import (
    BatchDeadlineScheduler,
    Dispatch,
    FIFOScheduler,
    ServiceEstimate,
    SparsityAwareScheduler,
    Worker,
)

FAST = Scenario("instant-ngp", width=200, height=200)
SLOW = Scenario("tensorf", width=200, height=200)

#: Hand-written service times: worker 0 is fast on FAST, worker 1 on SLOW.
LATENCY = {
    (FAST, 0): 0.01,
    (FAST, 1): 0.05,
    (SLOW, 0): 0.08,
    (SLOW, 1): 0.02,
}


def fake_estimate(request, worker):
    return ServiceEstimate(
        latency_s=LATENCY[(request.scenario, worker.index)], energy_j=1.0
    )


def make_workers(*names):
    return [
        Worker(index=i, name=name, device=get_device(name))
        for i, name in enumerate(names)
    ]


def make_queue(*specs):
    """Build requests from (arrival, scenario[, deadline]) tuples."""
    queue = []
    for i, spec in enumerate(specs):
        arrival, scenario = spec[0], spec[1]
        deadline = spec[2] if len(spec) > 2 else None
        queue.append(Request(i, arrival, scenario, deadline_s=deadline))
    return queue


class TestDispatch:
    def test_rejects_empty_and_mixed_batches(self):
        worker = make_workers("flexnerfer")[0]
        with pytest.raises(ValueError):
            Dispatch(worker, ())
        mixed = (Request(0, 0.0, FAST), Request(1, 0.0, SLOW))
        with pytest.raises(ValueError):
            Dispatch(worker, mixed)

    def test_scenario_property(self):
        worker = make_workers("flexnerfer")[0]
        dispatch = Dispatch(worker, (Request(0, 0.0, FAST),))
        assert dispatch.scenario is FAST


class TestFIFO:
    def test_head_of_line_to_fleet_order(self):
        workers = make_workers("flexnerfer", "neurex")
        queue = make_queue((0.0, FAST), (0.0, SLOW), (0.0, FAST))
        dispatches, wake = FIFOScheduler().assign(
            0.0, queue, list(workers), fake_estimate, draining=False
        )
        assert wake is None
        assert [d.worker.index for d in dispatches] == [0, 1]
        assert [d.requests[0].request_id for d in dispatches] == [0, 1]
        assert [r.request_id for r in queue] == [2]  # leftover stays queued

    def test_no_idle_workers_no_dispatch(self):
        queue = make_queue((0.0, FAST))
        dispatches, _ = FIFOScheduler().assign(
            0.0, queue, [], fake_estimate, draining=False
        )
        assert dispatches == [] and len(queue) == 1


class TestSparsityAware:
    def test_routes_each_request_to_its_fastest_device(self):
        workers = make_workers("flexnerfer", "neurex")
        queue = make_queue((0.0, FAST), (0.0, SLOW))
        dispatches, _ = SparsityAwareScheduler().assign(
            0.0, queue, list(workers), fake_estimate, draining=False
        )
        routed = {d.requests[0].scenario: d.worker.index for d in dispatches}
        assert routed == {FAST: 0, SLOW: 1}
        assert queue == []

    def test_contention_preserves_fifo_priority(self):
        workers = make_workers("flexnerfer")
        queue = make_queue((0.0, SLOW), (0.0, FAST))
        dispatches, _ = SparsityAwareScheduler().assign(
            0.0, queue, list(workers), fake_estimate, draining=False
        )
        # Only one worker: the older request wins it even though the younger
        # one would run faster.
        assert [d.requests[0].request_id for d in dispatches] == [0]


class TestBatchDeadline:
    def test_holds_small_batch_and_requests_wakeup(self):
        workers = make_workers("flexnerfer")
        queue = make_queue((0.0, FAST), (0.0, FAST))
        scheduler = BatchDeadlineScheduler(max_batch=4, max_wait_s=0.1)
        dispatches, wake = scheduler.assign(
            0.01, queue, list(workers), fake_estimate, draining=False
        )
        assert dispatches == []
        assert len(queue) == 2
        assert wake == pytest.approx(0.1)  # oldest arrival + max_wait

    def test_dispatches_full_batch(self):
        workers = make_workers("flexnerfer")
        queue = make_queue(*[(0.0, FAST)] * 5)
        scheduler = BatchDeadlineScheduler(max_batch=4, max_wait_s=10.0)
        dispatches, _ = scheduler.assign(
            0.0, queue, list(workers), fake_estimate, draining=False
        )
        assert len(dispatches) == 1
        assert len(dispatches[0].requests) == 4
        assert len(queue) == 1

    def test_max_wait_forces_partial_batch(self):
        workers = make_workers("flexnerfer")
        queue = make_queue((0.0, FAST), (0.04, FAST))
        scheduler = BatchDeadlineScheduler(max_batch=8, max_wait_s=0.05)
        dispatches, _ = scheduler.assign(
            0.06, queue, list(workers), fake_estimate, draining=False
        )
        assert len(dispatches) == 1 and len(dispatches[0].requests) == 2

    def test_deadline_pressure_forces_dispatch(self):
        workers = make_workers("flexnerfer")
        # Deadline at 0.02, service takes 0.01: no slack left at t=0.012.
        queue = make_queue((0.0, FAST, 0.02))
        scheduler = BatchDeadlineScheduler(max_batch=8, max_wait_s=10.0)
        dispatches, _ = scheduler.assign(
            0.012, queue, list(workers), fake_estimate, draining=False
        )
        assert len(dispatches) == 1

    def test_draining_flushes_everything(self):
        workers = make_workers("flexnerfer", "neurex")
        queue = make_queue((0.0, FAST), (0.0, SLOW))
        scheduler = BatchDeadlineScheduler(max_batch=8, max_wait_s=10.0)
        dispatches, _ = scheduler.assign(
            0.0, queue, list(workers), fake_estimate, draining=True
        )
        assert len(dispatches) == 2 and queue == []

    def test_groups_never_mix_scenarios(self):
        workers = make_workers("flexnerfer")
        queue = make_queue((0.0, FAST), (0.0, SLOW), (0.0, FAST))
        scheduler = BatchDeadlineScheduler(max_batch=8, max_wait_s=0.0)
        dispatches, _ = scheduler.assign(
            0.0, queue, list(workers), fake_estimate, draining=False
        )
        for dispatch in dispatches:
            assert len({r.scenario for r in dispatch.requests}) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            BatchDeadlineScheduler(max_batch=0)
        with pytest.raises(ValueError):
            BatchDeadlineScheduler(max_wait_s=-1.0)


class TestDeviceServingHooks:
    def test_batching_device_amortizes(self):
        device = get_device("flexnerfer")
        single = device.service_time_s(0.1, 1)
        batched = device.service_time_s(0.1, 4)
        assert single == pytest.approx(0.1)
        assert batched < 4 * single
        assert batched == pytest.approx(0.1 * (1 + device.batch_marginal_latency * 3))
        assert device.service_energy_j(1.0, 4) < 4.0

    def test_non_batching_device_serializes(self):
        device = get_device("tpu")
        assert device.service_time_s(0.1, 4) == pytest.approx(0.4)
        assert device.service_energy_j(1.0, 4) == pytest.approx(4.0)

    def test_batch_must_be_positive(self):
        device = get_device("flexnerfer")
        with pytest.raises(ValueError):
            device.service_time_s(0.1, 0)
        with pytest.raises(ValueError):
            device.service_energy_j(0.1, 0)


def test_batch_deadline_serves_duplicate_queue_occurrences():
    """A request object appearing twice in the queue is served twice, not dropped."""
    workers = make_workers("flexnerfer", "neurex")
    request = Request(0, 0.0, FAST)
    queue = [request, request]
    scheduler = BatchDeadlineScheduler(max_batch=1, max_wait_s=0.0)
    dispatches, _ = scheduler.assign(
        0.0, queue, list(workers), fake_estimate, draining=True
    )
    assert sum(len(d.requests) for d in dispatches) == 2
    assert queue == []


def test_batch_deadline_honours_the_tightest_deadline_in_the_batch():
    """A younger request's tighter deadline must pull the dispatch forward."""
    workers = make_workers("flexnerfer")
    # Oldest has a loose deadline; the younger one needs service soon.
    # FAST on flexnerfer estimates 0.01 s; batch of 2 serves in
    # 0.01 * (1 + 0.6) = 0.016 s, so r1's 0.03 deadline forces dispatch
    # once now >= 0.03 - 0.016 = 0.014.
    queue = make_queue((0.0, FAST, 10.0), (0.005, FAST, 0.03))
    scheduler = BatchDeadlineScheduler(max_batch=8, max_wait_s=10.0)
    dispatches, wake = scheduler.assign(
        0.01, queue, list(workers), fake_estimate, draining=False
    )
    assert dispatches == []
    assert wake == pytest.approx(0.03 - 0.016)
    dispatches, _ = scheduler.assign(
        wake, queue, list(workers), fake_estimate, draining=False
    )
    assert len(dispatches) == 1 and len(dispatches[0].requests) == 2

"""The serving layer's pinned percentile definition, at its edges.

``sorted_percentile`` is the single implementation shared by
``ServingReport.from_arrays`` (the fast path's reducer) and the event loop
(via ``percentile``); these tests pin the 1- and 2-element semantics both
at the function level and through a real ``ServingReport``.
"""

import random

import pytest

from repro.serve.report import (
    CompletedRequest,
    ServingReport,
    percentile,
    sorted_percentile,
)
from repro.serve.request import Request, Scenario

SCENARIO = Scenario("instant-ngp", scene="lego", width=64, height=64)


def completion(request_id, arrival_s, finish_s):
    """One completed request with an explicit latency window."""
    return CompletedRequest(
        request=Request(request_id=request_id, arrival_s=arrival_s, scenario=SCENARIO),
        worker="flexnerfer#0",
        start_s=arrival_s,
        finish_s=finish_s,
        batch_size=1,
        energy_j=0.5,
    )


class TestFunctionEdges:
    def test_single_element_returns_it_for_every_q(self):
        for q in (0.0, 1.0, 50.0, 95.0, 99.0, 100.0):
            assert percentile([3.25], q) == 3.25
            assert sorted_percentile([3.25], q) == 3.25

    def test_two_element_interpolation_is_pinned(self):
        low, high = 0.1, 0.9
        assert percentile([high, low], 0.0) == low
        assert percentile([high, low], 100.0) == high
        assert percentile([high, low], 50.0) == pytest.approx((low + high) / 2)
        assert percentile([high, low], 95.0) == pytest.approx(
            0.05 * low + 0.95 * high
        )
        assert percentile([high, low], 99.0) == pytest.approx(
            0.01 * low + 0.99 * high
        )

    def test_percentile_delegates_to_sorted_percentile(self):
        rng = random.Random(20260808)
        for _ in range(50):
            values = [rng.uniform(0.0, 10.0) for _ in range(rng.randint(1, 20))]
            q = rng.uniform(0.0, 100.0)
            assert percentile(values, q) == sorted_percentile(sorted(values), q)

    def test_validation(self):
        with pytest.raises(ValueError, match="empty"):
            percentile([], 50.0)
        with pytest.raises(ValueError, match="must be in"):
            percentile([1.0], 101.0)


class TestReportEdges:
    def build(self, completions):
        return ServingReport.from_completions(
            scheduler="fifo",
            fleet=("flexnerfer",),
            workers=(),
            completed=completions,
            num_requests=len(completions),
        )

    def test_one_completion_report(self):
        report = self.build([completion(0, arrival_s=0.0, finish_s=0.25)])
        assert report.p50_latency_s == 0.25
        assert report.p95_latency_s == 0.25
        assert report.p99_latency_s == 0.25
        assert report.mean_latency_s == 0.25

    def test_two_completion_report_interpolates(self):
        report = self.build(
            [
                completion(0, arrival_s=0.0, finish_s=0.1),
                completion(1, arrival_s=0.0, finish_s=0.5),
            ]
        )
        latencies = [0.1, 0.5]
        assert report.p50_latency_s == percentile(latencies, 50.0)
        assert report.p95_latency_s == percentile(latencies, 95.0)
        assert report.p99_latency_s == percentile(latencies, 99.0)
        assert report.p95_latency_s == pytest.approx(0.05 * 0.1 + 0.95 * 0.5)

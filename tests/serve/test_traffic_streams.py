"""Behavioral unit tests of the generative traffic streams.

The conformance harness certifies the shared stream contract; this suite
pins what makes each stream *itself*: flash-crowd bursts actually burst,
the marked (self-exciting) process clusters and honors its long-run mean,
multi-tenant merges stamp tenants and keep per-tenant sub-streams stable
under roster changes, and sessions emit strict-deadline orbit frames.
Constructor validation errors are pinned by message for every stream.
"""

import random

import pytest

from repro.serve.request import Scenario, ScenarioMix
from repro.serve.traffic import (
    FlashCrowdStream,
    MarkedBurstStream,
    MultiTenantStream,
    SessionStream,
    TenantSpec,
)
from repro.serve.traffic.session import ORBIT_ELEVATION_DEG, ORBIT_RADIUS

SEED = 20260808
TINY = Scenario("instant-ngp", scene="lego", width=96, height=96)
OTHER = Scenario("tensorf", scene="lego", width=80, height=80)
MIX = ScenarioMix((TINY,))


class TestFlashCrowd:
    def test_bursts_actually_burst(self):
        """Arrival density inside burst windows dwarfs the baseline."""
        stream = FlashCrowdStream(
            base_rps=5.0,
            burst_rps=100.0,
            duration_s=20.0,
            mix=MIX,
            num_bursts=2,
            burst_s=1.0,
        )
        epochs = stream.burst_epochs(random.Random(SEED))
        arrivals = [r.arrival_s for r in stream.generate(seed=SEED)]
        in_burst = sum(
            1
            for t in arrivals
            if any(start <= t < start + stream.burst_s for start in epochs)
        )
        burst_span = stream.num_bursts * stream.burst_s
        base_span = stream.duration_s - burst_span
        burst_rate = in_burst / burst_span
        base_rate = (len(arrivals) - in_burst) / base_span
        assert burst_rate > 5.0 * base_rate

    def test_burst_epochs_are_seeded_and_sorted(self):
        stream = FlashCrowdStream(10.0, 50.0, 10.0, MIX, num_bursts=4, burst_s=0.5)
        epochs = stream.burst_epochs(random.Random(SEED))
        assert epochs == stream.burst_epochs(random.Random(SEED))
        assert list(epochs) == sorted(epochs)
        assert all(0.0 <= e <= stream.duration_s - stream.burst_s for e in epochs)

    def test_rate_at_follows_windows(self):
        stream = FlashCrowdStream(10.0, 50.0, 10.0, MIX, burst_s=1.0)
        epochs = (2.0, 6.0)
        assert stream.rate_at(1.9, epochs) == 10.0
        assert stream.rate_at(2.0, epochs) == 50.0
        assert stream.rate_at(2.999, epochs) == 50.0
        assert stream.rate_at(3.0, epochs) == 10.0
        assert stream.rate_at(6.5, epochs) == 50.0

    def test_default_burst_width_is_tenth_of_horizon(self):
        stream = FlashCrowdStream(10.0, 50.0, 30.0, MIX)
        assert stream.burst_s == 3.0

    def test_validation(self):
        with pytest.raises(ValueError, match="must be positive"):
            FlashCrowdStream(0.0, 50.0, 10.0, MIX)
        with pytest.raises(ValueError, match="burst_rps >= base_rps"):
            FlashCrowdStream(10.0, 5.0, 10.0, MIX)
        with pytest.raises(ValueError, match="num_bursts"):
            FlashCrowdStream(10.0, 50.0, 10.0, MIX, num_bursts=0)
        with pytest.raises(ValueError, match="burst_s"):
            FlashCrowdStream(10.0, 50.0, 10.0, MIX, burst_s=11.0)


class TestMarkedBurst:
    def test_long_run_mean_matches_formula(self):
        """Realized rate over many seeds approaches immigrant/(1-offspring)."""
        stream = MarkedBurstStream(
            immigrant_rps=10.0, duration_s=10.0, mix=MIX, offspring_mean=0.5
        )
        assert stream.mean_rps == 20.0
        counts = [len(stream.generate(seed=s)) for s in range(20)]
        mean_rate = sum(counts) / len(counts) / stream.duration_s
        # Edge truncation loses some offspring, so allow a generous band.
        assert 0.7 * stream.mean_rps <= mean_rate <= 1.2 * stream.mean_rps

    def test_offspring_cluster_after_parents(self):
        """Self-excitation clusters arrivals: more short gaps than Poisson."""
        plain = MarkedBurstStream(20.0, 20.0, MIX, offspring_mean=0.0)
        excited = MarkedBurstStream(20.0, 20.0, MIX, offspring_mean=0.6, decay_s=0.05)

        def short_gap_share(stream):
            gaps = []
            for seed in range(10):
                arrivals = [r.arrival_s for r in stream.generate(seed=seed)]
                gaps += [b - a for a, b in zip(arrivals, arrivals[1:])]
            return sum(1 for g in gaps if g < 0.01) / len(gaps)

        assert short_gap_share(excited) > short_gap_share(plain)

    def test_zero_offspring_is_pure_immigrants(self):
        """With offspring_mean=0 the process is the immigrant Poisson flow."""
        stream = MarkedBurstStream(15.0, 8.0, MIX, offspring_mean=0.0)
        assert stream.mean_rps == 15.0
        arrivals = [r.arrival_s for r in stream.generate(seed=SEED)]
        assert arrivals == sorted(arrivals)
        assert all(0.0 <= t < 8.0 for t in arrivals)

    def test_validation(self):
        with pytest.raises(ValueError, match="must be positive"):
            MarkedBurstStream(0.0, 10.0, MIX)
        with pytest.raises(ValueError, match="subcritical"):
            MarkedBurstStream(10.0, 10.0, MIX, offspring_mean=1.0)
        with pytest.raises(ValueError, match="decay_s"):
            MarkedBurstStream(10.0, 10.0, MIX, decay_s=0.0)


class TestMultiTenant:
    ROSTER = (
        TenantSpec("gold", 12.0, ScenarioMix((TINY,)), sla_s=0.2),
        TenantSpec("bronze", 4.0, ScenarioMix((OTHER,)), sla_s=0.8),
    )

    def test_tenants_and_deadlines_are_stamped(self):
        stream = MultiTenantStream(self.ROSTER, duration_s=6.0)
        requests = stream.generate(seed=SEED)
        sla = {"gold": 0.2, "bronze": 0.8}
        seen = set()
        for request in requests:
            assert request.tenant in sla
            seen.add(request.tenant)
            assert request.deadline_s == pytest.approx(
                request.arrival_s + sla[request.tenant]
            )
        assert seen == {"gold", "bronze"}

    def test_tenant_shares_follow_rates(self):
        stream = MultiTenantStream(self.ROSTER, duration_s=20.0)
        requests = stream.generate(seed=SEED)
        gold = sum(1 for r in requests if r.tenant == "gold")
        share = gold / len(requests)
        assert abs(share - 12.0 / 16.0) < 0.1

    def test_sub_streams_are_stable_under_roster_changes(self):
        """Adding a tenant must not perturb another tenant's arrivals."""
        solo = MultiTenantStream(self.ROSTER[:1], duration_s=6.0)
        both = MultiTenantStream(self.ROSTER, duration_s=6.0)
        gold_solo = [
            r.arrival_s for r in solo.generate(seed=SEED) if r.tenant == "gold"
        ]
        gold_both = [
            r.arrival_s for r in both.generate(seed=SEED) if r.tenant == "gold"
        ]
        assert gold_solo == gold_both

    def test_advertised_mix_is_rate_weighted_union(self):
        stream = MultiTenantStream(self.ROSTER, duration_s=6.0)
        assert stream.mix.scenarios == (TINY, OTHER)
        assert stream.mix.weights == (12.0, 4.0)

    def test_shared_scenario_accumulates_weight(self):
        roster = (
            TenantSpec("a", 9.0, ScenarioMix((TINY,))),
            TenantSpec("b", 3.0, ScenarioMix((TINY, OTHER))),
        )
        stream = MultiTenantStream(roster, duration_s=2.0)
        assert stream.mix.scenarios == (TINY, OTHER)
        assert stream.mix.weights == (10.5, 1.5)

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one tenant"):
            MultiTenantStream((), duration_s=5.0)
        with pytest.raises(ValueError, match="duplicate tenant names"):
            MultiTenantStream(
                (
                    TenantSpec("x", 1.0, MIX),
                    TenantSpec("x", 2.0, MIX),
                ),
                duration_s=5.0,
            )
        with pytest.raises(ValueError, match="duration_s must be positive"):
            MultiTenantStream(self.ROSTER, duration_s=0.0)
        with pytest.raises(ValueError, match="name must be non-empty"):
            TenantSpec("", 1.0, MIX)
        with pytest.raises(ValueError, match="rate_rps must be positive"):
            TenantSpec("x", 0.0, MIX)
        with pytest.raises(ValueError, match="sla_s must be positive"):
            TenantSpec("x", 1.0, MIX, sla_s=0.0)


class TestSession:
    def test_frames_share_scenario_and_sweep_the_orbit(self):
        mix = ScenarioMix((TINY, OTHER))
        stream = SessionStream(
            mix, num_sessions=3, frames_per_session=8, fps=30.0, start_spread_s=0.5
        )
        requests = stream.generate(seed=SEED)
        assert len(requests) == 24
        by_session = {}
        for request in requests:
            by_session.setdefault(request.session, []).append(request)
        assert sorted(by_session) == [0, 1, 2]
        for frames in by_session.values():
            assert len(frames) == 8
            assert len({f.scenario for f in frames}) == 1  # correlation
            azimuths = sorted(f.pose[0] for f in frames)
            assert azimuths == [360.0 * k / 8 for k in range(8)]
            for frame in frames:
                assert frame.pose[1] == ORBIT_ELEVATION_DEG
                assert frame.pose[2] == ORBIT_RADIUS

    def test_default_deadline_is_one_frame_period(self):
        stream = SessionStream(
            MIX, num_sessions=1, frames_per_session=4, fps=25.0, start_spread_s=0.0
        )
        for request in stream.generate(seed=SEED):
            assert request.deadline_s == pytest.approx(request.arrival_s + 0.04)

    def test_explicit_sla_overrides_frame_period(self):
        stream = SessionStream(
            MIX,
            num_sessions=1,
            frames_per_session=4,
            fps=25.0,
            start_spread_s=0.0,
            sla_s=0.5,
        )
        for request in stream.generate(seed=SEED):
            assert request.deadline_s == pytest.approx(request.arrival_s + 0.5)

    def test_degradable_flag_is_stamped(self):
        for degradable in (True, False):
            stream = SessionStream(
                MIX,
                num_sessions=2,
                frames_per_session=3,
                degradable=degradable,
            )
            assert all(
                r.degradable is degradable for r in stream.generate(seed=SEED)
            )

    def test_jitter_keeps_sessions_monotone(self):
        stream = SessionStream(
            MIX,
            num_sessions=4,
            frames_per_session=25,
            fps=50.0,
            start_spread_s=0.3,
            jitter_s=0.019,  # just under the 20 ms frame period
        )
        requests = stream.generate(seed=SEED)
        by_session = {}
        for request in requests:
            by_session.setdefault(request.session, []).append(request.arrival_s)
        for times in by_session.values():
            assert times == sorted(times)

    def test_validation(self):
        with pytest.raises(ValueError, match="must be >= 1"):
            SessionStream(MIX, num_sessions=0, frames_per_session=5)
        with pytest.raises(ValueError, match="fps must be positive"):
            SessionStream(MIX, num_sessions=1, frames_per_session=5, fps=0.0)
        with pytest.raises(ValueError, match="start_spread_s"):
            SessionStream(
                MIX, num_sessions=1, frames_per_session=5, start_spread_s=-1.0
            )
        with pytest.raises(ValueError, match="jitter_s must be in"):
            SessionStream(
                MIX, num_sessions=1, frames_per_session=5, fps=20.0, jitter_s=0.05
            )

"""Property tests for degradation-ladder pricing edge cases.

Three edges the broad serving fuzz suite never isolates:

* a **single-rung ladder** is a legal, fully functional menu (depth 1,
  shedder saturates at level 1, pricing produces exactly one row);
* a priced rung with **speedup < 1** is a configuration error --
  ``LadderPricing`` rejects it at construction, never silently serving
  backlog slower at lower quality;
* **quality monotonicity** -- a ladder whose rungs carry non-increasing
  qualities yields a non-increasing ``quality_of`` over levels, and a
  queue-depth shedder's level is non-decreasing in queue depth.

Fixed-seed randomized (`SEED`), budget tunable via ``REPRO_FUZZ_ITERATIONS``
like the other property suites.
"""

import os
import random

import pytest

from repro.serve.control import (
    DegradationLadder,
    DegradationStep,
    LadderPricing,
    PricedStep,
    QueueDepthShedder,
    price_ladder,
)
from repro.serve.request import Scenario
from repro.sim.sweep import SweepEngine

#: Fixed fuzz seed: the whole suite is one reproducible random stream.
SEED = 20260808

#: Combined config budget; override with REPRO_FUZZ_ITERATIONS=<n>.
ITERATIONS = int(os.environ.get("REPRO_FUZZ_ITERATIONS", "200"))


def priced_row(step, speedup, quality=0.8):
    """A fabricated measured row with the given speedup."""
    return PricedStep(
        step=step,
        latency_s=1.0 / speedup,
        energy_j=1.0 / speedup,
        speedup=speedup,
        energy_gain=speedup,
        psnr_db=30.0,
        quality=quality,
    )


SCENARIO = Scenario("instant-ngp", scene="lego", width=64, height=64)
STEP = DegradationStep("half-res", resolution_scale=0.5)


class TestSingleRungLadder:
    def test_single_rung_ladder_mechanics(self):
        ladder = DegradationLadder(steps=(STEP,), qualities=(0.75,))
        assert ladder.depth == 1
        assert ladder.quality_of(0) == 1.0
        assert ladder.quality_of(1) == 0.75
        degraded = ladder.apply(SCENARIO, 1)
        assert (degraded.width, degraded.height) == (32, 32)
        assert ladder.apply(SCENARIO, 0) is SCENARIO

    def test_single_rung_shedder_saturates_at_one(self):
        shedder = QueueDepthShedder(
            DegradationLadder(steps=(STEP,), qualities=(0.75,)), depth_per_step=2
        )
        levels = [shedder.level(depth, 1) for depth in range(12)]
        assert levels[0] == 0
        assert max(levels) == 1, "a one-rung ladder never sheds past level 1"
        assert levels == sorted(levels)

    def test_price_ladder_single_rung(self):
        # One measured row end to end, tiny probe so the test stays cheap.
        pricing = price_ladder(
            SCENARIO,
            "flexnerfer",
            steps=(STEP,),
            engine=SweepEngine(),
            probe_size=16,
            probe_samples=8,
        )
        assert len(pricing.rows) == 1
        (row,) = pricing.rows
        assert row.speedup >= 1.0
        assert 0.0 < row.quality <= 1.0
        ladder = pricing.ladder()
        assert ladder.depth == 1
        assert ladder.quality_of(1) == row.quality


class TestSpeedupValidation:
    def test_slower_than_full_quality_rejected(self):
        with pytest.raises(ValueError, match="prices slower than full quality"):
            LadderPricing(
                scenario=SCENARIO,
                device="flexnerfer",
                base_latency_s=1.0,
                base_energy_j=1.0,
                rows=(priced_row(STEP, speedup=0.9),),
            )

    def test_fuzzed_speedup_lists(self):
        """Any rung below 1 rejects the pricing; all >= 1 accepts it."""
        rng = random.Random(SEED)
        for _ in range(max(20, ITERATIONS // 4)):
            count = rng.randint(1, 4)
            speedups = [rng.uniform(0.25, 4.0) for _ in range(count)]
            rows = tuple(
                priced_row(
                    DegradationStep(f"rung-{i}", resolution_scale=0.5), s
                )
                for i, s in enumerate(speedups)
            )
            build = lambda: LadderPricing(
                scenario=SCENARIO,
                device="flexnerfer",
                base_latency_s=1.0,
                base_energy_j=1.0,
                rows=rows,
            )
            if any(s < 1.0 for s in speedups):
                with pytest.raises(ValueError, match="speedup"):
                    build()
            else:
                assert build().ladder().depth == count


class TestQualityMonotonicity:
    def random_ladder(self, rng):
        """A ladder with strictly descending rung qualities."""
        depth = rng.randint(1, 5)
        qualities = sorted(
            (rng.uniform(0.05, 0.99) for _ in range(depth)), reverse=True
        )
        steps = tuple(
            DegradationStep(f"rung-{i}", resolution_scale=rng.uniform(0.25, 1.0))
            for i in range(depth)
        )
        return DegradationLadder(steps=steps, qualities=tuple(qualities))

    def test_quality_of_is_non_increasing_over_levels(self):
        rng = random.Random(SEED + 1)
        for _ in range(max(20, ITERATIONS // 4)):
            ladder = self.random_ladder(rng)
            qualities = [ladder.quality_of(level) for level in range(ladder.depth + 1)]
            assert qualities[0] == 1.0
            assert qualities == sorted(qualities, reverse=True), qualities

    def test_shed_level_is_non_decreasing_in_queue_depth(self):
        rng = random.Random(SEED + 2)
        for _ in range(max(20, ITERATIONS // 4)):
            ladder = self.random_ladder(rng)
            shedder = QueueDepthShedder(ladder, depth_per_step=rng.randint(1, 6))
            workers = rng.randint(1, 4)
            levels = [shedder.level(depth, workers) for depth in range(64)]
            assert levels == sorted(levels)
            assert max(levels) <= ladder.depth

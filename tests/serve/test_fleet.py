"""Tests for the FleetSimulator event loop and the ServingReport metrics."""

import pytest

from repro.serve.fleet import FleetSimulator
from repro.serve.report import percentile
from repro.serve.request import PoissonStream, Scenario, ScenarioMix, TraceStream
from repro.serve.scheduler import (
    BatchDeadlineScheduler,
    FIFOScheduler,
    SparsityAwareScheduler,
)
from repro.sim.sweep import SweepEngine

MIX = ScenarioMix(
    scenarios=(
        Scenario("instant-ngp", scene="lego", width=200, height=200),
        Scenario("tensorf", scene="lego", width=200, height=200),
    ),
    weights=(3.0, 1.0),
)

STREAM = PoissonStream(rate_rps=60.0, duration_s=5.0, mix=MIX, sla_s=0.2)


@pytest.fixture
def engine():
    return SweepEngine()


class TestPercentile:
    def test_interpolation(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 100.0) == 4.0
        assert percentile(values, 50.0) == pytest.approx(2.5)
        assert percentile([5.0], 99.0) == 5.0

    def test_validation(self):
        with pytest.raises(ValueError):
            percentile([], 50.0)
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)


class TestEventLoop:
    def test_every_request_completes_exactly_once(self, engine):
        requests = STREAM.generate(seed=0)
        report = FleetSimulator(("flexnerfer",), engine=engine).run(requests)
        assert report.num_requests == len(requests)
        assert report.completed_requests == len(requests)
        served_ids = [c.request.request_id for c in report.completed]
        assert served_ids == sorted(set(served_ids))

    def test_deterministic_across_runs_and_engines(self):
        first = FleetSimulator(("flexnerfer",), engine=SweepEngine()).run(
            STREAM.generate(seed=0)
        )
        second = FleetSimulator(("flexnerfer",), engine=SweepEngine()).run(
            STREAM.generate(seed=0)
        )
        assert first == second  # frozen dataclass equality over all metrics

    def test_server_never_overlaps_and_respects_arrivals(self, engine):
        report = FleetSimulator(("flexnerfer",), engine=engine).run(
            STREAM.generate(seed=1)
        )
        by_worker = {}
        for completion in report.completed:
            assert completion.start_s >= completion.request.arrival_s
            by_worker.setdefault(completion.worker, []).append(completion)
        for completions in by_worker.values():
            batches = sorted({(c.start_s, c.finish_s) for c in completions})
            for (_, prev_end), (next_start, _) in zip(batches, batches[1:]):
                assert next_start >= prev_end

    def test_cache_reuse_bounds_frame_simulations(self, engine):
        FleetSimulator(("flexnerfer",), engine=engine).run(STREAM.generate(seed=0))
        # Hundreds of requests, but only one simulation per unique
        # (device, scenario) pair.
        assert engine.stats.render_calls == len(MIX.scenarios)

    def test_default_sla_applies_to_unstamped_requests(self, engine):
        requests = TraceStream((0.0, 0.01), MIX).generate(seed=0)
        simulator = FleetSimulator(
            ("flexnerfer",), engine=engine, default_sla_s=1e-9
        )
        report = simulator.run(requests)
        assert report.sla_attainment == 0.0  # impossible SLA: every miss counted

    def test_empty_stream_produces_empty_report(self, engine):
        report = FleetSimulator(("flexnerfer",), engine=engine).run(())
        assert report.num_requests == 0
        assert report.makespan_s == 0.0
        assert report.sla_attainment == 1.0

    def test_fleet_requires_devices(self):
        with pytest.raises(ValueError):
            FleetSimulator(())


class TestSchedulingBehaviour:
    def test_second_device_strictly_helps_under_load(self, engine):
        requests = STREAM.generate(seed=0)
        solo = FleetSimulator(("flexnerfer",), engine=engine).run(requests)
        duo = FleetSimulator(
            ("flexnerfer", "flexnerfer"), engine=engine
        ).run(requests)
        assert duo.p95_latency_s < solo.p95_latency_s
        assert duo.goodput_rps >= solo.goodput_rps

    def test_sparsity_aware_routing_beats_fifo_on_heterogeneous_fleet(self, engine):
        requests = STREAM.generate(seed=0)
        fleet = ("flexnerfer", "neurex")
        fifo = FleetSimulator(
            fleet, scheduler=FIFOScheduler(), engine=engine
        ).run(requests)
        routed = FleetSimulator(
            fleet, scheduler=SparsityAwareScheduler(), engine=engine
        ).run(requests)
        assert routed.mean_latency_s <= fifo.mean_latency_s

    def test_batching_cuts_tail_latency_under_overload(self, engine):
        overload = PoissonStream(
            rate_rps=120.0, duration_s=5.0, mix=MIX, sla_s=1.0
        ).generate(seed=0)
        fifo = FleetSimulator(
            ("flexnerfer",), scheduler=FIFOScheduler(), engine=engine
        ).run(overload)
        batched = FleetSimulator(
            ("flexnerfer",),
            scheduler=BatchDeadlineScheduler(max_batch=8, max_wait_s=0.05),
            engine=engine,
        ).run(overload)
        assert batched.p95_latency_s < fifo.p95_latency_s
        assert batched.mean_batch_size > 1.5
        assert batched.energy_per_request_j < fifo.energy_per_request_j
        # Batch members complete together and carry the batch's size.
        sizes = {c.batch_size for c in batched.completed}
        assert max(sizes) > 1

    def test_worker_stats_are_consistent(self, engine):
        report = FleetSimulator(
            ("flexnerfer", "neurex"),
            scheduler=SparsityAwareScheduler(),
            engine=engine,
        ).run(STREAM.generate(seed=2))
        assert sum(w.requests_served for w in report.workers) == report.num_requests
        for worker in report.workers:
            assert 0.0 <= worker.utilization <= 1.0
            assert worker.busy_s <= report.makespan_s + 1e-12

    def test_report_serializes_to_json_safe_dict(self, engine):
        import json

        report = FleetSimulator(("flexnerfer",), engine=engine).run(
            STREAM.generate(seed=0)
        )
        payload = json.dumps(report.to_dict())
        assert "goodput_rps" in payload


class TestBatchSchedulerWakeups:
    """Regression tests: held batches must wake exactly when their bound expires."""

    SOLO_MIX = ScenarioMix(
        scenarios=(Scenario("instant-ngp", scene="lego", width=200, height=200),)
    )

    def test_max_wait_wake_fires_despite_float_rounding(self, engine):
        # 0.7 + 0.1 rounds to 0.7999999999999999 < 0.8: the wake-time check
        # must use the same float expression or the batch sits until the
        # next unrelated event (here, 5.0 s later).
        requests = TraceStream((0.7, 5.0), self.SOLO_MIX).generate(seed=0)
        simulator = FleetSimulator(
            ("flexnerfer",),
            scheduler=BatchDeadlineScheduler(max_batch=8, max_wait_s=0.1),
            engine=engine,
        )
        report = simulator.run(requests)
        first = report.completed[0]
        assert first.start_s == pytest.approx(0.8, abs=1e-9)

    def test_deadline_slack_schedules_its_own_wake(self, engine):
        # Frame latency ~8.6 ms, deadline at 20 ms: the scheduler must wake
        # at (deadline - service estimate) and dispatch in time, not wait
        # for max_wait (10 s) or the next arrival (0.4 s).
        requests = TraceStream(
            (0.0, 0.4), self.SOLO_MIX, sla_s=0.02
        ).generate(seed=0)
        simulator = FleetSimulator(
            ("flexnerfer",),
            scheduler=BatchDeadlineScheduler(max_batch=8, max_wait_s=10.0),
            engine=engine,
        )
        report = simulator.run(requests)
        first = report.completed[0]
        assert first.met_deadline
        assert first.start_s < 0.02

    def test_offered_rps_measures_arrival_span_not_drain(self, engine):
        # Overload: the queue drains long past the last arrival.  Offered
        # load must still reflect the arrival rate, not completion rate.
        overload = PoissonStream(
            rate_rps=200.0, duration_s=5.0, mix=self.SOLO_MIX
        ).generate(seed=0)
        report = FleetSimulator(("flexnerfer",), engine=engine).run(overload)
        first_arrival = min(r.arrival_s for r in overload)
        last_arrival = max(r.arrival_s for r in overload)
        assert report.makespan_s > last_arrival * 1.2  # genuinely drained late
        assert report.offered_rps == pytest.approx(
            len(overload) / (last_arrival - first_arrival)
        )
        assert report.offered_rps > report.goodput_rps

    def test_deadline_pressure_accounts_for_batched_service_time(self, engine):
        # Two same-scenario requests at t=0, deadline 20 ms, frame ~8.6 ms:
        # batched service is 8.6*(1+0.6) ~ 13.8 ms, so the wake must land at
        # deadline - batched time (~6.2 ms), not deadline - single-frame
        # time (~11.4 ms) -- the latter would finish past the deadline.
        requests = TraceStream(
            (0.0, 0.0, 0.4), self.SOLO_MIX, sla_s=0.02
        ).generate(seed=0)
        simulator = FleetSimulator(
            ("flexnerfer",),
            scheduler=BatchDeadlineScheduler(max_batch=8, max_wait_s=10.0),
            engine=engine,
        )
        report = simulator.run(requests)
        batch = [c for c in report.completed if c.request.arrival_s == 0.0]
        assert len(batch) == 2 and all(c.batch_size == 2 for c in batch)
        assert all(c.met_deadline for c in batch)

    def test_offered_rps_uses_arrival_span_for_nonzero_origin_traces(self, engine):
        # A replayed trace starting at t=3600 must report the local arrival
        # rate, not num_requests / absolute-timestamp.
        times = tuple(3600.0 + 0.01 * i for i in range(51))  # 100 rps for 0.5 s
        requests = TraceStream(times, self.SOLO_MIX).generate(seed=0)
        report = FleetSimulator(("flexnerfer",), engine=engine).run(requests)
        assert report.offered_rps == pytest.approx(51 / 0.5, rel=1e-9)

    def test_goodput_and_utilization_honest_for_nonzero_origin_traces(self, engine):
        # Two quick requests replayed at t~1000: rates must be measured from
        # the first arrival, not from t=0.
        requests = TraceStream((1000.0, 1000.2), self.SOLO_MIX).generate(seed=0)
        report = FleetSimulator(("flexnerfer",), engine=engine).run(requests)
        assert report.makespan_s < 1.0  # first arrival -> last finish
        assert report.goodput_rps > 2.0
        assert report.mean_utilization > 0.01

    def test_simulator_instance_is_reusable(self, engine):
        # Worker state is per-run: the same simulator must serve a second
        # stream from an idle fleet with un-accumulated stats.
        simulator = FleetSimulator(("flexnerfer",), engine=engine)
        requests = PoissonStream(
            rate_rps=50.0, duration_s=3.0, mix=self.SOLO_MIX, sla_s=0.2
        ).generate(seed=0)
        first = simulator.run(requests)
        second = simulator.run(requests)
        assert first == second
        assert [w.requests_served for w in second.workers] == [len(requests)]

"""Driver for the stream-conformance harness: certify every stream.

The registry and the checks live in ``tests/serve/stream_conformance.py``;
this module parametrizes the certification suite over every registered
:class:`~tests.serve.stream_conformance.StreamCase` and closes the loop
with a completeness gate: a concrete ``RequestStream`` subclass that is
not registered in the harness fails CI here.
"""

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.serve.control import (
    ControlConfig,
    DegradationLadder,
    DegradationStep,
    QueueCapAdmission,
    QueueDepthShedder,
)
from repro.serve.fleet import FleetSimulator
from repro.serve.scheduler import FIFOScheduler
from repro.serve.traffic import dump_trace, load_trace
from repro.sim.sweep import SweepEngine

from tests._differential import assert_fast_path_matches_event_loop
from tests.serve.stream_conformance import (
    CASES,
    SEED,
    all_concrete_stream_classes,
    check_count,
    check_invariants,
    check_mix_convergence,
    covered_classes,
)

#: A modelled shedding ladder for the controlled differential (mechanics,
#: not PSNR pricing -- same convention as the serving fuzz suite).
LADDER = DegradationLadder(
    steps=(
        DegradationStep("half-samples", sample_scale=0.5),
        DegradationStep("half-res", resolution_scale=0.5),
    ),
    qualities=(0.9, 0.7),
)


@pytest.fixture(scope="module")
def engine():
    """One shared engine: each unique (device, scenario) simulates once."""
    return SweepEngine()


@pytest.fixture(params=CASES, ids=lambda case: case.name)
def case(request):
    """One registered stream case per parametrization."""
    return request.param


class TestDeterminism:
    def test_repeat_generation_is_bit_identical(self, case):
        """The same seed yields the same realization, object for object."""
        stream = case.build()
        first = stream.generate(seed=SEED)
        assert first == stream.generate(seed=SEED)
        # A freshly built stream (no shared mutable state) agrees too.
        assert first == case.build().generate(seed=SEED)

    def test_concurrent_generation_is_bit_identical(self, case):
        """Realizations are identical across threads (the --jobs mode)."""
        reference = case.build().generate(seed=SEED)
        with ThreadPoolExecutor(max_workers=4) as pool:
            futures = [
                pool.submit(lambda: case.build().generate(seed=SEED))
                for _ in range(4)
            ]
            assert all(f.result() == reference for f in futures)

    def test_seed_changes_realization(self, case):
        """Different seeds give different realizations (replay streams excepted)."""
        stream = case.build()
        if case.seed_sensitive:
            assert stream.generate(seed=SEED) != stream.generate(seed=SEED + 1)
        else:
            assert stream.generate(seed=SEED) == stream.generate(seed=SEED + 1)


class TestInvariants:
    def test_arrival_invariants(self, case):
        """Sequential ids, sorted arrivals, sane deadlines/poses/sessions."""
        check_invariants(case, case.build().generate(seed=SEED))

    def test_count_conservation(self, case):
        """Realized request count matches the configured demand."""
        check_count(case, case.build().generate(seed=SEED))

    def test_mix_proportions_converge(self, case):
        """Empirical scenario shares approach the advertised mix weights."""
        if not case.mix_convergent:
            pytest.skip("composition is structural, not sampled per request")
        check_mix_convergence(case, case.build().generate(seed=SEED))


class TestDifferential:
    def test_fast_path_matches_event_loop(self, case, engine):
        """Bare FIFO fleet: fast path == event loop on this stream."""
        requests = case.build().generate(seed=SEED)
        simulator = FleetSimulator(
            ("flexnerfer", "neurex"),
            scheduler=FIFOScheduler(),
            engine=engine,
            default_sla_s=0.5,
        )
        assert_fast_path_matches_event_loop(simulator, requests, case.name)

    def test_fast_path_matches_event_loop_under_control(self, case, engine):
        """Admission + shedding control plane: both paths still agree."""
        requests = case.build().generate(seed=SEED)
        control = ControlConfig(
            admission=QueueCapAdmission(max_queue=8),
            shedder=QueueDepthShedder(LADDER, depth_per_step=2),
        )
        simulator = FleetSimulator(
            ("flexnerfer",),
            scheduler=FIFOScheduler(),
            engine=engine,
            default_sla_s=0.5,
            control=control,
        )
        assert_fast_path_matches_event_loop(
            simulator, requests, f"{case.name}+control"
        )


class TestImporterRoundTrip:
    def test_jsonl_roundtrip_is_lossless(self, case, tmp_path):
        """dump_trace -> load_trace (JSON-lines) reproduces the realization."""
        requests = case.build().generate(seed=SEED)
        path = tmp_path / f"{case.name}.jsonl"
        dump_trace(requests, path)
        trace = load_trace(path)
        assert trace.requests == requests
        # And the re-imported stream replays it verbatim.
        assert trace.stream().generate(seed=SEED + 99) == requests

    def test_csv_roundtrip_is_lossless(self, case, tmp_path):
        """dump_trace -> load_trace (CSV) reproduces pose-free realizations."""
        if not case.csv_roundtrip:
            pytest.skip("stream uses JSONL-only fields (pose / pinned)")
        requests = case.build().generate(seed=SEED)
        path = tmp_path / f"{case.name}.csv"
        dump_trace(requests, path)
        assert load_trace(path).requests == requests


def test_every_stream_subclass_is_certified():
    """Completeness gate: an unregistered RequestStream subclass fails CI.

    Growing the scenario library means registering a :class:`StreamCase`
    for the new stream; this test turns forgetting that into a failure
    naming the offender.
    """
    concrete = all_concrete_stream_classes()
    covered = covered_classes()
    missing = {cls.__qualname__ for cls in concrete - covered}
    assert not missing, (
        f"RequestStream subclasses without a conformance case: "
        f"{sorted(missing)} -- register them in "
        f"tests/serve/stream_conformance.py"
    )
    stale = {cls.__qualname__ for cls in covered - concrete}
    assert not stale, f"conformance cases for unknown streams: {sorted(stale)}"
